/**
 * @file
 * Deterministic random number generation for recsim.
 *
 * Every stochastic component in recsim takes an explicit seed so that
 * experiments are exactly reproducible across runs and platforms. We use
 * xoshiro256** seeded via splitmix64 rather than std::mt19937 both for
 * speed and because the standard distributions are not guaranteed to be
 * bit-identical across standard library implementations — the samplers
 * here are self-contained.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace recsim {
namespace util {

/**
 * xoshiro256** PRNG with splitmix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator, so it can also be plugged into
 * standard algorithms (e.g. std::shuffle).
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    uint64_t operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (cached second variate). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Exponential with rate lambda. @pre lambda > 0. */
    double exponential(double lambda);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Poisson-distributed count with the given mean (Knuth's method for
     * small means, normal approximation for large ones).
     */
    uint64_t poisson(double mean);

    /**
     * Fork an independent child stream. Children of the same parent with
     * different salts are statistically independent; used to give each
     * simulated node / table / thread its own stream.
     */
    Rng fork(uint64_t salt);

  private:
    uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

/**
 * Zipf(s, n) sampler over {0, 1, ..., n-1} using rejection-inversion
 * (Hörmann & Derflinger), O(1) per sample independent of n.
 *
 * Models the skewed popularity of embedding-table indices: a small set of
 * hot IDs receives most lookups, matching the power-law access patterns
 * reported for production recommendation models.
 */
class ZipfSampler
{
  public:
    /**
     * @param n        Support size (number of distinct indices). @pre > 0.
     * @param exponent Skew s >= 0; s == 0 degenerates to uniform.
     */
    ZipfSampler(uint64_t n, double exponent);

    /** Draw one index in [0, n). */
    uint64_t operator()(Rng& rng) const;

    uint64_t n() const { return n_; }
    double exponent() const { return s_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    uint64_t n_;
    double s_;
    double h_x1_;
    double h_n_;
    double t_;
};

/**
 * Sampler for per-table mean feature lengths following a truncated
 * discrete power law: P(L = k) proportional to k^-alpha on [1, max].
 * Matches the long-tailed "mean lookups per feature" distributions of
 * Fig 7 in the paper.
 */
class PowerLawLengthSampler
{
  public:
    /**
     * @param alpha    Tail exponent (> 1 for a finite mean as max grows).
     * @param max_len  Truncation point (the paper truncates at 32 in the
     *                 test suite; production tails reach hundreds).
     */
    PowerLawLengthSampler(double alpha, uint64_t max_len);

    /** Draw one length in [1, max_len]. */
    uint64_t operator()(Rng& rng) const;

    /** Analytical mean of the truncated distribution. */
    double mean() const { return mean_; }

  private:
    std::vector<double> cdf_;
    double mean_;
};

/**
 * Fraction of Zipf(s, n) probability mass carried by the top @p k
 * most popular indices. This is the analytic hit rate of a cache that
 * pins the k hottest rows of a Zipf-accessed embedding table — the
 * quantity behind the hot-row caching extension (the paper's Section
 * III-A "caching [58]" optimization opportunity).
 */
double zipfTopMass(uint64_t n, double exponent, uint64_t k);

} // namespace util
} // namespace recsim
