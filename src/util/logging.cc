#include "util/logging.h"

// All of logging.h is header-only templates; this translation unit exists
// so the library has a stable archive member and a place for future
// non-template sinks (e.g. log files).

namespace recsim {
namespace util {
} // namespace util
} // namespace recsim
