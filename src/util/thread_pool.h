/**
 * @file
 * Persistent worker pool with a deterministic parallel-for primitive —
 * the parallel substrate for the tensor/embedding kernels.
 *
 * Design goals, in order:
 *
 *  1. *Determinism.* parallelFor() splits [begin, end) into chunks whose
 *     boundaries depend only on (begin, end, grain) — never on the
 *     thread count or on scheduling. Kernels that write disjoint output
 *     per index (every GEMM row, every embedding example) therefore
 *     produce bit-identical results at any RECSIM_THREADS, including 1.
 *  2. *No deadlocks.* The calling thread participates: while its job is
 *     unfinished it drains the shared queue, so a parallelFor issued
 *     from inside a pool task (nested submit) or from many application
 *     threads at once (Hogwild workers) always completes.
 *  3. *Cheap serial fallback.* With 1 thread (RECSIM_THREADS=1 or a
 *     single-core host) no workers are spawned and parallelFor() runs
 *     the chunks inline on the caller — no queue, no locks, no wakeups.
 *
 * Exceptions thrown by chunk functions are captured (first one wins)
 * and rethrown on the calling thread after the job completes.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

/**
 * Marks a function whose data races are intentional (Hogwild-style
 * lock-free updates) so ThreadSanitizer does not instrument it. Racy
 * code under this attribute must use raw loops, not std::copy/memcpy,
 * because sanitizer runtimes intercept libc memory functions even in
 * uninstrumented callers.
 */
#if defined(__has_feature)
#  if __has_feature(thread_sanitizer)
#    define RECSIM_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#  endif
#endif
#if !defined(RECSIM_NO_SANITIZE_THREAD) && defined(__SANITIZE_THREAD__)
#  define RECSIM_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#endif
#ifndef RECSIM_NO_SANITIZE_THREAD
#  define RECSIM_NO_SANITIZE_THREAD
#endif

namespace recsim {
namespace util {

/**
 * Non-owning reference to a callable of signature
 * void(std::size_t, std::size_t). Two raw pointers, no allocation —
 * unlike std::function, binding a capturing lambda is free, which
 * keeps parallelFor() itself off the per-step heap. Safe here because
 * parallelFor() blocks until every chunk has run, so the referenced
 * callable always outlives its uses.
 */
class ChunkFn
{
  public:
    template <typename F>
    ChunkFn(const F& f)  // NOLINT: implicit by design
        : obj_(&f), call_([](const void* o, std::size_t lo,
                             std::size_t hi) {
              (*static_cast<const F*>(o))(lo, hi);
          })
    {
    }

    void operator()(std::size_t lo, std::size_t hi) const
    {
        call_(obj_, lo, hi);
    }

  private:
    const void* obj_;
    void (*call_)(const void*, std::size_t, std::size_t);
};

/**
 * Fixed-size pool of worker threads executing chunked index ranges.
 * All member functions are thread-safe except resize(), which must be
 * called while no parallelFor() is in flight (tests and benches only).
 */
class ThreadPool
{
  public:
    /** Counters accumulated since construction (monotonic). */
    struct Stats
    {
        uint64_t jobs = 0;      ///< parallelFor() calls that dispatched.
        uint64_t tasks = 0;     ///< Chunk executions across all jobs.
        uint64_t idle_ns = 0;   ///< Total worker time spent blocked.
    };

    /**
     * @param threads Total concurrency including the calling thread;
     *                spawns threads-1 workers. Clamped to >= 1.
     */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total concurrency (workers + caller). */
    std::size_t numThreads() const { return threads_; }

    /**
     * Apply @p fn to [begin, end) in chunks of at most @p grain indices:
     * fn(chunk_begin, chunk_end) with chunk boundaries at multiples of
     * grain from begin. Chunks may run concurrently and in any order,
     * so fn must only write state owned by its index range. Blocks
     * until every chunk has run; rethrows the first chunk exception.
     */
    void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                     ChunkFn fn);

    /** Snapshot of the dispatch counters. */
    Stats stats() const;

    /**
     * Re-size the pool (join workers, respawn). Only safe while idle;
     * for tests and benchmarks that compare thread counts.
     */
    void resize(std::size_t threads);

  private:
    struct Job;

    void workerLoop();
    /** Pop-and-run one task; returns false if the queue was empty. */
    bool runOneTask(std::unique_lock<std::mutex>& lock);
    void startWorkers();
    void stopWorkers();

    std::size_t threads_ = 1;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    /** Pending (job, chunk) pairs; jobs own their completion state. */
    std::deque<std::pair<Job*, std::size_t>> queue_;
    bool shutdown_ = false;

    std::atomic<uint64_t> jobs_{0};
    std::atomic<uint64_t> tasks_{0};
    std::atomic<uint64_t> idle_ns_{0};
};

/**
 * The process-wide pool the kernels dispatch to. Sized on first use
 * from the RECSIM_THREADS environment variable (default:
 * hardware_concurrency). Tests and benches may resize() it while idle.
 */
ThreadPool& globalThreadPool();

/**
 * The thread count globalThreadPool() will be (or was) created with:
 * RECSIM_THREADS if set and >= 1, else hardware_concurrency.
 */
std::size_t configuredThreads();

} // namespace util
} // namespace recsim
