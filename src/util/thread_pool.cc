#include "util/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace recsim {
namespace util {

namespace {

/** Set while the current thread is executing a pool chunk. */
thread_local bool tl_in_pool_task = false;

/** Placeholder chunk body for a default-initialized Job. */
constexpr auto kNoopChunk = [](std::size_t, std::size_t) {};

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

/**
 * One parallelFor() invocation: the chunk geometry plus completion
 * state. Lives on the calling thread's stack; the caller cannot return
 * (and destroy it) before completed == nchunks, and the final notify
 * happens with the pool mutex held, so no task can touch a dead Job.
 */
struct ThreadPool::Job
{
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t range = 0;
    std::size_t nchunks = 0;
    ChunkFn fn{kNoopChunk};

    /** Chunks finished; guarded by the pool mutex. */
    std::size_t completed = 0;
    /** First exception thrown by a chunk; guarded by the pool mutex. */
    std::exception_ptr error;
    /** Signalled (with the pool mutex held) when the job completes. */
    std::condition_variable done_cv;

    /** [chunk_begin, chunk_end) of chunk @p c. */
    std::pair<std::size_t, std::size_t> bounds(std::size_t c) const
    {
        const std::size_t lo = begin + c * grain;
        const std::size_t hi = std::min(lo + grain, begin + range);
        return {lo, hi};
    }
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads)
{
    startWorkers();
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

void
ThreadPool::startWorkers()
{
    workers_.reserve(threads_ - 1);
    for (std::size_t t = 0; t + 1 < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        RECSIM_ASSERT(queue_.empty(),
                      "ThreadPool torn down with work in flight");
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_)
        w.join();
    workers_.clear();
    shutdown_ = false;
}

void
ThreadPool::resize(std::size_t threads)
{
    stopWorkers();
    threads_ = threads == 0 ? 1 : threads;
    startWorkers();
}

bool
ThreadPool::runOneTask(std::unique_lock<std::mutex>& lock)
{
    if (queue_.empty())
        return false;
    auto [job, chunk] = queue_.front();
    queue_.pop_front();
    lock.unlock();

    const auto [lo, hi] = job->bounds(chunk);
    std::exception_ptr error;
    const bool was_in_task = tl_in_pool_task;
    tl_in_pool_task = true;
    try {
        job->fn(lo, hi);
    } catch (...) {
        error = std::current_exception();
    }
    tl_in_pool_task = was_in_task;
    tasks_.fetch_add(1, std::memory_order_relaxed);

    lock.lock();
    if (error && !job->error)
        job->error = error;
    if (++job->completed == job->nchunks)
        job->done_cv.notify_all();
    return true;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (shutdown_)
            return;
        if (queue_.empty()) {
            const uint64_t wait_start = nowNs();
            work_cv_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            idle_ns_.fetch_add(nowNs() - wait_start,
                               std::memory_order_relaxed);
            continue;
        }
        runOneTask(lock);
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        std::size_t grain, ChunkFn fn)
{
    if (end <= begin)
        return;
    const std::size_t range = end - begin;
    const std::size_t g = std::max<std::size_t>(grain, 1);
    const std::size_t nchunks = (range + g - 1) / g;

    // Serial fallback: a 1-thread pool, a single chunk, or a nested
    // submit from inside a pool task all run inline on the calling
    // thread — same chunk boundaries, no queue traffic.
    if (threads_ == 1 || nchunks == 1 || tl_in_pool_task) {
        jobs_.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t c = 0; c < nchunks; ++c) {
            const std::size_t lo = begin + c * g;
            const std::size_t hi = std::min(lo + g, end);
            fn(lo, hi);
            tasks_.fetch_add(1, std::memory_order_relaxed);
        }
        return;
    }

    Job job;
    job.begin = begin;
    job.grain = g;
    job.range = range;
    job.nchunks = nchunks;
    job.fn = fn;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t c = 0; c < nchunks; ++c)
            queue_.emplace_back(&job, c);
    }
    jobs_.fetch_add(1, std::memory_order_relaxed);
    if (nchunks >= threads_)
        work_cv_.notify_all();
    else
        for (std::size_t c = 1; c < nchunks; ++c)
            work_cv_.notify_one();

    // The caller helps: drain the queue (any job) until our own job is
    // done, then sleep only when there is nothing left to steal.
    std::unique_lock<std::mutex> lock(mutex_);
    while (job.completed < job.nchunks) {
        if (runOneTask(lock))
            continue;
        job.done_cv.wait(lock, [&job, this] {
            return job.completed == job.nchunks || !queue_.empty();
        });
    }
    const std::exception_ptr error = job.error;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats s;
    s.jobs = jobs_.load(std::memory_order_relaxed);
    s.tasks = tasks_.load(std::memory_order_relaxed);
    s.idle_ns = idle_ns_.load(std::memory_order_relaxed);
    return s;
}

std::size_t
configuredThreads()
{
    if (const char* env = std::getenv("RECSIM_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<std::size_t>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool&
globalThreadPool()
{
    static ThreadPool pool(configuredThreads());
    return pool;
}

} // namespace util
} // namespace recsim
