#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace recsim {
namespace util {

namespace {

/** splitmix64 step, used for seeding and stream forking. */
uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    RECSIM_ASSERT(n > 0, "uniformInt with empty range");
    // Rejection to remove modulo bias.
    const uint64_t limit = max() - max() % n;
    uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return v % n;
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double lambda)
{
    RECSIM_ASSERT(lambda > 0.0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

uint64_t
Rng::poisson(double mean)
{
    RECSIM_ASSERT(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth: multiply uniforms until the product drops below e^-mean.
        const double l = std::exp(-mean);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation with continuity correction for large means.
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

Rng
Rng::fork(uint64_t salt)
{
    uint64_t x = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x1234567);
    return Rng(splitmix64(x));
}

// ZipfSampler: rejection-inversion after Hörmann & Derflinger (1996).

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n_(n), s_(exponent)
{
    RECSIM_ASSERT(n_ > 0, "Zipf support must be non-empty");
    RECSIM_ASSERT(s_ >= 0.0, "Zipf exponent must be non-negative");
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    t_ = 2.0 - hInv(h(2.5) - std::pow(2.0, -s_));
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-s; the s == 1 case degenerates to log.
    if (s_ == 1.0)
        return std::log(x);
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double
ZipfSampler::hInv(double x) const
{
    if (s_ == 1.0)
        return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t
ZipfSampler::operator()(Rng& rng) const
{
    if (s_ == 0.0)
        return rng.uniformInt(n_);
    while (true) {
        const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
        const double x = hInv(u);
        const double k = std::floor(x + 0.5);
        if (k - x <= t_) {
            const uint64_t idx = static_cast<uint64_t>(k);
            return idx >= 1 ? std::min(idx, n_) - 1 : 0;
        }
        if (u >= h(k + 0.5) - std::pow(k, -s_)) {
            const uint64_t idx = static_cast<uint64_t>(k);
            return idx >= 1 ? std::min(idx, n_) - 1 : 0;
        }
    }
}

PowerLawLengthSampler::PowerLawLengthSampler(double alpha, uint64_t max_len)
{
    RECSIM_ASSERT(max_len >= 1, "power-law max length must be >= 1");
    cdf_.resize(max_len);
    double total = 0.0;
    double weighted = 0.0;
    for (uint64_t k = 1; k <= max_len; ++k) {
        const double p = std::pow(static_cast<double>(k), -alpha);
        total += p;
        weighted += p * static_cast<double>(k);
        cdf_[k - 1] = total;
    }
    for (auto& c : cdf_)
        c /= total;
    mean_ = weighted / total;
}

uint64_t
PowerLawLengthSampler::operator()(Rng& rng) const
{
    const double u = rng.uniform();
    // Binary search the CDF; lengths are 1-based.
    uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const uint64_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo + 1;
}

double
zipfTopMass(uint64_t n, double exponent, uint64_t k)
{
    RECSIM_ASSERT(n > 0, "Zipf support must be non-empty");
    if (k >= n)
        return 1.0;
    if (k == 0)
        return 0.0;
    if (exponent == 0.0)
        return static_cast<double>(k) / static_cast<double>(n);
    // Generalized harmonic numbers H(m, s) via the Euler-Maclaurin
    // integral approximation for large m; exact summation when small.
    auto harmonic = [exponent](uint64_t m) {
        if (m <= 4096) {
            double h = 0.0;
            for (uint64_t i = 1; i <= m; ++i)
                h += std::pow(static_cast<double>(i), -exponent);
            return h;
        }
        double h = 0.0;
        for (uint64_t i = 1; i <= 4096; ++i)
            h += std::pow(static_cast<double>(i), -exponent);
        const double a = 4096.5;
        const double b = static_cast<double>(m) + 0.5;
        if (exponent == 1.0)
            return h + std::log(b / a);
        return h + (std::pow(b, 1.0 - exponent) -
                    std::pow(a, 1.0 - exponent)) / (1.0 - exponent);
    };
    return harmonic(k) / harmonic(n);
}

} // namespace util
} // namespace recsim
