/**
 * @file
 * Status-message and error-reporting helpers, gem5 style.
 *
 * Severity ladder:
 *  - inform(): normal operating message, no connotation of a problem.
 *  - warn():   something may be off; simulation continues.
 *  - fatal():  the *user's* configuration is invalid; exits with code 1.
 *  - panic():  an internal invariant was violated (a recsim bug); aborts.
 *
 * All functions take a printf-like "{}" placeholder format string, e.g.
 *   fatal("table {} does not fit: {} bytes > capacity {}", i, need, cap);
 */
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace recsim {
namespace util {

namespace detail {

/** Terminal recursion: append the remainder of the format string. */
inline void
formatInto(std::ostringstream& os, std::string_view fmt)
{
    os << fmt;
}

/**
 * Substitute the first "{}" in @p fmt with @p head, then recurse on the
 * remaining arguments. Extra arguments with no placeholder are appended
 * space-separated so information is never silently dropped.
 */
template <typename Head, typename... Tail>
void
formatInto(std::ostringstream& os, std::string_view fmt, const Head& head,
           const Tail&... tail)
{
    const auto pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        os << fmt << " " << head;
        (formatInto(os, "", tail), ...);
        return;
    }
    os << fmt.substr(0, pos) << head;
    formatInto(os, fmt.substr(pos + 2), tail...);
}

} // namespace detail

/** Render a "{}"-placeholder format string to a std::string. */
template <typename... Args>
std::string
format(std::string_view fmt, const Args&... args)
{
    std::ostringstream os;
    detail::formatInto(os, fmt, args...);
    return os.str();
}

/** Print an informational status message to stdout. */
template <typename... Args>
void
inform(std::string_view fmt, const Args&... args)
{
    std::cout << "info: " << format(fmt, args...) << "\n";
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(std::string_view fmt, const Args&... args)
{
    std::cerr << "warn: " << format(fmt, args...) << "\n";
}

/**
 * Report an unrecoverable *user* error (bad configuration, invalid
 * arguments) and exit(1). Not for internal bugs — see panic().
 */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, const Args&... args)
{
    std::cerr << "fatal: " << format(fmt, args...) << "\n";
    std::exit(1);
}

/**
 * Report a violated internal invariant (a recsim bug) and abort().
 * Use for conditions that should never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, const Args&... args)
{
    std::cerr << "panic: " << format(fmt, args...) << "\n";
    std::abort();
}

/** panic() with file/line context when @p cond is false. */
#define RECSIM_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::recsim::util::panic("assertion '" #cond "' failed at "        \
                                  __FILE__ ":{}: {}", __LINE__,             \
                                  ::recsim::util::format("" __VA_ARGS__));  \
        }                                                                   \
    } while (0)

} // namespace util
} // namespace recsim
