/**
 * @file
 * Unit constants and conversions used throughout the hardware and cost
 * models. All internal quantities are SI: bytes, bytes/second, FLOP/s,
 * seconds, watts.
 */
#pragma once

#include <cstdint>

namespace recsim {
namespace util {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kTiB = 1024.0 * kGiB;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

inline constexpr double kGFLOPS = 1e9;
inline constexpr double kTFLOPS = 1e12;

/** Convert a network rate in Gbit/s to bytes/second. */
constexpr double
gbps(double gigabits_per_second)
{
    return gigabits_per_second * 1e9 / 8.0;
}

/** Convert GB/s to bytes/second. */
constexpr double
gBps(double gigabytes_per_second)
{
    return gigabytes_per_second * 1e9;
}

inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kMilli = 1e-3;

} // namespace util
} // namespace recsim
