/**
 * @file
 * Small string helpers for table rendering in benches and reports.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recsim {
namespace util {

/** Render a byte count with a binary suffix, e.g. "1.5 GiB". */
std::string bytesToString(double bytes);

/** Render a rate, e.g. "900.0 GB/s". */
std::string rateToString(double bytes_per_second);

/** Render a count with SI suffix, e.g. 5700000 -> "5.7M". */
std::string countToString(double count);

/** Fixed-precision double rendering (std::to_string prints 6 digits). */
std::string fixed(double value, int precision);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string& s, std::size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string& s, std::size_t width);

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/**
 * Simple fixed-width ASCII table printer used by the bench harnesses to
 * emit the paper's rows. Column widths are computed from the content.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the whole table, including a rule under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace recsim
