#include "util/string_utils.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/units.h"

namespace recsim {
namespace util {

std::string
fixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
bytesToString(double bytes)
{
    if (bytes >= kTiB)
        return fixed(bytes / kTiB, 2) + " TiB";
    if (bytes >= kGiB)
        return fixed(bytes / kGiB, 2) + " GiB";
    if (bytes >= kMiB)
        return fixed(bytes / kMiB, 2) + " MiB";
    if (bytes >= kKiB)
        return fixed(bytes / kKiB, 2) + " KiB";
    return fixed(bytes, 0) + " B";
}

std::string
rateToString(double bytes_per_second)
{
    if (bytes_per_second >= kTB)
        return fixed(bytes_per_second / kTB, 2) + " TB/s";
    if (bytes_per_second >= kGB)
        return fixed(bytes_per_second / kGB, 2) + " GB/s";
    if (bytes_per_second >= kMB)
        return fixed(bytes_per_second / kMB, 2) + " MB/s";
    return fixed(bytes_per_second, 0) + " B/s";
}

std::string
countToString(double count)
{
    if (count >= 1e9)
        return fixed(count / 1e9, 1) + "B";
    if (count >= 1e6)
        return fixed(count / 1e6, 1) + "M";
    if (count >= 1e3)
        return fixed(count / 1e3, 1) + "K";
    return fixed(count, 0);
}

std::string
padLeft(const std::string& s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string& s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
join(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::size_t ncols = header_.size();
    for (const auto& r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<std::size_t> widths(ncols, 0);
    auto account = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const auto& r : rows_)
        account(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < cells.size() ? cells[i] : "";
            os << (i ? "  " : "") << padRight(cell, widths[i]);
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < ncols; ++i)
            total += widths[i] + (i ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
    return os.str();
}

} // namespace util
} // namespace recsim
