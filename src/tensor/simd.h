/**
 * @file
 * Runtime SIMD dispatch and the vectorized exp approximation shared by
 * the tensor kernels (ops.cc).
 *
 * Dispatch contract: the library is compiled for the baseline ISA; the
 * AVX2/FMA kernels are per-function `target("avx2,fma")` specializations
 * selected once at startup with `__builtin_cpu_supports`. Setting
 * RECSIM_NO_SIMD=1 in the environment (read once, before first use)
 * forces the scalar fallbacks — the sanitizer matrix exercises that
 * path. Every kernel pair (scalar, AVX2) computes bit-identical
 * results: the scalar fallbacks use std::fma where the vector code uses
 * vfmadd, and both share the per-element operation order documented on
 * each kernel, so switching paths — like switching thread counts —
 * never changes a single bit.
 *
 * Fast exp: a Cephes-style degree-5 polynomial after base-2 range
 * reduction, max relative error <= 1e-6 against libm over the clamped
 * domain (tested by a dense sweep in test_tensor.cc). Inputs are
 * clamped to [-87.336544, 88.376259] so the result saturates at the
 * smallest-normal / near-FLT_MAX ends instead of producing denormals
 * or infinities.
 */
#pragma once

#include <cstddef>

namespace recsim {
namespace tensor {
namespace simd {

/** True when AVX2+FMA kernels are compiled in and the CPU has them. */
bool available();

/**
 * True when the AVX2 kernels are actually dispatched to: available()
 * and RECSIM_NO_SIMD is unset/empty/"0". Cached after the first call.
 */
bool enabled();

/** "avx2-fma" or "scalar"; what enabled() resolves to. */
const char* activeKernels();

/**
 * Scalar reference fast exp — the exact per-lane arithmetic of the
 * AVX2 path (same fma sequence, same rounding trick), used by the
 * scalar fallbacks and by tail elements of vector loops.
 */
float fastExpScalar(float x);

/** Dispatching fast exp for a single value (== fastExpScalar). */
float fastExp(float x);

/**
 * In-place logistic sigmoid over a span: x[i] = 1 / (1 + exp(-x[i]))
 * with the fast exp. Branchless and overflow-safe via the exp clamp.
 * No threading — callers chunk via parallelFor; scalar and AVX2 paths
 * are bit-identical.
 */
void sigmoidSpan(float* x, std::size_t n);

/**
 * ReLU-backward mask over a span: dx[i] = y[i] > 0 ? dy[i] : 0, where
 * @p y is the forward *post-activation* output. The AVX2 path selects
 * dy's bits through an all-ones/all-zeros compare mask (a > 0 compare
 * ANDed with dy), which yields exactly dy or +0.0f per lane — the same
 * bits the scalar ternary produces — so the paths are bit-identical,
 * including for -0.0 and NaN inputs in y. dy and dx may alias (the
 * in-place case); y must not alias dx. No threading — callers chunk
 * via parallelFor.
 */
void reluMaskSpan(const float* y, const float* dy, float* dx,
                  std::size_t n);

} // namespace simd
} // namespace tensor
} // namespace recsim
