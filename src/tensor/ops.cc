#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/simd.h"
#include "util/logging.h"
#include "util/thread_pool.h"

/** Non-aliasing pointer hint for the GEMM inner loops. */
#if defined(__GNUC__) || defined(__clang__)
#  define RECSIM_RESTRICT __restrict__
#else
#  define RECSIM_RESTRICT
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#  define RECSIM_SIMD_X86 1
#  include <immintrin.h>
#endif

namespace recsim {
namespace tensor {

namespace {

void
requireRank2(const Tensor& t, const char* what)
{
    RECSIM_ASSERT(t.rank() == 2, "{} requires rank-2 tensor, got {}",
                  what, t.shapeString());
}

/**
 * Cache-blocking factors. kKc rows of B (a kKc x kNc panel, 256 KiB at
 * kNc = 512) stay resident across the i-loop of a row chunk; a kNc
 * output-row segment (2 KiB) stays in L1 across the p-loop. Fixed
 * constants, not tuned per shape: blocking only changes *which* terms
 * are in cache, never the order terms are added per output element
 * (the fma fold documented in ops.h), so results are bit-identical to
 * an unblocked loop following the same contract.
 */
constexpr std::size_t kKc = 128;
constexpr std::size_t kNc = 512;

/** Minimum per-chunk work so chunk dispatch never dominates. */
constexpr std::size_t kMinWorkPerChunk = std::size_t(1) << 15;
/** Elementwise kernels: elements per chunk. */
constexpr std::size_t kElemGrain = std::size_t(1) << 14;

/** Rows per chunk targeting kMinWorkPerChunk scalar ops per chunk. */
std::size_t
rowGrain(std::size_t work_per_row)
{
    return std::max<std::size_t>(
        1, kMinWorkPerChunk / std::max<std::size_t>(work_per_row, 1));
}

/** Register-tile shape of the AVX2 microkernel: 6 rows x 16 cols. */
constexpr std::size_t kMr = 6;

/**
 * Scalar GEMM block, the portable fallback. Computes, for rows
 * [i0, i1) and the (jj, pp) cache block, od[i, jj+j] (+)= sum over the
 * k-panel of fma(A(i, pp+p), b[pp+p, jj+j], acc) with A(i, p) =
 * ad[i * a_rs + p * a_cs] (a_cs = m for the transposed-A variant).
 *
 * Accumulation-order contract (shared with the AVX2 kernel): per
 * output element the accumulator starts from the value in od, adds
 * terms in increasing p, each as one fused multiply-add (std::fma here
 * == vfmadd there: both correctly rounded), and stores once per
 * k-panel. When @p bias is non-null and this is the last k-panel, the
 * epilogue adds bias[j] (one plain add) and, if @p relu, clamps at
 * zero — exactly the per-element ops of addBiasRows + reluInPlace.
 * When @p mask is non-null (a [*, n] tensor addressed like od), the
 * final k-panel store keeps acc where mask[i, j] > 0 and writes +0.0f
 * otherwise — the exact ternary reluBackward would apply to the stored
 * value, so masking here instead of in a second pass changes no bits.
 */
void
gemmBlockScalar(const float* RECSIM_RESTRICT ad, std::size_t a_rs,
                std::size_t a_cs, const float* RECSIM_RESTRICT bd,
                float* RECSIM_RESTRICT od, std::size_t n,
                std::size_t i0, std::size_t i1, std::size_t jj,
                std::size_t jn, std::size_t pp, std::size_t pk,
                std::size_t k, const float* RECSIM_RESTRICT bias,
                bool relu, const float* RECSIM_RESTRICT mask)
{
    const bool last = pp + pk == k;
    const bool epilogue = bias != nullptr && last;
    const bool masked = mask != nullptr && last;
    for (std::size_t i = i0; i < i1; ++i) {
        const float* RECSIM_RESTRICT ab = ad + i * a_rs + pp * a_cs;
        const float* RECSIM_RESTRICT bpan = bd + pp * n + jj;
        float* RECSIM_RESTRICT orow = od + i * n + jj;
        const float* RECSIM_RESTRICT mrow =
            masked ? mask + i * n + jj : nullptr;
        for (std::size_t jt = 0; jt < jn; jt += 8) {
            const std::size_t w = std::min<std::size_t>(8, jn - jt);
            float acc[8];
            for (std::size_t u = 0; u < w; ++u)
                acc[u] = orow[jt + u];
            for (std::size_t p = 0; p < pk; ++p) {
                const float av = ab[p * a_cs];
                const float* RECSIM_RESTRICT brow = bpan + p * n + jt;
                for (std::size_t u = 0; u < w; ++u)
                    acc[u] = std::fma(av, brow[u], acc[u]);
            }
            if (epilogue) {
                for (std::size_t u = 0; u < w; ++u) {
                    acc[u] += bias[jj + jt + u];
                    if (relu)
                        acc[u] = std::max(acc[u], 0.0f);
                }
            }
            if (masked) {
                for (std::size_t u = 0; u < w; ++u)
                    acc[u] = mrow[jt + u] > 0.0f ? acc[u] : 0.0f;
            }
            for (std::size_t u = 0; u < w; ++u)
                orow[jt + u] = acc[u];
        }
    }
}

#if defined(RECSIM_SIMD_X86)

/**
 * AVX2/FMA GEMM block: kMr x 16 register tiles (12 ymm accumulators,
 * two b loads shared across the 6 rows per k step) inside the same
 * kKc x kNc cache block, with 8-wide and scalar column tails and a
 * 1-row tail; every path follows the same per-element contract as
 * gemmBlockScalar, so the two are bitwise interchangeable. The dReLU
 * mask is applied as a > 0 compare ANDed into the accumulator (dy's
 * exact bits or +0.0f per lane — what the scalar ternary stores).
 */
__attribute__((target("avx2,fma"))) void
gemmBlockAvx2(const float* RECSIM_RESTRICT ad, std::size_t a_rs,
              std::size_t a_cs, const float* RECSIM_RESTRICT bd,
              float* RECSIM_RESTRICT od, std::size_t n, std::size_t i0,
              std::size_t i1, std::size_t jj, std::size_t jn,
              std::size_t pp, std::size_t pk, std::size_t k,
              const float* RECSIM_RESTRICT bias, bool relu,
              const float* RECSIM_RESTRICT mask)
{
    const bool last = pp + pk == k;
    const bool epilogue = bias != nullptr && last;
    const bool masked = mask != nullptr && last;
    const float* RECSIM_RESTRICT bpan = bd + pp * n + jj;
    const __m256 zero = _mm256_setzero_ps();

    std::size_t i = i0;
    for (; i + kMr <= i1; i += kMr) {
        const float* RECSIM_RESTRICT ab = ad + i * a_rs + pp * a_cs;
        float* RECSIM_RESTRICT obase = od + i * n + jj;
        const float* RECSIM_RESTRICT mbase =
            masked ? mask + i * n + jj : nullptr;
        std::size_t jt = 0;
        for (; jt + 16 <= jn; jt += 16) {
            __m256 acc[kMr][2];
            for (std::size_t r = 0; r < kMr; ++r) {
                acc[r][0] = _mm256_loadu_ps(obase + r * n + jt);
                acc[r][1] = _mm256_loadu_ps(obase + r * n + jt + 8);
            }
            for (std::size_t p = 0; p < pk; ++p) {
                const float* RECSIM_RESTRICT brow = bpan + p * n + jt;
                const __m256 b0 = _mm256_loadu_ps(brow);
                const __m256 b1 = _mm256_loadu_ps(brow + 8);
                for (std::size_t r = 0; r < kMr; ++r) {
                    const __m256 av =
                        _mm256_broadcast_ss(ab + r * a_rs + p * a_cs);
                    acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
                    acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
                }
            }
            if (epilogue) {
                const __m256 bv0 = _mm256_loadu_ps(bias + jj + jt);
                const __m256 bv1 = _mm256_loadu_ps(bias + jj + jt + 8);
                for (std::size_t r = 0; r < kMr; ++r) {
                    acc[r][0] = _mm256_add_ps(acc[r][0], bv0);
                    acc[r][1] = _mm256_add_ps(acc[r][1], bv1);
                    if (relu) {
                        acc[r][0] = _mm256_max_ps(acc[r][0], zero);
                        acc[r][1] = _mm256_max_ps(acc[r][1], zero);
                    }
                }
            }
            if (masked) {
                for (std::size_t r = 0; r < kMr; ++r) {
                    const float* RECSIM_RESTRICT mrow =
                        mbase + r * n + jt;
                    acc[r][0] = _mm256_and_ps(
                        _mm256_cmp_ps(_mm256_loadu_ps(mrow), zero,
                                      _CMP_GT_OQ),
                        acc[r][0]);
                    acc[r][1] = _mm256_and_ps(
                        _mm256_cmp_ps(_mm256_loadu_ps(mrow + 8), zero,
                                      _CMP_GT_OQ),
                        acc[r][1]);
                }
            }
            for (std::size_t r = 0; r < kMr; ++r) {
                _mm256_storeu_ps(obase + r * n + jt, acc[r][0]);
                _mm256_storeu_ps(obase + r * n + jt + 8, acc[r][1]);
            }
        }
        for (; jt + 8 <= jn; jt += 8) {
            __m256 acc[kMr];
            for (std::size_t r = 0; r < kMr; ++r)
                acc[r] = _mm256_loadu_ps(obase + r * n + jt);
            for (std::size_t p = 0; p < pk; ++p) {
                const __m256 b0 = _mm256_loadu_ps(bpan + p * n + jt);
                for (std::size_t r = 0; r < kMr; ++r) {
                    const __m256 av =
                        _mm256_broadcast_ss(ab + r * a_rs + p * a_cs);
                    acc[r] = _mm256_fmadd_ps(av, b0, acc[r]);
                }
            }
            if (epilogue) {
                const __m256 bv = _mm256_loadu_ps(bias + jj + jt);
                for (std::size_t r = 0; r < kMr; ++r) {
                    acc[r] = _mm256_add_ps(acc[r], bv);
                    if (relu)
                        acc[r] = _mm256_max_ps(acc[r], zero);
                }
            }
            if (masked) {
                for (std::size_t r = 0; r < kMr; ++r)
                    acc[r] = _mm256_and_ps(
                        _mm256_cmp_ps(
                            _mm256_loadu_ps(mbase + r * n + jt), zero,
                            _CMP_GT_OQ),
                        acc[r]);
            }
            for (std::size_t r = 0; r < kMr; ++r)
                _mm256_storeu_ps(obase + r * n + jt, acc[r]);
        }
        if (jt < jn)
            gemmBlockScalar(ad, a_rs, a_cs, bd, od, n, i, i + kMr,
                            jj + jt, jn - jt, pp, pk, k, bias, relu,
                            mask);
    }
    for (; i < i1; ++i) {
        const float* RECSIM_RESTRICT ab = ad + i * a_rs + pp * a_cs;
        float* RECSIM_RESTRICT orow = od + i * n + jj;
        const float* RECSIM_RESTRICT mrow =
            masked ? mask + i * n + jj : nullptr;
        std::size_t jt = 0;
        for (; jt + 16 <= jn; jt += 16) {
            __m256 a0 = _mm256_loadu_ps(orow + jt);
            __m256 a1 = _mm256_loadu_ps(orow + jt + 8);
            for (std::size_t p = 0; p < pk; ++p) {
                const float* RECSIM_RESTRICT brow = bpan + p * n + jt;
                const __m256 av =
                    _mm256_broadcast_ss(ab + p * a_cs);
                a0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), a0);
                a1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8),
                                     a1);
            }
            if (epilogue) {
                a0 = _mm256_add_ps(a0, _mm256_loadu_ps(bias + jj + jt));
                a1 = _mm256_add_ps(a1,
                                   _mm256_loadu_ps(bias + jj + jt + 8));
                if (relu) {
                    a0 = _mm256_max_ps(a0, zero);
                    a1 = _mm256_max_ps(a1, zero);
                }
            }
            if (masked) {
                a0 = _mm256_and_ps(
                    _mm256_cmp_ps(_mm256_loadu_ps(mrow + jt), zero,
                                  _CMP_GT_OQ),
                    a0);
                a1 = _mm256_and_ps(
                    _mm256_cmp_ps(_mm256_loadu_ps(mrow + jt + 8), zero,
                                  _CMP_GT_OQ),
                    a1);
            }
            _mm256_storeu_ps(orow + jt, a0);
            _mm256_storeu_ps(orow + jt + 8, a1);
        }
        if (jt < jn)
            gemmBlockScalar(ad, a_rs, a_cs, bd, od, n, i, i + 1,
                            jj + jt, jn - jt, pp, pk, k, bias, relu,
                            mask);
    }
}

#endif // RECSIM_SIMD_X86

#if defined(RECSIM_SIMD_X86)

/**
 * Column-tiled row reduction: 32-column register tiles accumulated
 * across all rows before one store, instead of a read-modify-write of
 * od per (row, column). Each column still adds its rows in increasing
 * i with plain float adds — the exact per-element ops of the scalar
 * loop — so the paths are bitwise interchangeable. Shared by sumRows
 * (full matrix, column-parallel) and the fused bias-grad reduction in
 * gemmBlocked (one k-panel at a time, rows still increasing overall).
 */
__attribute__((target("avx2"))) void
sumRowsAvx2(const float* RECSIM_RESTRICT xd, float* RECSIM_RESTRICT od,
            std::size_t rows, std::size_t cols, std::size_t j0,
            std::size_t j1)
{
    std::size_t j = j0;
    for (; j + 32 <= j1; j += 32) {
        __m256 acc0 = _mm256_loadu_ps(od + j);
        __m256 acc1 = _mm256_loadu_ps(od + j + 8);
        __m256 acc2 = _mm256_loadu_ps(od + j + 16);
        __m256 acc3 = _mm256_loadu_ps(od + j + 24);
        for (std::size_t i = 0; i < rows; ++i) {
            const float* RECSIM_RESTRICT row = xd + i * cols + j;
            acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(row));
            acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(row + 8));
            acc2 = _mm256_add_ps(acc2, _mm256_loadu_ps(row + 16));
            acc3 = _mm256_add_ps(acc3, _mm256_loadu_ps(row + 24));
        }
        _mm256_storeu_ps(od + j, acc0);
        _mm256_storeu_ps(od + j + 8, acc1);
        _mm256_storeu_ps(od + j + 16, acc2);
        _mm256_storeu_ps(od + j + 24, acc3);
    }
    for (; j + 8 <= j1; j += 8) {
        __m256 acc = _mm256_loadu_ps(od + j);
        for (std::size_t i = 0; i < rows; ++i)
            acc = _mm256_add_ps(acc,
                                _mm256_loadu_ps(xd + i * cols + j));
        _mm256_storeu_ps(od + j, acc);
    }
    for (; j < j1; ++j) {
        float acc = od[j];
        for (std::size_t i = 0; i < rows; ++i)
            acc += xd[i * cols + j];
        od[j] = acc;
    }
}

#endif // RECSIM_SIMD_X86

/**
 * Scalar twin of sumRowsAvx2: od[j] += sum over rows of xd[i, j],
 * rows added in increasing i per column.
 */
void
sumRowsScalar(const float* RECSIM_RESTRICT xd,
              float* RECSIM_RESTRICT od, std::size_t rows,
              std::size_t cols, std::size_t j0, std::size_t j1)
{
    for (std::size_t i = 0; i < rows; ++i) {
        const float* RECSIM_RESTRICT row = xd + i * cols;
        for (std::size_t j = j0; j < j1; ++j)
            od[j] += row[j];
    }
}

/** Dispatching panel column-sum: od[j0..j1) += column sums of xd. */
void
colSumPanel(const float* RECSIM_RESTRICT xd, float* RECSIM_RESTRICT od,
            std::size_t rows, std::size_t cols, std::size_t j0,
            std::size_t j1)
{
#if defined(RECSIM_SIMD_X86)
    if (simd::enabled()) {
        sumRowsAvx2(xd, od, rows, cols, j0, j1);
        return;
    }
#endif
    sumRowsScalar(xd, od, rows, cols, j0, j1);
}

/**
 * The shared GEMM core: od[m, n] (+)= A[m, k] * bd[k, n], blocked
 * kKc x kNc, row-parallel, with A(i, p) = ad[i * a_rs + p * a_cs] so
 * the same core serves matmul (a_rs = k, a_cs = 1) and matmulTransA
 * (a_rs = 1, a_cs = m). od must be zeroed (or hold the value being
 * accumulated into). When @p bias is non-null the bias(+relu) epilogue
 * runs inside the final k-panel store; when @p mask is non-null the
 * dReLU mask is applied there too. Per output element the k terms are
 * added in increasing p, one fma each (see ops.h contract), so
 * blocking, register tiling, vector width and threading change nothing
 * bitwise.
 *
 * When @p col_sum is non-null it receives, on top of its current
 * value, the column sums of bd (the fused bias gradient: bd is dy in
 * the grad GEMM). The chunk that owns row 0 performs the whole
 * reduction while its k-panels stream through bd anyway: for each jj
 * column block, panels arrive in increasing pp, and within a panel
 * rows are added in increasing order — per column exactly sumRows'
 * serial add sequence, hence bitwise identical to a separate
 * sumRows(dy, db), at any thread count.
 */
void
gemmBlocked(const float* RECSIM_RESTRICT ad, std::size_t a_rs,
            std::size_t a_cs, const float* RECSIM_RESTRICT bd,
            float* RECSIM_RESTRICT od, std::size_t m, std::size_t k,
            std::size_t n, const float* RECSIM_RESTRICT bias = nullptr,
            bool relu = false,
            const float* RECSIM_RESTRICT mask = nullptr,
            float* RECSIM_RESTRICT col_sum = nullptr)
{
    // At least kMr rows per chunk so the register tile stays full;
    // grain only changes which rows share a chunk, never the result.
    const std::size_t grain =
        std::max<std::size_t>(rowGrain(2 * k * n), kMr);
    util::globalThreadPool().parallelFor(
        0, m, grain, [=](std::size_t i0, std::size_t i1) {
            for (std::size_t jj = 0; jj < n; jj += kNc) {
                const std::size_t jn = std::min(kNc, n - jj);
                for (std::size_t pp = 0; pp < k; pp += kKc) {
                    const std::size_t pk = std::min(kKc, k - pp);
                    if (col_sum != nullptr && i0 == 0)
                        colSumPanel(bd + pp * n, col_sum, pk, n, jj,
                                    jj + jn);
#if defined(RECSIM_SIMD_X86)
                    if (simd::enabled()) {
                        gemmBlockAvx2(ad, a_rs, a_cs, bd, od, n, i0,
                                      i1, jj, jn, pp, pk, k, bias,
                                      relu, mask);
                        continue;
                    }
#endif
                    gemmBlockScalar(ad, a_rs, a_cs, bd, od, n, i0, i1,
                                    jj, jn, pp, pk, k, bias, relu,
                                    mask);
                }
            }
        });
}

/**
 * Per-thread transpose scratch for matmulTransB. Thread-local so
 * concurrent trainer threads never share it, persistent so the
 * steady-state training loop reuses the buffer instead of allocating.
 */
thread_local Tensor tl_transpose_scratch;

} // namespace

void
matmul(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmul");
    requireRank2(b, "matmul");
    RECSIM_ASSERT(a.cols() == b.rows(), "matmul {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    out.resize(m, n);
    gemmBlocked(a.data(), k, 1, b.data(), out.data(), m, k, n);
}

void
matmulBiasAct(const Tensor& a, const Tensor& b, const Tensor& bias,
              bool relu, Tensor& out)
{
    requireRank2(a, "matmulBiasAct");
    requireRank2(b, "matmulBiasAct");
    RECSIM_ASSERT(a.cols() == b.rows(), "matmulBiasAct {} x {}",
                  a.shapeString(), b.shapeString());
    RECSIM_ASSERT(bias.size() == b.cols(), "bias {} for {}",
                  bias.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    out.resize(m, n);
    gemmBlocked(a.data(), k, 1, b.data(), out.data(), m, k, n,
                bias.data(), relu);
}

void
matmulTransA(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmulTransA");
    requireRank2(b, "matmulTransA");
    RECSIM_ASSERT(a.rows() == b.rows(), "matmulTransA {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    out.resize(m, n);
    // a is [k, m]; column i is walked with stride m — k strided
    // broadcasts per register tile row, negligible next to the
    // k * n FMAs.
    gemmBlocked(a.data(), 1, m, b.data(), out.data(), m, k, n);
}

namespace {

/**
 * Transpose rows [c0, c0 + w) of row-major @p b (each of length k)
 * into the per-thread scratch as a [k, w] row-major panel, ready to be
 * the right operand of the row-major GEMM core. The dot-product form
 * of out = a (*) b^T keeps a serial dependence chain per element that
 * cannot auto-vectorize without reassociation; transposing once and
 * running the vectorized core adds its k terms in the same increasing
 * p order, so the result is bitwise identical to the dot-product loop.
 */
const float*
transposePanel(const Tensor& b, std::size_t c0, std::size_t w)
{
    const std::size_t k = b.cols();
    Tensor& bt = tl_transpose_scratch;
    bt.resize(k, w);
    const float* RECSIM_RESTRICT bd = b.data() + c0 * k;
    float* RECSIM_RESTRICT btd = bt.data();
    util::globalThreadPool().parallelFor(
        0, k, rowGrain(w),
        [=](std::size_t p0, std::size_t p1) {
            for (std::size_t p = p0; p < p1; ++p)
                for (std::size_t j = 0; j < w; ++j)
                    btd[p * w + j] = bd[j * k + p];
        });
    return btd;
}

} // namespace

void
matmulTransB(const Tensor& a, const Tensor& b, Tensor& out)
{
    matmulTransBMask(a, b, nullptr, out);
}

void
matmulTransBMask(const Tensor& a, const Tensor& b, const Tensor* mask,
                 Tensor& out)
{
    requireRank2(a, "matmulTransBMask");
    requireRank2(b, "matmulTransBMask");
    RECSIM_ASSERT(a.cols() == b.cols(), "matmulTransBMask {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    if (mask != nullptr)
        RECSIM_ASSERT(mask->rows() == m && mask->cols() == n,
                      "matmulTransBMask mask {} for [{} x {}] output",
                      mask->shapeString(), m, n);
    out.resize(m, n);
    const float* btd = transposePanel(b, 0, n);
    gemmBlocked(a.data(), k, 1, btd, out.data(), m, k, n,
                /*bias=*/nullptr, /*relu=*/false,
                mask != nullptr ? mask->data() : nullptr);
}

void
matmulTransABiasGrad(const Tensor& x, const Tensor& dy, Tensor& dw,
                     Tensor& db)
{
    requireRank2(x, "matmulTransABiasGrad");
    requireRank2(dy, "matmulTransABiasGrad");
    RECSIM_ASSERT(x.rows() == dy.rows(), "matmulTransABiasGrad {} x {}",
                  x.shapeString(), dy.shapeString());
    const std::size_t k = x.rows(), m = x.cols(), n = dy.cols();
    dw.resize(m, n);
    if (db.size() != n || db.rank() != 1)
        db.resize(n);
    else
        db.zero();
    gemmBlocked(x.data(), 1, m, dy.data(), dw.data(), m, k, n,
                /*bias=*/nullptr, /*relu=*/false, /*mask=*/nullptr,
                db.data());
}

void
matmulTransBSegmented(const Tensor& a, const Tensor& b,
                      std::vector<GemmOutSegment>& segments)
{
    requireRank2(a, "matmulTransBSegmented");
    requireRank2(b, "matmulTransBSegmented");
    RECSIM_ASSERT(a.cols() == b.cols(), "matmulTransBSegmented {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols();
    std::size_t total = 0;
    for (const GemmOutSegment& seg : segments)
        total += seg.width;
    RECSIM_ASSERT(total == b.rows(),
                  "matmulTransBSegmented widths sum to {}, b has {} "
                  "rows", total, b.rows());
    // The zero bias reproduces a consumer that zero-initializes its
    // buffer and then += the GEMM result: acc + 0.0f == 0.0f + acc
    // bitwise (both give +0.0f when acc is -0.0f).
    thread_local Tensor tl_zero_bias;
    std::size_t c0 = 0;
    for (GemmOutSegment& seg : segments) {
        const std::size_t w = seg.width;
        seg.out->resize(m, w);
        const float* btd = transposePanel(b, c0, w);
        const float* zb = nullptr;
        if (seg.zero_bias) {
            tl_zero_bias.resize(w);
            zb = tl_zero_bias.data();
        }
        gemmBlocked(a.data(), k, 1, btd, seg.out->data(), m, k, w, zb);
        c0 += w;
    }
}

void
addBiasRows(Tensor& x, const Tensor& bias)
{
    requireRank2(x, "addBiasRows");
    RECSIM_ASSERT(bias.size() == x.cols(), "bias {} for {}",
                  bias.shapeString(), x.shapeString());
    const std::size_t cols = x.cols();
    float* RECSIM_RESTRICT xd = x.data();
    const float* RECSIM_RESTRICT bd = bias.data();
    util::globalThreadPool().parallelFor(
        0, x.rows(), rowGrain(cols),
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                float* RECSIM_RESTRICT row = xd + i * cols;
                for (std::size_t j = 0; j < cols; ++j)
                    row[j] += bd[j];
            }
        });
}

void
sumRows(const Tensor& x, Tensor& out)
{
    requireRank2(x, "sumRows");
    if (out.size() != x.cols() || out.rank() != 1)
        out.resize(x.cols());
    else
        out.zero();
    const std::size_t rows = x.rows(), cols = x.cols();
    const float* RECSIM_RESTRICT xd = x.data();
    float* RECSIM_RESTRICT od = out.data();
    // Parallel over *columns*: each output element is owned by one
    // chunk and accumulates in row order, identical to the serial loop.
    util::globalThreadPool().parallelFor(
        0, cols, rowGrain(rows),
        [=](std::size_t j0, std::size_t j1) {
            colSumPanel(xd, od, rows, cols, j0, j1);
        });
}

void
axpy(float alpha, const Tensor& x, Tensor& y)
{
    RECSIM_ASSERT(x.size() == y.size(), "axpy {} into {}",
                  x.shapeString(), y.shapeString());
    const float* RECSIM_RESTRICT xd = x.data();
    float* RECSIM_RESTRICT yd = y.data();
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
                yd[i] += alpha * xd[i];
        });
}

void
scale(Tensor& x, float alpha)
{
    float* RECSIM_RESTRICT xd = x.data();
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
                xd[i] *= alpha;
        });
}

void
reluInPlace(Tensor& x)
{
    float* RECSIM_RESTRICT xd = x.data();
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
                xd[i] = std::max(xd[i], 0.0f);
        });
}

void
reluBackward(const Tensor& y, const Tensor& dy, Tensor& dx)
{
    RECSIM_ASSERT(y.size() == dy.size(), "reluBackward shape mismatch");
    if (!dx.sameShape(dy)) {
        if (dy.rank() == 2)
            dx.resize(dy.rows(), dy.cols());
        else
            dx.resize(dy.size());
    }
    const float* RECSIM_RESTRICT yd = y.data();
    const float* RECSIM_RESTRICT dyd = dy.data();
    float* RECSIM_RESTRICT dxd = dx.data();
    util::globalThreadPool().parallelFor(
        0, y.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            simd::reluMaskSpan(yd + i0, dyd + i0, dxd + i0, i1 - i0);
        });
}

void
sigmoidInPlace(Tensor& x)
{
    float* RECSIM_RESTRICT xd = x.data();
    // Full elementwise grain (the libm-exp version used a quarter of
    // it because each element cost a libm call; the fast exp is ~20x
    // cheaper). Grain only changes chunk boundaries, and the kernel is
    // elementwise, so results are unchanged by the grain choice.
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            simd::sigmoidSpan(xd + i0, i1 - i0);
        });
}

double
sumAll(const Tensor& x)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x.data()[i];
    return acc;
}

double
dot(const Tensor& a, const Tensor& b)
{
    RECSIM_ASSERT(a.size() == b.size(), "dot {} . {}", a.shapeString(),
                  b.shapeString());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a.data()[i]) * b.data()[i];
    return acc;
}

double
l2Norm(const Tensor& x)
{
    return std::sqrt(dot(x, x));
}

double
maxAbsDiff(const Tensor& a, const Tensor& b)
{
    RECSIM_ASSERT(a.size() == b.size(), "maxAbsDiff {} vs {}",
                  a.shapeString(), b.shapeString());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(
            static_cast<double>(a.data()[i]) - b.data()[i]));
    return worst;
}

void
clipL2Norm(Tensor& x, double max_norm)
{
    RECSIM_ASSERT(max_norm > 0.0, "clip norm must be positive");
    const double norm = l2Norm(x);
    if (norm > max_norm)
        scale(x, static_cast<float>(max_norm / norm));
}

} // namespace tensor
} // namespace recsim
