#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace recsim {
namespace tensor {

namespace {

void
requireRank2(const Tensor& t, const char* what)
{
    RECSIM_ASSERT(t.rank() == 2, "{} requires rank-2 tensor, got {}",
                  what, t.shapeString());
}

} // namespace

void
matmul(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmul");
    requireRank2(b, "matmul");
    RECSIM_ASSERT(a.cols() == b.rows(), "matmul {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    if (out.rank() != 2 || out.rows() != m || out.cols() != n)
        out = Tensor(m, n);
    else
        out.zero();
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float* brow = b.row(p);
            for (std::size_t j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
matmulTransA(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmulTransA");
    requireRank2(b, "matmulTransA");
    RECSIM_ASSERT(a.rows() == b.rows(), "matmulTransA {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    if (out.rank() != 2 || out.rows() != m || out.cols() != n)
        out = Tensor(m, n);
    else
        out.zero();
    for (std::size_t p = 0; p < k; ++p) {
        const float* arow = a.row(p);
        const float* brow = b.row(p);
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float* orow = out.row(i);
            for (std::size_t j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
matmulTransB(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmulTransB");
    requireRank2(b, "matmulTransB");
    RECSIM_ASSERT(a.cols() == b.cols(), "matmulTransB {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    if (out.rank() != 2 || out.rows() != m || out.cols() != n)
        out = Tensor(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b.row(j);
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            orow[j] = acc;
        }
    }
}

void
addBiasRows(Tensor& x, const Tensor& bias)
{
    requireRank2(x, "addBiasRows");
    RECSIM_ASSERT(bias.size() == x.cols(), "bias {} for {}",
                  bias.shapeString(), x.shapeString());
    for (std::size_t i = 0; i < x.rows(); ++i) {
        float* row = x.row(i);
        for (std::size_t j = 0; j < x.cols(); ++j)
            row[j] += bias[j];
    }
}

void
sumRows(const Tensor& x, Tensor& out)
{
    requireRank2(x, "sumRows");
    if (out.size() != x.cols() || out.rank() != 1)
        out = Tensor(x.cols());
    else
        out.zero();
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const float* row = x.row(i);
        for (std::size_t j = 0; j < x.cols(); ++j)
            out[j] += row[j];
    }
}

void
axpy(float alpha, const Tensor& x, Tensor& y)
{
    RECSIM_ASSERT(x.size() == y.size(), "axpy {} into {}",
                  x.shapeString(), y.shapeString());
    const float* xd = x.data();
    float* yd = y.data();
    for (std::size_t i = 0; i < x.size(); ++i)
        yd[i] += alpha * xd[i];
}

void
scale(Tensor& x, float alpha)
{
    float* xd = x.data();
    for (std::size_t i = 0; i < x.size(); ++i)
        xd[i] *= alpha;
}

void
reluInPlace(Tensor& x)
{
    float* xd = x.data();
    for (std::size_t i = 0; i < x.size(); ++i)
        xd[i] = std::max(xd[i], 0.0f);
}

void
reluBackward(const Tensor& y, const Tensor& dy, Tensor& dx)
{
    RECSIM_ASSERT(y.size() == dy.size(), "reluBackward shape mismatch");
    if (!dx.sameShape(dy))
        dx = dy;
    const float* yd = y.data();
    const float* dyd = dy.data();
    float* dxd = dx.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        dxd[i] = yd[i] > 0.0f ? dyd[i] : 0.0f;
}

void
sigmoidInPlace(Tensor& x)
{
    float* xd = x.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float v = xd[i];
        // Split on sign to avoid overflow in exp().
        xd[i] = v >= 0.0f
            ? 1.0f / (1.0f + std::exp(-v))
            : std::exp(v) / (1.0f + std::exp(v));
    }
}

double
sumAll(const Tensor& x)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x.data()[i];
    return acc;
}

double
dot(const Tensor& a, const Tensor& b)
{
    RECSIM_ASSERT(a.size() == b.size(), "dot {} . {}", a.shapeString(),
                  b.shapeString());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a.data()[i]) * b.data()[i];
    return acc;
}

double
l2Norm(const Tensor& x)
{
    return std::sqrt(dot(x, x));
}

double
maxAbsDiff(const Tensor& a, const Tensor& b)
{
    RECSIM_ASSERT(a.size() == b.size(), "maxAbsDiff {} vs {}",
                  a.shapeString(), b.shapeString());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(
            static_cast<double>(a.data()[i]) - b.data()[i]));
    return worst;
}

void
clipL2Norm(Tensor& x, double max_norm)
{
    RECSIM_ASSERT(max_norm > 0.0, "clip norm must be positive");
    const double norm = l2Norm(x);
    if (norm > max_norm)
        scale(x, static_cast<float>(max_norm / norm));
}

} // namespace tensor
} // namespace recsim
