#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"

/** Non-aliasing pointer hint for the GEMM inner loops. */
#if defined(__GNUC__) || defined(__clang__)
#  define RECSIM_RESTRICT __restrict__
#else
#  define RECSIM_RESTRICT
#endif

namespace recsim {
namespace tensor {

namespace {

void
requireRank2(const Tensor& t, const char* what)
{
    RECSIM_ASSERT(t.rank() == 2, "{} requires rank-2 tensor, got {}",
                  what, t.shapeString());
}

/**
 * Cache-blocking factors. kKc rows of B (a kKc x kNc panel, 256 KiB at
 * kNc = 512) stay resident across the i-loop of a row chunk; a kNc
 * output-row segment (2 KiB) stays in L1 across the p-loop. Fixed
 * constants, not tuned per shape: blocking only changes *which* terms
 * are in cache, never the order terms are added per output element, so
 * results are bit-identical to the unblocked triple loop.
 */
constexpr std::size_t kKc = 128;
constexpr std::size_t kNc = 512;

/** Minimum per-chunk work so chunk dispatch never dominates. */
constexpr std::size_t kMinWorkPerChunk = std::size_t(1) << 15;
/** Elementwise kernels: elements per chunk. */
constexpr std::size_t kElemGrain = std::size_t(1) << 14;

/** Rows per chunk targeting kMinWorkPerChunk scalar ops per chunk. */
std::size_t
rowGrain(std::size_t work_per_row)
{
    return std::max<std::size_t>(
        1, kMinWorkPerChunk / std::max<std::size_t>(work_per_row, 1));
}

/**
 * The shared row-major GEMM core: od[m, n] += ad[m, k] * bd[k, n],
 * blocked kKc x kNc, row-parallel. od must be zeroed (or hold the
 * value being accumulated into). Per output element the k terms are
 * added in increasing p exactly as in the naive ikj loop, so blocking
 * and threading change nothing bitwise.
 */
void
gemmRowMajor(const float* RECSIM_RESTRICT ad,
             const float* RECSIM_RESTRICT bd, float* RECSIM_RESTRICT od,
             std::size_t m, std::size_t k, std::size_t n)
{
    util::globalThreadPool().parallelFor(
        0, m, rowGrain(2 * k * n),
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t jj = 0; jj < n; jj += kNc) {
                const std::size_t jn = std::min(kNc, n - jj);
                for (std::size_t pp = 0; pp < k; pp += kKc) {
                    const std::size_t pk = std::min(kKc, k - pp);
                    for (std::size_t i = i0; i < i1; ++i) {
                        const float* RECSIM_RESTRICT arow =
                            ad + i * k + pp;
                        float* RECSIM_RESTRICT orow = od + i * n + jj;
                        for (std::size_t p = 0; p < pk; ++p) {
                            const float av = arow[p];
                            const float* RECSIM_RESTRICT brow =
                                bd + (pp + p) * n + jj;
                            for (std::size_t j = 0; j < jn; ++j)
                                orow[j] += av * brow[j];
                        }
                    }
                }
            }
        });
}

/**
 * Per-thread transpose scratch for matmulTransB. Thread-local so
 * concurrent trainer threads never share it, persistent so the
 * steady-state training loop reuses the buffer instead of allocating.
 */
thread_local Tensor tl_transpose_scratch;

} // namespace

void
matmul(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmul");
    requireRank2(b, "matmul");
    RECSIM_ASSERT(a.cols() == b.rows(), "matmul {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    out.resize(m, n);
    gemmRowMajor(a.data(), b.data(), out.data(), m, k, n);
}

void
matmulTransA(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmulTransA");
    requireRank2(b, "matmulTransA");
    RECSIM_ASSERT(a.rows() == b.rows(), "matmulTransA {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    out.resize(m, n);
    const float* RECSIM_RESTRICT ad = a.data();
    const float* RECSIM_RESTRICT bd = b.data();
    float* RECSIM_RESTRICT od = out.data();
    util::globalThreadPool().parallelFor(
        0, m, rowGrain(2 * k * n),
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t jj = 0; jj < n; jj += kNc) {
                const std::size_t jn = std::min(kNc, n - jj);
                for (std::size_t pp = 0; pp < k; pp += kKc) {
                    const std::size_t pk = std::min(kKc, k - pp);
                    for (std::size_t i = i0; i < i1; ++i) {
                        float* RECSIM_RESTRICT orow = od + i * n + jj;
                        for (std::size_t p = 0; p < pk; ++p) {
                            // a is [k, m]; column i walked with
                            // stride m — k strided loads per output
                            // row, negligible next to the k * n FMAs.
                            const float av = ad[(pp + p) * m + i];
                            const float* RECSIM_RESTRICT brow =
                                bd + (pp + p) * n + jj;
                            for (std::size_t j = 0; j < jn; ++j)
                                orow[j] += av * brow[j];
                        }
                    }
                }
            }
        });
}

void
matmulTransB(const Tensor& a, const Tensor& b, Tensor& out)
{
    requireRank2(a, "matmulTransB");
    requireRank2(b, "matmulTransB");
    RECSIM_ASSERT(a.cols() == b.cols(), "matmulTransB {} x {}",
                  a.shapeString(), b.shapeString());
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    out.resize(m, n);
    // Dot-product form (out[i][j] = arow . brow) keeps a serial
    // dependence chain per element that cannot auto-vectorize without
    // reassociation. Instead transpose b once into a per-thread
    // persistent scratch and run the vectorized row-major core. Each
    // output element still accumulates its k terms in increasing p, so
    // the result is bitwise identical to the dot-product loop.
    Tensor& bt = tl_transpose_scratch;
    bt.resize(k, n);
    const float* RECSIM_RESTRICT bd = b.data();
    float* RECSIM_RESTRICT btd = bt.data();
    util::globalThreadPool().parallelFor(
        0, k, rowGrain(n),
        [=](std::size_t p0, std::size_t p1) {
            for (std::size_t p = p0; p < p1; ++p)
                for (std::size_t j = 0; j < n; ++j)
                    btd[p * n + j] = bd[j * k + p];
        });
    gemmRowMajor(a.data(), btd, out.data(), m, k, n);
}

void
addBiasRows(Tensor& x, const Tensor& bias)
{
    requireRank2(x, "addBiasRows");
    RECSIM_ASSERT(bias.size() == x.cols(), "bias {} for {}",
                  bias.shapeString(), x.shapeString());
    const std::size_t cols = x.cols();
    float* RECSIM_RESTRICT xd = x.data();
    const float* RECSIM_RESTRICT bd = bias.data();
    util::globalThreadPool().parallelFor(
        0, x.rows(), rowGrain(cols),
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                float* RECSIM_RESTRICT row = xd + i * cols;
                for (std::size_t j = 0; j < cols; ++j)
                    row[j] += bd[j];
            }
        });
}

void
sumRows(const Tensor& x, Tensor& out)
{
    requireRank2(x, "sumRows");
    if (out.size() != x.cols() || out.rank() != 1)
        out.resize(x.cols());
    else
        out.zero();
    const std::size_t rows = x.rows(), cols = x.cols();
    const float* RECSIM_RESTRICT xd = x.data();
    float* RECSIM_RESTRICT od = out.data();
    // Parallel over *columns*: each output element is owned by one
    // chunk and accumulates in row order, identical to the serial loop.
    util::globalThreadPool().parallelFor(
        0, cols, rowGrain(rows),
        [=](std::size_t j0, std::size_t j1) {
            for (std::size_t i = 0; i < rows; ++i) {
                const float* RECSIM_RESTRICT row = xd + i * cols;
                for (std::size_t j = j0; j < j1; ++j)
                    od[j] += row[j];
            }
        });
}

void
axpy(float alpha, const Tensor& x, Tensor& y)
{
    RECSIM_ASSERT(x.size() == y.size(), "axpy {} into {}",
                  x.shapeString(), y.shapeString());
    const float* RECSIM_RESTRICT xd = x.data();
    float* RECSIM_RESTRICT yd = y.data();
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
                yd[i] += alpha * xd[i];
        });
}

void
scale(Tensor& x, float alpha)
{
    float* RECSIM_RESTRICT xd = x.data();
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
                xd[i] *= alpha;
        });
}

void
reluInPlace(Tensor& x)
{
    float* RECSIM_RESTRICT xd = x.data();
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
                xd[i] = std::max(xd[i], 0.0f);
        });
}

void
reluBackward(const Tensor& y, const Tensor& dy, Tensor& dx)
{
    RECSIM_ASSERT(y.size() == dy.size(), "reluBackward shape mismatch");
    if (!dx.sameShape(dy)) {
        if (dy.rank() == 2)
            dx.resize(dy.rows(), dy.cols());
        else
            dx.resize(dy.size());
    }
    const float* RECSIM_RESTRICT yd = y.data();
    const float* RECSIM_RESTRICT dyd = dy.data();
    float* RECSIM_RESTRICT dxd = dx.data();
    util::globalThreadPool().parallelFor(
        0, y.size(), kElemGrain,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i)
                dxd[i] = yd[i] > 0.0f ? dyd[i] : 0.0f;
        });
}

void
sigmoidInPlace(Tensor& x)
{
    float* RECSIM_RESTRICT xd = x.data();
    util::globalThreadPool().parallelFor(
        0, x.size(), kElemGrain / 4,
        [=](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                const float v = xd[i];
                // Split on sign to avoid overflow in exp(); one exp()
                // per element either way.
                if (v >= 0.0f) {
                    xd[i] = 1.0f / (1.0f + std::exp(-v));
                } else {
                    const float e = std::exp(v);
                    xd[i] = e / (1.0f + e);
                }
            }
        });
}

double
sumAll(const Tensor& x)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x.data()[i];
    return acc;
}

double
dot(const Tensor& a, const Tensor& b)
{
    RECSIM_ASSERT(a.size() == b.size(), "dot {} . {}", a.shapeString(),
                  b.shapeString());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a.data()[i]) * b.data()[i];
    return acc;
}

double
l2Norm(const Tensor& x)
{
    return std::sqrt(dot(x, x));
}

double
maxAbsDiff(const Tensor& a, const Tensor& b)
{
    RECSIM_ASSERT(a.size() == b.size(), "maxAbsDiff {} vs {}",
                  a.shapeString(), b.shapeString());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(
            static_cast<double>(a.data()[i]) - b.data()[i]));
    return worst;
}

void
clipL2Norm(Tensor& x, double max_norm)
{
    RECSIM_ASSERT(max_norm > 0.0, "clip norm must be positive");
    const double norm = l2Norm(x);
    if (norm > max_norm)
        scale(x, static_cast<float>(max_norm / norm));
}

} // namespace tensor
} // namespace recsim
