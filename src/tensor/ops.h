/**
 * @file
 * Free-function kernels over Tensor: GEMM variants, elementwise ops and
 * reductions. These are the compute primitives the nn layers are built
 * from; everything DLRM's forward/backward needs and nothing more.
 */
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace recsim {
namespace tensor {

/**
 * out = a (*) b for rank-2 tensors: [m, k] x [k, n] -> [m, n].
 * @p out is resized/overwritten. Cache-blocked with register-blocked
 * AVX2/FMA microkernels inside the blocks (scalar std::fma fallback
 * when the CPU lacks AVX2 or RECSIM_NO_SIMD=1; see simd.h).
 *
 * Accumulation-order contract (all matmul variants): each output
 * element starts from the value already in @p out (zero here, since
 * out is resized) and adds its k terms in increasing p, every term as
 * ONE fused multiply-add — acc = fma(a[i,p], b[p,j], acc). The
 * contract is independent of cache blocks, register tiles, vector
 * width and thread count, so results are bitwise identical across all
 * of them (tested in test_tensor.cc against an explicit fma fold).
 */
void matmul(const Tensor& a, const Tensor& b, Tensor& out);

/** out = a^T (*) b: [k, m]^T x [k, n] -> [m, n]. */
void matmulTransA(const Tensor& a, const Tensor& b, Tensor& out);

/** out = a (*) b^T: [m, k] x [n, k]^T -> [m, n]. */
void matmulTransB(const Tensor& a, const Tensor& b, Tensor& out);

/**
 * Fused GEMM epilogue: out = a (*) b, then out[i, :] += bias, then
 * (if @p relu) out = max(out, 0) — applied inside the GEMM's final
 * k-block store instead of as separate passes over @p out, saving the
 * extra read+write memory traffic of addBiasRows / reluInPlace.
 * Bitwise identical to matmul + addBiasRows (+ reluInPlace): the
 * per-element float op sequence is unchanged, only when it runs moves.
 */
void matmulBiasAct(const Tensor& a, const Tensor& b, const Tensor& bias,
                   bool relu, Tensor& out);

/** Add row-vector @p bias [n] to every row of @p x [m, n], in place. */
void addBiasRows(Tensor& x, const Tensor& bias);

/** out[j] = sum over rows i of x[i, j]; out resized to [cols]. */
void sumRows(const Tensor& x, Tensor& out);

/** y += alpha * x, elementwise; shapes must match. */
void axpy(float alpha, const Tensor& x, Tensor& y);

/** x *= alpha, elementwise. */
void scale(Tensor& x, float alpha);

/** ReLU in place: x = max(x, 0). */
void reluInPlace(Tensor& x);

/**
 * dx = dy where forward activation y was > 0, else 0.
 * @p y is the *forward output* of the ReLU (post-activation).
 */
void reluBackward(const Tensor& y, const Tensor& dy, Tensor& dx);

/**
 * Logistic sigmoid in place, via the vectorized fast exp (simd.h):
 * within 1e-6 relative of the libm-exact value, overflow-safe for any
 * finite input, and bit-identical across thread counts and between
 * the AVX2 and scalar dispatch paths.
 */
void sigmoidInPlace(Tensor& x);

/** Sum of all elements. */
double sumAll(const Tensor& x);

/** Dot product of two equal-shaped tensors. */
double dot(const Tensor& a, const Tensor& b);

/** L2 norm of all elements. */
double l2Norm(const Tensor& x);

/** Max absolute elementwise difference (for tests). */
double maxAbsDiff(const Tensor& a, const Tensor& b);

/** Gradient clipping: scale x so that its L2 norm is <= max_norm. */
void clipL2Norm(Tensor& x, double max_norm);

} // namespace tensor
} // namespace recsim
