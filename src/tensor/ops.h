/**
 * @file
 * Free-function kernels over Tensor: GEMM variants, elementwise ops and
 * reductions. These are the compute primitives the nn layers are built
 * from; everything DLRM's forward/backward needs and nothing more.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace recsim {
namespace tensor {

/**
 * out = a (*) b for rank-2 tensors: [m, k] x [k, n] -> [m, n].
 * @p out is resized/overwritten. Cache-blocked with register-blocked
 * AVX2/FMA microkernels inside the blocks (scalar std::fma fallback
 * when the CPU lacks AVX2 or RECSIM_NO_SIMD=1; see simd.h).
 *
 * Accumulation-order contract (all matmul variants): each output
 * element starts from the value already in @p out (zero here, since
 * out is resized) and adds its k terms in increasing p, every term as
 * ONE fused multiply-add — acc = fma(a[i,p], b[p,j], acc). The
 * contract is independent of cache blocks, register tiles, vector
 * width and thread count, so results are bitwise identical across all
 * of them (tested in test_tensor.cc against an explicit fma fold).
 */
void matmul(const Tensor& a, const Tensor& b, Tensor& out);

/** out = a^T (*) b: [k, m]^T x [k, n] -> [m, n]. */
void matmulTransA(const Tensor& a, const Tensor& b, Tensor& out);

/** out = a (*) b^T: [m, k] x [n, k]^T -> [m, n]. */
void matmulTransB(const Tensor& a, const Tensor& b, Tensor& out);

/**
 * Fused GEMM epilogue: out = a (*) b, then out[i, :] += bias, then
 * (if @p relu) out = max(out, 0) — applied inside the GEMM's final
 * k-block store instead of as separate passes over @p out, saving the
 * extra read+write memory traffic of addBiasRows / reluInPlace.
 * Bitwise identical to matmul + addBiasRows (+ reluInPlace): the
 * per-element float op sequence is unchanged, only when it runs moves.
 */
void matmulBiasAct(const Tensor& a, const Tensor& b, const Tensor& bias,
                   bool relu, Tensor& out);

/**
 * Fused weight + bias gradient of a Linear layer in one sweep:
 * dw = x^T (*) dy and db[j] = column sums of dy, computed together so
 * the grad GEMM's k-panels (which already stream dy) feed the bias
 * reduction without a second read pass over dy.
 * Bitwise identical to matmulTransA(x, dy, dw) + sumRows(dy, db): the
 * GEMM follows the ops.h accumulation contract unchanged, and db's
 * per-column adds run in increasing row order — exactly sumRows'
 * per-element sequence (the k-panels visit rows in increasing blocks,
 * and one chunk owns the whole reduction).
 */
void matmulTransABiasGrad(const Tensor& x, const Tensor& dy, Tensor& dw,
                          Tensor& db);

/**
 * dReLU-fused input-grad GEMM: out = a (*) b^T, then — inside the final
 * k-panel store — out[i, j] is kept where mask[i, j] > 0 and zeroed
 * otherwise. @p mask is the forward *post-activation* output the
 * separate reluBackward pass would have read (same shape as out;
 * nullptr = plain matmulTransB). Bitwise identical to matmulTransB +
 * reluBackward(mask, out, out): the masked store writes exactly the
 * bits that pass would have produced, saving its extra read+write of
 * the gradient.
 */
void matmulTransBMask(const Tensor& a, const Tensor& b,
                      const Tensor* mask, Tensor& out);

/**
 * One column segment of a matmulTransBSegmented destination: @p width
 * consecutive rows of b (= columns of the product) land in @p out
 * [a.rows(), width]. With @p zero_bias the segment's final k-panel
 * store adds +0.0f to each element — reproducing bit-for-bit a
 * consumer that zero-initializes and then += the segment (the -0.0
 * case makes a raw store observable).
 */
struct GemmOutSegment
{
    Tensor* out = nullptr;
    std::size_t width = 0;
    bool zero_bias = false;
};

/**
 * Segmented out = a (*) b^T: the product's columns are split into
 * consecutive segments written directly into separate destination
 * tensors, instead of one [m, n] buffer a consumer would immediately
 * re-split (the interaction-flatten fusion). Segment widths must sum
 * to b.rows(). Each destination element carries the exact fma chain of
 * the unsegmented GEMM (same k terms, increasing p), so the bytes
 * written equal the corresponding slice of matmulTransB's output.
 */
void matmulTransBSegmented(const Tensor& a, const Tensor& b,
                           std::vector<GemmOutSegment>& segments);

/** Add row-vector @p bias [n] to every row of @p x [m, n], in place. */
void addBiasRows(Tensor& x, const Tensor& bias);

/** out[j] = sum over rows i of x[i, j]; out resized to [cols]. */
void sumRows(const Tensor& x, Tensor& out);

/** y += alpha * x, elementwise; shapes must match. */
void axpy(float alpha, const Tensor& x, Tensor& y);

/** x *= alpha, elementwise. */
void scale(Tensor& x, float alpha);

/** ReLU in place: x = max(x, 0). */
void reluInPlace(Tensor& x);

/**
 * dx = dy where forward activation y was > 0, else 0.
 * @p y is the *forward output* of the ReLU (post-activation).
 */
void reluBackward(const Tensor& y, const Tensor& dy, Tensor& dx);

/**
 * Logistic sigmoid in place, via the vectorized fast exp (simd.h):
 * within 1e-6 relative of the libm-exact value, overflow-safe for any
 * finite input, and bit-identical across thread counts and between
 * the AVX2 and scalar dispatch paths.
 */
void sigmoidInPlace(Tensor& x);

/** Sum of all elements. */
double sumAll(const Tensor& x);

/** Dot product of two equal-shaped tensors. */
double dot(const Tensor& a, const Tensor& b);

/** L2 norm of all elements. */
double l2Norm(const Tensor& x);

/** Max absolute elementwise difference (for tests). */
double maxAbsDiff(const Tensor& a, const Tensor& b);

/** Gradient clipping: scale x so that its L2 norm is <= max_norm. */
void clipL2Norm(Tensor& x, double max_norm);

} // namespace tensor
} // namespace recsim
