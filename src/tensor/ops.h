/**
 * @file
 * Free-function kernels over Tensor: GEMM variants, elementwise ops and
 * reductions. These are the compute primitives the nn layers are built
 * from; everything DLRM's forward/backward needs and nothing more.
 */
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace recsim {
namespace tensor {

/**
 * out = a (*) b for rank-2 tensors: [m, k] x [k, n] -> [m, n].
 * @p out is resized/overwritten. Uses an ikj loop order so the inner
 * loop streams rows of b (cache-friendly without an explicit pack).
 */
void matmul(const Tensor& a, const Tensor& b, Tensor& out);

/** out = a^T (*) b: [k, m]^T x [k, n] -> [m, n]. */
void matmulTransA(const Tensor& a, const Tensor& b, Tensor& out);

/** out = a (*) b^T: [m, k] x [n, k]^T -> [m, n]. */
void matmulTransB(const Tensor& a, const Tensor& b, Tensor& out);

/** Add row-vector @p bias [n] to every row of @p x [m, n], in place. */
void addBiasRows(Tensor& x, const Tensor& bias);

/** out[j] = sum over rows i of x[i, j]; out resized to [cols]. */
void sumRows(const Tensor& x, Tensor& out);

/** y += alpha * x, elementwise; shapes must match. */
void axpy(float alpha, const Tensor& x, Tensor& y);

/** x *= alpha, elementwise. */
void scale(Tensor& x, float alpha);

/** ReLU in place: x = max(x, 0). */
void reluInPlace(Tensor& x);

/**
 * dx = dy where forward activation y was > 0, else 0.
 * @p y is the *forward output* of the ReLU (post-activation).
 */
void reluBackward(const Tensor& y, const Tensor& dy, Tensor& dx);

/** Numerically stable logistic sigmoid in place. */
void sigmoidInPlace(Tensor& x);

/** Sum of all elements. */
double sumAll(const Tensor& x);

/** Dot product of two equal-shaped tensors. */
double dot(const Tensor& a, const Tensor& b);

/** L2 norm of all elements. */
double l2Norm(const Tensor& x);

/** Max absolute elementwise difference (for tests). */
double maxAbsDiff(const Tensor& a, const Tensor& b);

/** Gradient clipping: scale x so that its L2 norm is <= max_norm. */
void clipL2Norm(Tensor& x, double max_norm);

} // namespace tensor
} // namespace recsim
