#include "tensor/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#  define RECSIM_SIMD_X86 1
#  include <immintrin.h>
#endif

namespace recsim {
namespace tensor {
namespace simd {

namespace {

/**
 * Cephes-style expf constants. The input is clamped to
 * [kExpLo, kExpHi]: below kExpLo = ln(2^-126) the true result is
 * denormal (we saturate at ~1.18e-38), above kExpHi the 2^n scale
 * would overflow the exponent field (we saturate at exp(kExpHi)
 * ~ 2.1e38, still finite). The reduction n = rint(x * log2(e)) then
 * stays within [-126, 127], so the bit-shifted scale is always a
 * normal float.
 */
constexpr float kExpHi = 88.3762626647949f;
constexpr float kExpLo = -87.3365447504531f;
constexpr float kLog2e = 1.44269504088896341f;
/** ln(2) split high/low so r = x - n*ln2 stays exact to float. */
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
/** 1.5 * 2^23: adding then subtracting rounds to the nearest integer. */
constexpr float kRoundMagic = 12582912.0f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

/**
 * The shared lane arithmetic, written with std::fma so the scalar path
 * performs exactly the operations the AVX2 path performs per lane
 * (vfmadd / vaddps / vmulps / vdivps are all correctly rounded, so op
 * sequence equality implies bit equality for non-NaN inputs).
 */
inline float
fastExpLane(float x)
{
    x = std::min(std::max(x, kExpLo), kExpHi);
    const float t = std::fma(x, kLog2e, kRoundMagic);
    const float fx = t - kRoundMagic; // rint(x * log2e), exact integer
    float r = std::fma(fx, -kLn2Hi, x);
    r = std::fma(fx, -kLn2Lo, r);
    const float r2 = r * r;
    float p = kExpP0;
    p = std::fma(p, r, kExpP1);
    p = std::fma(p, r, kExpP2);
    p = std::fma(p, r, kExpP3);
    p = std::fma(p, r, kExpP4);
    p = std::fma(p, r, kExpP5);
    const float y = std::fma(p, r2, r) + 1.0f;
    const auto n = static_cast<int32_t>(fx); // integral, exact
    const uint32_t scale_bits = static_cast<uint32_t>(n + 127) << 23;
    float scale;
    std::memcpy(&scale, &scale_bits, sizeof scale);
    return y * scale;
}

#if defined(RECSIM_SIMD_X86)

/** 8-lane fastExpLane; op-for-op identical to the scalar version. */
__attribute__((target("avx2,fma"))) inline __m256
fastExpAvx2(__m256 x)
{
    x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(kExpLo)),
                      _mm256_set1_ps(kExpHi));
    const __m256 magic = _mm256_set1_ps(kRoundMagic);
    const __m256 t =
        _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2e), magic);
    const __m256 fx = _mm256_sub_ps(t, magic);
    __m256 r = _mm256_fmadd_ps(fx, _mm256_set1_ps(-kLn2Hi), x);
    r = _mm256_fmadd_ps(fx, _mm256_set1_ps(-kLn2Lo), r);
    const __m256 r2 = _mm256_mul_ps(r, r);
    __m256 p = _mm256_set1_ps(kExpP0);
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP1));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP2));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP4));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP5));
    const __m256 y = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r),
                                   _mm256_set1_ps(1.0f));
    __m256i n = _mm256_cvtps_epi32(fx);
    n = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)),
                          23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

__attribute__((target("avx2,fma"))) void
sigmoidSpanAvx2(float* x, std::size_t n)
{
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 zero = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(x + i);
        const __m256 e = fastExpAvx2(_mm256_sub_ps(zero, v));
        _mm256_storeu_ps(x + i,
                         _mm256_div_ps(one, _mm256_add_ps(one, e)));
    }
    for (; i < n; ++i)
        x[i] = 1.0f / (1.0f + fastExpLane(-x[i]));
}

__attribute__((target("avx2,fma"))) void
reluMaskSpanAvx2(const float* y, const float* dy, float* dx,
                 std::size_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // (y > 0) ? all-ones : all-zeros, ANDed with dy: passes dy's
        // exact bits or +0.0f — the bits the scalar ternary stores.
        const __m256 mask =
            _mm256_cmp_ps(_mm256_loadu_ps(y + i), zero, _CMP_GT_OQ);
        _mm256_storeu_ps(
            dx + i, _mm256_and_ps(mask, _mm256_loadu_ps(dy + i)));
    }
    for (; i < n; ++i)
        dx[i] = y[i] > 0.0f ? dy[i] : 0.0f;
}

#endif // RECSIM_SIMD_X86

bool
computeEnabled()
{
    if (!available())
        return false;
    const char* env = std::getenv("RECSIM_NO_SIMD");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0'))
        return false;
    return true;
}

} // namespace

bool
available()
{
#if defined(RECSIM_SIMD_X86)
    return __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
enabled()
{
    static const bool cached = computeEnabled();
    return cached;
}

const char*
activeKernels()
{
    return enabled() ? "avx2-fma" : "scalar";
}

float
fastExpScalar(float x)
{
    return fastExpLane(x);
}

float
fastExp(float x)
{
    return fastExpLane(x);
}

void
sigmoidSpan(float* x, std::size_t n)
{
#if defined(RECSIM_SIMD_X86)
    if (enabled()) {
        sigmoidSpanAvx2(x, n);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i)
        x[i] = 1.0f / (1.0f + fastExpLane(-x[i]));
}

void
reluMaskSpan(const float* y, const float* dy, float* dx, std::size_t n)
{
#if defined(RECSIM_SIMD_X86)
    if (enabled()) {
        reluMaskSpanAvx2(y, dy, dx, n);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i)
        dx[i] = y[i] > 0.0f ? dy[i] : 0.0f;
}

} // namespace simd
} // namespace tensor
} // namespace recsim
