#include "tensor/tensor.h"

#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace tensor {

Tensor::Tensor(std::size_t n)
    : data_(n, 0.0f), rank_(1), rows_(n), cols_(1)
{
}

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : data_(rows * cols, 0.0f), rank_(2), rows_(rows), cols_(cols)
{
}

Tensor::Tensor(std::initializer_list<float> values)
    : data_(values), rank_(1), rows_(values.size()), cols_(1)
{
}

float&
Tensor::at(std::size_t r, std::size_t c)
{
    RECSIM_ASSERT(rank_ == 2 && r < rows_ && c < cols_,
                  "at({}, {}) on tensor {}", r, c, shapeString());
    return data_[r * cols_ + c];
}

float
Tensor::at(std::size_t r, std::size_t c) const
{
    RECSIM_ASSERT(rank_ == 2 && r < rows_ && c < cols_,
                  "at({}, {}) on tensor {}", r, c, shapeString());
    return data_[r * cols_ + c];
}

float*
Tensor::row(std::size_t r)
{
    RECSIM_ASSERT(rank_ == 2 && r < rows_, "row {} of {}", r,
                  shapeString());
    return data_.data() + r * cols_;
}

const float*
Tensor::row(std::size_t r) const
{
    RECSIM_ASSERT(rank_ == 2 && r < rows_, "row {} of {}", r,
                  shapeString());
    return data_.data() + r * cols_;
}

void
Tensor::fill(float value)
{
    for (auto& v : data_)
        v = value;
}

void
Tensor::fillNormal(util::Rng& rng, float stddev)
{
    for (auto& v : data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

void
Tensor::fillUniform(util::Rng& rng, float lo, float hi)
{
    for (auto& v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::reshape(std::size_t rows, std::size_t cols)
{
    RECSIM_ASSERT(rows * cols == data_.size(),
                  "reshape [{} x {}] of {} elements", rows, cols,
                  data_.size());
    rank_ = 2;
    rows_ = rows;
    cols_ = cols;
}

void
Tensor::resize(std::size_t rows, std::size_t cols)
{
    data_.assign(rows * cols, 0.0f);
    rank_ = 2;
    rows_ = rows;
    cols_ = cols;
}

void
Tensor::resize(std::size_t n)
{
    data_.assign(n, 0.0f);
    rank_ = 1;
    rows_ = n;
    cols_ = 1;
}

std::string
Tensor::shapeString() const
{
    if (rank_ == 1)
        return util::format("[{}]", size());
    return util::format("[{} x {}]", rows_, cols_);
}

bool
Tensor::sameShape(const Tensor& other) const
{
    return rank_ == other.rank_ && rows_ == other.rows_ &&
        cols_ == other.cols_;
}

} // namespace tensor
} // namespace recsim
