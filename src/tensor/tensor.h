/**
 * @file
 * Minimal dense FP32 tensor for the functional training substrate.
 *
 * This replaces the Caffe2/PyTorch tensor the paper's production stack
 * uses. recsim only needs what DLRM training needs: 1-D and 2-D row-major
 * float tensors with matmul, elementwise ops and reductions. Shapes are
 * checked with panic() since shape errors are library bugs, not user
 * configuration errors.
 */
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace recsim {
namespace util {
class Rng;
} // namespace util

namespace tensor {

/**
 * Owning, row-major FP32 tensor of rank 1 or 2.
 *
 * A rank-1 tensor of length n is distinct from a [1, n] matrix; matmul
 * requires rank 2. Copy is deep; move is O(1).
 */
class Tensor
{
  public:
    /** Empty rank-1 tensor of size 0. */
    Tensor() = default;

    /** Zero-initialized rank-1 tensor of length @p n. */
    explicit Tensor(std::size_t n);

    /** Zero-initialized rank-2 tensor of shape [rows, cols]. */
    Tensor(std::size_t rows, std::size_t cols);

    /** Rank-1 tensor from explicit values. */
    Tensor(std::initializer_list<float> values);

    /** Number of elements. */
    std::size_t size() const { return data_.size(); }

    /** Rank (1 or 2). */
    int rank() const { return rank_; }

    /** Rows for rank 2; size() for rank 1. */
    std::size_t rows() const { return rows_; }

    /** Cols for rank 2; 1 for rank 1. */
    std::size_t cols() const { return cols_; }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /** Element access, rank-1. */
    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** Element access, rank-2 (row-major). */
    float& at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    /** Pointer to the start of row @p r (rank-2). */
    float* row(std::size_t r);
    const float* row(std::size_t r) const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Set every element to 0. */
    void zero() { fill(0.0f); }

    /** Fill with N(0, stddev) values from @p rng. */
    void fillNormal(util::Rng& rng, float stddev);

    /** Fill with U(lo, hi) values from @p rng. */
    void fillUniform(util::Rng& rng, float lo, float hi);

    /** Reshape in place; element count must be preserved. */
    void reshape(std::size_t rows, std::size_t cols);

    /**
     * Become a zeroed rank-2 tensor of shape [rows, cols], reusing the
     * existing allocation when capacity suffices. The workspace-reuse
     * primitive: kernels call this instead of constructing a fresh
     * Tensor so steady-state training does no per-step heap allocation.
     */
    void resize(std::size_t rows, std::size_t cols);

    /** Become a zeroed rank-1 tensor of length n, reusing capacity. */
    void resize(std::size_t n);

    /** "[rows x cols]" / "[n]" for diagnostics. */
    std::string shapeString() const;

    /** True iff shapes (rank and dims) match. */
    bool sameShape(const Tensor& other) const;

  private:
    std::vector<float> data_;
    int rank_ = 1;
    std::size_t rows_ = 0;
    std::size_t cols_ = 1;
};

} // namespace tensor
} // namespace recsim
