#include "model/config.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_utils.h"

namespace recsim {
namespace model {

std::vector<std::size_t>
DlrmConfig::bottomDims() const
{
    std::vector<std::size_t> dims = bottom_mlp;
    if (interaction == nn::InteractionKind::DotProduct &&
        (dims.empty() || dims.back() != emb_dim)) {
        dims.push_back(emb_dim);
    }
    RECSIM_ASSERT(!dims.empty(), "bottom MLP has no layers");
    return dims;
}

std::vector<std::size_t>
DlrmConfig::topDims() const
{
    std::vector<std::size_t> dims = top_mlp;
    dims.push_back(1);
    return dims;
}

std::size_t
DlrmConfig::interactionWidth() const
{
    const std::size_t bottom_out = bottomDims().back();
    if (interaction == nn::InteractionKind::DotProduct)
        return nn::DotInteraction::outWidth(numSparse(), emb_dim);
    return nn::CatInteraction::outWidth(bottom_out, numSparse(), emb_dim);
}

double
DlrmConfig::embeddingBytes() const
{
    double bytes = 0.0;
    for (const auto& s : sparse) {
        bytes += static_cast<double>(s.hash_size) *
            static_cast<double>(s.effectiveDim(emb_dim)) * sizeof(float);
    }
    return bytes;
}

std::size_t
DlrmConfig::mlpParams() const
{
    std::size_t total = 0;
    auto count = [&](std::size_t in, const std::vector<std::size_t>& dims) {
        for (std::size_t d : dims) {
            total += in * d + d;
            in = d;
        }
    };
    count(num_dense, bottomDims());
    count(interactionWidth(), topDims());
    // Mixed-dimension projections up to the shared width.
    for (const auto& s : sparse) {
        const std::size_t d = s.effectiveDim(emb_dim);
        if (d != emb_dim)
            total += d * emb_dim + emb_dim;
    }
    return total;
}

double
DlrmConfig::meanLookupsPerExample() const
{
    double total = 0.0;
    for (const auto& s : sparse)
        total += s.effectiveMeanLength();
    return total;
}

ExampleFootprint
DlrmConfig::footprint() const
{
    ExampleFootprint fp;
    auto mlp_flops = [](std::size_t in,
                        const std::vector<std::size_t>& dims) {
        double flops = 0.0;
        for (std::size_t d : dims) {
            flops += 2.0 * static_cast<double>(in) *
                static_cast<double>(d);
            in = d;
        }
        return flops;
    };
    fp.mlp_flops = mlp_flops(num_dense, bottomDims()) +
        mlp_flops(interactionWidth(), topDims());
    if (interaction == nn::InteractionKind::DotProduct) {
        const double f = static_cast<double>(numSparse() + 1);
        fp.interaction_flops = f * (f - 1.0) / 2.0 * 2.0 *
            static_cast<double>(emb_dim);
    }
    fp.embedding_lookups = meanLookupsPerExample();
    fp.embedding_bytes = 0.0;
    fp.pooled_bytes = 0.0;
    for (const auto& s : sparse) {
        const auto d = static_cast<double>(s.effectiveDim(emb_dim));
        fp.embedding_bytes +=
            s.effectiveMeanLength() * d * sizeof(float);
        fp.pooled_bytes += d * sizeof(float);
        // Projection to the shared width (mixed dims only).
        if (s.effectiveDim(emb_dim) != emb_dim) {
            fp.mlp_flops += 2.0 * d * static_cast<double>(emb_dim);
        }
    }
    fp.dense_input_bytes = static_cast<double>(num_dense) * sizeof(float);
    return fp;
}

std::string
DlrmConfig::summary() const
{
    return util::format(
        "{}: {} dense, {} sparse, d={}, bottom {}, top {}, emb {}, "
        "{} lookups/example",
        name, num_dense, numSparse(), emb_dim,
        mlpDimsToString(bottom_mlp), mlpDimsToString(top_mlp),
        util::bytesToString(embeddingBytes()),
        util::fixed(meanLookupsPerExample(), 1));
}

namespace {

/**
 * Build a production-style config from Fig 6 / Table II parameters.
 * The per-model mean lookups in Table II ("Embedding Lookups") are the
 * mean over tables, so the population mean length is set to that value.
 */
DlrmConfig
prodConfig(const std::string& name, std::size_t num_dense,
           std::size_t num_sparse, double mean_hash, double mean_length,
           std::vector<std::size_t> bottom, std::vector<std::size_t> top,
           uint64_t seed)
{
    DlrmConfig cfg;
    cfg.name = name;
    cfg.num_dense = num_dense;
    cfg.emb_dim = 64;
    cfg.bottom_mlp = std::move(bottom);
    cfg.top_mlp = std::move(top);
    cfg.interaction = nn::InteractionKind::DotProduct;

    data::TablePopulationParams pop;
    pop.num_tables = num_sparse;
    pop.mean_hash_size = mean_hash;
    pop.mean_length = mean_length;
    pop.hash_sigma = 2.2;
    pop.length_sigma = 0.9;
    pop.hash_length_correlation = -0.2;
    util::Rng rng(seed);
    cfg.sparse = data::generateTablePopulation(pop, rng);
    return cfg;
}

} // namespace

DlrmConfig
DlrmConfig::m1Prod()
{
    return prodConfig("M1_prod", 800, 30, 5.7e6, 28.0, {512},
                      {512, 512, 512}, 0xA1);
}

DlrmConfig
DlrmConfig::m2Prod()
{
    return prodConfig("M2_prod", 504, 13, 7.3e6, 17.0, {1024},
                      {1024, 1024, 512}, 0xA2);
}

DlrmConfig
DlrmConfig::m3Prod()
{
    return prodConfig("M3_prod", 809, 127, 3.7e6, 49.0, {512},
                      {512, 256, 512, 256, 512}, 0xA3);
}

DlrmConfig
DlrmConfig::testSuite(std::size_t num_dense, std::size_t num_sparse,
                      uint64_t hash_size, std::size_t mlp_width,
                      std::size_t mlp_layers, double mean_length,
                      uint64_t truncation)
{
    DlrmConfig cfg;
    cfg.name = util::format("test_suite_d{}_s{}", num_dense, num_sparse);
    cfg.num_dense = num_dense;
    cfg.emb_dim = 64;
    cfg.interaction = nn::InteractionKind::DotProduct;
    cfg.bottom_mlp.assign(mlp_layers, mlp_width);
    cfg.top_mlp.assign(mlp_layers, mlp_width);
    cfg.sparse.reserve(num_sparse);
    for (std::size_t i = 0; i < num_sparse; ++i) {
        data::SparseFeatureSpec spec;
        spec.name = "sparse_" + std::to_string(i);
        spec.hash_size = hash_size;
        spec.mean_length = mean_length;
        spec.truncation = truncation;
        cfg.sparse.push_back(std::move(spec));
    }
    return cfg;
}

DlrmConfig
DlrmConfig::tinyReplica(std::size_t num_sparse, std::size_t num_dense,
                        uint64_t hash_size, std::size_t emb_dim)
{
    DlrmConfig cfg;
    cfg.name = "tiny_replica";
    cfg.num_dense = num_dense;
    cfg.emb_dim = emb_dim;
    cfg.interaction = nn::InteractionKind::DotProduct;
    cfg.bottom_mlp = {64, 32};
    cfg.top_mlp = {64, 32};
    cfg.sparse.reserve(num_sparse);
    for (std::size_t i = 0; i < num_sparse; ++i) {
        data::SparseFeatureSpec spec;
        spec.name = "sparse_" + std::to_string(i);
        spec.hash_size = hash_size;
        spec.mean_length = 3.0;
        spec.truncation = 16;
        cfg.sparse.push_back(std::move(spec));
    }
    return cfg;
}

DlrmConfig
applyMixedDimensions(DlrmConfig config, double alpha,
                     std::size_t min_dim)
{
    RECSIM_ASSERT(alpha >= 0.0, "mixed-dim alpha must be non-negative");
    double pop_max = 0.0;
    for (const auto& s : config.sparse)
        pop_max = std::max(pop_max, s.effectiveMeanLength());
    if (pop_max <= 0.0 || alpha == 0.0)
        return config;
    for (auto& s : config.sparse) {
        const double scale =
            std::pow(s.effectiveMeanLength() / pop_max, alpha);
        auto dim = static_cast<std::size_t>(
            static_cast<double>(config.emb_dim) * scale);
        // Round down to a power of two, clamp to [min_dim, emb_dim].
        std::size_t pow2 = 1;
        while (pow2 * 2 <= dim)
            pow2 *= 2;
        dim = std::clamp(pow2, min_dim, config.emb_dim);
        s.dim_override = dim == config.emb_dim ? 0 : dim;
    }
    return config;
}

std::string
mlpDimsToString(const std::vector<std::size_t>& dims)
{
    std::vector<std::string> parts;
    parts.reserve(dims.size());
    for (std::size_t d : dims)
        parts.push_back(std::to_string(d));
    return parts.empty() ? "-" : util::join(parts, "-");
}

} // namespace model
} // namespace recsim
