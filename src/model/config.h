/**
 * @file
 * DLRM model-architecture configuration: the paper's "massive parameter
 * design space" (Section III). A DlrmConfig captures everything that
 * affects training efficiency — dense/sparse feature counts, per-table
 * hash sizes and lookup lengths, the interaction type, and the MLP stack
 * dimensions — plus the accounting (parameter bytes, per-example FLOPs
 * and lookup bytes) the cost models consume.
 *
 * Named factories encode the three production models of Table II and
 * the Section V test suite.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/spec.h"
#include "nn/interaction.h"

namespace recsim {
namespace model {

/** Work/traffic totals for one example (forward pass). */
struct ExampleFootprint
{
    double mlp_flops = 0.0;          ///< Bottom + top MLP multiply-adds*2.
    double interaction_flops = 0.0;  ///< Pairwise dots (if DotProduct).
    double embedding_bytes = 0.0;    ///< Bytes fetched by lookups.
    double embedding_lookups = 0.0;  ///< Total activated indices.
    double pooled_bytes = 0.0;       ///< Pooled vectors (S * d * 4).
    double dense_input_bytes = 0.0;  ///< Dense feature vector bytes.
};

/** Full model-architecture configuration. */
struct DlrmConfig
{
    std::string name = "custom";
    /** Number of scalar dense features (bottom MLP input width). */
    std::size_t num_dense = 64;
    /** Shared embedding dimension d. */
    std::size_t emb_dim = 64;
    /** One spec per sparse feature / embedding table. */
    std::vector<data::SparseFeatureSpec> sparse;
    /**
     * Bottom (dense) MLP hidden dims; a projection to emb_dim is
     * appended automatically when the interaction is DotProduct.
     */
    std::vector<std::size_t> bottom_mlp = {512, 512, 512};
    /**
     * Top MLP hidden dims; the final 1-wide logit layer is appended
     * automatically.
     */
    std::vector<std::size_t> top_mlp = {512, 512, 512};
    nn::InteractionKind interaction = nn::InteractionKind::DotProduct;

    std::size_t numSparse() const { return sparse.size(); }

    /** Bottom MLP layer dims including the implicit projection. */
    std::vector<std::size_t> bottomDims() const;

    /** Top MLP layer dims including the implicit logit layer. */
    std::vector<std::size_t> topDims() const;

    /** Width of the interaction output (top MLP input). */
    std::size_t interactionWidth() const;

    /** Total embedding-table parameter bytes (FP32). */
    double embeddingBytes() const;

    /** Total MLP (dense) parameter count. */
    std::size_t mlpParams() const;

    /** Mean embedding lookups per example across all features. */
    double meanLookupsPerExample() const;

    /** Per-example forward work/traffic accounting. */
    ExampleFootprint footprint() const;

    /** Human-readable one-line summary. */
    std::string summary() const;

    // ---- Named configurations -------------------------------------

    /**
     * M1_prod (Table II): 30 sparse / 800 dense features, mean 28
     * lookups, bottom 512, top 512-512-512, tens of GB of embeddings.
     * Per-table hash sizes and lengths are drawn to match Fig 6
     * (mean hash 5.7 M) with a fixed seed.
     */
    static DlrmConfig m1Prod();

    /** M2_prod: 13 sparse / 504 dense, 17 lookups, 1024-wide MLPs. */
    static DlrmConfig m2Prod();

    /**
     * M3_prod: 127 sparse / 809 dense, 49 lookups, five-layer top MLP,
     * hundreds of GB of embeddings (the embedding-dominant model).
     */
    static DlrmConfig m3Prod();

    /**
     * Section V test-suite configuration: uniform tables with a fixed
     * hash size, lookups truncated to 32, MLP width^layers stacks.
     */
    static DlrmConfig testSuite(std::size_t num_dense,
                                std::size_t num_sparse,
                                uint64_t hash_size,
                                std::size_t mlp_width = 512,
                                std::size_t mlp_layers = 3,
                                double mean_length = 8.0,
                                uint64_t truncation = 32);

    /**
     * A small, functionally trainable replica of a production-style
     * model for the accuracy experiments (Fig 15): same topology, hash
     * sizes shrunk so the tables fit in memory.
     */
    static DlrmConfig tinyReplica(std::size_t num_sparse = 8,
                                  std::size_t num_dense = 13,
                                  uint64_t hash_size = 2000,
                                  std::size_t emb_dim = 16);
};

/** Render MLP dims the way the paper does, e.g. "512-256-512". */
std::string mlpDimsToString(const std::vector<std::size_t>& dims);

/**
 * Apply the mixed-dimension rule of Ginart et al. [17]: scale each
 * table's embedding width with its popularity (mean lookups), so the
 * long tail of rarely-accessed tables gets narrow embeddings.
 *   dim_i = clamp(base_dim * (pop_i / pop_max)^alpha, min_dim, base_dim)
 * rounded down to a power of two. Tables keeping the full width get no
 * override (and no projection).
 *
 * @param alpha    Popularity exponent (the paper's temperature); 0
 *                 disables the rule, larger shrinks the tail harder.
 * @param min_dim  Floor for the narrowest tables.
 */
model::DlrmConfig applyMixedDimensions(DlrmConfig config, double alpha,
                                       std::size_t min_dim = 4);

} // namespace model
} // namespace recsim
