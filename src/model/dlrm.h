/**
 * @file
 * Functional DLRM: the trainable model of Fig 3 — bottom MLP over dense
 * features, embedding tables over sparse features, feature interaction,
 * top MLP to a click logit. Used by the accuracy experiments (Fig 15)
 * and the functional integration tests; the *performance* of production
 * shapes is modeled analytically (src/cost) because terabyte tables
 * cannot be instantiated.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "model/config.h"
#include "nn/embedding_bag.h"
#include "nn/interaction.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace recsim {
namespace model {

/**
 * Trainable DLRM instance.
 *
 * One instance supports one in-flight forward/backward at a time; for
 * multi-threaded training each worker owns a replica (EASGD) or all
 * workers share one instance and race (Hogwild, by design).
 */
class Dlrm
{
  public:
    /**
     * Instantiate a config. fatal()s if the embedding tables exceed
     * @p max_bytes (default 4 GiB) — production shapes must go through
     * the analytical cost models instead.
     */
    explicit Dlrm(const DlrmConfig& config, uint64_t seed = 1,
                  double max_bytes = 4.0 * (1ULL << 30));

    /** Forward pass only; fills logits [B, 1]. */
    void forward(const data::MiniBatch& batch, tensor::Tensor& logits);

    /**
     * Forward + loss + full backward. Dense grads accumulate in the
     * MLP layers; sparse grads are stored per table (see sparseGrads()).
     * @return Mean BCE loss of the batch.
     */
    double forwardBackward(const data::MiniBatch& batch);

    // --- Graph-walk execution -------------------------------------
    // Stepwise primitives mapping 1:1 onto the StepGraph nodes of one
    // training step (graph/step_graph.h): bottom_mlp.l{i} -> the
    // forward/backwardBottomLayer pair, emb.t{f} -> *Embedding,
    // proj.t{f} -> *Projection, and so on. Visiting the nodes in graph
    // order (reversed for the backward half) reproduces forward() /
    // forwardBackward() exactly — that walk lives in
    // train::runGraphStep, which tags an obs span with each node id.
    // Each primitive assumes the ones its node depends on already ran.
    // The MLP/projection primitives take @p fused from the node's
    // fused_epilogue flag (graph::fusePass): the bias (+ ReLU) runs as
    // the GEMM's epilogue. Bitwise identical either way.
    void forwardBottomLayer(std::size_t i, const data::MiniBatch& batch,
                            bool fused = false);
    void forwardEmbedding(std::size_t f, const data::MiniBatch& batch);
    /**
     * Grouped lookup for a fused EmbeddingLookup node: pool every table
     * in @p group with ONE parallelFor over the flattened (table,
     * example-chunk) units instead of one dispatch per table. Each
     * unit's bounds replicate exactly the chunks forwardEmbedding()'s
     * inner parallelFor would produce (EmbeddingBag::forwardChunkGrain,
     * chunks at multiples of the grain), and every output row is owned
     * by exactly one unit — so the result is bit-identical to calling
     * forwardEmbedding(f) for each member in order, at any thread count.
     */
    void forwardEmbeddingGroup(const std::vector<int>& group,
                               const data::MiniBatch& batch);
    void forwardProjection(std::size_t f, bool fused = false);
    void forwardInteraction();
    void forwardTopLayer(std::size_t i, bool fused = false);
    /** Loss + dLoss/dLogits; run between the two graph halves. */
    double lossBackward(const data::MiniBatch& batch);
    /**
     * The backward MLP/projection primitives take @p fused from the
     * node's fused_backward flag: the bias gradient rides the
     * weight-grad GEMM sweep and the dReLU mask is applied inside the
     * input-grad GEMM store (Linear::backwardFused). @p flatten (the
     * node's fused_flatten flag, top-MLP layer 0 + Interaction only)
     * additionally routes layer 0's input-grad GEMM straight into the
     * interaction backward's destinations
     * (tensor::matmulTransBSegmented), skipping the intermediate
     * flatten buffer; backwardInteraction(flatten) then consumes those
     * segment outputs. All paths are bitwise identical to the unfused
     * walk.
     */
    void backwardTopLayer(std::size_t i, bool fused = false,
                          bool flatten = false);
    void backwardInteraction(bool flatten = false);
    void backwardBottomLayer(std::size_t i, const data::MiniBatch& batch,
                             bool fused = false);
    void backwardProjection(std::size_t f, bool fused = false);
    void backwardEmbedding(std::size_t f, const data::MiniBatch& batch);
    /**
     * Backward of a fused EmbeddingLookup node: runs each member's
     * backwardEmbedding in group order (each is internally parallel) —
     * bit-identical to the unfused walk.
     */
    void backwardEmbeddingGroup(const std::vector<int>& group,
                                const data::MiniBatch& batch);

    /** True when table @p f projects up to the shared width. */
    bool hasProjection(std::size_t f) const
    {
        return projections_[f] != nullptr;
    }

    // --- Embedding storage backends -------------------------------
    // Tables default to per-instance DramBackends (the historical flat
    // table). Backends only change byte accounting, never results:
    // lookups stay bitwise-identical across backends.

    /** Install @p backend on table @p f (nn/embedding_backend.h). */
    void setEmbeddingBackend(
        std::size_t f, std::shared_ptr<nn::EmbeddingBackend> backend);

    /**
     * Install a CachedBackend on every table, splitting a hot-tier
     * budget of @p hot_tier_bytes across tables with the same
     * allocator placement::planPlacement uses (densest whole tables
     * first, leftover as per-table row caches by traffic share) — so
     * the rows installed here are exactly the rows
     * cost::IterationModel::hotTierHitFraction priced, and measured
     * hit rates validate the analytic prediction. Labels are
     * "emb.t{f}", matching the StepGraph node ids, so obs channels
     * line up with the per-node telemetry.
     */
    void installCachedEmbeddingBackends(double hot_tier_bytes,
                                        std::size_t refresh_every = 8);

    /** Reset every table to a fresh DramBackend. */
    void installDramEmbeddingBackends();

    /** Zero dense grads and drop stored sparse grads. */
    void zeroGrad();

    /** Apply accumulated grads with SGD and clear them. */
    void step(const nn::Sgd& opt);

    /** Apply accumulated grads with Adagrad and clear them. */
    void step(nn::Adagrad& opt);

    /** Mean BCE loss on a batch without touching grads. */
    double evalLoss(const data::MiniBatch& batch);

    /** Normalized entropy on a batch. */
    double evalNormalizedEntropy(const data::MiniBatch& batch);

    /**
     * Logits of the most recent forward pass ([B, 1]); valid after
     * forward(), forwardBackward() or a graph-walk forward. The
     * serving engine reads scores here after
     * GraphExecutor::runForward() without paying forward()'s copy.
     */
    const tensor::Tensor& logits() const { return logits_; }

    const DlrmConfig& config() const { return config_; }
    nn::Mlp& bottomMlp() { return *bottom_; }
    nn::Mlp& topMlp() { return *top_; }
    std::vector<nn::EmbeddingBag>& tables() { return tables_; }
    const std::vector<nn::SparseGrad>& sparseGrads() const
    {
        return sparse_grads_;
    }

    /**
     * All dense parameter tensors (MLP weights and biases), for EASGD
     * elastic averaging between replicas and the center model.
     */
    std::vector<tensor::Tensor*> denseParams();

    /** Total dense parameter count. */
    std::size_t numDenseParams() const;

  private:
    /** The forward graph walk shared by forward() and the trainer. */
    void runForwardGraph(const data::MiniBatch& batch);
    /** The backward graph walk (after lossBackward()). */
    void runBackwardGraph(const data::MiniBatch& batch);

    DlrmConfig config_;
    std::unique_ptr<nn::Mlp> bottom_;
    std::unique_ptr<nn::Mlp> top_;
    std::vector<nn::EmbeddingBag> tables_;
    /**
     * Mixed-dimension support: tables narrower than the shared width
     * project up through a learned Linear (null for full-width tables).
     */
    std::vector<std::unique_ptr<nn::Linear>> projections_;
    nn::CatInteraction cat_;
    nn::DotInteraction dot_;

    // Forward caches for backward.
    tensor::Tensor bottom_out_;
    std::vector<tensor::Tensor> pooled_raw_;
    std::vector<tensor::Tensor> pooled_;
    tensor::Tensor interact_out_;
    tensor::Tensor logits_;
    std::vector<nn::SparseGrad> sparse_grads_;

    // Scratch.
    std::vector<tensor::Tensor> d_pooled_raw_;
    tensor::Tensor d_logits_;
    tensor::Tensor d_interact_;
    /** Flatten-fused dot backward: the pairwise-slot columns of the
     *  interaction gradient, written compactly by the top-MLP layer-0
     *  segmented input-grad GEMM (d_interact_ stays unwritten then). */
    tensor::Tensor d_interact_pairs_;
    tensor::Tensor d_bottom_out_;
    std::vector<tensor::Tensor> d_pooled_;
    tensor::Tensor d_dense_in_;
};

} // namespace model
} // namespace recsim
