#include "model/dlrm.h"

#include <algorithm>

#include "nn/embedding_backend.h"
#include "nn/loss.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace recsim {
namespace model {

Dlrm::Dlrm(const DlrmConfig& config, uint64_t seed, double max_bytes)
    : config_(config)
{
    const double emb_bytes = config_.embeddingBytes();
    if (emb_bytes > max_bytes) {
        util::fatal("config '{}' needs {} of embeddings (> {} limit); "
                    "use the analytical cost models for shapes this "
                    "large", config_.name,
                    util::bytesToString(emb_bytes),
                    util::bytesToString(max_bytes));
    }
    util::Rng rng(seed);
    bottom_ = std::make_unique<nn::Mlp>(config_.num_dense,
                                        config_.bottomDims(), rng);
    top_ = std::make_unique<nn::Mlp>(config_.interactionWidth(),
                                     config_.topDims(), rng);
    tables_.reserve(config_.numSparse());
    projections_.reserve(config_.numSparse());
    for (const auto& spec : config_.sparse) {
        util::Rng table_rng = rng.fork(spec.hash_size);
        const std::size_t dim = spec.effectiveDim(config_.emb_dim);
        tables_.emplace_back(spec.hash_size, dim, table_rng,
                             nn::Pooling::Sum);
        // Narrow tables project up to the shared width (mixed dims).
        projections_.push_back(
            dim == config_.emb_dim
                ? nullptr
                : std::make_unique<nn::Linear>(dim, config_.emb_dim,
                                               rng));
    }
    pooled_raw_.resize(config_.numSparse());
    pooled_.resize(config_.numSparse());
    d_pooled_raw_.resize(config_.numSparse());
    sparse_grads_.resize(config_.numSparse());
}

void
Dlrm::forwardBottomLayer(std::size_t i, const data::MiniBatch& batch,
                         bool fused)
{
    bottom_->forwardLayer(i, batch.dense, fused);
    if (i + 1 == bottom_->numLayers())
        bottom_out_ = bottom_->output();
}

void
Dlrm::forwardEmbedding(std::size_t f, const data::MiniBatch& batch)
{
    // Narrow tables pool into the raw buffer their projection reads.
    if (projections_[f])
        tables_[f].forward(batch.sparse[f], pooled_raw_[f]);
    else
        tables_[f].forward(batch.sparse[f], pooled_[f]);
}

void
Dlrm::forwardEmbeddingGroup(const std::vector<int>& group,
                            const data::MiniBatch& batch)
{
    RECSIM_TRACE_SPAN("nn.emb.fwd");
    struct Unit
    {
        std::size_t f, e0, e1;
    };
    std::vector<Unit> units;
    for (int fi : group) {
        const auto f = static_cast<std::size_t>(fi);
        const nn::SparseBatch& sb = batch.sparse[f];
        tensor::Tensor& out =
            projections_[f] ? pooled_raw_[f] : pooled_[f];
        const std::size_t b = sb.batchSize();
        const std::size_t dim = tables_[f].dim();
        if (out.rank() != 2 || out.rows() != b || out.cols() != dim)
            out.resize(b, dim);
        else
            out.zero();
        RECSIM_ASSERT(sb.offsets.empty() ||
                          (sb.offsets.front() == 0 &&
                           sb.offsets.back() <= sb.indices.size()),
                      "corrupt SparseBatch offsets");
        // Chunks at multiples of the per-table grain from 0 — the same
        // geometry EmbeddingBag::forward's parallelFor produces.
        const std::size_t g =
            nn::EmbeddingBag::forwardChunkGrain(sb, dim);
        for (std::size_t e0 = 0; e0 < b; e0 += g)
            units.push_back({f, e0, std::min(e0 + g, b)});
    }
    util::globalThreadPool().parallelFor(
        0, units.size(), 1,
        [this, &units, &batch](std::size_t u0, std::size_t u1) {
            for (std::size_t u = u0; u < u1; ++u) {
                const Unit& unit = units[u];
                tensor::Tensor& out = projections_[unit.f]
                    ? pooled_raw_[unit.f]
                    : pooled_[unit.f];
                tables_[unit.f].forwardRange(batch.sparse[unit.f], out,
                                             unit.e0, unit.e1);
            }
        });
    // Close the batch on every member table's backend, serially —
    // exactly what each table's own forward() would have done.
    for (int fi : group) {
        const auto f = static_cast<std::size_t>(fi);
        tables_[f].endForwardBatch(batch.sparse[f]);
    }
}

void
Dlrm::setEmbeddingBackend(std::size_t f,
                          std::shared_ptr<nn::EmbeddingBackend> backend)
{
    RECSIM_ASSERT(f < tables_.size(), "no embedding table {}", f);
    tables_[f].setBackend(std::move(backend));
}

void
Dlrm::installCachedEmbeddingBackends(double hot_tier_bytes,
                                     std::size_t refresh_every)
{
    RECSIM_ASSERT(hot_tier_bytes >= 0.0, "negative hot-tier budget");
    const std::size_t n = tables_.size();
    // Mirror placement's hot-tier allocator (allocateHotTier in
    // placement.cc) byte for byte so the rows installed here are the
    // rows the analytic hit fraction
    // (cost::IterationModel::hotTierHitFraction) was computed for:
    // same overhead-inflated table bytes, same densest-first
    // whole-table packing, same traffic-share split of the leftover.
    constexpr double kOverhead = 1.25;  // PlacementOptions default.
    std::vector<double> bytes(n), access(n);
    for (std::size_t f = 0; f < n; ++f) {
        const auto& spec = config_.sparse[f];
        const double dim = static_cast<double>(tables_[f].dim());
        bytes[f] = static_cast<double>(spec.hash_size) * dim *
            sizeof(float) * kOverhead;
        access[f] = spec.effectiveMeanLength() * dim * sizeof(float);
    }
    std::vector<std::size_t> order(n);
    for (std::size_t f = 0; f < n; ++f)
        order[f] = f;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return access[a] / bytes[a] >
                             access[b] / bytes[b];
                     });

    std::vector<std::size_t> hot_rows(n, 0);
    double remaining = hot_tier_bytes;
    std::vector<std::size_t> partial;
    double partial_access = 0.0;
    for (std::size_t f : order) {
        if (bytes[f] <= remaining) {
            hot_rows[f] = config_.sparse[f].hash_size;
            remaining -= bytes[f];
        } else {
            partial.push_back(f);
            partial_access += access[f];
        }
    }
    if (remaining > 0.0 && partial_access > 0.0) {
        for (std::size_t f : partial) {
            const double share = access[f] / partial_access;
            const double hot = std::min(remaining * share, bytes[f]);
            hot_rows[f] = static_cast<std::size_t>(
                static_cast<double>(config_.sparse[f].hash_size) *
                hot / bytes[f]);
        }
    }

    for (std::size_t f = 0; f < n; ++f) {
        nn::CachedBackendConfig cfg;
        cfg.hot_rows = hot_rows[f];
        cfg.refresh_every = refresh_every;
        cfg.label = "emb.t" + std::to_string(f);
        tables_[f].setBackend(nn::makeCachedBackend(std::move(cfg)));
    }
}

void
Dlrm::installDramEmbeddingBackends()
{
    for (auto& table : tables_)
        table.setBackend(nn::makeDramBackend());
}

void
Dlrm::forwardProjection(std::size_t f, bool fused)
{
    if (fused)
        projections_[f]->forwardFused(pooled_raw_[f], pooled_[f], false);
    else
        projections_[f]->forward(pooled_raw_[f], pooled_[f]);
}

void
Dlrm::forwardInteraction()
{
    if (config_.interaction == nn::InteractionKind::DotProduct)
        dot_.forward(bottom_out_, pooled_, interact_out_);
    else
        cat_.forward(bottom_out_, pooled_, interact_out_);
}

void
Dlrm::forwardTopLayer(std::size_t i, bool fused)
{
    top_->forwardLayer(i, interact_out_, fused);
    if (i + 1 == top_->numLayers())
        logits_ = top_->output();
}

double
Dlrm::lossBackward(const data::MiniBatch& batch)
{
    return nn::bceWithLogits(logits_, batch.labels, d_logits_);
}

void
Dlrm::backwardTopLayer(std::size_t i, bool fused, bool flatten)
{
    if (flatten && i == 0) {
        // Interaction-flatten fusion: run layer 0's backward by hand —
        // parameter grads as usual, but the input-grad GEMM writes the
        // interaction backward's destinations directly (segmented over
        // the product's columns) instead of the d_interact_ flatten
        // buffer. Each segment element carries the exact fma chain of
        // the unsegmented GEMM, and the dot pass-through's zero-bias
        // segment reproduces its zero + += bits, so the fused walk
        // stays bitwise equal (d_interact_ is simply never written).
        const tensor::Tensor& grad = top_->gradInto(0, d_logits_);
        nn::Linear& l0 = top_->layers()[0];
        if (fused)
            l0.backwardNoInputGradFused(interact_out_, grad);
        else
            l0.backwardNoInputGrad(interact_out_, grad);
        std::vector<tensor::GemmOutSegment> segs;
        if (config_.interaction == nn::InteractionKind::DotProduct) {
            const std::size_t f = pooled_.size() + 1;
            const std::size_t pairs = f * (f - 1) / 2;
            segs.push_back({&d_bottom_out_, bottom_out_.cols(),
                            /*zero_bias=*/true});
            if (pairs > 0)
                segs.push_back({&d_interact_pairs_, pairs, false});
        } else {
            // Ordinarily CatInteraction::backward sizes this vector.
            d_pooled_.resize(pooled_.size());
            segs.push_back({&d_bottom_out_, bottom_out_.cols(), false});
            for (std::size_t s = 0; s < pooled_.size(); ++s)
                segs.push_back({&d_pooled_[s], pooled_[s].cols(),
                                false});
        }
        tensor::matmulTransBSegmented(grad, l0.weight, segs);
        return;
    }
    if (fused)
        top_->backwardLayerFused(i, interact_out_, d_logits_,
                                 d_interact_);
    else
        top_->backwardLayer(i, interact_out_, d_logits_, d_interact_);
}

void
Dlrm::backwardInteraction(bool flatten)
{
    if (flatten) {
        // The flatten-fused top-MLP layer 0 already wrote d_bottom_out_
        // (and, for concat, every d_pooled_) — only the dot pairwise
        // scatter remains.
        if (config_.interaction == nn::InteractionKind::DotProduct)
            dot_.backwardFused(bottom_out_, pooled_, d_interact_pairs_,
                               d_bottom_out_, d_pooled_);
        return;
    }
    if (config_.interaction == nn::InteractionKind::DotProduct)
        dot_.backward(bottom_out_, pooled_, d_interact_, d_bottom_out_,
                      d_pooled_);
    else
        cat_.backward(bottom_out_, pooled_, d_interact_, d_bottom_out_,
                      d_pooled_);
}

void
Dlrm::backwardBottomLayer(std::size_t i, const data::MiniBatch& batch,
                          bool fused)
{
    if (fused)
        bottom_->backwardLayerFused(i, batch.dense, d_bottom_out_,
                                    d_dense_in_);
    else
        bottom_->backwardLayer(i, batch.dense, d_bottom_out_,
                               d_dense_in_);
}

void
Dlrm::backwardProjection(std::size_t f, bool fused)
{
    if (fused)
        projections_[f]->backwardFused(pooled_raw_[f], d_pooled_[f],
                                       d_pooled_raw_[f], nullptr);
    else
        projections_[f]->backward(pooled_raw_[f], d_pooled_[f],
                                  d_pooled_raw_[f]);
}

void
Dlrm::backwardEmbedding(std::size_t f, const data::MiniBatch& batch)
{
    const tensor::Tensor& grad =
        projections_[f] ? d_pooled_raw_[f] : d_pooled_[f];
    tables_[f].backward(batch.sparse[f], grad, sparse_grads_[f]);
}

void
Dlrm::backwardEmbeddingGroup(const std::vector<int>& group,
                             const data::MiniBatch& batch)
{
    for (int fi : group)
        backwardEmbedding(static_cast<std::size_t>(fi), batch);
}

void
Dlrm::runForwardGraph(const data::MiniBatch& batch)
{
    {
        obs::TraceSpan mlp_span("nn.mlp.fwd");
        for (std::size_t i = 0; i < bottom_->numLayers(); ++i)
            forwardBottomLayer(i, batch);
    }
    for (std::size_t f = 0; f < tables_.size(); ++f) {
        forwardEmbedding(f, batch);
        if (projections_[f])
            forwardProjection(f);
    }
    forwardInteraction();
    {
        obs::TraceSpan mlp_span("nn.mlp.fwd");
        for (std::size_t i = 0; i < top_->numLayers(); ++i)
            forwardTopLayer(i);
    }
}

void
Dlrm::runBackwardGraph(const data::MiniBatch& batch)
{
    {
        obs::TraceSpan mlp_span("nn.mlp.bwd");
        for (std::size_t i = top_->numLayers(); i-- > 0;)
            backwardTopLayer(i);
    }
    backwardInteraction();
    {
        obs::TraceSpan mlp_span("nn.mlp.bwd");
        for (std::size_t i = bottom_->numLayers(); i-- > 0;)
            backwardBottomLayer(i, batch);
    }
    for (std::size_t f = 0; f < tables_.size(); ++f) {
        if (projections_[f])
            backwardProjection(f);
        backwardEmbedding(f, batch);
    }
}

void
Dlrm::forward(const data::MiniBatch& batch, tensor::Tensor& logits)
{
    RECSIM_ASSERT(batch.sparse.size() == tables_.size(),
                  "batch has {} sparse features, model expects {}",
                  batch.sparse.size(), tables_.size());
    RECSIM_TRACE_SPAN("model.fwd");
    runForwardGraph(batch);
    logits = logits_;
}

double
Dlrm::forwardBackward(const data::MiniBatch& batch)
{
    RECSIM_ASSERT(batch.sparse.size() == tables_.size(),
                  "batch has {} sparse features, model expects {}",
                  batch.sparse.size(), tables_.size());
    double loss = 0.0;
    {
        RECSIM_TRACE_SPAN("model.fwd");
        runForwardGraph(batch);
    }
    loss = lossBackward(batch);
    RECSIM_TRACE_SPAN("model.bwd");
    runBackwardGraph(batch);
    return loss;
}

void
Dlrm::zeroGrad()
{
    bottom_->zeroGrad();
    top_->zeroGrad();
    for (auto& proj : projections_) {
        if (proj)
            proj->zeroGrad();
    }
    // Clearing rows (the size the optimizers iterate) is enough;
    // keeping the values buffer lets the next backward reuse it.
    for (auto& g : sparse_grads_)
        g.rows.clear();
}

void
Dlrm::step(const nn::Sgd& opt)
{
    opt.step(*bottom_);
    opt.step(*top_);
    for (auto& proj : projections_) {
        if (proj)
            opt.step(*proj);
    }
    for (std::size_t f = 0; f < tables_.size(); ++f)
        opt.stepSparse(tables_[f], sparse_grads_[f]);
    zeroGrad();
}

void
Dlrm::step(nn::Adagrad& opt)
{
    opt.step(*bottom_);
    opt.step(*top_);
    for (auto& proj : projections_) {
        if (proj)
            opt.step(*proj);
    }
    for (std::size_t f = 0; f < tables_.size(); ++f)
        opt.stepSparse(tables_[f], sparse_grads_[f]);
    zeroGrad();
}

double
Dlrm::evalLoss(const data::MiniBatch& batch)
{
    tensor::Tensor logits;
    forward(batch, logits);
    return nn::bceWithLogitsLoss(logits, batch.labels);
}

double
Dlrm::evalNormalizedEntropy(const data::MiniBatch& batch)
{
    tensor::Tensor logits;
    forward(batch, logits);
    return nn::normalizedEntropy(logits, batch.labels);
}

std::vector<tensor::Tensor*>
Dlrm::denseParams()
{
    std::vector<tensor::Tensor*> params;
    for (auto* mlp : {bottom_.get(), top_.get()}) {
        for (auto& layer : mlp->layers()) {
            params.push_back(&layer.weight);
            params.push_back(&layer.bias);
        }
    }
    for (auto& proj : projections_) {
        if (proj) {
            params.push_back(&proj->weight);
            params.push_back(&proj->bias);
        }
    }
    return params;
}

std::size_t
Dlrm::numDenseParams() const
{
    std::size_t total = bottom_->numParams() + top_->numParams();
    for (const auto& proj : projections_) {
        if (proj)
            total += proj->numParams();
    }
    return total;
}

} // namespace model
} // namespace recsim
