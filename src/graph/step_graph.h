/**
 * @file
 * StepGraph IR: one DLRM training iteration as a typed operator graph.
 *
 * The paper's methodology is a per-operator breakdown of one training
 * step (Figs 9-14, Table III). Before this IR existed the repo encoded
 * that step three separate times — closed-form phase formulas in
 * cost/iteration_model, hand-wired DES events in sim/dist_sim, and the
 * real layer sequence in train/trainer — which could silently drift
 * apart. The StepGraph is the single source of truth the three share:
 *
 *  - buildModelStepGraph() lowers a DlrmConfig into per-layer Gemm
 *    nodes, per-table EmbeddingLookup (and projection Gemm) nodes, an
 *    Interaction node, Loss and OptimizerUpdate nodes, each annotated
 *    with per-example FLOPs, bytes moved and parameter bytes using the
 *    exact arithmetic of DlrmConfig::footprint() / mlpParams();
 *  - placement::bindStepGraph() annotates the embedding nodes with
 *    their device/shard and appends the Comm nodes (PS RPC legs,
 *    all-to-all, allreduce, input pipeline) the placement implies;
 *  - summarize() folds the node annotations back into the aggregate
 *    work totals, reproducing ExampleFootprint bit-for-bit so every
 *    consumer that previously called footprint() gets identical values.
 *
 * Consumers: cost/IterationModel folds phase times over the nodes,
 * sim/dist_sim schedules the nodes as DES events, train/runGraphStep
 * executes the real nn layers node by node (tagging obs spans with the
 * node ids), and placement derives its TableCosts from the embedding
 * nodes. bench/validation_graph_breakdown lines the three up per node.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/config.h"

namespace recsim {
namespace graph {

/** Operator type of a node. */
enum class NodeKind
{
    Gemm,             ///< One Linear layer (fwd GEMM; bwd implied).
    EmbeddingLookup,  ///< One table: gather + pool.
    Interaction,      ///< Pairwise-dot (or concat) feature interaction.
    Loss,             ///< BCE-with-logits loss + gradient seed.
    OptimizerUpdate,  ///< Dense + sparse parameter update.
    Comm              ///< Communication / RPC leg (see CommOp).
};

/** Which MLP a Gemm node belongs to. */
enum class GemmRole
{
    BottomMlp,
    TopMlp,
    Projection  ///< Mixed-dimension up-projection for one table.
};

/** Communication op of a Comm node. */
enum class CommOp
{
    None,
    PsRequest,    ///< Trainer -> sparse-PS index request (one shard).
    PsGather,     ///< PS-side embedding-row gather (one shard).
    PsPool,       ///< PS-side pooling + gradient scatter (one shard).
    PsResponse,   ///< Sparse-PS -> trainer pooled vectors (one shard).
    GradPush,     ///< Trainer -> sparse-PS pooled gradients (one shard).
    Deserialize,  ///< Host-CPU RPC deserialization of PS responses.
    DenseSync,    ///< Amortized EASGD dense sync with the dense PS.
    AllToAll,     ///< Pooled-embedding exchange across GPUs.
    AllReduce,    ///< Dense-gradient allreduce across GPUs.
    HostGather,   ///< Host-memory embedding gather on a GPU server.
    PcieStage,    ///< Pooled vectors staged host <-> GPU over PCIe.
    Input         ///< Input pipeline: reader bytes + host transform.
};

/** Where a node executes after placement binding. */
enum class Device
{
    Unassigned,
    TrainerCpu,
    Gpu,
    HostCpu,   ///< GPU server's host sockets.
    SparsePs,
    DensePs
};

/** One operator of the training step, annotated with its work. */
struct Node
{
    /** Stable id, e.g. "bottom_mlp.l0", "emb.t3", "comm.ps_gather.s1".
     *  These are the keys the cost model, the DES and the trainer's
     *  obs spans all report under. */
    std::string id;
    NodeKind kind = NodeKind::Gemm;
    GemmRole role = GemmRole::BottomMlp;
    CommOp comm = CommOp::None;
    Device device = Device::Unassigned;

    /** Layer index within its MLP (Gemm), else -1. */
    int layer = -1;
    /** Sparse-feature index (EmbeddingLookup / Projection), else -1. */
    int table = -1;
    /** Hosting shard (PS index or GPU index) after binding, else -1. */
    int shard = -1;

    std::size_t in_width = 0;
    std::size_t out_width = 0;

    /** Forward FLOPs per example (backward is a model-level multiple). */
    double fwd_flops = 0.0;
    /** Learned parameters (weights + biases) owned by this node. */
    double param_count = 0.0;
    /** Resident parameter bytes (FP32, before serving compression). */
    double param_bytes = 0.0;
    /** Memory bytes touched per example (embedding-row reads). */
    double bytes_per_example = 0.0;
    /** Activated indices per example (EmbeddingLookup). */
    double lookups_per_example = 0.0;
    /** Pooled-vector bytes per example (EmbeddingLookup). */
    double pooled_bytes_per_example = 0.0;

    /** Embedding rows (hash size) of an EmbeddingLookup node. */
    uint64_t rows = 0;
    /** Zipf skew of this table's index popularity. */
    double zipf_exponent = 0.0;

    /**
     * EmbeddingLookup nodes: hot-tier bytes the placement planner
     * allocated to this table (placement::bindStepGraph), and the
     * predicted fraction of this node's lookup traffic the hot tier
     * serves. Zero when no hot-tier budget is configured. fusePass
     * sums the bytes and traffic-weights the hit fraction over member
     * tables, so grouped nodes keep a meaningful tier split.
     */
    double hot_tier_bytes = 0.0;
    double hot_hit_fraction = 0.0;

    /**
     * Gemm nodes: activation bytes per example the *unfused* bias +
     * activation epilogue re-reads and re-writes as separate passes
     * over the layer output (2 * out_width * 4 per pass). Set by
     * buildModelStepGraph(), zeroed by fusePass() when the epilogue is
     * folded into the GEMM store — the memory-traffic saving fusion
     * buys, priced by cost::IterationModel and sim::runDistSim.
     */
    double epilogue_traffic_bytes = 0.0;
    /**
     * Gemm nodes: the bias(+activation) epilogue runs inside the GEMM
     * (tensor::matmulBiasAct) instead of as separate passes. Set by
     * fusePass(); the trainer dispatches on it.
     */
    bool fused_epilogue = false;
    /**
     * Backward-pass twin of epilogue_traffic_bytes: bytes per example
     * the *unfused* backward epilogues move as separate passes — the
     * bias-grad sumRows re-read of dy (out_width * 4) plus, for hidden
     * layers, reluBackward's read+write of the input gradient
     * (2 * in_width * 4). On the Interaction node it is instead the
     * flatten-buffer traffic the interaction-flatten fusion removes
     * (the d_interact round trip). Set by buildModelStepGraph(),
     * zeroed by fusePass() alongside the flags below.
     */
    double bwd_epilogue_traffic_bytes = 0.0;
    /**
     * Gemm nodes: the backward epilogues run inside the grad GEMMs —
     * bias grad accumulated in the weight-grad sweep
     * (tensor::matmulTransABiasGrad) and the dReLU mask applied in the
     * input-grad GEMM store (tensor::matmulTransBMask). Set by
     * fusePass(); the trainer dispatches on it.
     */
    bool fused_backward = false;
    /**
     * Interaction-flatten fusion: on the top-MLP layer-0 Gemm node,
     * its input-grad GEMM writes the interaction backward's scattered
     * destinations directly (tensor::matmulTransBSegmented), skipping
     * the intermediate flatten buffer; on the Interaction node, its
     * backward consumes those segment outputs instead of the flatten
     * buffer. Set by fusePass() on both nodes of the pair; the trainer
     * dispatches on it.
     */
    bool fused_flatten = false;
    /**
     * Grouped-lookup nodes (fusePass): the member tables, in merge
     * order. Empty for ordinary nodes. The trainer dispatches a
     * grouped node to Dlrm::forwardEmbeddingGroup over these tables;
     * annotation fields hold the member sums (in this order).
     */
    std::vector<int> fused_tables;

    /**
     * Comm nodes: this shard's fraction of the per-example lookup
     * traffic (shard_access_bytes[s] / total), 1.0 for unsharded ops.
     */
    double share = 0.0;

    /**
     * Predecessors: indices into StepGraph::nodes of the nodes whose
     * outputs this node consumes. Empty = the node is ready at
     * iteration start (consumes only the input batch). Populated by
     * buildModelStepGraph() (compute dataflow) and bindStepGraph()
     * (comm legs + comm->compute joins). Edges may point forward in
     * the nodes vector — only topoOrder() is execution-ordered.
     */
    std::vector<std::size_t> deps;
};

/**
 * Aggregate per-example work totals folded from the graph's nodes.
 * The folds follow the exact accumulation order of
 * DlrmConfig::footprint(), so every field that has a footprint
 * counterpart is bit-identical to it.
 */
struct WorkSummary
{
    double mlp_flops = 0.0;          ///< == footprint().mlp_flops
    double interaction_flops = 0.0;  ///< == footprint().interaction_flops
    double embedding_bytes = 0.0;    ///< == footprint().embedding_bytes
    double embedding_lookups = 0.0;  ///< == footprint().embedding_lookups
    double pooled_bytes = 0.0;       ///< == footprint().pooled_bytes
    double dense_input_bytes = 0.0;  ///< == footprint().dense_input_bytes

    /** Activation + gradient working-set bytes per example (the cost
     *  model's cache-pressure input): (dense in + every MLP layer out +
     *  interaction out) * sizeof(float) * 2. */
    double activation_bytes = 0.0;
    /** Unfused-epilogue traffic per example, summed over Gemm nodes in
     *  node order; zero after fusePass(). */
    double epilogue_traffic_bytes = 0.0;
    /** Unfused *backward*-epilogue + flatten traffic per example,
     *  summed over Gemm and Interaction nodes in node order; zero
     *  after fusePass(). */
    double bwd_epilogue_traffic_bytes = 0.0;
    /** Total dense parameters; == double(DlrmConfig::mlpParams()). */
    double dense_param_count = 0.0;

    /** Hot-tier bytes allocated across EmbeddingLookup nodes. */
    double emb_hot_tier_bytes = 0.0;
    /** Traffic-weighted (by bytes_per_example) hot hit fraction over
     *  all lookup traffic; 0 without a hot tier. */
    double emb_hot_hit_fraction = 0.0;

    std::size_t mlp_layers = 0;        ///< Bottom + top Gemm nodes.
    std::size_t embedding_tables = 0;  ///< EmbeddingLookup nodes.
    std::size_t emb_dim = 0;           ///< Shared embedding width.
};

/** The operator graph of one training iteration. */
struct StepGraph
{
    /** Model name the graph was built from. */
    std::string model_name;
    /** Dense-feature count (bottom-MLP input width). */
    std::size_t num_dense = 0;
    /** Shared embedding dimension. */
    std::size_t emb_dim = 0;

    /**
     * Nodes in forward execution order: bottom_mlp.l*, then per table
     * emb.t* (followed by proj.t* when the table is narrow), then
     * interaction, top_mlp.l*, loss, optimizer. Comm nodes appended by
     * placement::bindStepGraph() follow.
     */
    std::vector<Node> nodes;

    /** Sentinel index for "no such node". */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** First node with @p id, or nullptr. O(1) after reindex(). */
    const Node* find(const std::string& id) const;

    /** Index of the first node with @p id, or npos. O(1) after
     *  reindex(). */
    std::size_t indexOf(const std::string& id) const;

    /** Indices of nodes matching a predicate-free (kind) filter. */
    std::vector<std::size_t> indicesOf(NodeKind kind) const;

    /** First Comm node with @p op and @p shard (-1 = any), or null.
     *  O(1) after reindex(). */
    const Node* findComm(CommOp op, int shard = -1) const;

    std::size_t numNodes() const { return nodes.size(); }

    /**
     * Rebuild the id -> index and (comm op, shard) -> index maps that
     * make find()/indexOf()/findComm() O(1). buildModelStepGraph() and
     * bindStepGraph() call this; call it again after mutating `nodes`
     * by hand. Lookups on a graph whose maps are stale (indexed node
     * count != nodes.size()) fall back to the linear scan, so
     * hand-assembled test graphs keep working without it.
     */
    void reindex();

    /**
     * Indices of every node in a topological order of the dep edges.
     * Deterministic: among simultaneously-ready nodes the lowest index
     * comes first (Kahn's algorithm with a min-heap). Panics on a
     * cyclic or malformed graph — call validate() first when the deps
     * are untrusted.
     */
    std::vector<std::size_t> topoOrder() const;

    /**
     * Check the dep edges: every index in range, no self-deps, no
     * duplicate deps, no cycles. Returns an empty string when the
     * graph is valid, else a description of the first problem found.
     */
    std::string validate() const;

    /**
     * Length of the longest path through the dep DAG where node i
     * contributes node_cost(i): finish(i) = node_cost(i) +
     * max(finish(dep)), result = max over nodes. With per-node seconds
     * this is the iteration lower bound under perfect overlap — the
     * serial sum divided by it is the graph's inherent parallelism.
     */
    double criticalPath(
        const std::function<double(std::size_t)>& node_cost) const;

  private:
    /** id -> index; valid while indexed_count_ == nodes.size(). */
    std::unordered_map<std::string, std::size_t> id_index_;
    /** (comm op, shard+1) -> index; shard key 0 = first with the op. */
    std::unordered_map<uint64_t, std::size_t> comm_index_;
    std::size_t indexed_count_ = 0;

    bool indexFresh() const { return indexed_count_ == nodes.size(); }
    static uint64_t commKey(CommOp op, int shard)
    {
        return (static_cast<uint64_t>(op) << 32) |
            static_cast<uint32_t>(shard + 1);
    }
};

/**
 * Lower @p config into the compute nodes of one training step. Device
 * and shard fields stay Unassigned / -1 until a placement is bound.
 */
StepGraph buildModelStepGraph(const model::DlrmConfig& config);

/**
 * The forward-only (inference) subgraph of @p graph: every executable
 * compute node (Gemm, EmbeddingLookup, Interaction) with its
 * annotations intact, Loss / OptimizerUpdate / Comm nodes dropped and
 * the dep edges rewired through them (transitively), so a node gated
 * only on a dropped node becomes ready at query start. Node order,
 * ids and work annotations are preserved, which is what lets the
 * serving engine (serve/engine.h) execute the exact forward half the
 * trainer runs and stay bitwise-equal to it.
 */
StepGraph forwardSubgraph(const StepGraph& graph);

/**
 * Operator-fusion rewrite of the IR, in place. Three rewrites:
 *
 *  1. GEMM epilogue fusion, forward and backward: every Gemm node's
 *     bias + activation epilogue is folded into the GEMM store pass —
 *     the node keeps its id (predicted / simulated / measured columns
 *     keep lining up), gains fused_epilogue = true and drops
 *     epilogue_traffic_bytes to zero. The backward stage does the same
 *     for the grad epilogues: fused_backward = true marks that the
 *     bias gradient is accumulated inside the weight-grad GEMM sweep
 *     (tensor::matmulTransABiasGrad) and the dReLU mask is applied
 *     inside the input-grad GEMM store (tensor::matmulTransBMask);
 *     bwd_epilogue_traffic_bytes drops to zero. Execution is bitwise
 *     identical to the unfused passes; only memory traffic changes.
 *
 *  2. Interaction-flatten fusion: the top-MLP layer-0 node and the
 *     Interaction node both gain fused_flatten = true — the layer-0
 *     input-grad GEMM writes the interaction backward's scattered
 *     dense/embedding-grad destinations directly
 *     (tensor::matmulTransBSegmented) and the interaction backward
 *     consumes them there, eliminating the intermediate flatten buffer
 *     and its write + re-read; the Interaction node's
 *     bwd_epilogue_traffic_bytes (that round trip) drops to zero.
 *
 *  3. Embedding-lookup batching: EmbeddingLookup nodes on the same
 *     device are merged (in node order) into one grouped node
 *     "emb.grouped.g{ordinal}" placed at the first member's position,
 *     with fused_tables listing the member tables, annotations summed
 *     in member order, deps the (deduplicated) union of member deps,
 *     and every consumer edge rewired to the group. Groups of one are
 *     left untouched. The trainer runs a grouped node as one flattened
 *     parallelFor over all member (table, example-chunk) units with
 *     per-table chunk geometry unchanged — bitwise identical to the
 *     per-table dispatches — and the cost model / DES price the
 *     saving as one dispatch instead of N.
 *
 * Idempotent: fusing an already-fused graph changes nothing. Comm /
 * Loss / Optimizer nodes and all non-merged annotations are preserved;
 * reindex() is re-run. Aggregate summarize() totals are unchanged
 * (exactly, when each device hosts one group — FP re-association only
 * otherwise).
 */
void fusePass(StepGraph& graph);

/** Fold the graph's annotations into aggregate work totals. */
WorkSummary summarize(const StepGraph& graph);

/** Human-readable names for reporting. */
std::string toString(NodeKind kind);
std::string toString(Device device);

} // namespace graph
} // namespace recsim
