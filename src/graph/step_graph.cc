#include "graph/step_graph.h"

#include "util/logging.h"

namespace recsim {
namespace graph {

const Node*
StepGraph::find(const std::string& id) const
{
    for (const auto& node : nodes) {
        if (node.id == id)
            return &node;
    }
    return nullptr;
}

std::vector<std::size_t>
StepGraph::indicesOf(NodeKind kind) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].kind == kind)
            out.push_back(i);
    }
    return out;
}

const Node*
StepGraph::findComm(CommOp op, int shard) const
{
    for (const auto& node : nodes) {
        if (node.kind == NodeKind::Comm && node.comm == op &&
            (shard < 0 || node.shard == shard)) {
            return &node;
        }
    }
    return nullptr;
}

StepGraph
buildModelStepGraph(const model::DlrmConfig& config)
{
    StepGraph g;
    g.model_name = config.name;
    g.num_dense = config.num_dense;
    g.emb_dim = config.emb_dim;

    // The per-node work annotations below use the exact expressions of
    // DlrmConfig::footprint() / mlpParams() / placement::TableCosts so
    // that summarize() and the per-table cost derivations reproduce the
    // pre-graph values bit for bit.

    auto addGemm = [&g](GemmRole role, const char* prefix, int layer,
                        std::size_t in, std::size_t out) {
        Node node;
        node.id = std::string(prefix) + ".l" + std::to_string(layer);
        node.kind = NodeKind::Gemm;
        node.role = role;
        node.layer = layer;
        node.in_width = in;
        node.out_width = out;
        node.fwd_flops = 2.0 * static_cast<double>(in) *
            static_cast<double>(out);
        node.param_count = static_cast<double>(in * out + out);
        node.param_bytes = node.param_count * sizeof(float);
        g.nodes.push_back(std::move(node));
    };

    // Bottom MLP (including the implicit projection to emb_dim).
    {
        std::size_t in = config.num_dense;
        int layer = 0;
        for (std::size_t out : config.bottomDims()) {
            addGemm(GemmRole::BottomMlp, "bottom_mlp", layer++, in, out);
            in = out;
        }
    }

    // Embedding tables, each followed by its mixed-dimension projection
    // when the table is narrower than the shared width.
    for (std::size_t t = 0; t < config.sparse.size(); ++t) {
        const auto& spec = config.sparse[t];
        const std::size_t dim = spec.effectiveDim(config.emb_dim);
        const auto d = static_cast<double>(dim);
        Node node;
        node.id = "emb.t" + std::to_string(t);
        node.kind = NodeKind::EmbeddingLookup;
        node.table = static_cast<int>(t);
        node.out_width = dim;
        node.rows = spec.hash_size;
        node.zipf_exponent = spec.zipf_exponent;
        node.lookups_per_example = spec.effectiveMeanLength();
        node.bytes_per_example =
            spec.effectiveMeanLength() * d * sizeof(float);
        node.pooled_bytes_per_example = d * sizeof(float);
        node.param_bytes =
            static_cast<double>(spec.hash_size) * d * sizeof(float);
        g.nodes.push_back(std::move(node));

        if (dim != config.emb_dim) {
            Node proj;
            proj.id = "proj.t" + std::to_string(t);
            proj.kind = NodeKind::Gemm;
            proj.role = GemmRole::Projection;
            proj.table = static_cast<int>(t);
            proj.in_width = dim;
            proj.out_width = config.emb_dim;
            proj.fwd_flops =
                2.0 * d * static_cast<double>(config.emb_dim);
            proj.param_count = static_cast<double>(
                dim * config.emb_dim + config.emb_dim);
            proj.param_bytes = proj.param_count * sizeof(float);
            g.nodes.push_back(std::move(proj));
        }
    }

    // Feature interaction.
    {
        Node node;
        node.id = "interaction";
        node.kind = NodeKind::Interaction;
        node.in_width = config.emb_dim;
        node.out_width = config.interactionWidth();
        if (config.interaction == nn::InteractionKind::DotProduct) {
            const auto f = static_cast<double>(config.numSparse() + 1);
            node.fwd_flops = f * (f - 1.0) / 2.0 * 2.0 *
                static_cast<double>(config.emb_dim);
        }
        g.nodes.push_back(std::move(node));
    }

    // Top MLP (including the implicit 1-wide logit layer).
    {
        std::size_t in = config.interactionWidth();
        int layer = 0;
        for (std::size_t out : config.topDims()) {
            addGemm(GemmRole::TopMlp, "top_mlp", layer++, in, out);
            in = out;
        }
    }

    // Loss + optimizer close the step.
    {
        Node loss;
        loss.id = "loss";
        loss.kind = NodeKind::Loss;
        loss.in_width = 1;
        g.nodes.push_back(std::move(loss));

        Node opt;
        opt.id = "optimizer";
        opt.kind = NodeKind::OptimizerUpdate;
        g.nodes.push_back(std::move(opt));
    }
    return g;
}

WorkSummary
summarize(const StepGraph& graph)
{
    WorkSummary s;
    s.emb_dim = graph.emb_dim;

    // MLP FLOPs: bottom sum + top sum, then projections in table order
    // — the accumulation order of DlrmConfig::footprint().
    double bottom_flops = 0.0, top_flops = 0.0;
    double act_bytes =
        static_cast<double>(graph.num_dense) * sizeof(float);
    for (const auto& node : graph.nodes) {
        if (node.kind != NodeKind::Gemm)
            continue;
        if (node.role == GemmRole::BottomMlp) {
            bottom_flops += node.fwd_flops;
            act_bytes +=
                static_cast<double>(node.out_width) * sizeof(float);
            ++s.mlp_layers;
        } else if (node.role == GemmRole::TopMlp) {
            top_flops += node.fwd_flops;
            ++s.mlp_layers;
        }
    }
    s.mlp_flops = bottom_flops + top_flops;

    for (const auto& node : graph.nodes) {
        switch (node.kind) {
          case NodeKind::Gemm:
            s.dense_param_count += node.param_count;
            if (node.role == GemmRole::Projection)
                s.mlp_flops += node.fwd_flops;
            break;
          case NodeKind::EmbeddingLookup:
            s.embedding_lookups += node.lookups_per_example;
            s.embedding_bytes += node.bytes_per_example;
            s.pooled_bytes += node.pooled_bytes_per_example;
            ++s.embedding_tables;
            break;
          case NodeKind::Interaction:
            s.interaction_flops = node.fwd_flops;
            act_bytes +=
                static_cast<double>(node.out_width) * sizeof(float);
            break;
          default:
            break;
        }
    }
    // dense_param_count so far misses nothing: bottom + top + proj
    // Gemm nodes are all counted above, matching mlpParams().

    // Top-MLP activations follow the interaction in the working set.
    for (const auto& node : graph.nodes) {
        if (node.kind == NodeKind::Gemm && node.role == GemmRole::TopMlp)
            act_bytes +=
                static_cast<double>(node.out_width) * sizeof(float);
    }
    s.activation_bytes = act_bytes * 2.0;  // forward acts + grads

    s.dense_input_bytes =
        static_cast<double>(graph.num_dense) * sizeof(float);
    return s;
}

std::string
toString(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Gemm:
        return "gemm";
      case NodeKind::EmbeddingLookup:
        return "embedding_lookup";
      case NodeKind::Interaction:
        return "interaction";
      case NodeKind::Loss:
        return "loss";
      case NodeKind::OptimizerUpdate:
        return "optimizer_update";
      case NodeKind::Comm:
        return "comm";
    }
    util::panic("unknown NodeKind");
}

std::string
toString(Device device)
{
    switch (device) {
      case Device::Unassigned:
        return "unassigned";
      case Device::TrainerCpu:
        return "trainer_cpu";
      case Device::Gpu:
        return "gpu";
      case Device::HostCpu:
        return "host_cpu";
      case Device::SparsePs:
        return "sparse_ps";
      case Device::DensePs:
        return "dense_ps";
    }
    util::panic("unknown Device");
}

} // namespace graph
} // namespace recsim
