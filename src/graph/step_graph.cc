#include "graph/step_graph.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace recsim {
namespace graph {

const Node*
StepGraph::find(const std::string& id) const
{
    const std::size_t i = indexOf(id);
    return i == npos ? nullptr : &nodes[i];
}

std::size_t
StepGraph::indexOf(const std::string& id) const
{
    if (indexFresh()) {
        auto it = id_index_.find(id);
        return it == id_index_.end() ? npos : it->second;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].id == id)
            return i;
    }
    return npos;
}

std::vector<std::size_t>
StepGraph::indicesOf(NodeKind kind) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].kind == kind)
            out.push_back(i);
    }
    return out;
}

const Node*
StepGraph::findComm(CommOp op, int shard) const
{
    if (indexFresh()) {
        auto it = comm_index_.find(commKey(op, shard));
        return it == comm_index_.end() ? nullptr : &nodes[it->second];
    }
    for (const auto& node : nodes) {
        if (node.kind == NodeKind::Comm && node.comm == op &&
            (shard < 0 || node.shard == shard)) {
            return &node;
        }
    }
    return nullptr;
}

void
StepGraph::reindex()
{
    id_index_.clear();
    comm_index_.clear();
    id_index_.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        id_index_.emplace(nodes[i].id, i);  // first id wins, like find()
        if (nodes[i].kind != NodeKind::Comm)
            continue;
        // "Any shard" entry (shard key 0) plus the exact-shard entry;
        // for an unsharded comm node the two coincide.
        comm_index_.emplace(commKey(nodes[i].comm, -1), i);
        if (nodes[i].shard >= 0)
            comm_index_.emplace(commKey(nodes[i].comm, nodes[i].shard),
                                i);
    }
    indexed_count_ = nodes.size();
}

std::vector<std::size_t>
StepGraph::topoOrder() const
{
    const std::size_t n = nodes.size();
    std::vector<std::size_t> indegree(n, 0);
    std::vector<std::vector<std::size_t>> successors(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d : nodes[i].deps) {
            RECSIM_ASSERT(d < n, "StepGraph dep index out of range");
            ++indegree[i];
            successors[d].push_back(i);
        }
    }
    // Min-heap on the node index makes the order deterministic and
    // keeps simultaneously-ready nodes in build order.
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        std::greater<std::size_t>> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            ready.push(i);
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
        const std::size_t i = ready.top();
        ready.pop();
        order.push_back(i);
        for (std::size_t s : successors[i]) {
            if (--indegree[s] == 0)
                ready.push(s);
        }
    }
    RECSIM_ASSERT(order.size() == n,
                  "StepGraph has a dependency cycle");
    return order;
}

std::string
StepGraph::validate() const
{
    const std::size_t n = nodes.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<std::size_t> seen;
        for (std::size_t d : nodes[i].deps) {
            if (d >= n) {
                return "node '" + nodes[i].id + "' dep " +
                    std::to_string(d) + " out of range (" +
                    std::to_string(n) + " nodes)";
            }
            if (d == i)
                return "node '" + nodes[i].id + "' depends on itself";
            seen.push_back(d);
        }
        std::sort(seen.begin(), seen.end());
        if (std::adjacent_find(seen.begin(), seen.end()) != seen.end())
            return "node '" + nodes[i].id + "' has a duplicate dep";
    }
    // Kahn count check (edges validated above, so no asserts fire).
    std::vector<std::size_t> indegree(n, 0);
    std::vector<std::vector<std::size_t>> successors(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d : nodes[i].deps) {
            ++indegree[i];
            successors[d].push_back(i);
        }
    }
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            frontier.push_back(i);
    }
    std::size_t visited = 0;
    while (!frontier.empty()) {
        const std::size_t i = frontier.back();
        frontier.pop_back();
        ++visited;
        for (std::size_t s : successors[i]) {
            if (--indegree[s] == 0)
                frontier.push_back(s);
        }
    }
    if (visited != n) {
        for (std::size_t i = 0; i < n; ++i) {
            if (indegree[i] > 0) {
                return "dependency cycle through node '" + nodes[i].id +
                    "'";
            }
        }
    }
    return "";
}

double
StepGraph::criticalPath(
    const std::function<double(std::size_t)>& node_cost) const
{
    std::vector<double> finish(nodes.size(), 0.0);
    double longest = 0.0;
    for (std::size_t i : topoOrder()) {
        double start = 0.0;
        for (std::size_t d : nodes[i].deps)
            start = std::max(start, finish[d]);
        finish[i] = start + node_cost(i);
        longest = std::max(longest, finish[i]);
    }
    return longest;
}

StepGraph
buildModelStepGraph(const model::DlrmConfig& config)
{
    StepGraph g;
    g.model_name = config.name;
    g.num_dense = config.num_dense;
    g.emb_dim = config.emb_dim;

    // The per-node work annotations below use the exact expressions of
    // DlrmConfig::footprint() / mlpParams() / placement::TableCosts so
    // that summarize() and the per-table cost derivations reproduce the
    // pre-graph values bit for bit.

    auto addGemm = [&g](GemmRole role, const char* prefix, int layer,
                        std::size_t in, std::size_t out, bool relu,
                        std::vector<std::size_t> deps) {
        Node node;
        node.id = std::string(prefix) + ".l" + std::to_string(layer);
        node.kind = NodeKind::Gemm;
        node.role = role;
        node.layer = layer;
        node.in_width = in;
        node.out_width = out;
        node.fwd_flops = 2.0 * static_cast<double>(in) *
            static_cast<double>(out);
        node.param_count = static_cast<double>(in * out + out);
        node.param_bytes = node.param_count * sizeof(float);
        // Unfused epilogue traffic: one read+write pass over the
        // [B, out] output for the bias add, a second for the ReLU
        // (hidden layers only — the last layer of each MLP has none).
        node.epilogue_traffic_bytes = (relu ? 4.0 : 2.0) *
            static_cast<double>(out) * sizeof(float);
        // Unfused backward-epilogue traffic: the bias-grad sumRows
        // re-reads dy [B, out]; hidden layers (layer > 0 — the mask is
        // the *previous* layer's activation) also pay reluBackward's
        // read+write of the input gradient [B, in].
        node.bwd_epilogue_traffic_bytes =
            (static_cast<double>(out) +
             (layer > 0 ? 2.0 * static_cast<double>(in) : 0.0)) *
            sizeof(float);
        node.deps = std::move(deps);
        g.nodes.push_back(std::move(node));
        return g.nodes.size() - 1;
    };

    // Bottom MLP (including the implicit projection to emb_dim). The
    // layers chain; l0 consumes only the input batch.
    std::size_t last_bottom = StepGraph::npos;
    {
        const auto dims = config.bottomDims();
        std::size_t in = config.num_dense;
        for (std::size_t l = 0; l < dims.size(); ++l) {
            last_bottom = addGemm(
                GemmRole::BottomMlp, "bottom_mlp", static_cast<int>(l),
                in, dims[l], /*relu=*/l + 1 < dims.size(),
                last_bottom == StepGraph::npos
                    ? std::vector<std::size_t>{}
                    : std::vector<std::size_t>{last_bottom});
            in = dims[l];
        }
    }

    // Embedding tables, each followed by its mixed-dimension projection
    // when the table is narrower than the shared width. Every table
    // depends only on the input batch, so lookups are mutually
    // independent and independent of the bottom MLP — the parallelism
    // the paper's Figs 9-11 breakdowns presume.
    std::vector<std::size_t> pooled_producers;
    pooled_producers.reserve(config.sparse.size());
    for (std::size_t t = 0; t < config.sparse.size(); ++t) {
        const auto& spec = config.sparse[t];
        const std::size_t dim = spec.effectiveDim(config.emb_dim);
        const auto d = static_cast<double>(dim);
        Node node;
        node.id = "emb.t" + std::to_string(t);
        node.kind = NodeKind::EmbeddingLookup;
        node.table = static_cast<int>(t);
        node.out_width = dim;
        node.rows = spec.hash_size;
        node.zipf_exponent = spec.zipf_exponent;
        node.lookups_per_example = spec.effectiveMeanLength();
        node.bytes_per_example =
            spec.effectiveMeanLength() * d * sizeof(float);
        node.pooled_bytes_per_example = d * sizeof(float);
        node.param_bytes =
            static_cast<double>(spec.hash_size) * d * sizeof(float);
        g.nodes.push_back(std::move(node));
        const std::size_t emb_index = g.nodes.size() - 1;
        std::size_t producer = emb_index;

        if (dim != config.emb_dim) {
            Node proj;
            proj.id = "proj.t" + std::to_string(t);
            proj.kind = NodeKind::Gemm;
            proj.role = GemmRole::Projection;
            proj.table = static_cast<int>(t);
            proj.in_width = dim;
            proj.out_width = config.emb_dim;
            proj.fwd_flops =
                2.0 * d * static_cast<double>(config.emb_dim);
            proj.param_count = static_cast<double>(
                dim * config.emb_dim + config.emb_dim);
            proj.param_bytes = proj.param_count * sizeof(float);
            // Bias-only epilogue: projections have no activation.
            proj.epilogue_traffic_bytes =
                2.0 * static_cast<double>(config.emb_dim) *
                sizeof(float);
            // Backward: only the bias-grad sumRows re-read of dy
            // (projections have no ReLU, so no mask pass to save).
            proj.bwd_epilogue_traffic_bytes =
                static_cast<double>(config.emb_dim) * sizeof(float);
            proj.deps = {emb_index};
            g.nodes.push_back(std::move(proj));
            producer = g.nodes.size() - 1;
        }
        pooled_producers.push_back(producer);
    }

    // Feature interaction: joins the bottom-MLP output with every
    // pooled (and, where present, projected) embedding, in table order.
    {
        Node node;
        node.id = "interaction";
        node.kind = NodeKind::Interaction;
        node.in_width = config.emb_dim;
        node.out_width = config.interactionWidth();
        if (config.interaction == nn::InteractionKind::DotProduct) {
            const auto f = static_cast<double>(config.numSparse() + 1);
            node.fwd_flops = f * (f - 1.0) / 2.0 * 2.0 *
                static_cast<double>(config.emb_dim);
        }
        // Flatten-buffer traffic the interaction-flatten fusion
        // removes. Concat: the whole [B, W] flatten buffer is written
        // by the top-MLP layer-0 input-grad GEMM and re-read by the
        // memcpy split (one round trip, 2 * W * 4). Dot: the dense
        // pass-through's zero + read-modify-write of d_dense
        // (~4 * emb_dim * 4) — the pairs stay a compact read either
        // way.
        node.bwd_epilogue_traffic_bytes =
            (config.interaction == nn::InteractionKind::DotProduct
                 ? 4.0 * static_cast<double>(config.emb_dim)
                 : 2.0 * static_cast<double>(
                       config.interactionWidth())) *
            sizeof(float);
        if (last_bottom != StepGraph::npos)
            node.deps.push_back(last_bottom);
        for (std::size_t p : pooled_producers)
            node.deps.push_back(p);
        g.nodes.push_back(std::move(node));
    }
    std::size_t prev = g.nodes.size() - 1;  // interaction

    // Top MLP (including the implicit 1-wide logit layer).
    {
        const auto dims = config.topDims();
        std::size_t in = config.interactionWidth();
        for (std::size_t l = 0; l < dims.size(); ++l) {
            prev = addGemm(GemmRole::TopMlp, "top_mlp",
                           static_cast<int>(l), in, dims[l],
                           /*relu=*/l + 1 < dims.size(), {prev});
            in = dims[l];
        }
    }

    // Loss + optimizer close the step.
    {
        Node loss;
        loss.id = "loss";
        loss.kind = NodeKind::Loss;
        loss.in_width = 1;
        loss.deps = {prev};
        g.nodes.push_back(std::move(loss));

        Node opt;
        opt.id = "optimizer";
        opt.kind = NodeKind::OptimizerUpdate;
        opt.deps = {g.nodes.size() - 1};
        g.nodes.push_back(std::move(opt));
    }
    g.reindex();
    return g;
}

StepGraph
forwardSubgraph(const StepGraph& graph)
{
    const std::string problem = graph.validate();
    RECSIM_ASSERT(problem.empty(), "invalid StepGraph: {}", problem);

    const std::size_t n = graph.nodes.size();
    std::vector<char> kept(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const NodeKind kind = graph.nodes[i].kind;
        kept[i] = (kind == NodeKind::Gemm ||
                   kind == NodeKind::EmbeddingLookup ||
                   kind == NodeKind::Interaction)
            ? 1
            : 0;
    }

    // Effective deps of each node: its kept ancestors, looking through
    // dropped nodes (same closure the GraphExecutor takes over
    // non-executable nodes, so the subgraph schedules identically).
    const auto order = graph.topoOrder();
    std::vector<std::vector<std::size_t>> eff(n);
    for (std::size_t i : order) {
        std::vector<std::size_t> e;
        for (std::size_t d : graph.nodes[i].deps) {
            if (kept[d])
                e.push_back(d);
            else
                e.insert(e.end(), eff[d].begin(), eff[d].end());
        }
        std::sort(e.begin(), e.end());
        e.erase(std::unique(e.begin(), e.end()), e.end());
        eff[i] = std::move(e);
    }

    StepGraph g;
    g.model_name = graph.model_name;
    g.num_dense = graph.num_dense;
    g.emb_dim = graph.emb_dim;
    // Two passes because dep edges may point forward in the nodes
    // vector: first assign the compacted indices, then rewire.
    std::vector<std::size_t> new_index(n, StepGraph::npos);
    for (std::size_t i = 0; i < n; ++i) {
        if (!kept[i])
            continue;
        new_index[i] = g.nodes.size();
        g.nodes.push_back(graph.nodes[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (!kept[i])
            continue;
        Node& node = g.nodes[new_index[i]];
        node.deps.clear();
        node.deps.reserve(eff[i].size());
        for (std::size_t d : eff[i])
            node.deps.push_back(new_index[d]);
    }
    g.reindex();
    return g;
}

WorkSummary
summarize(const StepGraph& graph)
{
    WorkSummary s;
    s.emb_dim = graph.emb_dim;

    // MLP FLOPs: bottom sum + top sum, then projections in table order
    // — the accumulation order of DlrmConfig::footprint().
    double bottom_flops = 0.0, top_flops = 0.0;
    double act_bytes =
        static_cast<double>(graph.num_dense) * sizeof(float);
    for (const auto& node : graph.nodes) {
        if (node.kind != NodeKind::Gemm)
            continue;
        if (node.role == GemmRole::BottomMlp) {
            bottom_flops += node.fwd_flops;
            act_bytes +=
                static_cast<double>(node.out_width) * sizeof(float);
            ++s.mlp_layers;
        } else if (node.role == GemmRole::TopMlp) {
            top_flops += node.fwd_flops;
            ++s.mlp_layers;
        }
    }
    s.mlp_flops = bottom_flops + top_flops;

    for (const auto& node : graph.nodes) {
        switch (node.kind) {
          case NodeKind::Gemm:
            s.dense_param_count += node.param_count;
            s.epilogue_traffic_bytes += node.epilogue_traffic_bytes;
            s.bwd_epilogue_traffic_bytes +=
                node.bwd_epilogue_traffic_bytes;
            if (node.role == GemmRole::Projection)
                s.mlp_flops += node.fwd_flops;
            break;
          case NodeKind::EmbeddingLookup:
            s.embedding_lookups += node.lookups_per_example;
            s.embedding_bytes += node.bytes_per_example;
            s.pooled_bytes += node.pooled_bytes_per_example;
            s.emb_hot_tier_bytes += node.hot_tier_bytes;
            s.emb_hot_hit_fraction +=
                node.hot_hit_fraction * node.bytes_per_example;
            ++s.embedding_tables;
            break;
          case NodeKind::Interaction:
            s.interaction_flops = node.fwd_flops;
            s.bwd_epilogue_traffic_bytes +=
                node.bwd_epilogue_traffic_bytes;
            act_bytes +=
                static_cast<double>(node.out_width) * sizeof(float);
            break;
          default:
            break;
        }
    }
    // dense_param_count so far misses nothing: bottom + top + proj
    // Gemm nodes are all counted above, matching mlpParams().

    // Top-MLP activations follow the interaction in the working set.
    for (const auto& node : graph.nodes) {
        if (node.kind == NodeKind::Gemm && node.role == GemmRole::TopMlp)
            act_bytes +=
                static_cast<double>(node.out_width) * sizeof(float);
    }
    s.activation_bytes = act_bytes * 2.0;  // forward acts + grads

    s.dense_input_bytes =
        static_cast<double>(graph.num_dense) * sizeof(float);
    // Normalize the traffic-weighted hot hit fraction accumulated per
    // lookup node above (weight = lookup bytes per example).
    s.emb_hot_hit_fraction = s.embedding_bytes > 0.0
        ? s.emb_hot_hit_fraction / s.embedding_bytes : 0.0;
    return s;
}

void
fusePass(StepGraph& g)
{
    const std::string problem = g.validate();
    RECSIM_ASSERT(problem.empty(), "invalid StepGraph: {}", problem);

    // 1. GEMM epilogue fusion, forward + backward. Annotation-level:
    // the node keeps its id and FLOPs (the arithmetic is unchanged —
    // the bias/activation/grad-epilogue ops just move into the GEMM
    // stores), only the extra epilogue memory passes disappear.
    // 2. Interaction-flatten fusion: marked on both ends of the pair —
    // the top-MLP layer-0 Gemm (its input-grad GEMM writes the
    // interaction backward's destinations directly) and the
    // Interaction node (its backward consumes them there); the flatten
    // round trip the Interaction node was annotated with disappears.
    for (auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm) {
            node.fused_epilogue = true;
            node.epilogue_traffic_bytes = 0.0;
            node.fused_backward = true;
            node.bwd_epilogue_traffic_bytes = 0.0;
            if (node.role == GemmRole::TopMlp && node.layer == 0)
                node.fused_flatten = true;
        } else if (node.kind == NodeKind::Interaction) {
            node.fused_flatten = true;
            node.bwd_epilogue_traffic_bytes = 0.0;
        }
    }

    // 3. Batch EmbeddingLookup nodes into per-device grouped nodes.
    // Grouping by device only (never by shard) keeps the grouped id
    // identical between a bound graph (tables spread over PS shards)
    // and the trainer's unbound graph, so the three columns of
    // validation_graph_breakdown keep sharing node ids.
    const std::size_t n = g.nodes.size();
    std::vector<Device> group_devices;
    std::vector<std::vector<std::size_t>> members;
    std::vector<std::size_t> member_group(n, StepGraph::npos);
    for (std::size_t i = 0; i < n; ++i) {
        if (g.nodes[i].kind != NodeKind::EmbeddingLookup)
            continue;
        std::size_t gi = 0;
        while (gi < group_devices.size() &&
               group_devices[gi] != g.nodes[i].device)
            ++gi;
        if (gi == group_devices.size()) {
            group_devices.push_back(g.nodes[i].device);
            members.emplace_back();
        }
        members[gi].push_back(i);
        member_group[i] = gi;
    }

    // Groups of one (including already-grouped nodes on a re-run) are
    // left untouched — that is what makes the pass idempotent.
    std::vector<char> is_first(n, 0), dropped(n, 0);
    bool any_merge = false;
    for (const auto& mem : members) {
        if (mem.size() < 2)
            continue;
        any_merge = true;
        is_first[mem[0]] = 1;
        for (std::size_t j = 1; j < mem.size(); ++j)
            dropped[mem[j]] = 1;
    }
    if (!any_merge) {
        g.reindex();
        return;
    }

    // Two passes, like forwardSubgraph(): dep edges may point forward
    // in the nodes vector, so first place the surviving nodes and
    // assign compacted indices, then rewire every edge.
    std::vector<Node> out;
    out.reserve(n);
    std::vector<std::size_t> new_index(n, StepGraph::npos);
    std::size_t ordinal = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (dropped[i])
            continue;
        new_index[i] = out.size();
        if (!is_first[i]) {
            out.push_back(g.nodes[i]);
            continue;
        }
        const auto& mem = members[member_group[i]];
        Node grouped;
        grouped.id = "emb.grouped.g" + std::to_string(ordinal++);
        grouped.kind = NodeKind::EmbeddingLookup;
        grouped.device = g.nodes[i].device;
        int shard = g.nodes[mem[0]].shard;
        for (std::size_t j : mem) {
            if (g.nodes[j].shard != shard)
                shard = -1;  // members span shards
        }
        grouped.shard = shard;
        // Annotations are the member sums, in member (= node) order;
        // per-table fields (rows, zipf, out_width) have no grouped
        // meaning and stay at their zero defaults — consumers that
        // need them (cost::remoteCacheHitFraction) read the model
        // config, not the graph.
        // Tier split: bytes sum; the hit fraction is the traffic-
        // weighted mean over members (weight = lookup bytes per
        // example), so the grouped node charges the same per-tier
        // byte split as its members did individually.
        double hot_weighted = 0.0;
        for (std::size_t j : mem) {
            const Node& mn = g.nodes[j];
            grouped.lookups_per_example += mn.lookups_per_example;
            grouped.bytes_per_example += mn.bytes_per_example;
            grouped.pooled_bytes_per_example +=
                mn.pooled_bytes_per_example;
            grouped.param_bytes += mn.param_bytes;
            grouped.hot_tier_bytes += mn.hot_tier_bytes;
            hot_weighted += mn.hot_hit_fraction * mn.bytes_per_example;
            if (mn.fused_tables.empty()) {
                grouped.fused_tables.push_back(mn.table);
            } else {
                grouped.fused_tables.insert(grouped.fused_tables.end(),
                                            mn.fused_tables.begin(),
                                            mn.fused_tables.end());
            }
            // Union of member deps (old indices; rewired below).
            for (std::size_t d : mn.deps)
                grouped.deps.push_back(d);
        }
        if (grouped.bytes_per_example > 0.0)
            grouped.hot_hit_fraction =
                hot_weighted / grouped.bytes_per_example;
        out.push_back(std::move(grouped));
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (dropped[i])
            continue;
        Node& node = out[new_index[i]];
        const std::vector<std::size_t> old = std::move(node.deps);
        node.deps.clear();
        for (std::size_t d : old) {
            const std::size_t nd = dropped[d] || is_first[d]
                ? new_index[members[member_group[d]][0]]
                : new_index[d];
            if (nd == new_index[i])
                continue;  // edge between merged members
            if (std::find(node.deps.begin(), node.deps.end(), nd) ==
                node.deps.end())
                node.deps.push_back(nd);
        }
    }
    g.nodes = std::move(out);
    g.reindex();
}

std::string
toString(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Gemm:
        return "gemm";
      case NodeKind::EmbeddingLookup:
        return "embedding_lookup";
      case NodeKind::Interaction:
        return "interaction";
      case NodeKind::Loss:
        return "loss";
      case NodeKind::OptimizerUpdate:
        return "optimizer_update";
      case NodeKind::Comm:
        return "comm";
    }
    util::panic("unknown NodeKind");
}

std::string
toString(Device device)
{
    switch (device) {
      case Device::Unassigned:
        return "unassigned";
      case Device::TrainerCpu:
        return "trainer_cpu";
      case Device::Gpu:
        return "gpu";
      case Device::HostCpu:
        return "host_cpu";
      case Device::SparsePs:
        return "sparse_ps";
      case Device::DensePs:
        return "dense_ps";
    }
    util::panic("unknown Device");
}

} // namespace graph
} // namespace recsim
