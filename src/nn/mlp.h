/**
 * @file
 * Multi-layer perceptron stack — the "dense architecture" of a DLRM
 * (both the bottom MLP over dense features and the top MLP over the
 * interaction output, Fig 3 of the paper).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "nn/linear.h"
#include "tensor/tensor.h"

namespace recsim {
namespace util {
class Rng;
} // namespace util

namespace nn {

/**
 * Sequence of Linear layers with ReLU between them. The final layer is
 * linear (no activation) so it can feed an interaction op or a logit.
 *
 * forward() caches per-layer activations, so one Mlp instance supports
 * one in-flight forward/backward at a time (per-thread replicas are used
 * for parallel training).
 */
class Mlp
{
  public:
    /**
     * @param in    Input width.
     * @param dims  Output width of each layer, e.g. {512, 512, 512} for
     *              the paper's 512^3 stack. Must be non-empty.
     * @param rng   Initializer stream.
     */
    Mlp(std::size_t in, const std::vector<std::size_t>& dims,
        util::Rng& rng);

    /** y [B, dims.back()] = mlp(x [B, in]); caches activations. */
    void forward(const tensor::Tensor& x, tensor::Tensor& y);

    /**
     * Backprop through the whole stack.
     * @param x   The same input passed to the last forward().
     * @param dy  Gradient wrt the forward output.
     * @param dx  Output: gradient wrt x.
     */
    void backward(const tensor::Tensor& x, const tensor::Tensor& dy,
                  tensor::Tensor& dx);

    /**
     * Run layer @p i of the stack alone (graph-walk execution; the
     * StepGraph's per-layer Gemm nodes map 1:1 onto these calls). The
     * input is @p x for layer 0 and the cached activation of layer i-1
     * otherwise; applies the inter-layer ReLU. Calling forwardLayer for
     * i = 0..numLayers()-1 in order performs exactly forward().
     *
     * With @p fused the bias + inter-layer ReLU run as the GEMM's
     * fused epilogue (Linear::forwardFused) — bitwise identical
     * output, fewer memory passes. Backward is unchanged either way
     * (it reads the same post-activation cache).
     */
    void forwardLayer(std::size_t i, const tensor::Tensor& x,
                      bool fused = false);

    /** Post-activation output of the last layer run forward. */
    const tensor::Tensor& output() const { return acts_.back(); }

    /**
     * Backprop layer @p i alone. Layers must be visited in descending
     * order; @p dy is the gradient wrt the stack output (consumed by the
     * last layer), @p dx receives the input gradient when i == 0.
     * Visiting i = numLayers()-1..0 performs exactly backward().
     */
    void backwardLayer(std::size_t i, const tensor::Tensor& x,
                       const tensor::Tensor& dy, tensor::Tensor& dx);

    /**
     * As backwardLayer() but with the backward epilogues fused into
     * the grad GEMMs (Linear::backwardFused): the bias gradient rides
     * the weight-grad sweep and, for i > 0, the dReLU mask (layer
     * i-1's cached post-activation) is applied inside the input-grad
     * GEMM store instead of by a separate reluBackward pass. Bitwise
     * identical to backwardLayer(). The trainer takes this path for
     * StepGraph nodes with fused_backward set.
     */
    void backwardLayerFused(std::size_t i, const tensor::Tensor& x,
                            const tensor::Tensor& dy,
                            tensor::Tensor& dx);

    /**
     * The gradient tensor backwardLayer(i, ...) consumes: @p dy for
     * the last layer, else the scratch layer i+1's backward filled.
     * Exposed so the interaction-flatten fusion (model::Dlrm) can run
     * layer 0's input-grad GEMM itself with segmented outputs.
     */
    const tensor::Tensor& gradInto(std::size_t i,
                                   const tensor::Tensor& dy) const
    {
        return i + 1 == layers_.size() ? dy : grad_scratch_[i];
    }

    void zeroGrad();

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const;
    std::size_t numLayers() const { return layers_.size(); }
    std::size_t numParams() const;

    std::vector<Linear>& layers() { return layers_; }
    const std::vector<Linear>& layers() const { return layers_; }

  private:
    std::size_t in_;
    std::vector<Linear> layers_;
    /** Post-activation output of each layer from the last forward(). */
    std::vector<tensor::Tensor> acts_;
    std::vector<tensor::Tensor> grad_scratch_;
};

} // namespace nn
} // namespace recsim
