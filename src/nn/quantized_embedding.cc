#include "nn/quantized_embedding.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace recsim {
namespace nn {

double
bytesPerElement(EmbeddingPrecision precision)
{
    switch (precision) {
      case EmbeddingPrecision::Fp32:
        return 4.0;
      case EmbeddingPrecision::Fp16:
        return 2.0;
      case EmbeddingPrecision::Int8:
        return 1.0;
      case EmbeddingPrecision::Int4:
        return 0.5;
    }
    util::panic("unknown embedding precision");
}

const char*
toString(EmbeddingPrecision precision)
{
    switch (precision) {
      case EmbeddingPrecision::Fp32:
        return "fp32";
      case EmbeddingPrecision::Fp16:
        return "fp16";
      case EmbeddingPrecision::Int8:
        return "int8";
      case EmbeddingPrecision::Int4:
        return "int4";
    }
    util::panic("unknown embedding precision");
}

namespace {

/** Convert fp32 to IEEE half bits (round-to-nearest, FTZ subnormals). */
uint16_t
floatToHalfBits(float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, 4);
    const uint32_t sign = bits & 0x80000000u;
    int32_t exponent =
        static_cast<int32_t>((bits >> 23) & 0xff) - 127 + 15;
    uint32_t mantissa = bits & 0x7fffffu;
    if (exponent <= 0)
        return static_cast<uint16_t>(sign >> 16);  // flush to zero
    if (exponent >= 31)
        return static_cast<uint16_t>((sign >> 16) | 0x7c00u);  // inf
    // Round mantissa to 10 bits.
    mantissa += 1u << 12;
    if (mantissa & (1u << 23)) {
        mantissa = 0;
        ++exponent;
        if (exponent >= 31)
            return static_cast<uint16_t>((sign >> 16) | 0x7c00u);
    }
    return static_cast<uint16_t>(
        (sign >> 16) |
        (static_cast<uint32_t>(exponent) << 10) | (mantissa >> 13));
}

/** Convert IEEE half bits back to fp32. */
float
halfBitsToFloat(uint16_t half)
{
    const uint32_t h_sign = (half & 0x8000u) << 16;
    const uint32_t h_exp = (half >> 10) & 0x1f;
    const uint32_t h_man = half & 0x3ffu;
    uint32_t out;
    if (h_exp == 0) {
        out = h_sign;  // zero (subnormals flushed to zero on encode)
    } else if (h_exp == 31) {
        out = h_sign | 0x7f800000u;
    } else {
        out = h_sign | ((h_exp - 15 + 127) << 23) | (h_man << 13);
    }
    float result;
    std::memcpy(&result, &out, 4);
    return result;
}

} // namespace

float
roundToFp16(float value)
{
    return halfBitsToFloat(floatToHalfBits(value));
}

QuantizedEmbeddingBag::QuantizedEmbeddingBag(const EmbeddingBag& source,
                                             EmbeddingPrecision precision)
    : hash_size_(source.hashSize()), dim_(source.dim()),
      pooling_(source.pooling()), precision_(precision)
{
    quantizeFrom(source);
}

void
QuantizedEmbeddingBag::quantizeFrom(const EmbeddingBag& source)
{
    RECSIM_ASSERT(source.hashSize() == hash_size_ &&
                  source.dim() == dim_,
                  "quantizeFrom with mismatched table shape");
    const auto rows = static_cast<std::size_t>(hash_size_);
    switch (precision_) {
      case EmbeddingPrecision::Fp32: {
        values_f32_.assign(source.table.data(),
                           source.table.data() + rows * dim_);
        break;
      }
      case EmbeddingPrecision::Fp16: {
        values_f16_.resize(rows * dim_);
        for (std::size_t i = 0; i < rows * dim_; ++i)
            values_f16_[i] = floatToHalfBits(source.table.data()[i]);
        break;
      }
      case EmbeddingPrecision::Int8:
      case EmbeddingPrecision::Int4: {
        const float levels =
            precision_ == EmbeddingPrecision::Int8 ? 255.0f : 15.0f;
        values_i8_.resize(rows * dim_);
        scales_.resize(rows);
        biases_.resize(rows);
        // Rows are independent: quantize row shards in parallel.
        util::globalThreadPool().parallelFor(
            0, rows, std::max<std::size_t>(1, 4096 / dim_),
            [&](std::size_t r0, std::size_t r1) {
                for (std::size_t r = r0; r < r1; ++r) {
                    const float* src = source.table.row(r);
                    float lo = src[0], hi = src[0];
                    for (std::size_t j = 1; j < dim_; ++j) {
                        lo = std::min(lo, src[j]);
                        hi = std::max(hi, src[j]);
                    }
                    const float scale = hi > lo
                        ? (hi - lo) / levels : 1e-8f;
                    scales_[r] = scale;
                    biases_[r] = lo;
                    for (std::size_t j = 0; j < dim_; ++j) {
                        const float q =
                            std::round((src[j] - lo) / scale);
                        values_i8_[r * dim_ + j] = static_cast<int8_t>(
                            std::clamp(q - 128.0f, -128.0f, 127.0f));
                    }
                }
            });
        break;
      }
    }
}

void
QuantizedEmbeddingBag::dequantizeRow(std::size_t row, float* row_out)
    const
{
    switch (precision_) {
      case EmbeddingPrecision::Fp32: {
        std::memcpy(row_out, values_f32_.data() + row * dim_,
                    dim_ * sizeof(float));
        break;
      }
      case EmbeddingPrecision::Fp16: {
        for (std::size_t j = 0; j < dim_; ++j)
            row_out[j] = halfBitsToFloat(values_f16_[row * dim_ + j]);
        break;
      }
      case EmbeddingPrecision::Int8:
      case EmbeddingPrecision::Int4: {
        const float scale = scales_[row];
        const float bias = biases_[row];
        for (std::size_t j = 0; j < dim_; ++j) {
            row_out[j] = scale *
                (static_cast<float>(values_i8_[row * dim_ + j]) +
                 128.0f) + bias;
        }
        break;
      }
    }
}

void
QuantizedEmbeddingBag::forward(const SparseBatch& batch,
                               tensor::Tensor& out) const
{
    const std::size_t b = batch.batchSize();
    if (out.rank() != 2 || out.rows() != b || out.cols() != dim_)
        out.resize(b, dim_);
    else
        out.zero();
    // Parallel over examples, like EmbeddingBag::forward; each chunk
    // carries its own dequant scratch row. Bit-identical at any thread
    // count (one owner per output row, lookups in batch order).
    util::globalThreadPool().parallelFor(
        0, b, std::max<std::size_t>(1, 8192 / dim_),
        [&](std::size_t e0, std::size_t e1) {
            std::vector<float> row(dim_);
            for (std::size_t ex = e0; ex < e1; ++ex) {
                const std::size_t begin = batch.offsets[ex];
                const std::size_t end = batch.offsets[ex + 1];
                float* orow = out.row(ex);
                for (std::size_t k = begin; k < end; ++k) {
                    const auto row_id = static_cast<std::size_t>(
                        batch.indices[k] % hash_size_);
                    dequantizeRow(row_id, row.data());
                    for (std::size_t j = 0; j < dim_; ++j)
                        orow[j] += row[j];
                }
                if (pooling_ == Pooling::Mean && end > begin) {
                    const float inv =
                        1.0f / static_cast<float>(end - begin);
                    for (std::size_t j = 0; j < dim_; ++j)
                        orow[j] *= inv;
                }
            }
        });
}

std::size_t
QuantizedEmbeddingBag::paramBytes() const
{
    const auto rows = static_cast<std::size_t>(hash_size_);
    switch (precision_) {
      case EmbeddingPrecision::Fp32:
        return rows * dim_ * 4;
      case EmbeddingPrecision::Fp16:
        return rows * dim_ * 2;
      case EmbeddingPrecision::Int8:
        return rows * dim_ + rows * 2 * sizeof(float);
      case EmbeddingPrecision::Int4:
        return rows * dim_ / 2 + rows * 2 * sizeof(float);
    }
    util::panic("unknown embedding precision");
}

double
QuantizedEmbeddingBag::rowError(const EmbeddingBag& source,
                                std::size_t row) const
{
    std::vector<float> deq(dim_);
    dequantizeRow(row, deq.data());
    double worst = 0.0;
    const float* src = source.table.row(row);
    for (std::size_t j = 0; j < dim_; ++j)
        worst = std::max(worst, std::abs(
            static_cast<double>(deq[j]) - src[j]));
    return worst;
}

} // namespace nn
} // namespace recsim
