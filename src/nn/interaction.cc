#include "nn/interaction.h"

#include <cstring>

#include "obs/trace.h"
#include "util/logging.h"

namespace recsim {
namespace nn {

std::size_t
CatInteraction::outWidth(std::size_t dense_width, std::size_t num_sparse,
                         std::size_t emb_dim)
{
    return dense_width + num_sparse * emb_dim;
}

void
CatInteraction::forward(const tensor::Tensor& dense,
                        const std::vector<tensor::Tensor>& embs,
                        tensor::Tensor& out) const
{
    RECSIM_TRACE_SPAN("nn.cat.fwd");
    const std::size_t b = dense.rows();
    std::size_t width = dense.cols();
    for (const auto& e : embs) {
        RECSIM_ASSERT(e.rows() == b, "cat interaction batch mismatch");
        width += e.cols();
    }
    if (out.rank() != 2 || out.rows() != b || out.cols() != width)
        out = tensor::Tensor(b, width);
    for (std::size_t ex = 0; ex < b; ++ex) {
        float* orow = out.row(ex);
        std::memcpy(orow, dense.row(ex), dense.cols() * sizeof(float));
        std::size_t off = dense.cols();
        for (const auto& e : embs) {
            std::memcpy(orow + off, e.row(ex), e.cols() * sizeof(float));
            off += e.cols();
        }
    }
}

void
CatInteraction::backward(const tensor::Tensor& dense,
                         const std::vector<tensor::Tensor>& embs,
                         const tensor::Tensor& dy, tensor::Tensor& d_dense,
                         std::vector<tensor::Tensor>& d_embs) const
{
    RECSIM_TRACE_SPAN("nn.cat.bwd");
    const std::size_t b = dense.rows();
    RECSIM_ASSERT(dy.rows() == b, "cat backward batch mismatch");
    if (!d_dense.sameShape(dense))
        d_dense = tensor::Tensor(b, dense.cols());
    d_embs.resize(embs.size());
    for (std::size_t s = 0; s < embs.size(); ++s) {
        if (!d_embs[s].sameShape(embs[s]))
            d_embs[s] = tensor::Tensor(b, embs[s].cols());
    }
    for (std::size_t ex = 0; ex < b; ++ex) {
        const float* dyrow = dy.row(ex);
        std::memcpy(d_dense.row(ex), dyrow,
                    dense.cols() * sizeof(float));
        std::size_t off = dense.cols();
        for (std::size_t s = 0; s < embs.size(); ++s) {
            std::memcpy(d_embs[s].row(ex), dyrow + off,
                        embs[s].cols() * sizeof(float));
            off += embs[s].cols();
        }
    }
}

std::size_t
DotInteraction::outWidth(std::size_t num_sparse, std::size_t emb_dim)
{
    const std::size_t f = num_sparse + 1;
    return emb_dim + f * (f - 1) / 2;
}

void
DotInteraction::forward(const tensor::Tensor& dense,
                        const std::vector<tensor::Tensor>& embs,
                        tensor::Tensor& out) const
{
    RECSIM_TRACE_SPAN("nn.dot.fwd");
    const std::size_t b = dense.rows();
    const std::size_t d = dense.cols();
    const std::size_t f = embs.size() + 1;
    for (const auto& e : embs)
        RECSIM_ASSERT(e.rows() == b && e.cols() == d,
                      "dot interaction needs [B, d] embeddings");
    const std::size_t width = outWidth(embs.size(), d);
    if (out.rank() != 2 || out.rows() != b || out.cols() != width)
        out = tensor::Tensor(b, width);

    // Per-example view of the F vectors; slot 0 is the dense projection.
    std::vector<const float*> vec(f);
    for (std::size_t ex = 0; ex < b; ++ex) {
        vec[0] = dense.row(ex);
        for (std::size_t s = 0; s < embs.size(); ++s)
            vec[s + 1] = embs[s].row(ex);
        float* orow = out.row(ex);
        std::memcpy(orow, vec[0], d * sizeof(float));
        std::size_t off = d;
        for (std::size_t i = 0; i < f; ++i) {
            for (std::size_t j = i + 1; j < f; ++j) {
                float acc = 0.0f;
                for (std::size_t k = 0; k < d; ++k)
                    acc += vec[i][k] * vec[j][k];
                orow[off++] = acc;
            }
        }
    }
}

void
DotInteraction::backward(const tensor::Tensor& dense,
                         const std::vector<tensor::Tensor>& embs,
                         const tensor::Tensor& dy, tensor::Tensor& d_dense,
                         std::vector<tensor::Tensor>& d_embs) const
{
    RECSIM_TRACE_SPAN("nn.dot.bwd");
    const std::size_t b = dense.rows();
    const std::size_t d = dense.cols();
    const std::size_t f = embs.size() + 1;
    RECSIM_ASSERT(dy.rows() == b &&
                  dy.cols() == outWidth(embs.size(), d),
                  "dot backward dy {}", dy.shapeString());
    if (!d_dense.sameShape(dense))
        d_dense = tensor::Tensor(b, d);
    d_dense.zero();
    d_embs.resize(embs.size());
    for (std::size_t s = 0; s < embs.size(); ++s) {
        if (!d_embs[s].sameShape(embs[s]))
            d_embs[s] = tensor::Tensor(b, d);
        d_embs[s].zero();
    }

    std::vector<const float*> vec(f);
    std::vector<float*> dvec(f);
    for (std::size_t ex = 0; ex < b; ++ex) {
        vec[0] = dense.row(ex);
        dvec[0] = d_dense.row(ex);
        for (std::size_t s = 0; s < embs.size(); ++s) {
            vec[s + 1] = embs[s].row(ex);
            dvec[s + 1] = d_embs[s].row(ex);
        }
        const float* dyrow = dy.row(ex);
        // Pass-through part: the dense copy occupies the first d slots.
        for (std::size_t k = 0; k < d; ++k)
            dvec[0][k] += dyrow[k];
        std::size_t off = d;
        for (std::size_t i = 0; i < f; ++i) {
            for (std::size_t j = i + 1; j < f; ++j) {
                const float g = dyrow[off++];
                if (g == 0.0f)
                    continue;
                for (std::size_t k = 0; k < d; ++k) {
                    dvec[i][k] += g * vec[j][k];
                    dvec[j][k] += g * vec[i][k];
                }
            }
        }
    }
}

void
DotInteraction::backwardFused(const tensor::Tensor& dense,
                              const std::vector<tensor::Tensor>& embs,
                              const tensor::Tensor& d_pairs,
                              tensor::Tensor& d_dense,
                              std::vector<tensor::Tensor>& d_embs) const
{
    RECSIM_TRACE_SPAN("nn.dot.bwd");
    const std::size_t b = dense.rows();
    const std::size_t d = dense.cols();
    const std::size_t f = embs.size() + 1;
    RECSIM_ASSERT(d_pairs.rows() == b &&
                  d_pairs.cols() == f * (f - 1) / 2,
                  "dot fused backward d_pairs {}", d_pairs.shapeString());
    // d_dense was written by the GEMM's zero-bias segment and is only
    // accumulated into here; the pairwise g values arrive compacted in
    // d_pairs with the same bits the flatten buffer's tail columns
    // would carry, so the g == 0 skip and every += match backward().
    RECSIM_ASSERT(d_dense.sameShape(dense),
                  "dot fused backward d_dense {}", d_dense.shapeString());
    d_embs.resize(embs.size());
    for (std::size_t s = 0; s < embs.size(); ++s) {
        if (!d_embs[s].sameShape(embs[s]))
            d_embs[s] = tensor::Tensor(b, d);
        d_embs[s].zero();
    }

    std::vector<const float*> vec(f);
    std::vector<float*> dvec(f);
    for (std::size_t ex = 0; ex < b; ++ex) {
        vec[0] = dense.row(ex);
        dvec[0] = d_dense.row(ex);
        for (std::size_t s = 0; s < embs.size(); ++s) {
            vec[s + 1] = embs[s].row(ex);
            dvec[s + 1] = d_embs[s].row(ex);
        }
        const float* dyrow = d_pairs.row(ex);
        std::size_t off = 0;
        for (std::size_t i = 0; i < f; ++i) {
            for (std::size_t j = i + 1; j < f; ++j) {
                const float g = dyrow[off++];
                if (g == 0.0f)
                    continue;
                for (std::size_t k = 0; k < d; ++k) {
                    dvec[i][k] += g * vec[j][k];
                    dvec[j][k] += g * vec[i][k];
                }
            }
        }
    }
}

} // namespace nn
} // namespace recsim
