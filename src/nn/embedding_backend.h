/**
 * @file
 * Pluggable storage backends for embedding tables. EmbeddingBag owns
 * the parameter tensor and the batch-parallel orchestration; a backend
 * owns how lookups and sparse updates touch memory — which tier a row
 * lives in and how many bytes each access is charged.
 *
 * The contract every backend must honor: **lookup and update results
 * are bitwise-equal to DramBackend at any thread count**. Backends may
 * differ only in accounting (per-tier byte/hit counters) and in the
 * bandwidth a real machine would observe; they may never reorder or
 * re-associate the float arithmetic. DramBackend and CachedBackend
 * both gather through one shared kernel, so equality holds by
 * construction rather than by test alone (the tests check it anyway).
 *
 * CachedBackend models a small hot tier (HBM, on-package SRAM, or a
 * pinned DRAM partition) in front of the flat table: a frequency-built
 * top-K hot row set, refreshed every few batches, classifies each
 * lookup as a hot hit or a cold miss. Rows are *not* physically copied
 * — optimizers write table rows in place, so a copy would go stale and
 * break bitwise equality. Only the measured hit rates and charged
 * bytes change; those feed the cost model / DES tier terms and the
 * predicted-vs-measured validation in bench/ext_caching.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/embedding_bag.h"
#include "tensor/tensor.h"

namespace recsim {
namespace nn {

/** Per-tier access accounting, cumulative since the last reset. */
struct EmbeddingTierStats
{
    uint64_t hot_lookups = 0;    ///< Lookups served by the hot tier.
    uint64_t cold_lookups = 0;   ///< Lookups served by the slow tier.
    uint64_t hot_read_bytes = 0;
    uint64_t cold_read_bytes = 0;
    uint64_t hot_write_bytes = 0;   ///< Optimizer write-through, hot rows.
    uint64_t cold_write_bytes = 0;  ///< Optimizer write-through, cold rows.
    uint64_t batches = 0;        ///< Forward batches observed.

    uint64_t lookups() const { return hot_lookups + cold_lookups; }

    /** Fraction of lookups served hot (0 when nothing was looked up). */
    double hitRate() const
    {
        const uint64_t n = lookups();
        return n ? static_cast<double>(hot_lookups) /
                static_cast<double>(n)
                 : 0.0;
    }
};

/**
 * Storage backend interface. One instance serves one EmbeddingBag (the
 * bag installs itself as the single caller); forwardRange() is invoked
 * concurrently from thread-pool chunks, everything else is serial.
 */
class EmbeddingBackend
{
  public:
    virtual ~EmbeddingBackend() = default;

    /** Stable identifier for configs/JSON ("dram", "cached"). */
    virtual const char* kind() const = 0;

    /**
     * Gather-and-pool examples [e0, e1) of @p batch from @p table into
     * @p out (pre-sized [B, dim], zeroed). Called concurrently for
     * disjoint chunks; must only mutate rows [e0, e1) of @p out and
     * the backend's own atomic counters.
     */
    virtual void forwardRange(const tensor::Tensor& table,
                              uint64_t hash_size, std::size_t dim,
                              Pooling pooling, const SparseBatch& batch,
                              tensor::Tensor& out, std::size_t e0,
                              std::size_t e1) = 0;

    /**
     * Serial hook after every chunk of one forward batch has finished:
     * frequency accumulation, hot-set refresh, obs export. Never
     * called concurrently with forwardRange() on this instance.
     */
    virtual void endForwardBatch(const SparseBatch& batch,
                                 uint64_t hash_size, std::size_t dim)
    {
        (void)batch;
        (void)hash_size;
        (void)dim;
    }

    /**
     * Accounting hook for EmbeddingBag::backward(): the pooled
     * backward kernel is table-layout independent (it reads only dy),
     * so the bag owns the arithmetic and backends observe the sparse
     * gradient it produced to charge per-tier gradient traffic.
     */
    virtual void noteBackward(const SparseGrad& grad, std::size_t dim)
    {
        (void)grad;
        (void)dim;
    }

    /** Sparse SGD row update: row -= lr * g, plus write accounting. */
    virtual void applySgd(tensor::Tensor& table, std::size_t dim,
                          const SparseGrad& grad, float lr);

    /**
     * Row-wise Adagrad update against the optimizer-owned accumulator
     * @p acc (one entry per table row), plus write accounting.
     */
    virtual void applyAdagrad(tensor::Tensor& table, std::size_t dim,
                              const SparseGrad& grad,
                              std::vector<float>& acc, float lr,
                              float eps);

    /** Bytes of hot-tier capacity this backend models (0 = flat DRAM). */
    virtual std::size_t hotTierBytes() const { return 0; }

    /** Cumulative per-tier accounting. */
    virtual EmbeddingTierStats stats() const = 0;

    virtual void resetStats() = 0;
};

/**
 * The flat single-tier table: every access is charged to the cold
 * (DRAM) tier. This is byte-for-byte the pre-refactor EmbeddingBag
 * behavior and the reference all other backends must match.
 */
class DramBackend : public EmbeddingBackend
{
  public:
    const char* kind() const override { return "dram"; }

    void forwardRange(const tensor::Tensor& table, uint64_t hash_size,
                      std::size_t dim, Pooling pooling,
                      const SparseBatch& batch, tensor::Tensor& out,
                      std::size_t e0, std::size_t e1) override;

    void endForwardBatch(const SparseBatch& batch, uint64_t hash_size,
                         std::size_t dim) override;

    void noteBackward(const SparseGrad& grad, std::size_t dim) override;

    void applySgd(tensor::Tensor& table, std::size_t dim,
                  const SparseGrad& grad, float lr) override;

    void applyAdagrad(tensor::Tensor& table, std::size_t dim,
                      const SparseGrad& grad, std::vector<float>& acc,
                      float lr, float eps) override;

    EmbeddingTierStats stats() const override;
    void resetStats() override;

  private:
    std::atomic<uint64_t> lookups_{0};
    std::atomic<uint64_t> read_bytes_{0};
    uint64_t write_bytes_ = 0;  ///< Updates are serial; no atomic needed.
    uint64_t grad_bytes_ = 0;
    uint64_t batches_ = 0;
};

/** Knobs for CachedBackend. */
struct CachedBackendConfig
{
    /** Hot-tier capacity in rows (converted from bytes by callers). */
    std::size_t hot_rows = 0;
    /** Forward batches between hot-set rebuilds. */
    std::size_t refresh_every = 8;
    /**
     * Right-shift applied to every frequency count at each rebuild
     * (exponential aging). 0 keeps counts cumulative — correct for the
     * stationary Zipf traffic the synthetic generator produces.
     */
    unsigned decay_shift = 0;
    /**
     * obs label, e.g. "emb.t3". When non-empty the backend exports
     * `<label>.cache.hot_lookups` / `.cold_lookups` counters to
     * MetricsRegistry per batch and a `<label>.cache.hit_rate` series
     * to the FlightRecorder (value = batch hit rate, rows = batch
     * lookups).
     */
    std::string label;
};

/**
 * Two-tier backend: a frequency-built top-K hot set in front of the
 * flat table. Classification is against a read-only bitmap during the
 * parallel gather (per-chunk local counts, one atomic add per chunk,
 * so measured totals are bit-identical at any thread count); frequency
 * accumulation and the top-K rebuild run serially in
 * endForwardBatch(). Ties in the rebuild break deterministically
 * (higher count first, then lower row id).
 *
 * Memory: ~5 bytes per table row (uint32 frequency + membership byte),
 * so it is meant for the hash sizes the executable paths train
 * (<= tens of millions of rows), not for pricing billion-row tables —
 * the analytical cost model covers those without instantiating one.
 */
class CachedBackend : public EmbeddingBackend
{
  public:
    explicit CachedBackend(CachedBackendConfig config);

    const char* kind() const override { return "cached"; }

    void forwardRange(const tensor::Tensor& table, uint64_t hash_size,
                      std::size_t dim, Pooling pooling,
                      const SparseBatch& batch, tensor::Tensor& out,
                      std::size_t e0, std::size_t e1) override;

    void endForwardBatch(const SparseBatch& batch, uint64_t hash_size,
                         std::size_t dim) override;

    void noteBackward(const SparseGrad& grad, std::size_t dim) override;

    void applySgd(tensor::Tensor& table, std::size_t dim,
                  const SparseGrad& grad, float lr) override;

    void applyAdagrad(tensor::Tensor& table, std::size_t dim,
                      const SparseGrad& grad, std::vector<float>& acc,
                      float lr, float eps) override;

    std::size_t hotTierBytes() const override;

    EmbeddingTierStats stats() const override;
    void resetStats() override;

    const CachedBackendConfig& config() const { return config_; }

    /** Rows currently resident in the hot set. */
    std::size_t hotSetSize() const { return hot_set_size_; }

    /** Hot-set rebuilds performed so far. */
    uint64_t refreshes() const { return refreshes_; }

    /** True iff hashed @p row_id is currently hot (test hook). */
    bool isHot(uint64_t row_id) const
    {
        return row_id < hot_.size() && hot_[row_id] != 0;
    }

  private:
    void ensureSized(uint64_t hash_size, std::size_t dim);
    void rebuildHotSet();
    void chargeUpdate(const SparseGrad& grad, std::size_t dim);

    CachedBackendConfig config_;
    std::size_t dim_ = 0;  ///< Learned from the first batch.

    std::vector<uint8_t> hot_;     ///< Membership bitmap, [hash_size].
    std::vector<uint32_t> freq_;   ///< Saturating lookup counts.
    std::size_t hot_set_size_ = 0;
    std::vector<uint64_t> candidates_;  ///< Rebuild scratch.

    std::atomic<uint64_t> hot_lookups_{0};
    std::atomic<uint64_t> cold_lookups_{0};
    uint64_t hot_write_bytes_ = 0;
    uint64_t cold_write_bytes_ = 0;
    uint64_t hot_grad_bytes_ = 0;
    uint64_t cold_grad_bytes_ = 0;
    uint64_t batches_ = 0;
    uint64_t refreshes_ = 0;

    /** Totals at the last endForwardBatch, for per-batch obs deltas. */
    uint64_t flushed_hot_ = 0;
    uint64_t flushed_cold_ = 0;

    uint32_t hit_rate_channel_ = 0;
    bool channel_interned_ = false;
    std::string metric_hot_;
    std::string metric_cold_;
};

/** Shorthand: a DramBackend on the heap (the EmbeddingBag default). */
std::shared_ptr<EmbeddingBackend> makeDramBackend();

/** Shorthand: a CachedBackend with @p config. */
std::shared_ptr<EmbeddingBackend>
makeCachedBackend(CachedBackendConfig config);

} // namespace nn
} // namespace recsim
