/**
 * @file
 * Quantized embedding tables — the compression opportunity the paper
 * points at ("compression for these large embedding tables using
 * quantization [17]"). Rows are stored int8 with a per-row scale/bias
 * (the standard row-wise affine scheme) or fp16, shrinking capacity and
 * lookup bandwidth 4x / 2x at a measurable accuracy cost.
 *
 * The quantized table is an *inference/serving-side* view: training
 * updates the FP32 master (EmbeddingBag); quantizeFrom() refreshes the
 * compressed copy. This mirrors production, where training is FP32 and
 * compressed tables serve lookups.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/embedding_bag.h"
#include "tensor/tensor.h"

namespace recsim {
namespace nn {

/** Storage precision of a compressed table. */
enum class EmbeddingPrecision { Fp32, Fp16, Int8, Int4 };

/** Bytes per element for a precision. */
double bytesPerElement(EmbeddingPrecision precision);

/** Human-readable name. */
const char* toString(EmbeddingPrecision precision);

/**
 * Row-wise affine int8 (or truncated fp16) compressed embedding table
 * with the same pooled-lookup interface as EmbeddingBag.
 */
class QuantizedEmbeddingBag
{
  public:
    /**
     * Compress @p source at @p precision. The source's hash size,
     * dimension and pooling mode are inherited.
     */
    QuantizedEmbeddingBag(const EmbeddingBag& source,
                          EmbeddingPrecision precision);

    /** Re-compress from the (retrained) FP32 master. */
    void quantizeFrom(const EmbeddingBag& source);

    /** Pooled lookup on the compressed rows; out is [B, dim]. */
    void forward(const SparseBatch& batch, tensor::Tensor& out) const;

    /** Dequantize one row into @p row_out (dim floats). */
    void dequantizeRow(std::size_t row, float* row_out) const;

    uint64_t hashSize() const { return hash_size_; }
    std::size_t dim() const { return dim_; }
    EmbeddingPrecision precision() const { return precision_; }

    /** Compressed parameter bytes (payload + per-row scale/bias). */
    std::size_t paramBytes() const;

    /**
     * Worst-case absolute dequantization error of row @p row versus
     * @p source (for tests and error reporting).
     */
    double rowError(const EmbeddingBag& source, std::size_t row) const;

  private:
    uint64_t hash_size_;
    std::size_t dim_;
    Pooling pooling_;
    EmbeddingPrecision precision_;

    // Int8/Int4 payload: values_i8_[row * dim + j] holds the level
    // (256 levels for int8, 16 for int4; int4 levels are stored one
    // per byte for simplicity — paramBytes() reports the packed size).
    std::vector<int8_t> values_i8_;
    std::vector<float> scales_;
    std::vector<float> biases_;
    // Fp16 payload stored as uint16 bit patterns.
    std::vector<uint16_t> values_f16_;
    // Fp32 passthrough (for uniform benchmarking).
    std::vector<float> values_f32_;
};

/** Round a float to IEEE fp16 and back (for error modeling). */
float roundToFp16(float value);

} // namespace nn
} // namespace recsim
