#include "nn/embedding_backend.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace recsim {
namespace nn {

namespace {

/**
 * The one gather-and-pool kernel. Every backend funnels through this
 * exact loop, so cross-backend bitwise equality of the pooled output
 * holds by construction: same iteration order, same accumulation
 * order, same scaling.
 */
inline void
gatherRange(const float* table_data, uint64_t hash, std::size_t dim,
            Pooling pooling, const SparseBatch& batch, float* out_data,
            std::size_t e0, std::size_t e1)
{
    for (std::size_t ex = e0; ex < e1; ++ex) {
        const std::size_t begin = batch.offsets[ex];
        const std::size_t end = batch.offsets[ex + 1];
        RECSIM_ASSERT(begin <= end, "corrupt SparseBatch offsets");
        float* orow = out_data + ex * dim;
        for (std::size_t k = begin; k < end; ++k) {
            const auto row_id =
                static_cast<std::size_t>(batch.indices[k] % hash);
            const float* erow = table_data + row_id * dim;
            for (std::size_t j = 0; j < dim; ++j)
                orow[j] += erow[j];
        }
        if (pooling == Pooling::Mean && end > begin) {
            const float inv = 1.0f / static_cast<float>(end - begin);
            for (std::size_t j = 0; j < dim; ++j)
                orow[j] *= inv;
        }
    }
}

/** Sparse SGD row arithmetic, identical for every backend. */
inline void
sgdKernel(tensor::Tensor& table, std::size_t dim, const SparseGrad& grad,
          float lr)
{
    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
        float* row =
            table.row(static_cast<std::size_t>(grad.rows[r]));
        const float* g = grad.values.row(r);
        for (std::size_t j = 0; j < dim; ++j)
            row[j] -= lr * g[j];
    }
}

/** Row-wise Adagrad arithmetic, identical for every backend. */
inline void
adagradKernel(tensor::Tensor& table, std::size_t dim,
              const SparseGrad& grad, std::vector<float>& acc, float lr,
              float eps)
{
    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
        const auto row_id = static_cast<std::size_t>(grad.rows[r]);
        const float* g = grad.values.row(r);
        // Row-wise Adagrad: a single accumulator per row holding the
        // mean squared gradient across the row's elements.
        float sq = 0.0f;
        for (std::size_t j = 0; j < dim; ++j)
            sq += g[j] * g[j];
        acc[row_id] += sq / static_cast<float>(dim);
        const float denom = std::sqrt(acc[row_id]) + eps;
        float* row = table.row(row_id);
        for (std::size_t j = 0; j < dim; ++j)
            row[j] -= lr * g[j] / denom;
    }
}

} // namespace

void
EmbeddingBackend::applySgd(tensor::Tensor& table, std::size_t dim,
                           const SparseGrad& grad, float lr)
{
    sgdKernel(table, dim, grad, lr);
}

void
EmbeddingBackend::applyAdagrad(tensor::Tensor& table, std::size_t dim,
                               const SparseGrad& grad,
                               std::vector<float>& acc, float lr,
                               float eps)
{
    adagradKernel(table, dim, grad, acc, lr, eps);
}

// ---------------------------------------------------------------------------
// DramBackend

void
DramBackend::forwardRange(const tensor::Tensor& table, uint64_t hash_size,
                          std::size_t dim, Pooling pooling,
                          const SparseBatch& batch, tensor::Tensor& out,
                          std::size_t e0, std::size_t e1)
{
    gatherRange(table.data(), hash_size, dim, pooling, batch, out.data(),
                e0, e1);
    const uint64_t n = batch.offsets[e1] - batch.offsets[e0];
    // One relaxed add per chunk; integer adds commute, so the totals
    // are deterministic at any thread count.
    lookups_.fetch_add(n, std::memory_order_relaxed);
    read_bytes_.fetch_add(n * dim * sizeof(float),
                          std::memory_order_relaxed);
}

void
DramBackend::endForwardBatch(const SparseBatch& batch, uint64_t hash_size,
                             std::size_t dim)
{
    (void)batch;
    (void)hash_size;
    (void)dim;
    ++batches_;
}

void
DramBackend::noteBackward(const SparseGrad& grad, std::size_t dim)
{
    grad_bytes_ += grad.rows.size() * dim * sizeof(float);
}

void
DramBackend::applySgd(tensor::Tensor& table, std::size_t dim,
                      const SparseGrad& grad, float lr)
{
    sgdKernel(table, dim, grad, lr);
    write_bytes_ += grad.rows.size() * dim * sizeof(float);
}

void
DramBackend::applyAdagrad(tensor::Tensor& table, std::size_t dim,
                          const SparseGrad& grad, std::vector<float>& acc,
                          float lr, float eps)
{
    adagradKernel(table, dim, grad, acc, lr, eps);
    write_bytes_ += grad.rows.size() * dim * sizeof(float);
}

EmbeddingTierStats
DramBackend::stats() const
{
    EmbeddingTierStats s;
    s.cold_lookups = lookups_.load(std::memory_order_relaxed);
    s.cold_read_bytes = read_bytes_.load(std::memory_order_relaxed);
    s.cold_write_bytes = write_bytes_ + grad_bytes_;
    s.batches = batches_;
    return s;
}

void
DramBackend::resetStats()
{
    lookups_.store(0, std::memory_order_relaxed);
    read_bytes_.store(0, std::memory_order_relaxed);
    write_bytes_ = 0;
    grad_bytes_ = 0;
    batches_ = 0;
}

// ---------------------------------------------------------------------------
// CachedBackend

CachedBackend::CachedBackend(CachedBackendConfig config)
    : config_(std::move(config))
{
    RECSIM_ASSERT(config_.refresh_every > 0,
                  "CachedBackend refresh_every must be positive");
    if (!config_.label.empty()) {
        metric_hot_ = config_.label + ".cache.hot_lookups";
        metric_cold_ = config_.label + ".cache.cold_lookups";
    }
}

void
CachedBackend::ensureSized(uint64_t hash_size, std::size_t dim)
{
    if (hot_.size() != hash_size) {
        hot_.assign(static_cast<std::size_t>(hash_size), 0);
        freq_.assign(static_cast<std::size_t>(hash_size), 0);
        hot_set_size_ = 0;
        // A budget covering the whole table means the table is pinned
        // in the hot tier: mark every row hot up front instead of
        // waiting for each row's first (cold) touch.
        if (config_.hot_rows >= hash_size) {
            std::fill(hot_.begin(), hot_.end(), 1);
            hot_set_size_ = static_cast<std::size_t>(hash_size);
        }
    }
    dim_ = dim;
}

void
CachedBackend::forwardRange(const tensor::Tensor& table,
                            uint64_t hash_size, std::size_t dim,
                            Pooling pooling, const SparseBatch& batch,
                            tensor::Tensor& out, std::size_t e0,
                            std::size_t e1)
{
    gatherRange(table.data(), hash_size, dim, pooling, batch, out.data(),
                e0, e1);
    // Classify this chunk's lookups against the read-only hot bitmap
    // (only endForwardBatch mutates it, and never concurrently with
    // gathers). Local counts, one commutative atomic add per chunk:
    // totals are deterministic at any thread count.
    uint64_t hot = 0;
    uint64_t cold = 0;
    if (hot_.size() == hash_size) {
        const uint8_t* hot_map = hot_.data();
        const std::size_t begin = batch.offsets[e0];
        const std::size_t end = batch.offsets[e1];
        for (std::size_t k = begin; k < end; ++k) {
            const auto row_id =
                static_cast<std::size_t>(batch.indices[k] % hash_size);
            if (hot_map[row_id])
                ++hot;
            else
                ++cold;
        }
    } else {
        // First batch on a freshly installed backend: the bitmap is
        // sized in endForwardBatch, so everything is a cold miss.
        cold = batch.offsets[e1] - batch.offsets[e0];
    }
    hot_lookups_.fetch_add(hot, std::memory_order_relaxed);
    cold_lookups_.fetch_add(cold, std::memory_order_relaxed);
}

void
CachedBackend::endForwardBatch(const SparseBatch& batch,
                               uint64_t hash_size, std::size_t dim)
{
    ensureSized(hash_size, dim);
    for (const uint64_t raw : batch.indices) {
        const auto row_id =
            static_cast<std::size_t>(raw % hash_size);
        if (freq_[row_id] != UINT32_MAX)
            ++freq_[row_id];
    }
    ++batches_;
    if (batches_ % config_.refresh_every == 0)
        rebuildHotSet();

    const uint64_t hot = hot_lookups_.load(std::memory_order_relaxed);
    const uint64_t cold = cold_lookups_.load(std::memory_order_relaxed);
    const uint64_t dhot = hot - flushed_hot_;
    const uint64_t dcold = cold - flushed_cold_;
    flushed_hot_ = hot;
    flushed_cold_ = cold;
    if (config_.label.empty())
        return;
    auto& metrics = obs::MetricsRegistry::global();
    metrics.incr(metric_hot_, dhot);
    metrics.incr(metric_cold_, dcold);
    if (obs::recorderEnabled()) {
        auto& recorder = obs::FlightRecorder::global();
        if (!channel_interned_) {
            hit_rate_channel_ =
                recorder.internChannel(config_.label + ".cache.hit_rate");
            channel_interned_ = true;
        }
        const uint64_t n = dhot + dcold;
        const double rate =
            n ? static_cast<double>(dhot) / static_cast<double>(n) : 0.0;
        recorder.record(hit_rate_channel_, batches_, rate,
                        static_cast<uint32_t>(
                            std::min<uint64_t>(n, UINT32_MAX)));
    }
}

void
CachedBackend::rebuildHotSet()
{
    ++refreshes_;
    if (config_.hot_rows >= hot_.size()) {
        // Whole table pinned (ensureSized marked every row hot);
        // nothing to rank.
        return;
    }
    candidates_.clear();
    for (std::size_t r = 0; r < freq_.size(); ++r)
        if (freq_[r] != 0)
            candidates_.push_back(static_cast<uint64_t>(r));
    const std::size_t k =
        std::min(config_.hot_rows, candidates_.size());
    // Strict total order (count desc, row id asc) — no equal elements,
    // so nth_element yields one deterministic top-K.
    const auto hotter = [this](uint64_t a, uint64_t b) {
        if (freq_[a] != freq_[b])
            return freq_[a] > freq_[b];
        return a < b;
    };
    if (k > 0 && k < candidates_.size())
        std::nth_element(candidates_.begin(), candidates_.begin() + k,
                         candidates_.end(), hotter);
    std::fill(hot_.begin(), hot_.end(), 0);
    for (std::size_t i = 0; i < k; ++i)
        hot_[static_cast<std::size_t>(candidates_[i])] = 1;
    hot_set_size_ = k;
    if (config_.decay_shift > 0)
        for (auto& f : freq_)
            f >>= config_.decay_shift;
}

void
CachedBackend::chargeUpdate(const SparseGrad& grad, std::size_t dim)
{
    const uint64_t row_bytes = dim * sizeof(float);
    uint64_t hot = 0;
    for (const uint64_t row : grad.rows)
        if (isHot(row))
            ++hot;
    hot_write_bytes_ += hot * row_bytes;
    cold_write_bytes_ += (grad.rows.size() - hot) * row_bytes;
}

void
CachedBackend::noteBackward(const SparseGrad& grad, std::size_t dim)
{
    const uint64_t row_bytes = dim * sizeof(float);
    uint64_t hot = 0;
    for (const uint64_t row : grad.rows)
        if (isHot(row))
            ++hot;
    hot_grad_bytes_ += hot * row_bytes;
    cold_grad_bytes_ += (grad.rows.size() - hot) * row_bytes;
}

void
CachedBackend::applySgd(tensor::Tensor& table, std::size_t dim,
                        const SparseGrad& grad, float lr)
{
    EmbeddingBackend::applySgd(table, dim, grad, lr);
    chargeUpdate(grad, dim);
}

void
CachedBackend::applyAdagrad(tensor::Tensor& table, std::size_t dim,
                            const SparseGrad& grad,
                            std::vector<float>& acc, float lr, float eps)
{
    EmbeddingBackend::applyAdagrad(table, dim, grad, acc, lr, eps);
    chargeUpdate(grad, dim);
}

std::size_t
CachedBackend::hotTierBytes() const
{
    return config_.hot_rows * dim_ * sizeof(float);
}

EmbeddingTierStats
CachedBackend::stats() const
{
    EmbeddingTierStats s;
    s.hot_lookups = hot_lookups_.load(std::memory_order_relaxed);
    s.cold_lookups = cold_lookups_.load(std::memory_order_relaxed);
    const uint64_t row_bytes = dim_ * sizeof(float);
    s.hot_read_bytes = s.hot_lookups * row_bytes;
    s.cold_read_bytes = s.cold_lookups * row_bytes;
    s.hot_write_bytes = hot_write_bytes_ + hot_grad_bytes_;
    s.cold_write_bytes = cold_write_bytes_ + cold_grad_bytes_;
    s.batches = batches_;
    return s;
}

void
CachedBackend::resetStats()
{
    hot_lookups_.store(0, std::memory_order_relaxed);
    cold_lookups_.store(0, std::memory_order_relaxed);
    flushed_hot_ = 0;
    flushed_cold_ = 0;
    hot_write_bytes_ = 0;
    cold_write_bytes_ = 0;
    hot_grad_bytes_ = 0;
    cold_grad_bytes_ = 0;
}

std::shared_ptr<EmbeddingBackend>
makeDramBackend()
{
    return std::make_shared<DramBackend>();
}

std::shared_ptr<EmbeddingBackend>
makeCachedBackend(CachedBackendConfig config)
{
    return std::make_shared<CachedBackend>(std::move(config));
}

} // namespace nn
} // namespace recsim
