/**
 * @file
 * Binary cross-entropy loss over logits and the normalized-entropy (NE)
 * metric Facebook uses to track recommendation model quality (Section VI-C
 * of the paper: "model loss metrics, such as normalized entropy").
 */
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace recsim {
namespace nn {

/**
 * Mean binary cross-entropy with logits.
 *
 * @param logits  [B, 1] or rank-1 [B] raw scores.
 * @param labels  B labels in {0, 1}.
 * @param d_logits Output: gradient wrt the logits (already divided by B).
 * @return Mean BCE loss in nats.
 */
double bceWithLogits(const tensor::Tensor& logits,
                     const std::vector<float>& labels,
                     tensor::Tensor& d_logits);

/** Loss-only variant for evaluation. */
double bceWithLogitsLoss(const tensor::Tensor& logits,
                         const std::vector<float>& labels);

/**
 * Normalized entropy: mean BCE of the model divided by the entropy of
 * the empirical CTR (the loss of the best constant predictor). NE < 1
 * means the model beats always-predicting-the-base-rate; lower is better.
 */
double normalizedEntropy(const tensor::Tensor& logits,
                         const std::vector<float>& labels);

/** Fraction of examples where round(sigmoid(logit)) == label. */
double accuracy(const tensor::Tensor& logits,
                const std::vector<float>& labels);

} // namespace nn
} // namespace recsim
