#include "nn/embedding_bag.h"

#include <algorithm>
#include <cmath>

#include "nn/embedding_backend.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace recsim {
namespace nn {

/**
 * Examples per forward chunk: target enough pooled accumulation work
 * (~64K scalar adds) that chunk dispatch never dominates. The gather
 * loop is memory-bound, so chunks must be much coarser than for
 * arithmetic kernels — a 16K-add grain left typical DLRM batches split
 * into dozens of tiny jobs and made the parallel path slower than
 * serial. Depends only on the batch shape, never on the thread count.
 */
std::size_t
EmbeddingBag::forwardChunkGrain(const SparseBatch& batch, std::size_t dim)
{
    const std::size_t b = std::max<std::size_t>(batch.batchSize(), 1);
    const std::size_t avg_lookups =
        std::max<std::size_t>(batch.indices.size() / b, 1);
    const std::size_t work_per_example = avg_lookups * dim;
    return std::max<std::size_t>(
        1, (std::size_t(1) << 16) /
               std::max<std::size_t>(work_per_example, 1));
}

EmbeddingBag::EmbeddingBag(uint64_t hash_size, std::size_t dim,
                           util::Rng& rng, Pooling pooling)
    : table(static_cast<std::size_t>(hash_size), dim),
      hash_size_(hash_size), dim_(dim), pooling_(pooling),
      backend_(makeDramBackend())
{
    RECSIM_ASSERT(hash_size > 0 && dim > 0,
                  "degenerate embedding table [{} x {}]", hash_size, dim);
    const float bound = 1.0f / std::sqrt(static_cast<float>(dim));
    table.fillUniform(rng, -bound, bound);
}

void
EmbeddingBag::setBackend(std::shared_ptr<EmbeddingBackend> backend)
{
    RECSIM_ASSERT(backend != nullptr, "null embedding backend");
    backend_ = std::move(backend);
}

void
EmbeddingBag::forward(const SparseBatch& batch, tensor::Tensor& out) const
{
    RECSIM_TRACE_SPAN("nn.emb.fwd");
    const std::size_t b = batch.batchSize();
    if (out.rank() != 2 || out.rows() != b || out.cols() != dim_)
        out.resize(b, dim_);
    else
        out.zero();
    RECSIM_ASSERT(batch.offsets.empty() ||
                      (batch.offsets.front() == 0 &&
                       batch.offsets.back() <= batch.indices.size()),
                  "corrupt SparseBatch offsets");
    // Each example's output row is owned by exactly one chunk, so the
    // result is bit-identical at any thread count.
    util::globalThreadPool().parallelFor(
        0, b, forwardChunkGrain(batch, dim_),
        [this, &batch, &out](std::size_t e0, std::size_t e1) {
            forwardRange(batch, out, e0, e1);
        });
    backend_->endForwardBatch(batch, hash_size_, dim_);
}

void
EmbeddingBag::forwardRange(const SparseBatch& batch, tensor::Tensor& out,
                           std::size_t e0, std::size_t e1) const
{
    backend_->forwardRange(table, hash_size_, dim_, pooling_, batch, out,
                           e0, e1);
}

void
EmbeddingBag::endForwardBatch(const SparseBatch& batch) const
{
    backend_->endForwardBatch(batch, hash_size_, dim_);
}

void
EmbeddingBag::applySgd(const SparseGrad& grad, float lr)
{
    backend_->applySgd(table, dim_, grad, lr);
}

void
EmbeddingBag::applyAdagrad(const SparseGrad& grad,
                           std::vector<float>& acc, float lr, float eps)
{
    RECSIM_ASSERT(acc.size() == hash_size_,
                  "Adagrad accumulator size {} vs hash size {}",
                  acc.size(), hash_size_);
    backend_->applyAdagrad(table, dim_, grad, acc, lr, eps);
}

namespace {

/** splitmix64 finalizer: avalanches row ids onto the table slots. */
inline uint64_t
mixKey(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
EmbeddingBag::FlatSlotMap::beginBatch(std::size_t n)
{
    // Load factor <= 0.5: capacity is the next power of two >= 2n.
    std::size_t want = 16;
    while (want < n * 2)
        want <<= 1;
    if (keys.size() < want) {
        keys.assign(want, 0);
        slots.assign(want, 0);
        stamps.assign(want, 0);
        mask = want - 1;
        epoch = 0;
    }
    if (++epoch == 0) {
        // Epoch wrapped: stamps from 2^32 batches ago could collide,
        // so wipe them once and restart at 1.
        std::fill(stamps.begin(), stamps.end(), 0u);
        epoch = 1;
    }
}

std::pair<std::size_t&, bool>
EmbeddingBag::FlatSlotMap::insert(uint64_t key)
{
    std::size_t i = static_cast<std::size_t>(mixKey(key)) & mask;
    while (true) {
        if (stamps[i] != epoch) {
            stamps[i] = epoch;
            keys[i] = key;
            return {slots[i], true};
        }
        if (keys[i] == key)
            return {slots[i], false};
        i = (i + 1) & mask;
    }
}

void
EmbeddingBag::backward(const SparseBatch& batch, const tensor::Tensor& dy,
                       SparseGrad& grad) const
{
    RECSIM_TRACE_SPAN("nn.emb.bwd");
    const std::size_t b = batch.batchSize();
    RECSIM_ASSERT(dy.rows() == b && dy.cols() == dim_,
                  "embedding backward dy {}", dy.shapeString());

    // Phase 1 (serial): assign each touched row a slot in first-touch
    // order — the same slot order the old single-pass kernel produced —
    // and remember every lookup's slot so phase 2 never hashes. The
    // flat map is sized once per batch shape; steady-state batches
    // allocate nothing.
    BackwardScratch& ws = scratch_;
    ws.slot_of.beginBatch(batch.indices.size());
    ws.rows.clear();
    ws.slot_per_k.resize(batch.indices.size());
    for (std::size_t k = 0; k < batch.indices.size(); ++k) {
        const uint64_t row_id = batch.indices[k] % hash_size_;
        auto [slot, inserted] = ws.slot_of.insert(row_id);
        if (inserted) {
            slot = ws.rows.size();
            ws.rows.push_back(row_id);
        }
        ws.slot_per_k[k] = slot;
    }

    const std::size_t nrows = ws.rows.size();
    grad.rows.assign(ws.rows.begin(), ws.rows.end());
    grad.values.resize(nrows, dim_);
    if (nrows == 0)
        return;

    // Phase 2 (parallel): shard the gradient block by slot ranges so
    // accumulation needs no atomics. Each chunk rescans the (cheap)
    // per-lookup slot array and accumulates only its own slots, in
    // batch order — so every gradient row sees the serial accumulation
    // order no matter how many chunks or threads run. A handful of
    // shards bounds the rescan overhead.
    const std::size_t dim = dim_;
    const Pooling pooling = pooling_;
    const std::size_t nshards =
        std::min<std::size_t>(util::globalThreadPool().numThreads(),
                              nrows);
    const std::size_t grain = (nrows + nshards - 1) / nshards;
    float* values = grad.values.data();
    const float* dyd = dy.data();
    util::globalThreadPool().parallelFor(
        0, nrows, grain,
        [&batch, &ws, values, dyd, dim, pooling,
         b](std::size_t lo, std::size_t hi) {
            for (std::size_t ex = 0; ex < b; ++ex) {
                const std::size_t begin = batch.offsets[ex];
                const std::size_t end = batch.offsets[ex + 1];
                if (end == begin)
                    continue;
                const float scale = pooling == Pooling::Mean
                    ? 1.0f / static_cast<float>(end - begin) : 1.0f;
                const float* dyrow = dyd + ex * dim;
                for (std::size_t k = begin; k < end; ++k) {
                    const std::size_t s = ws.slot_per_k[k];
                    if (s < lo || s >= hi)
                        continue;
                    float* vrow = values + s * dim;
                    for (std::size_t j = 0; j < dim; ++j)
                        vrow[j] += scale * dyrow[j];
                }
            }
        });
    backend_->noteBackward(grad, dim_);
}

} // namespace nn
} // namespace recsim
