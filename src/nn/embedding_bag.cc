#include "nn/embedding_bag.h"

#include <cmath>
#include <unordered_map>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace nn {

EmbeddingBag::EmbeddingBag(uint64_t hash_size, std::size_t dim,
                           util::Rng& rng, Pooling pooling)
    : table(static_cast<std::size_t>(hash_size), dim),
      hash_size_(hash_size), dim_(dim), pooling_(pooling)
{
    RECSIM_ASSERT(hash_size > 0 && dim > 0,
                  "degenerate embedding table [{} x {}]", hash_size, dim);
    const float bound = 1.0f / std::sqrt(static_cast<float>(dim));
    table.fillUniform(rng, -bound, bound);
}

void
EmbeddingBag::forward(const SparseBatch& batch, tensor::Tensor& out) const
{
    RECSIM_TRACE_SPAN("nn.emb.fwd");
    const std::size_t b = batch.batchSize();
    if (out.rank() != 2 || out.rows() != b || out.cols() != dim_)
        out = tensor::Tensor(b, dim_);
    else
        out.zero();
    for (std::size_t ex = 0; ex < b; ++ex) {
        const std::size_t begin = batch.offsets[ex];
        const std::size_t end = batch.offsets[ex + 1];
        RECSIM_ASSERT(begin <= end && end <= batch.indices.size(),
                      "corrupt SparseBatch offsets");
        float* orow = out.row(ex);
        for (std::size_t k = begin; k < end; ++k) {
            const auto row_id = static_cast<std::size_t>(
                batch.indices[k] % hash_size_);
            const float* erow = table.row(row_id);
            for (std::size_t j = 0; j < dim_; ++j)
                orow[j] += erow[j];
        }
        if (pooling_ == Pooling::Mean && end > begin) {
            const float inv = 1.0f / static_cast<float>(end - begin);
            for (std::size_t j = 0; j < dim_; ++j)
                orow[j] *= inv;
        }
    }
}

void
EmbeddingBag::backward(const SparseBatch& batch, const tensor::Tensor& dy,
                       SparseGrad& grad) const
{
    RECSIM_TRACE_SPAN("nn.emb.bwd");
    const std::size_t b = batch.batchSize();
    RECSIM_ASSERT(dy.rows() == b && dy.cols() == dim_,
                  "embedding backward dy {}", dy.shapeString());

    // Coalesce duplicate rows: map row id -> slot in the dense grad block.
    std::unordered_map<uint64_t, std::size_t> slot_of;
    slot_of.reserve(batch.indices.size());
    std::vector<uint64_t> rows;
    std::vector<float> values;  // row-major [nrows, dim], grown on demand

    for (std::size_t ex = 0; ex < b; ++ex) {
        const std::size_t begin = batch.offsets[ex];
        const std::size_t end = batch.offsets[ex + 1];
        if (end == begin)
            continue;
        const float scale = pooling_ == Pooling::Mean
            ? 1.0f / static_cast<float>(end - begin) : 1.0f;
        const float* dyrow = dy.row(ex);
        for (std::size_t k = begin; k < end; ++k) {
            const uint64_t row_id = batch.indices[k] % hash_size_;
            auto [it, inserted] = slot_of.try_emplace(row_id, rows.size());
            if (inserted) {
                rows.push_back(row_id);
                values.resize(values.size() + dim_, 0.0f);
            }
            float* vrow = values.data() + it->second * dim_;
            for (std::size_t j = 0; j < dim_; ++j)
                vrow[j] += scale * dyrow[j];
        }
    }

    grad.rows = std::move(rows);
    grad.values = tensor::Tensor(grad.rows.size(), dim_);
    std::copy(values.begin(), values.end(), grad.values.data());
}

} // namespace nn
} // namespace recsim
