#include "nn/mlp.h"

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace nn {

Mlp::Mlp(std::size_t in, const std::vector<std::size_t>& dims,
         util::Rng& rng)
    : in_(in)
{
    RECSIM_ASSERT(!dims.empty(), "MLP needs at least one layer");
    std::size_t width = in;
    layers_.reserve(dims.size());
    for (std::size_t d : dims) {
        layers_.emplace_back(width, d, rng);
        width = d;
    }
    acts_.resize(layers_.size());
    grad_scratch_.resize(layers_.size());
}

std::size_t
Mlp::outFeatures() const
{
    return layers_.back().outFeatures();
}

std::size_t
Mlp::numParams() const
{
    std::size_t total = 0;
    for (const auto& l : layers_)
        total += l.numParams();
    return total;
}

void
Mlp::forwardLayer(std::size_t i, const tensor::Tensor& x, bool fused)
{
    const tensor::Tensor& input = i == 0 ? x : acts_[i - 1];
    const bool relu = i + 1 < layers_.size();
    if (fused) {
        layers_[i].forwardFused(input, acts_[i], relu);
        return;
    }
    layers_[i].forward(input, acts_[i]);
    if (relu)
        tensor::reluInPlace(acts_[i]);
}

void
Mlp::backwardLayer(std::size_t i, const tensor::Tensor& x,
                   const tensor::Tensor& dy, tensor::Tensor& dx)
{
    // The gradient flowing into layer i: dy for the last layer, else
    // the scratch the (i+1)-th backwardLayer call just filled.
    const tensor::Tensor& grad =
        i + 1 == layers_.size() ? dy : grad_scratch_[i];
    const tensor::Tensor& input = i == 0 ? x : acts_[i - 1];
    tensor::Tensor& dxi = i == 0 ? dx : grad_scratch_[i - 1];
    layers_[i].backward(input, grad, dxi);
    if (i > 0) {
        // Undo the ReLU applied after layer i-1 in forward().
        tensor::reluBackward(acts_[i - 1], dxi, dxi);
    }
}

void
Mlp::backwardLayerFused(std::size_t i, const tensor::Tensor& x,
                        const tensor::Tensor& dy, tensor::Tensor& dx)
{
    const tensor::Tensor& grad = gradInto(i, dy);
    const tensor::Tensor& input = i == 0 ? x : acts_[i - 1];
    tensor::Tensor& dxi = i == 0 ? dx : grad_scratch_[i - 1];
    layers_[i].backwardFused(input, grad, dxi,
                             i > 0 ? &acts_[i - 1] : nullptr);
}

void
Mlp::forward(const tensor::Tensor& x, tensor::Tensor& y)
{
    RECSIM_TRACE_SPAN("nn.mlp.fwd");
    for (std::size_t i = 0; i < layers_.size(); ++i)
        forwardLayer(i, x);
    y = acts_.back();
}

void
Mlp::backward(const tensor::Tensor& x, const tensor::Tensor& dy,
              tensor::Tensor& dx)
{
    RECSIM_ASSERT(acts_.back().rows() == dy.rows(),
                  "MLP backward without matching forward");
    RECSIM_TRACE_SPAN("nn.mlp.bwd");
    for (std::size_t i = layers_.size(); i-- > 0;)
        backwardLayer(i, x, dy, dx);
}

void
Mlp::zeroGrad()
{
    for (auto& l : layers_)
        l.zeroGrad();
}

} // namespace nn
} // namespace recsim
