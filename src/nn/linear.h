/**
 * @file
 * Fully connected layer with explicit forward/backward.
 */
#pragma once

#include "tensor/tensor.h"

namespace recsim {
namespace util {
class Rng;
} // namespace util

namespace nn {

/**
 * y = x W + b with manual reverse-mode gradients.
 *
 * W is stored [in, out] so the forward pass is a plain row-major GEMM.
 * Gradients accumulate into gradWeight/gradBias until zeroGrad(); this
 * lets the optimizer and the Hogwild trainer decide when updates are
 * applied.
 */
class Linear
{
  public:
    /**
     * @param in   Input feature width.
     * @param out  Output feature width.
     * @param rng  Initializer stream; He-style scaling sqrt(2 / in).
     */
    Linear(std::size_t in, std::size_t out, util::Rng& rng);

    /** y [B, out] = x [B, in] W + b. */
    void forward(const tensor::Tensor& x, tensor::Tensor& y) const;

    /**
     * Fused-epilogue forward: the bias add (and, when @p relu, the
     * activation) run inside the GEMM's final-block store
     * (tensor::matmulBiasAct) instead of as separate passes over y.
     * Bitwise identical to forward() (+ reluInPlace when @p relu);
     * the fused path only saves the epilogue's memory traffic. The
     * trainer takes this path for StepGraph nodes with
     * fused_epilogue set (graph::fusePass).
     */
    void forwardFused(const tensor::Tensor& x, tensor::Tensor& y,
                      bool relu) const;

    /**
     * Accumulate parameter grads and produce the input grad.
     * @param x       The forward input.
     * @param dy      Gradient wrt the forward output, [B, out].
     * @param dx      Output: gradient wrt x, [B, in].
     */
    void backward(const tensor::Tensor& x, const tensor::Tensor& dy,
                  tensor::Tensor& dx);

    /** As backward() but skips dx (first layer of a stack). */
    void backwardNoInputGrad(const tensor::Tensor& x,
                             const tensor::Tensor& dy);

    /**
     * Fused-backward-epilogue backward: the bias gradient is
     * accumulated inside the weight-grad GEMM's k-panel sweep
     * (tensor::matmulTransABiasGrad) and, when @p relu_mask is
     * non-null (the *post-activation* forward output the layer's input
     * gradient flows through, same shape as dx), the dReLU mask is
     * applied inside the input-grad GEMM's store
     * (tensor::matmulTransBMask). Bitwise identical to backward()
     * (+ reluBackward(*relu_mask, dx, dx)); the fused path only saves
     * the separate passes' memory traffic. The trainer takes this path
     * for StepGraph nodes with fused_backward set (graph::fusePass).
     */
    void backwardFused(const tensor::Tensor& x, const tensor::Tensor& dy,
                       tensor::Tensor& dx,
                       const tensor::Tensor* relu_mask);

    /** As backwardFused() but skips dx (first layer of a stack). */
    void backwardNoInputGradFused(const tensor::Tensor& x,
                                  const tensor::Tensor& dy);

    void zeroGrad();

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }
    std::size_t numParams() const { return weight.size() + bias.size(); }

    tensor::Tensor weight;      ///< [in, out]
    tensor::Tensor bias;        ///< [out]
    tensor::Tensor gradWeight;  ///< [in, out]
    tensor::Tensor gradBias;    ///< [out]

  private:
    std::size_t in_, out_;
    /**
     * Per-layer workspace for the backward GEMM/reduction outputs,
     * kept across steps so steady-state training does no per-step
     * heap allocation (one in-flight backward per instance).
     */
    tensor::Tensor dw_scratch_;
    tensor::Tensor db_scratch_;
};

} // namespace nn
} // namespace recsim
