#include "nn/loss.h"

#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"

namespace recsim {
namespace nn {

namespace {

/** log(1 + exp(x)) without overflow. */
double
softplus(double x)
{
    if (x > 30.0)
        return x;
    if (x < -30.0)
        return 0.0;
    return std::log1p(std::exp(x));
}

double
sigmoid(double x)
{
    if (x >= 0.0)
        return 1.0 / (1.0 + std::exp(-x));
    const double e = std::exp(x);
    return e / (1.0 + e);
}

} // namespace

double
bceWithLogits(const tensor::Tensor& logits,
              const std::vector<float>& labels, tensor::Tensor& d_logits)
{
    RECSIM_TRACE_SPAN("nn.bce");
    const std::size_t b = labels.size();
    RECSIM_ASSERT(logits.size() == b, "loss: {} logits for {} labels",
                  logits.size(), b);
    if (d_logits.size() != logits.size() ||
        d_logits.rank() != logits.rank()) {
        d_logits = logits;
    }
    double total = 0.0;
    const float inv_b = 1.0f / static_cast<float>(b);
    for (std::size_t i = 0; i < b; ++i) {
        const double z = logits.data()[i];
        const double y = labels[i];
        // BCE(z, y) = softplus(z) - y*z  (stable for both signs of z).
        total += softplus(z) - y * z;
        d_logits.data()[i] =
            static_cast<float>(sigmoid(z) - y) * inv_b;
    }
    return total / static_cast<double>(b);
}

double
bceWithLogitsLoss(const tensor::Tensor& logits,
                  const std::vector<float>& labels)
{
    const std::size_t b = labels.size();
    RECSIM_ASSERT(logits.size() == b, "loss: {} logits for {} labels",
                  logits.size(), b);
    double total = 0.0;
    for (std::size_t i = 0; i < b; ++i) {
        const double z = logits.data()[i];
        total += softplus(z) - static_cast<double>(labels[i]) * z;
    }
    return total / static_cast<double>(b);
}

double
normalizedEntropy(const tensor::Tensor& logits,
                  const std::vector<float>& labels)
{
    const std::size_t b = labels.size();
    RECSIM_ASSERT(b > 0, "normalized entropy of empty batch");
    double positives = 0.0;
    for (float y : labels)
        positives += y;
    const double p = positives / static_cast<double>(b);
    if (p <= 0.0 || p >= 1.0) {
        // Degenerate label set: the base-rate entropy is 0, NE undefined;
        // report raw BCE so callers still get a finite signal.
        return bceWithLogitsLoss(logits, labels);
    }
    const double base_entropy = -(p * std::log(p) +
                                  (1.0 - p) * std::log(1.0 - p));
    return bceWithLogitsLoss(logits, labels) / base_entropy;
}

double
accuracy(const tensor::Tensor& logits, const std::vector<float>& labels)
{
    const std::size_t b = labels.size();
    RECSIM_ASSERT(logits.size() == b && b > 0, "accuracy shape mismatch");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < b; ++i) {
        const bool pred = logits.data()[i] > 0.0f;
        const bool truth = labels[i] > 0.5f;
        correct += pred == truth;
    }
    return static_cast<double>(correct) / static_cast<double>(b);
}

} // namespace nn
} // namespace recsim
