/**
 * @file
 * Feature-interaction operators combining the bottom-MLP output with the
 * pooled sparse embeddings (Section III-A.3 of the paper): plain
 * concatenation, and the pairwise dot-product combiner that captures
 * dense-sparse and sparse-sparse interactions.
 */
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace recsim {
namespace nn {

/** Which combiner a model uses. */
enum class InteractionKind { Concat, DotProduct };

/**
 * Concatenation interaction: out = [dense | emb_0 | ... | emb_{S-1}].
 * Widths may differ per input.
 */
class CatInteraction
{
  public:
    /** Output width for the given input widths. */
    static std::size_t outWidth(std::size_t dense_width,
                                std::size_t num_sparse,
                                std::size_t emb_dim);

    /** Concatenate along the feature axis. */
    void forward(const tensor::Tensor& dense,
                 const std::vector<tensor::Tensor>& embs,
                 tensor::Tensor& out) const;

    /** Split @p dy back into per-input gradients. */
    void backward(const tensor::Tensor& dense,
                  const std::vector<tensor::Tensor>& embs,
                  const tensor::Tensor& dy, tensor::Tensor& d_dense,
                  std::vector<tensor::Tensor>& d_embs) const;
};

/**
 * DLRM-style pairwise dot-product interaction.
 *
 * The dense vector (projected to the embedding dimension d) and the S
 * pooled embeddings form F = S + 1 vectors per example; the output is
 * the dense vector concatenated with the F*(F-1)/2 pairwise dot products
 * (i < j), matching the paper's description of sparse-dense and
 * sparse-sparse interactions.
 */
class DotInteraction
{
  public:
    /** Output width: d + (S+1)S/2. */
    static std::size_t outWidth(std::size_t num_sparse,
                                std::size_t emb_dim);

    /**
     * @param dense [B, d]; must match the embedding dimension.
     * @param embs  S tensors of [B, d].
     * @param out   [B, outWidth(S, d)].
     */
    void forward(const tensor::Tensor& dense,
                 const std::vector<tensor::Tensor>& embs,
                 tensor::Tensor& out) const;

    /** Gradients wrt the dense input and every embedding input. */
    void backward(const tensor::Tensor& dense,
                  const std::vector<tensor::Tensor>& embs,
                  const tensor::Tensor& dy, tensor::Tensor& d_dense,
                  std::vector<tensor::Tensor>& d_embs) const;

    /**
     * Flatten-fused backward: consumes the two segment outputs the
     * top-MLP layer-0 input-grad GEMM wrote directly
     * (tensor::matmulTransBSegmented) instead of one flatten buffer.
     * @p d_dense already holds the pass-through columns (the GEMM's
     * zero-bias segment, bit-for-bit the zero + += of backward()) and
     * is accumulated into, not zeroed; @p d_pairs [B, F*(F-1)/2] holds
     * the pairwise-slot columns compactly. The pairwise scatter is the
     * exact loop of backward() reading the same bits, so the results
     * are bitwise identical.
     */
    void backwardFused(const tensor::Tensor& dense,
                       const std::vector<tensor::Tensor>& embs,
                       const tensor::Tensor& d_pairs,
                       tensor::Tensor& d_dense,
                       std::vector<tensor::Tensor>& d_embs) const;
};

} // namespace nn
} // namespace recsim
