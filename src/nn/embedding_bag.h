/**
 * @file
 * Embedding table with pooled multi-hot lookup — the sparse-feature half
 * of a DLRM (Fig 3 of the paper). The hash trick (index modulo table
 * size) is applied inside the table, so collisions behave as they do in
 * production: semantically distinct IDs share rows when the hash size is
 * small, degrading accuracy but shrinking the table.
 *
 * Storage is pluggable (nn/embedding_backend.h): the bag owns the
 * parameter tensor, batch-parallel orchestration, and the backward
 * kernel; the installed EmbeddingBackend owns how lookups and sparse
 * updates touch memory and what each access is charged. The default
 * DramBackend reproduces the historical flat-table behavior exactly.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace recsim {
namespace util {
class Rng;
} // namespace util

namespace nn {

class EmbeddingBackend;

/** How the looked-up vectors of one example are combined. */
enum class Pooling { Sum, Mean };

/**
 * Sparse gradient of an embedding table: one dense d-vector per touched
 * row, rows deduplicated. Produced by EmbeddingBag::backward and consumed
 * by the sparse optimizers.
 */
struct SparseGrad
{
    std::vector<uint64_t> rows;  ///< Touched row ids, unique.
    tensor::Tensor values;       ///< [rows.size(), dim] gradients.
};

/**
 * CSR-style multi-hot batch for one sparse feature: example b owns
 * indices[offsets[b] .. offsets[b+1]). Raw (pre-hash) IDs are allowed;
 * the table reduces them modulo its hash size.
 */
struct SparseBatch
{
    std::vector<uint64_t> indices;
    std::vector<std::size_t> offsets;  ///< Size batch+1; offsets[0] == 0.

    /** Number of examples. */
    std::size_t batchSize() const
    {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }

    /** Total lookups across the batch. */
    std::size_t totalLookups() const { return indices.size(); }
};

/**
 * Embedding lookup table of @p hashSize rows by @p dim columns with
 * sum or mean pooling per example.
 *
 * forward() parallelizes over batch examples and backward() over
 * shards of touched table rows on the global thread pool; both are
 * bit-identical at any RECSIM_THREADS (each output row / gradient row
 * is owned by exactly one chunk and accumulated in the serial order).
 * backward() keeps reusable scratch on the instance, so one instance
 * supports one in-flight backward at a time (per-thread model replicas
 * are used for parallel training, as with Mlp).
 */
class EmbeddingBag
{
  public:
    /**
     * @param hash_size Number of rows (the paper's per-feature m_i).
     * @param dim       Embedding dimension d (fixed across features).
     * @param rng       Initializer stream; rows ~ U(-1/sqrt(d), 1/sqrt(d)).
     * @param pooling   Sum or mean pooling of the looked-up vectors.
     */
    EmbeddingBag(uint64_t hash_size, std::size_t dim, util::Rng& rng,
                 Pooling pooling = Pooling::Sum);

    /**
     * Pooled lookup: out [B, dim] where row b aggregates the embeddings
     * of batch.indices in example b's range. Examples with no indices
     * produce a zero row. Ends the batch on the backend
     * (endForwardBatch) after the parallel gather completes.
     */
    void forward(const SparseBatch& batch, tensor::Tensor& out) const;

    /**
     * The body of one forward() chunk: pool examples [e0, e1) into
     * @p out, which must already be sized [B, dim] and zeroed. The
     * batched grouped-lookup path (model::Dlrm::forwardEmbeddingGroup)
     * flattens (table, chunk) pairs over all tables into a single
     * parallelFor and dispatches each unit here with the same chunk
     * boundaries forward() would use (forwardChunkGrain) — hence
     * bit-identical results with one pool job instead of one per table.
     * Callers that bypass forward() must call endForwardBatch() once
     * per batch after every chunk has completed.
     */
    void forwardRange(const SparseBatch& batch, tensor::Tensor& out,
                      std::size_t e0, std::size_t e1) const;

    /**
     * Close one forward batch on the backend: hot-set maintenance and
     * hit-rate export. forward() calls this itself; only direct
     * forwardRange() drivers (the grouped-lookup path) need it.
     */
    void endForwardBatch(const SparseBatch& batch) const;

    /** Examples per forward() chunk for @p batch at width @p dim —
     *  the exact grain forward() hands parallelFor. */
    static std::size_t forwardChunkGrain(const SparseBatch& batch,
                                         std::size_t dim);

    /**
     * Accumulate the sparse gradient of the last forward.
     * @param batch Same batch as the matching forward().
     * @param dy    Gradient wrt the pooled output, [B, dim].
     * @param grad  Output: deduplicated per-row gradients.
     */
    void backward(const SparseBatch& batch, const tensor::Tensor& dy,
                  SparseGrad& grad) const;

    /** Sparse SGD row update via the backend: row -= lr * g. */
    void applySgd(const SparseGrad& grad, float lr);

    /**
     * Row-wise Adagrad update via the backend. @p acc is the
     * optimizer-owned per-row accumulator (hashSize() entries).
     */
    void applyAdagrad(const SparseGrad& grad, std::vector<float>& acc,
                      float lr, float eps);

    /**
     * Install a storage backend (nn/embedding_backend.h). The default
     * is a per-instance DramBackend; CachedBackend adds a hot tier.
     * Results must stay bitwise-identical across backends — only the
     * accounting differs.
     */
    void setBackend(std::shared_ptr<EmbeddingBackend> backend);

    /** The installed backend (never null). */
    EmbeddingBackend& backend() const { return *backend_; }

    /** The installed backend, shared (never null). */
    const std::shared_ptr<EmbeddingBackend>& backendPtr() const
    {
        return backend_;
    }

    uint64_t hashSize() const { return hash_size_; }
    std::size_t dim() const { return dim_; }
    Pooling pooling() const { return pooling_; }

    /** Parameter bytes (FP32). */
    std::size_t paramBytes() const
    {
        return hash_size_ * dim_ * sizeof(float);
    }

    tensor::Tensor table;  ///< [hash_size, dim]

  private:
    uint64_t hash_size_;
    std::size_t dim_;
    Pooling pooling_;
    std::shared_ptr<EmbeddingBackend> backend_;

    /**
     * Open-addressed row-id -> slot map for backward()'s dedup pass.
     * Power-of-two capacity, linear probing, epoch-stamped slots so
     * clearing is O(1) instead of O(capacity); no buckets, no
     * per-insert allocation, and steady-state batches never touch the
     * allocator (capacity only grows, load factor <= 0.5).
     */
    struct FlatSlotMap
    {
        std::vector<uint64_t> keys;
        std::vector<std::size_t> slots;
        std::vector<uint32_t> stamps;
        uint32_t epoch = 0;
        std::size_t mask = 0;

        /** Start a batch expected to touch <= @p n distinct keys. */
        void beginBatch(std::size_t n);

        /**
         * Find-or-insert @p key. Returns the slot reference and
         * whether the key was newly inserted (the caller fills the
         * slot on insertion).
         */
        std::pair<std::size_t&, bool> insert(uint64_t key);
    };

    /** Reusable backward() workspace (zero steady-state allocation). */
    struct BackwardScratch
    {
        /** Hashed row id -> slot in the dense gradient block. */
        FlatSlotMap slot_of;
        /** Touched row ids in first-touch order. */
        std::vector<uint64_t> rows;
        /** Slot of each batch lookup, indexed like batch.indices. */
        std::vector<std::size_t> slot_per_k;
    };
    mutable BackwardScratch scratch_;
};

} // namespace nn
} // namespace recsim
