#include "nn/linear.h"

#include <cmath>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace nn {

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng)
    : weight(in, out), bias(out), gradWeight(in, out), gradBias(out),
      in_(in), out_(out)
{
    RECSIM_ASSERT(in > 0 && out > 0, "degenerate Linear [{} -> {}]", in,
                  out);
    weight.fillNormal(rng, std::sqrt(2.0f / static_cast<float>(in)));
}

void
Linear::forward(const tensor::Tensor& x, tensor::Tensor& y) const
{
    RECSIM_ASSERT(x.cols() == in_, "Linear forward {} into [{} -> {}]",
                  x.shapeString(), in_, out_);
    RECSIM_TRACE_SPAN("nn.linear.fwd");
    tensor::matmul(x, weight, y);
    tensor::addBiasRows(y, bias);
}

void
Linear::forwardFused(const tensor::Tensor& x, tensor::Tensor& y,
                     bool relu) const
{
    RECSIM_ASSERT(x.cols() == in_, "Linear forward {} into [{} -> {}]",
                  x.shapeString(), in_, out_);
    RECSIM_TRACE_SPAN("nn.linear.fwd");
    tensor::matmulBiasAct(x, weight, bias, relu, y);
}

void
Linear::backward(const tensor::Tensor& x, const tensor::Tensor& dy,
                 tensor::Tensor& dx)
{
    RECSIM_TRACE_SPAN("nn.linear.bwd");
    backwardNoInputGrad(x, dy);
    // dx = dy W^T
    tensor::matmulTransB(dy, weight, dx);
}

void
Linear::backwardNoInputGrad(const tensor::Tensor& x,
                            const tensor::Tensor& dy)
{
    RECSIM_ASSERT(dy.cols() == out_ && dy.rows() == x.rows(),
                  "Linear backward dy {} vs x {}", dy.shapeString(),
                  x.shapeString());
    // dW += x^T dy ; db += column sums of dy. The scratch tensors are
    // members so their buffers persist across steps.
    tensor::matmulTransA(x, dy, dw_scratch_);
    tensor::axpy(1.0f, dw_scratch_, gradWeight);
    tensor::sumRows(dy, db_scratch_);
    tensor::axpy(1.0f, db_scratch_, gradBias);
}

void
Linear::backwardFused(const tensor::Tensor& x, const tensor::Tensor& dy,
                      tensor::Tensor& dx,
                      const tensor::Tensor* relu_mask)
{
    RECSIM_TRACE_SPAN("nn.linear.bwd");
    backwardNoInputGradFused(x, dy);
    tensor::matmulTransBMask(dy, weight, relu_mask, dx);
}

void
Linear::backwardNoInputGradFused(const tensor::Tensor& x,
                                 const tensor::Tensor& dy)
{
    RECSIM_ASSERT(dy.cols() == out_ && dy.rows() == x.rows(),
                  "Linear backward dy {} vs x {}", dy.shapeString(),
                  x.shapeString());
    // Same grads as backwardNoInputGrad — the scratch-then-axpy shape
    // is kept (accumulating into gradWeight directly would change the
    // rounding order); only the sumRows pass folds into the GEMM.
    tensor::matmulTransABiasGrad(x, dy, dw_scratch_, db_scratch_);
    tensor::axpy(1.0f, dw_scratch_, gradWeight);
    tensor::axpy(1.0f, db_scratch_, gradBias);
}

void
Linear::zeroGrad()
{
    gradWeight.zero();
    gradBias.zero();
}

} // namespace nn
} // namespace recsim
