#include "nn/optimizer.h"

#include <cmath>

#include "nn/linear.h"
#include "nn/mlp.h"
#include "util/logging.h"

namespace recsim {
namespace nn {

Sgd::Sgd(float lr)
    : lr_(lr)
{
    RECSIM_ASSERT(lr > 0.0f, "learning rate must be positive");
}

void
Sgd::step(tensor::Tensor& param, const tensor::Tensor& grad) const
{
    RECSIM_ASSERT(param.size() == grad.size(), "SGD shape mismatch");
    float* p = param.data();
    const float* g = grad.data();
    for (std::size_t i = 0; i < param.size(); ++i)
        p[i] -= lr_ * g[i];
}

void
Sgd::step(Linear& layer) const
{
    step(layer.weight, layer.gradWeight);
    step(layer.bias, layer.gradBias);
}

void
Sgd::step(Mlp& mlp) const
{
    for (auto& layer : mlp.layers())
        step(layer);
}

void
Sgd::stepSparse(EmbeddingBag& bag, const SparseGrad& grad) const
{
    // The row arithmetic lives behind the bag's storage backend so
    // tiered backends can charge write-through bytes per tier.
    bag.applySgd(grad, lr_);
}

Adagrad::Adagrad(float lr, float eps)
    : lr_(lr), eps_(eps)
{
    RECSIM_ASSERT(lr > 0.0f, "learning rate must be positive");
}

void
Adagrad::step(tensor::Tensor& param, const tensor::Tensor& grad)
{
    RECSIM_ASSERT(param.size() == grad.size(), "Adagrad shape mismatch");
    auto& acc = dense_state_[param.data()];
    if (acc.size() != param.size())
        acc.assign(param.size(), 0.0f);
    float* p = param.data();
    const float* g = grad.data();
    for (std::size_t i = 0; i < param.size(); ++i) {
        acc[i] += g[i] * g[i];
        p[i] -= lr_ * g[i] / (std::sqrt(acc[i]) + eps_);
    }
}

void
Adagrad::step(Linear& layer)
{
    step(layer.weight, layer.gradWeight);
    step(layer.bias, layer.gradBias);
}

void
Adagrad::step(Mlp& mlp)
{
    for (auto& layer : mlp.layers())
        step(layer);
}

void
Adagrad::stepSparse(EmbeddingBag& bag, const SparseGrad& grad)
{
    auto& acc = row_state_[bag.table.data()];
    if (acc.size() != bag.hashSize())
        acc.assign(bag.hashSize(), 0.0f);
    // The optimizer owns the accumulator (checkpointable via
    // rowState); the bag's storage backend owns the row arithmetic
    // and the per-tier write accounting.
    bag.applyAdagrad(grad, acc, lr_, eps_);
}

std::vector<float>
Adagrad::denseState(const tensor::Tensor& param) const
{
    const auto it = dense_state_.find(param.data());
    return it == dense_state_.end() ? std::vector<float>{}
                                    : it->second;
}

void
Adagrad::setDenseState(const tensor::Tensor& param,
                       std::vector<float> acc)
{
    RECSIM_ASSERT(acc.empty() || acc.size() == param.size(),
                  "Adagrad dense state size {} vs param size {}",
                  acc.size(), param.size());
    if (acc.empty())
        dense_state_.erase(param.data());
    else
        dense_state_[param.data()] = std::move(acc);
}

std::vector<float>
Adagrad::rowState(const EmbeddingBag& bag) const
{
    const auto it = row_state_.find(bag.table.data());
    return it == row_state_.end() ? std::vector<float>{} : it->second;
}

void
Adagrad::setRowState(const EmbeddingBag& bag, std::vector<float> acc)
{
    RECSIM_ASSERT(acc.empty() || acc.size() == bag.hashSize(),
                  "Adagrad row state size {} vs hash size {}",
                  acc.size(), bag.hashSize());
    if (acc.empty())
        row_state_.erase(bag.table.data());
    else
        row_state_[bag.table.data()] = std::move(acc);
}

void
Adagrad::resetState()
{
    dense_state_.clear();
    row_state_.clear();
}

} // namespace nn
} // namespace recsim
