/**
 * @file
 * Optimizers for the functional training substrate: plain SGD and
 * row-wise Adagrad (the standard sparse optimizer for DLRM embedding
 * tables). Both expose dense and sparse update paths so trainers can
 * update MLP parameters and embedding rows with one policy object.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/embedding_bag.h"
#include "tensor/tensor.h"

namespace recsim {
namespace nn {

class Linear;
class Mlp;

/** Plain SGD: p -= lr * g. */
class Sgd
{
  public:
    explicit Sgd(float lr);

    /** Dense update. Shapes must match. */
    void step(tensor::Tensor& param, const tensor::Tensor& grad) const;

    /** Update both layers' weights and biases from accumulated grads. */
    void step(Mlp& mlp) const;
    void step(Linear& layer) const;

    /** Sparse row update for an embedding table. */
    void stepSparse(EmbeddingBag& bag, const SparseGrad& grad) const;

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }

  private:
    float lr_;
};

/**
 * Adagrad with one accumulator per parameter for dense tensors and one
 * accumulator per *row* for embedding tables (row-wise Adagrad), the
 * memory-efficient variant used for production embedding training.
 */
class Adagrad
{
  public:
    /**
     * @param lr  Base learning rate.
     * @param eps Denominator damping.
     */
    explicit Adagrad(float lr, float eps = 1e-8f);

    /**
     * Dense update. The accumulator is keyed by the parameter tensor's
     * address, so each tensor must keep a stable address across steps.
     */
    void step(tensor::Tensor& param, const tensor::Tensor& grad);

    void step(Mlp& mlp);
    void step(Linear& layer);

    /** Row-wise sparse update. */
    void stepSparse(EmbeddingBag& bag, const SparseGrad& grad);

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }

    /**
     * Copy of the per-element accumulator for @p param; empty if the
     * parameter was never stepped. For checkpointing.
     */
    std::vector<float> denseState(const tensor::Tensor& param) const;

    /**
     * Install an accumulator for @p param (restore path). Must be
     * empty or exactly param.size() long.
     */
    void setDenseState(const tensor::Tensor& param,
                       std::vector<float> acc);

    /** Copy of the per-row accumulator for @p bag; empty if unused. */
    std::vector<float> rowState(const EmbeddingBag& bag) const;

    /** Install a row accumulator: empty or hashSize() long. */
    void setRowState(const EmbeddingBag& bag, std::vector<float> acc);

    /** Drop all accumulated state (fresh-start restore). */
    void resetState();

  private:
    float lr_;
    float eps_;
    std::unordered_map<const void*, std::vector<float>> dense_state_;
    std::unordered_map<const void*, std::vector<float>> row_state_;
};

} // namespace nn
} // namespace recsim
