#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace recsim {
namespace obs {

std::vector<std::string>
DriftReport::flaggedNodes() const
{
    std::vector<std::string> out;
    for (const NodeDrift& node : nodes) {
        if (node.flagged)
            out.push_back(node.node_id);
    }
    return out;
}

DriftMonitor::DriftMonitor(std::map<std::string, double> predicted,
                           DriftConfig config)
    : config_(config), predicted_(std::move(predicted))
{
}

void
DriftMonitor::observeNode(const std::string& node_id, double seconds)
{
    NodeAccum& acc = measured_[node_id];
    acc.sum_s += seconds;
    ++acc.samples;
}

void
DriftMonitor::observeStep(uint64_t step, double seconds)
{
    step_seconds_.emplace_back(step, seconds);
}

void
DriftMonitor::ingest(const FlightRecorder& recorder,
                     const std::vector<Sample>& samples,
                     const std::string& step_channel)
{
    // Resolve channel ids to names once; samples only carry ids.
    const std::vector<std::string> names = recorder.channels();
    // Node samples are summed per (node, step): the executor records
    // one sample per visit (forward and backward halves separately),
    // while nodeBreakdown() predicts whole-iteration node seconds.
    std::map<std::pair<uint32_t, uint64_t>, double> per_step;
    for (const Sample& sample : samples) {
        if (sample.channel >= names.size())
            continue;
        const std::string& name = names[sample.channel];
        if (name == step_channel) {
            observeStep(sample.step, sample.value);
        } else if (predicted_.count(name)) {
            per_step[{sample.channel, sample.step}] += sample.value;
        }
    }
    for (const auto& [key, seconds] : per_step)
        observeNode(names[key.first], seconds);
}

DriftReport
DriftMonitor::report() const
{
    DriftReport out;

    for (const auto& [node_id, predicted_s] : predicted_) {
        NodeDrift drift;
        drift.node_id = node_id;
        drift.predicted_s = predicted_s;
        const auto it = measured_.find(node_id);
        if (it != measured_.end() && it->second.samples > 0) {
            drift.samples = it->second.samples;
            drift.measured_mean_s =
                it->second.sum_s /
                static_cast<double>(it->second.samples);
        }
        if (predicted_s > 0.0 && drift.samples >= config_.min_samples) {
            drift.ratio = drift.measured_mean_s / predicted_s;
            drift.flagged = drift.ratio > config_.ratio_threshold ||
                drift.ratio < 1.0 / config_.ratio_threshold;
            out.worst_abs_log_ratio =
                std::max(out.worst_abs_log_ratio,
                         std::fabs(std::log(drift.ratio)));
        }
        out.nodes.push_back(std::move(drift));
    }

    // Straggler pass: compare each step against the median of the
    // preceding `median_window` steps (steps arrive in order from one
    // driver; a straggler inflates only its own comparison, not the
    // window it is judged against).
    out.steps_observed = step_seconds_.size();
    std::vector<double> window;
    for (std::size_t i = 0; i < step_seconds_.size(); ++i) {
        const auto& [step, seconds] = step_seconds_[i];
        if (i >= config_.warmup_steps && !window.empty()) {
            std::vector<double> sorted = window;
            std::nth_element(sorted.begin(),
                             sorted.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     sorted.size() / 2),
                             sorted.end());
            const double median = sorted[sorted.size() / 2];
            if (median > 0.0 &&
                seconds > config_.straggler_factor * median) {
                out.stragglers.push_back(
                    {step, seconds, median, seconds / median});
            }
        }
        window.push_back(seconds);
        if (window.size() > config_.median_window)
            window.erase(window.begin());
    }
    return out;
}

} // namespace obs
} // namespace recsim
