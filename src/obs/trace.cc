#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace recsim {
namespace obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
} // namespace detail

namespace {

uint64_t
steadyNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** JSON string escaping for span/track names. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

/**
 * One thread's track. The owning thread is the only writer of `stack`
 * and the only appender to `spans`, but `mutex` guards both: readers
 * (snapshot()/numOpenSpans()) and the graph executor's worker threads
 * may observe a track while its owner is mid-push, so every stack or
 * span access — including the owner's own begin/end — takes the lock.
 * The lock is uncontended in the common case (one owner, no readers),
 * and only taken while tracing is enabled.
 */
struct ThreadTrack
{
    std::string name;
    mutable std::mutex mutex;
    std::vector<SpanRecord> spans;

    struct Open
    {
        std::string name;
        uint64_t start_ns;
        uint64_t seq;
    };
    std::vector<Open> stack;
    uint64_t next_seq = 0;
};

struct Tracer::Impl
{
    mutable std::mutex mutex;  ///< Guards track registration + sim tracks.
    std::vector<std::unique_ptr<ThreadTrack>> threads;
    std::map<std::string, TrackRecord> sim;
    std::map<std::string, uint64_t> sim_seq;
    uint64_t epoch_ns = steadyNs();
};

namespace {
/** The calling thread's track in the global tracer (nullptr = none). */
thread_local ThreadTrack* t_track = nullptr;
} // namespace

Tracer::Tracer()
    : impl_(new Impl)
{
}

Tracer&
Tracer::global()
{
    // Leaky singleton: worker threads may record spans during static
    // destruction of other objects, so the tracer is never torn down.
    static Tracer* tracer = new Tracer();
    return *tracer;
}

void
Tracer::setEnabled(bool on)
{
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& track : impl_->threads) {
        std::lock_guard<std::mutex> tlock(track->mutex);
        track->spans.clear();
        track->stack.clear();
        track->next_seq = 0;
    }
    impl_->sim.clear();
    impl_->sim_seq.clear();
    impl_->epoch_ns = steadyNs();
}

uint64_t
Tracer::nowNs() const
{
    return steadyNs() - impl_->epoch_ns;
}

void
Tracer::beginSpan(std::string name)
{
    if (t_track == nullptr) {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        auto track = std::make_unique<ThreadTrack>();
        track->name = "thread-" + std::to_string(impl_->threads.size());
        t_track = track.get();
        impl_->threads.push_back(std::move(track));
    }
    std::lock_guard<std::mutex> lock(t_track->mutex);
    t_track->stack.push_back(
        {std::move(name), nowNs(), t_track->next_seq++});
}

void
Tracer::endSpan()
{
    if (t_track == nullptr)
        return;
    std::lock_guard<std::mutex> lock(t_track->mutex);
    if (t_track->stack.empty())
        return;  // Unbalanced end; drop rather than crash.
    ThreadTrack::Open open = std::move(t_track->stack.back());
    t_track->stack.pop_back();
    SpanRecord record;
    record.name = std::move(open.name);
    record.start_ns = open.start_ns;
    record.end_ns = nowNs();
    record.depth = static_cast<int>(t_track->stack.size());
    record.seq = open.seq;
    t_track->spans.push_back(std::move(record));
}

void
Tracer::addSimSpan(const std::string& track, std::string name,
                   uint64_t start_ns, uint64_t end_ns)
{
    if (!enabled() || end_ns < start_ns)
        return;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    TrackRecord& rec = impl_->sim[track];
    if (rec.name.empty()) {
        rec.name = track;
        rec.simulated = true;
    }
    SpanRecord span;
    span.name = std::move(name);
    span.start_ns = start_ns;
    span.end_ns = end_ns;
    span.depth = 0;
    span.seq = impl_->sim_seq[track]++;
    rec.spans.push_back(std::move(span));
}

std::vector<TrackRecord>
Tracer::snapshot() const
{
    std::vector<TrackRecord> out;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out.reserve(impl_->threads.size() + impl_->sim.size());
    for (const auto& track : impl_->threads) {
        TrackRecord rec;
        rec.name = track->name;
        rec.simulated = false;
        {
            std::lock_guard<std::mutex> tlock(track->mutex);
            rec.spans = track->spans;
        }
        out.push_back(std::move(rec));
    }
    for (const auto& [name, rec] : impl_->sim)
        out.push_back(rec);
    return out;
}

std::size_t
Tracer::numSpans() const
{
    std::size_t n = 0;
    for (const auto& track : snapshot())
        n += track.spans.size();
    return n;
}

std::size_t
Tracer::numOpenSpans() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::size_t n = 0;
    for (const auto& track : impl_->threads) {
        std::lock_guard<std::mutex> tlock(track->mutex);
        n += track->stack.size();
    }
    return n;
}

std::size_t
Tracer::numActiveThreadTracks() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::size_t n = 0;
    for (const auto& track : impl_->threads) {
        std::lock_guard<std::mutex> tlock(track->mutex);
        if (!track->spans.empty())
            ++n;
    }
    return n;
}

std::string
Tracer::chromeTraceJson() const
{
    // Wall tracks under pid 1, simulated tracks under pid 2, so
    // Perfetto shows two process groups with incomparable time bases
    // kept visually separate. Timestamps are microseconds (doubles),
    // as the trace_event format expects.
    const auto tracks = snapshot();
    std::ostringstream os;
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&os, &first](const std::string& line) {
        if (!first)
            os << ",\n";
        first = false;
        os << line;
    };
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"recsim wall clock\"}}");
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
         "\"args\":{\"name\":\"recsim simulated time\"}}");

    int wall_tid = 0;
    int sim_tid = 0;
    for (const auto& track : tracks) {
        const int pid = track.simulated ? 2 : 1;
        const int tid = track.simulated ? sim_tid++ : wall_tid++;
        emit(util::format(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},"
            "\"tid\":{},\"args\":{\"name\":\"{}\"}}",
            pid, tid, jsonEscape(track.name)));
        for (const auto& span : track.spans) {
            std::ostringstream ev;
            ev << "{\"name\":\"" << jsonEscape(span.name)
               << "\",\"ph\":\"X\",\"pid\":" << pid
               << ",\"tid\":" << tid << ",\"ts\":"
               << static_cast<double>(span.start_ns) / 1000.0
               << ",\"dur\":"
               << static_cast<double>(span.end_ns - span.start_ns) /
                   1000.0
               << "}";
            emit(ev.str());
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return os.str();
}

bool
Tracer::writeChromeTrace(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << chromeTraceJson();
    return static_cast<bool>(out);
}

std::string
Tracer::summary() const
{
    const auto tracks = snapshot();

    struct Agg
    {
        uint64_t count = 0;
        double seconds = 0.0;
    };
    std::map<std::string, Agg> wall_by_name;
    std::map<std::string, Agg> sim_by_name;
    for (const auto& track : tracks) {
        auto& by_name = track.simulated ? sim_by_name : wall_by_name;
        for (const auto& span : track.spans) {
            Agg& agg = by_name[span.name];
            ++agg.count;
            agg.seconds += span.seconds();
        }
    }

    std::ostringstream os;
    os << "=== trace summary ===\n";
    auto section = [&os](const char* title,
                         const std::map<std::string, Agg>& by_name,
                         const char* unit) {
        if (by_name.empty())
            return;
        double total = 0.0;
        for (const auto& [name, agg] : by_name)
            total += agg.seconds;
        std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                      by_name.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) {
                      return a.second.seconds > b.second.seconds;
                  });
        os << title << "\n";
        for (const auto& [name, agg] : rows) {
            os << "  " << util::padRight(name, 32)
               << util::padLeft(std::to_string(agg.count), 9) << "  "
               << util::padLeft(util::fixed(agg.seconds * 1e3, 3), 12)
               << " " << unit << "  "
               << util::padLeft(
                      util::fixed(total > 0.0
                                      ? 100.0 * agg.seconds / total
                                      : 0.0, 1), 6)
               << "%\n";
        }
    };
    section("wall spans (name, count, total, share of span time):",
            wall_by_name, "ms");
    section("simulated spans (name, count, total, share of span time):",
            sim_by_name, "sim-ms");

    // Attribution: how much of each wall track's busy interval is
    // covered by named top-level spans. This is the honesty check the
    // bench harnesses print — unattributed time means missing spans.
    for (const auto& track : tracks) {
        if (track.simulated || track.spans.empty())
            continue;
        uint64_t lo = ~0ULL, hi = 0;
        double covered = 0.0;
        for (const auto& span : track.spans) {
            lo = std::min(lo, span.start_ns);
            hi = std::max(hi, span.end_ns);
            if (span.depth == 0)
                covered += span.seconds();
        }
        const double wall = static_cast<double>(hi - lo) * 1e-9;
        os << "track " << track.name << ": "
           << util::fixed(wall * 1e3, 3) << " ms wall, "
           << util::fixed(wall > 0.0 ? 100.0 * covered / wall : 100.0,
                          1)
           << "% attributed to named spans\n";
    }
    return os.str();
}

ScopedTimer::ScopedTimer(std::string metric)
    : metric_(std::move(metric)), start_ns_(Tracer::global().nowNs())
{
    if (Tracer::enabled()) {
        span_active_ = true;
        Tracer::global().beginSpan(metric_);
    }
}

ScopedTimer::~ScopedTimer()
{
    if (span_active_)
        Tracer::global().endSpan();
    const uint64_t elapsed = Tracer::global().nowNs() - start_ns_;
    MetricsRegistry::global().observe(
        metric_, static_cast<double>(elapsed) * 1e-9);
}

} // namespace obs
} // namespace recsim
