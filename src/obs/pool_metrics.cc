#include "obs/pool_metrics.h"

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace recsim {
namespace obs {

PoolSnapshot
snapshotThreadPool()
{
    const util::ThreadPool& pool = util::globalThreadPool();
    const util::ThreadPool::Stats stats = pool.stats();
    PoolSnapshot snap;
    snap.threads = pool.numThreads();
    snap.jobs = stats.jobs;
    snap.tasks = stats.tasks;
    snap.idle_ns = stats.idle_ns;
    return snap;
}

PoolSnapshot
poolDelta(const PoolSnapshot& before, const PoolSnapshot& after)
{
    RECSIM_ASSERT(after.jobs >= before.jobs &&
                      after.tasks >= before.tasks &&
                      after.idle_ns >= before.idle_ns,
                  "poolDelta: 'after' snapshot is older than 'before'");
    PoolSnapshot delta;
    delta.threads = after.threads;
    delta.jobs = after.jobs - before.jobs;
    delta.tasks = after.tasks - before.tasks;
    delta.idle_ns = after.idle_ns - before.idle_ns;
    return delta;
}

void
publishThreadPoolMetrics()
{
    publishThreadPoolMetrics("pool", snapshotThreadPool());
}

void
publishThreadPoolMetrics(const std::string& prefix,
                         const PoolSnapshot& snap)
{
    MetricsRegistry& metrics = MetricsRegistry::global();
    metrics.set(prefix + ".threads",
                static_cast<double>(snap.threads));
    metrics.set(prefix + ".jobs", static_cast<double>(snap.jobs));
    metrics.set(prefix + ".tasks", static_cast<double>(snap.tasks));
    metrics.set(prefix + ".idle_ns",
                static_cast<double>(snap.idle_ns));
}

} // namespace obs
} // namespace recsim
