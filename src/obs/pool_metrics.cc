#include "obs/pool_metrics.h"

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace recsim {
namespace obs {

void
publishThreadPoolMetrics()
{
    const util::ThreadPool& pool = util::globalThreadPool();
    const util::ThreadPool::Stats stats = pool.stats();
    MetricsRegistry& metrics = MetricsRegistry::global();
    metrics.set("pool.threads",
                static_cast<double>(pool.numThreads()));
    metrics.set("pool.jobs", static_cast<double>(stats.jobs));
    metrics.set("pool.tasks", static_cast<double>(stats.tasks));
    metrics.set("pool.idle_ns", static_cast<double>(stats.idle_ns));
}

} // namespace obs
} // namespace recsim
