/**
 * @file
 * Process-wide metrics registry: named counters, gauges and timing
 * statistics. The paper's methodology is built on exactly this kind of
 * internal accounting (per-operator time breakdowns, utilization
 * distributions, Sections V-VI); the registry gives every layer of
 * recsim a place to record what it spent time on so benches and tests
 * can attribute wall time instead of guessing.
 *
 * Thread safety: all member functions are safe to call concurrently
 * (Hogwild/EASGD/ShadowSync workers record into one registry).
 * Contention: names hash onto a fixed array of lock stripes, so
 * concurrent observe()/incr() on different metrics (the common case —
 * each worker records its own series) proceed in parallel instead of
 * serializing on one global mutex. report() output is byte-identical
 * to the single-map implementation: entries are merged and sorted by
 * name before rendering.
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "stats/running_stat.h"

namespace recsim {
namespace obs {

/**
 * Named counters (monotonic), gauges (last value wins) and timing
 * distributions (stats::RunningStat of observed values, typically
 * seconds). Names are dot-scoped, e.g. "train.iterations".
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry most callers use. */
    static MetricsRegistry& global();

    /** Add @p delta to counter @p name (creating it at 0). */
    void incr(const std::string& name, uint64_t delta = 1);

    /** Set gauge @p name to @p value. */
    void set(const std::string& name, double value);

    /** Record one observation of timing/value series @p name. */
    void observe(const std::string& name, double value);

    /** Counter value (0 if never incremented). */
    uint64_t counter(const std::string& name) const;

    /** Gauge value (0 if never set). */
    double gauge(const std::string& name) const;

    /** Copy of a timing series' accumulator (empty if never observed). */
    stats::RunningStat timing(const std::string& name) const;

    /** Total number of distinct metric names of any kind. */
    std::size_t size() const;

    /** All counters, merged across stripes and sorted by name. */
    std::map<std::string, uint64_t> counters() const;

    /** All gauges, merged across stripes and sorted by name. */
    std::map<std::string, double> gauges() const;

    /** All timing series, merged across stripes and sorted by name. */
    std::map<std::string, stats::RunningStat> timings() const;

    /** Human-readable dump of every metric, sorted by name. */
    std::string report() const;

    /** Drop every metric. */
    void reset();

  private:
    static constexpr std::size_t kStripes = 16;

    struct Stripe
    {
        mutable std::mutex mutex;
        std::map<std::string, uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, stats::RunningStat> timings;
    };

    Stripe& stripeFor(const std::string& name) const;

    mutable Stripe stripes_[kStripes];
};

} // namespace obs
} // namespace recsim
