/**
 * @file
 * Predicted-vs-measured drift monitor: folds the flight recorder's
 * per-node samples against the analytical cost model's per-node
 * predictions (cost::IterationModel::nodeBreakdown(), passed in as a
 * plain node_id -> seconds map so obs stays dependency-free) and flags
 *  - *node drift*: a node whose measured mean runtime is off its
 *    prediction by more than a configurable ratio, and
 *  - *straggler steps*: steps whose wall time exceeds a multiple of
 *    the rolling median of the preceding window — the outlier
 *    detection the paper's fleet accounting uses to separate "the
 *    model is wrong about this operator" from "this step hit a stall".
 *
 * This closes the predicted/simulated/measured triangle
 * (bench/validation_graph_breakdown) as a *runtime* check: a trainer
 * or serving driver can keep a DriftMonitor fed from the recorder and
 * alarm when the deployed cost model stops describing the machine.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace recsim {
namespace obs {

/** Drift verdict for one StepGraph node. */
struct NodeDrift
{
    std::string node_id;
    double predicted_s = 0.0;
    double measured_mean_s = 0.0;
    uint64_t samples = 0;
    /** measured / predicted; 0 when either side is missing. */
    double ratio = 0.0;
    /** ratio outside [1/threshold, threshold] with enough samples. */
    bool flagged = false;
};

/** One step flagged by the rolling-median outlier detector. */
struct StragglerStep
{
    uint64_t step = 0;
    double seconds = 0.0;
    /** Rolling median of the preceding window at that step. */
    double median_s = 0.0;
    double ratio = 0.0;
};

/** Everything the monitor concluded. */
struct DriftReport
{
    std::vector<NodeDrift> nodes;        ///< Prediction order (sorted ids).
    std::vector<StragglerStep> stragglers;
    uint64_t steps_observed = 0;
    /** max over flagged-eligible nodes of |log(ratio)| (0 if none). */
    double worst_abs_log_ratio = 0.0;

    /** Node ids with flagged == true, in order. */
    std::vector<std::string> flaggedNodes() const;
};

/** Thresholds of the drift monitor. */
struct DriftConfig
{
    /** Flag a node when measured/predicted leaves
     *  [1/ratio_threshold, ratio_threshold]. */
    double ratio_threshold = 1.5;
    /** Minimum samples before a node may be flagged. */
    uint64_t min_samples = 3;
    /** Rolling-median window for straggler detection. */
    std::size_t median_window = 32;
    /** Flag a step at > straggler_factor x rolling median. */
    double straggler_factor = 2.0;
    /** Steps before the window fills that are never flagged. */
    std::size_t warmup_steps = 8;
};

/**
 * Accumulates measured per-node times and per-step wall times, then
 * folds them against the predictions. Not thread-safe (one monitor
 * per driver thread; the recorder is the concurrent buffer).
 */
class DriftMonitor
{
  public:
    explicit DriftMonitor(std::map<std::string, double> predicted,
                          DriftConfig config = DriftConfig());

    /** Record one measured execution of @p node_id. */
    void observeNode(const std::string& node_id, double seconds);

    /** Record one step's wall time (steps in increasing order). */
    void observeStep(uint64_t step, double seconds);

    /**
     * Fold recorder samples: samples whose channel name matches a
     * predicted node id are summed per (node, step) — the executor
     * emits one sample per visit (forward and backward separately)
     * while the cost model predicts whole-iteration node seconds —
     * and each per-step total feeds observeNode(). Samples on
     * @p step_channel feed observeStep(). Other channels are ignored.
     */
    void ingest(const FlightRecorder& recorder,
                const std::vector<Sample>& samples,
                const std::string& step_channel = "train.step_s");

    DriftReport report() const;

    const DriftConfig& config() const { return config_; }

  private:
    struct NodeAccum
    {
        double sum_s = 0.0;
        uint64_t samples = 0;
    };

    DriftConfig config_;
    std::map<std::string, double> predicted_;
    std::map<std::string, NodeAccum> measured_;
    std::vector<std::pair<uint64_t, double>> step_seconds_;
};

} // namespace obs
} // namespace recsim
