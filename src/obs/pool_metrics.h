/**
 * @file
 * Bridge from the util::ThreadPool dispatch counters into the
 * MetricsRegistry. Lives in obs (not util) so the base util library
 * stays free of observability dependencies; callers that want pool
 * utilization in their metrics report (trainers, benches, tests) call
 * publishThreadPoolMetrics() at a natural boundary — end of a training
 * run, end of a bench — rather than paying registry traffic per
 * dispatch.
 *
 * The pool's counters are cumulative since construction, so
 * attributing dispatch activity to one region used to require manual
 * before/after subtraction at every call site. The snapshot/delta API
 * does that once: snapshotThreadPool() before the region,
 * poolDelta(before, snapshotThreadPool()) after, and
 * publishThreadPoolMetrics(prefix, delta) to publish the region's own
 * jobs/tasks/idle time under its own gauge names.
 */
#pragma once

#include <cstdint>
#include <string>

namespace recsim {
namespace obs {

/** Point-in-time copy of the global pool's cumulative counters. */
struct PoolSnapshot
{
    std::size_t threads = 0;  ///< Configured concurrency.
    uint64_t jobs = 0;        ///< parallelFor() calls dispatched.
    uint64_t tasks = 0;       ///< Chunk executions.
    uint64_t idle_ns = 0;     ///< Cumulative worker time blocked.
};

/** Current counters of util::globalThreadPool(). */
PoolSnapshot snapshotThreadPool();

/**
 * Counter movement between two snapshots of the same pool:
 * fieldwise after - before (threads is taken from @p after).
 * @pre @p after was taken later than @p before (checked).
 */
PoolSnapshot poolDelta(const PoolSnapshot& before,
                       const PoolSnapshot& after);

/**
 * Snapshot util::globalThreadPool() counters into the global registry:
 *  - "pool.threads"  (gauge)   configured concurrency
 *  - "pool.jobs"     (gauge)   parallelFor() calls dispatched so far
 *  - "pool.tasks"    (gauge)   chunk executions so far
 *  - "pool.idle_ns"  (gauge)   cumulative worker time spent blocked
 * Values are cumulative since pool construction; for per-region
 * attribution use the snapshot/delta overload below.
 */
void publishThreadPoolMetrics();

/**
 * Publish a region's pool-counter movement as gauges
 * "<prefix>.threads" / ".jobs" / ".tasks" / ".idle_ns" — e.g.
 * publishThreadPoolMetrics("train.pool", poolDelta(before, after)).
 */
void publishThreadPoolMetrics(const std::string& prefix,
                              const PoolSnapshot& delta);

} // namespace obs
} // namespace recsim
