/**
 * @file
 * Bridge from the util::ThreadPool dispatch counters into the
 * MetricsRegistry. Lives in obs (not util) so the base util library
 * stays free of observability dependencies; callers that want pool
 * utilization in their metrics report (trainers, benches, tests) call
 * publishThreadPoolMetrics() at a natural boundary — end of a training
 * run, end of a bench — rather than paying registry traffic per
 * dispatch.
 */
#pragma once

namespace recsim {
namespace obs {

/**
 * Snapshot util::globalThreadPool() counters into the global registry:
 *  - "pool.threads"  (gauge)   configured concurrency
 *  - "pool.jobs"     (gauge)   parallelFor() calls dispatched so far
 *  - "pool.tasks"    (gauge)   chunk executions so far
 *  - "pool.idle_ns"  (gauge)   cumulative worker time spent blocked
 * Values are cumulative since pool construction; call before and after
 * a region to attribute dispatch activity to it.
 */
void publishThreadPoolMetrics();

} // namespace obs
} // namespace recsim
