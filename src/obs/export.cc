#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/pool_metrics.h"

namespace recsim {
namespace obs {

namespace {

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Render a double the way both exporters want: shortest round-trip
 *  representation with enough digits. */
std::string
num(double v)
{
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

std::string
prometheusName(const std::string& name)
{
    std::string out = "recsim_";
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
            c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
prometheusText(const MetricsRegistry& registry)
{
    std::ostringstream os;
    for (const auto& [name, value] : registry.counters()) {
        const std::string pname = prometheusName(name);
        os << "# TYPE " << pname << " counter\n"
           << pname << " " << value << "\n";
    }
    for (const auto& [name, value] : registry.gauges()) {
        const std::string pname = prometheusName(name);
        os << "# TYPE " << pname << " gauge\n"
           << pname << " " << num(value) << "\n";
    }
    for (const auto& [name, stat] : registry.timings()) {
        const std::string pname = prometheusName(name);
        os << "# TYPE " << pname << " summary\n"
           << pname << "_count " << stat.count() << "\n"
           << pname << "_sum " << num(stat.sum()) << "\n"
           << "# TYPE " << pname << "_min gauge\n"
           << pname << "_min " << num(stat.min()) << "\n"
           << "# TYPE " << pname << "_max gauge\n"
           << pname << "_max " << num(stat.max()) << "\n";
    }
    return os.str();
}

std::string
prometheusHistogram(const std::string& name,
                    const stats::LogHistogramSnapshot& snap)
{
    const std::string pname = prometheusName(name);
    std::ostringstream os;
    os << "# TYPE " << pname << " histogram\n";
    // Only the occupied range of the log buckets: ~1.4k mostly-empty
    // bins would drown a scrape. Buckets are cumulative per the
    // exposition format.
    std::size_t lo = snap.bins.size(), hi = 0;
    for (std::size_t i = 0; i < snap.bins.size(); ++i) {
        if (snap.bins[i]) {
            lo = std::min(lo, i);
            hi = std::max(hi, i);
        }
    }
    uint64_t cumulative = 0;
    if (lo <= hi) {
        for (std::size_t i = lo; i <= hi; ++i) {
            cumulative += snap.bins[i];
            os << pname << "_bucket{le=\"" << num(snap.binUpperEdge(i))
               << "\"} " << cumulative << "\n";
        }
    }
    os << pname << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
       << pname << "_sum " << num(snap.sum) << "\n"
       << pname << "_count " << snap.count << "\n";
    return os.str();
}

// ---------------------------------------------------------------------
// JSONL snapshots
// ---------------------------------------------------------------------

std::string
telemetryJsonLine(uint64_t seq, double t_s,
                  const MetricsRegistry& registry,
                  const FlightRecorder& recorder,
                  const stats::WindowedHistogram* latency)
{
    std::ostringstream os;
    os << "{\"seq\": " << seq << ", \"t_s\": " << num(t_s);

    const PoolSnapshot pool = snapshotThreadPool();
    os << ", \"pool\": {\"threads\": " << pool.threads
       << ", \"jobs\": " << pool.jobs << ", \"tasks\": " << pool.tasks
       << ", \"idle_ns\": " << pool.idle_ns << "}";

    os << ", \"recorder\": {\"size\": " << recorder.size()
       << ", \"capacity\": " << recorder.capacity()
       << ", \"dropped\": " << recorder.dropped()
       << ", \"total\": " << recorder.totalRecorded() << "}";

    os << ", \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : registry.counters()) {
        os << (first ? "" : ", ") << "\"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : registry.gauges()) {
        os << (first ? "" : ", ") << "\"" << jsonEscape(name)
           << "\": " << num(value);
        first = false;
    }
    os << "}, \"timings\": {";
    first = true;
    for (const auto& [name, stat] : registry.timings()) {
        os << (first ? "" : ", ") << "\"" << jsonEscape(name)
           << "\": {\"count\": " << stat.count() << ", \"mean\": "
           << num(stat.mean()) << ", \"min\": " << num(stat.min())
           << ", \"max\": " << num(stat.max()) << "}";
        first = false;
    }
    os << "}";

    if (latency != nullptr) {
        const stats::TailSummary tail = latency->tail();
        os << ", \"latency\": {\"count\": " << tail.count
           << ", \"p50_s\": " << num(tail.p50)
           << ", \"p95_s\": " << num(tail.p95)
           << ", \"p99_s\": " << num(tail.p99)
           << ", \"max_s\": " << num(tail.max) << "}";
    }
    os << "}";
    return os.str();
}

// ---------------------------------------------------------------------
// PeriodicSampler
// ---------------------------------------------------------------------

PeriodicSampler::PeriodicSampler(Config config)
    : config_(std::move(config)), start_ns_(steadyNowNs())
{
}

PeriodicSampler::~PeriodicSampler()
{
    stop();
    if (!config_.jsonl_path.empty())
        writeJsonl(config_.jsonl_path);
}

void
PeriodicSampler::sampleOnce()
{
    const double t_s =
        static_cast<double>(steadyNowNs() - start_ns_) * 1e-9;
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(telemetryJsonLine(
        seq_++, t_s, MetricsRegistry::global(),
        FlightRecorder::global(), config_.latency));
}

std::vector<std::string>
PeriodicSampler::lines() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
}

bool
PeriodicSampler::writeJsonl(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    for (const std::string& line : lines())
        out << line << "\n";
    return static_cast<bool>(out);
}

void
PeriodicSampler::start()
{
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (running_)
        return;
    running_ = true;
    stop_requested_ = false;
    thread_ = std::thread([this] { samplerLoop(); });
}

void
PeriodicSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        if (!running_)
            return;
        stop_requested_ = true;
    }
    wake_cv_.notify_all();
    thread_.join();
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        running_ = false;
    }
    // The final sample catches whatever happened after the last tick.
    sampleOnce();
}

void
PeriodicSampler::samplerLoop()
{
    const auto interval = std::chrono::duration_cast<
        std::chrono::nanoseconds>(
        std::chrono::duration<double>(config_.interval_s));
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (!stop_requested_) {
        if (wake_cv_.wait_for(lock, interval,
                              [this] { return stop_requested_; }))
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

} // namespace obs
} // namespace recsim
