#include "obs/metrics.h"

#include <functional>
#include <sstream>
#include <vector>

#include "util/string_utils.h"

namespace recsim {
namespace obs {

MetricsRegistry&
MetricsRegistry::global()
{
    // Leaky singleton, same rationale as Tracer::global().
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

MetricsRegistry::Stripe&
MetricsRegistry::stripeFor(const std::string& name) const
{
    return stripes_[std::hash<std::string>{}(name) % kStripes];
}

void
MetricsRegistry::incr(const std::string& name, uint64_t delta)
{
    Stripe& stripe = stripeFor(name);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.counters[name] += delta;
}

void
MetricsRegistry::set(const std::string& name, double value)
{
    Stripe& stripe = stripeFor(name);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.gauges[name] = value;
}

void
MetricsRegistry::observe(const std::string& name, double value)
{
    Stripe& stripe = stripeFor(name);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.timings[name].add(value);
}

uint64_t
MetricsRegistry::counter(const std::string& name) const
{
    Stripe& stripe = stripeFor(name);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.counters.find(name);
    return it == stripe.counters.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string& name) const
{
    Stripe& stripe = stripeFor(name);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.gauges.find(name);
    return it == stripe.gauges.end() ? 0.0 : it->second;
}

stats::RunningStat
MetricsRegistry::timing(const std::string& name) const
{
    Stripe& stripe = stripeFor(name);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.timings.find(name);
    return it == stripe.timings.end() ? stats::RunningStat()
                                      : it->second;
}

std::size_t
MetricsRegistry::size() const
{
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        total += stripe.counters.size() + stripe.gauges.size() +
            stripe.timings.size();
    }
    return total;
}

std::map<std::string, uint64_t>
MetricsRegistry::counters() const
{
    std::map<std::string, uint64_t> merged;
    for (const Stripe& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        merged.insert(stripe.counters.begin(), stripe.counters.end());
    }
    return merged;
}

std::map<std::string, double>
MetricsRegistry::gauges() const
{
    std::map<std::string, double> merged;
    for (const Stripe& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        merged.insert(stripe.gauges.begin(), stripe.gauges.end());
    }
    return merged;
}

std::map<std::string, stats::RunningStat>
MetricsRegistry::timings() const
{
    std::map<std::string, stats::RunningStat> merged;
    for (const Stripe& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        merged.insert(stripe.timings.begin(), stripe.timings.end());
    }
    return merged;
}

std::string
MetricsRegistry::report() const
{
    // Merge-then-render keeps the output byte-identical to the old
    // single-map implementation: std::map iteration is sorted by name.
    std::ostringstream os;
    os << "=== metrics ===\n";
    for (const auto& [name, value] : counters())
        os << "  " << util::padRight(name, 36) << " counter "
           << value << "\n";
    for (const auto& [name, value] : gauges())
        os << "  " << util::padRight(name, 36) << " gauge   "
           << util::fixed(value, 6) << "\n";
    for (const auto& [name, stat] : timings()) {
        os << "  " << util::padRight(name, 36) << " timing  n="
           << stat.count() << " mean=" << util::fixed(stat.mean(), 6)
           << " min=" << util::fixed(stat.min(), 6)
           << " max=" << util::fixed(stat.max(), 6)
           << " total=" << util::fixed(stat.sum(), 6) << "\n";
    }
    return os.str();
}

void
MetricsRegistry::reset()
{
    for (Stripe& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        stripe.counters.clear();
        stripe.gauges.clear();
        stripe.timings.clear();
    }
}

} // namespace obs
} // namespace recsim
