#include "obs/metrics.h"

#include <sstream>
#include <vector>

#include "util/string_utils.h"

namespace recsim {
namespace obs {

MetricsRegistry&
MetricsRegistry::global()
{
    // Leaky singleton, same rationale as Tracer::global().
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

void
MetricsRegistry::incr(const std::string& name, uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::set(const std::string& name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::observe(const std::string& name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    timings_[name].add(value);
}

uint64_t
MetricsRegistry::counter(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

stats::RunningStat
MetricsRegistry::timing(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timings_.find(name);
    return it == timings_.end() ? stats::RunningStat() : it->second;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + timings_.size();
}

std::string
MetricsRegistry::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "=== metrics ===\n";
    for (const auto& [name, value] : counters_)
        os << "  " << util::padRight(name, 36) << " counter "
           << value << "\n";
    for (const auto& [name, value] : gauges_)
        os << "  " << util::padRight(name, 36) << " gauge   "
           << util::fixed(value, 6) << "\n";
    for (const auto& [name, stat] : timings_) {
        os << "  " << util::padRight(name, 36) << " timing  n="
           << stat.count() << " mean=" << util::fixed(stat.mean(), 6)
           << " min=" << util::fixed(stat.min(), 6)
           << " max=" << util::fixed(stat.max(), 6)
           << " total=" << util::fixed(stat.sum(), 6) << "\n";
    }
    return os.str();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    timings_.clear();
}

} // namespace obs
} // namespace recsim
