/**
 * @file
 * Telemetry exporters: the back of the observability pipeline
 * (recorder/registry/histograms -> something a fleet can scrape).
 *
 *  - Prometheus text exposition (version 0.0.4): counters, gauges,
 *    timing summaries from the MetricsRegistry, and cumulative-bucket
 *    histograms from stats::LogHistogram snapshots — the pull-based
 *    interface production monitoring expects.
 *  - JSONL snapshots: one self-contained JSON object per line with a
 *    monotone timestamp, pool occupancy, recorder state, all metrics,
 *    and optional windowed-latency percentiles — the append-only
 *    artifact the CI schema gate validates.
 *  - PeriodicSampler: a background thread (or a manually pumped
 *    sampleOnce() for virtual-time drivers and tests) publishing one
 *    JSONL line per interval.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "stats/log_histogram.h"

namespace recsim {
namespace obs {

/**
 * Sanitize a dot-scoped metric name into a legal Prometheus metric
 * name: [a-zA-Z_:][a-zA-Z0-9_:]*, with '.' and any other illegal
 * character mapped to '_', and a "recsim_" prefix applied.
 */
std::string prometheusName(const std::string& name);

/**
 * The registry in Prometheus text exposition format: counters as
 * `counter`, gauges as `gauge`, each timing series as a `summary`
 * (_count/_sum) plus _min/_max gauges.
 */
std::string prometheusText(const MetricsRegistry& registry);

/**
 * One LogHistogram snapshot as a Prometheus `histogram`: cumulative
 * `le`-labelled buckets over the non-empty range, +Inf bucket, _sum
 * and _count.
 */
std::string prometheusHistogram(
    const std::string& name, const stats::LogHistogramSnapshot& snap);

/**
 * One telemetry snapshot as a single JSONL line (no trailing
 * newline): {"seq":..,"t_s":..,"pool":{..},"recorder":{..},
 * "counters":{..},"gauges":{..},"timings":{..}[,"latency":{..}]}.
 * @p latency, when non-null, adds windowed-percentile fields
 * (count/p50_s/p95_s/p99_s/max_s) from the histogram.
 */
std::string telemetryJsonLine(
    uint64_t seq, double t_s, const MetricsRegistry& registry,
    const FlightRecorder& recorder,
    const stats::WindowedHistogram* latency = nullptr);

/**
 * Publishes one telemetryJsonLine() per interval — pool occupancy,
 * registry contents and recorder state, optionally with rolling
 * latency percentiles from an attached WindowedHistogram.
 *
 * Two modes:
 *  - start()/stop(): a background thread samples every `interval_s`
 *    of wall time (serving drivers, long training runs);
 *  - sampleOnce(): manual pumping for virtual-time replay loops,
 *    benches and tests — no thread, fully deterministic call count.
 * Lines accumulate in memory (lines()) and are flushed to
 * `jsonl_path` by writeJsonl() / the destructor when a path is set.
 */
class PeriodicSampler
{
  public:
    struct Config
    {
        double interval_s = 1.0;
        /** When non-empty, the destructor writes the lines here. */
        std::string jsonl_path;
        /** Optional rolling-percentile source for the lines. */
        const stats::WindowedHistogram* latency = nullptr;
    };

    explicit PeriodicSampler(Config config);
    ~PeriodicSampler();

    PeriodicSampler(const PeriodicSampler&) = delete;
    PeriodicSampler& operator=(const PeriodicSampler&) = delete;

    /** Begin background sampling (idempotent). */
    void start();

    /** Stop the background thread (idempotent; also called by the
     *  destructor). Takes one final sample before stopping. */
    void stop();

    /** Take one sample now, on the calling thread. Thread-safe. */
    void sampleOnce();

    /** Copy of the JSONL lines emitted so far. Thread-safe. */
    std::vector<std::string> lines() const;

    /** Write all lines to @p path (one per line). False on I/O
     *  failure. */
    bool writeJsonl(const std::string& path) const;

  private:
    void samplerLoop();

    Config config_;
    mutable std::mutex mutex_;
    std::vector<std::string> lines_;
    uint64_t seq_ = 0;
    uint64_t start_ns_ = 0;

    std::thread thread_;
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    bool running_ = false;
    bool stop_requested_ = false;
};

} // namespace obs
} // namespace recsim
