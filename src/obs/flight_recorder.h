/**
 * @file
 * Flight recorder: a fixed-capacity, per-thread-striped ring buffer of
 * structured per-step / per-batch samples — the time-resolved side of
 * the observability layer. Where the MetricsRegistry aggregates
 * (count/mean/min/max forever) and the Tracer records unbounded span
 * lists, the recorder answers "what happened around step 4812" with
 * bounded memory: the last `capacity()` samples are always available,
 * older ones are overwritten (and counted as dropped).
 *
 * A sample is a 32-byte POD: timestamp (ns since the recorder epoch),
 * step/batch sequence number, an interned channel id (a named series —
 * "train.step_s", "serve.batch_s", or a StepGraph node id recorded by
 * the executor), the batch row count, and a double value. Channels are
 * interned once (mutex + map) and recorded by integer id, so the
 * record path never hashes strings.
 *
 * Cost model, mirroring the Tracer: every instrumentation site starts
 * with one relaxed atomic load (FlightRecorder::enabled(), via
 * recorderEnabled() which additionally folds to `false` at compile
 * time under RECSIM_OBS_DISABLED). The enabled path takes one
 * uncontended per-stripe mutex: stripes are assigned per thread
 * (round-robin over a fixed stripe array), so trainer, executor
 * workers and serving drivers never contend on one lock, and
 * snapshot() can read consistent samples without stopping writers.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace recsim {
namespace obs {

namespace detail {
extern std::atomic<bool> g_recorder_enabled;
} // namespace detail

/** One recorded observation. POD, 32 bytes. */
struct Sample
{
    uint64_t t_ns = 0;     ///< Nanoseconds since the recorder epoch.
    uint64_t step = 0;     ///< Step / batch sequence number.
    uint32_t channel = 0;  ///< Interned channel id.
    uint32_t rows = 0;     ///< Batch rows (0 when not applicable).
    double value = 0.0;
};

/**
 * The process-wide flight recorder. Disabled by default; when
 * disabled, record() returns after one relaxed load and instrumented
 * code skips its measurement entirely (see recorderEnabled()).
 */
class FlightRecorder
{
  public:
    static FlightRecorder& global();

    /** Fast path for instrumentation sites: one relaxed load. */
    static bool enabled()
    {
        return detail::g_recorder_enabled.load(
            std::memory_order_relaxed);
    }

    /** Turn recording on/off. Samples offered while off are dropped
     *  before any work happens. */
    void setEnabled(bool on);

    /**
     * Resize total capacity (split evenly over the stripes, so the
     * retention per thread is capacity / numStripes). Drops all held
     * samples and restarts the epoch; interned channels survive.
     */
    void configure(std::size_t capacity);

    std::size_t capacity() const;
    std::size_t numStripes() const;

    /**
     * Id of channel @p name, creating it on first use. Ids are dense,
     * stable for the process lifetime (reset() keeps them) and safe to
     * cache at instrumentation sites.
     */
    uint32_t internChannel(const std::string& name);

    /** Name of @p channel ("?" for an unknown id). */
    std::string channelName(uint32_t channel) const;

    /** All interned channel names, indexed by id. */
    std::vector<std::string> channels() const;

    /** Record one sample (timestamped now) on the calling thread's
     *  stripe. No-op while disabled. Thread-safe. */
    void record(uint32_t channel, uint64_t step, double value,
                uint32_t rows = 0);

    /** Nanoseconds since the recorder epoch (construction, configure()
     *  or reset()). */
    uint64_t nowNs() const;

    /** Samples currently retained across all stripes. */
    std::size_t size() const;

    /** Samples ever offered to record() while enabled (monotone). */
    uint64_t totalRecorded() const;

    /** Samples overwritten by ring wraparound: totalRecorded - size. */
    uint64_t dropped() const;

    /**
     * Copy of the retained samples, merged across stripes and sorted
     * by (t_ns, step, channel). Thread-safe against concurrent
     * record() calls.
     */
    std::vector<Sample> snapshot() const;

    /** Drop all samples and restart the epoch. Channels and capacity
     *  survive (live instrumentation sites keep their cached ids). */
    void reset();

  private:
    FlightRecorder();
    struct Impl;
    Impl* impl_;
};

/**
 * The guard instrumentation sites use: one relaxed atomic load, and a
 * compile-time `false` under RECSIM_OBS_DISABLED so the measurement
 * code folds away entirely in obs-free builds.
 */
#ifndef RECSIM_OBS_DISABLED
inline bool
recorderEnabled()
{
    return FlightRecorder::enabled();
}
#else
constexpr bool
recorderEnabled()
{
    return false;
}
#endif

} // namespace obs
} // namespace recsim
