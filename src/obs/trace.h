/**
 * @file
 * Tracing substrate: RAII wall-clock spans on per-thread tracks plus
 * simulated-time spans on named tracks, exported together as one
 * Chrome trace_event JSON (loadable in Perfetto / chrome://tracing)
 * and as a plain-text summary that attributes wall time to named
 * spans — the per-operator breakdown methodology of the paper's
 * Sections V-VI applied to recsim itself.
 *
 * Cost model: tracing is off by default. Every instrumentation site
 * starts with a single relaxed atomic load (Tracer::enabled()), so the
 * disabled path adds no measurable overhead to the hot kernels; the
 * RECSIM_TRACE_SPAN macro additionally compiles to nothing when
 * RECSIM_OBS_DISABLED is defined, for benchmark builds that want the
 * instrumentation gone entirely.
 *
 * Thread model: each thread that opens a span gets its own track (its
 * own tid in the exported trace), so Hogwild/EASGD/ShadowSync workers
 * appear as parallel tracks. Simulated-time spans (sim-clock
 * nanoseconds from the DES) go on explicitly named tracks under a
 * separate process id so wall time and simulated time never share an
 * axis.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace recsim {
namespace obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
} // namespace detail

/** One completed span on some track, timestamps in nanoseconds. */
struct SpanRecord
{
    std::string name;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    /** Nesting depth on its track at begin time (0 = top level). */
    int depth = 0;
    /** Begin order within the track. */
    uint64_t seq = 0;

    double seconds() const
    {
        return static_cast<double>(end_ns - start_ns) * 1e-9;
    }
};

/** All completed spans of one track (one thread or one sim node). */
struct TrackRecord
{
    std::string name;
    /** True for simulated-time tracks (sim-clock timestamps). */
    bool simulated = false;
    std::vector<SpanRecord> spans;
};

/**
 * The process-wide tracer. Wall spans are recorded via beginSpan /
 * endSpan (usually through the TraceSpan RAII helper) on the calling
 * thread's track; simulated spans are recorded with explicit
 * timestamps via addSimSpan.
 */
class Tracer
{
  public:
    static Tracer& global();

    /** Fast path for instrumentation sites: one relaxed load. */
    static bool enabled()
    {
        return detail::g_trace_enabled.load(std::memory_order_relaxed);
    }

    /** Turn recording on/off. Spans opened while off are not recorded. */
    void setEnabled(bool on);

    /**
     * Drop every recorded span and sim track and restart the wall
     * epoch. Thread tracks stay registered (live threads keep writing
     * to the same track after a reset).
     */
    void reset();

    /** Open a span on the calling thread's track. */
    void beginSpan(std::string name);

    /** Close the innermost open span on the calling thread's track. */
    void endSpan();

    /**
     * Record a completed simulated-time span on the named track.
     * Timestamps are sim-clock nanoseconds (des::Tick values).
     */
    void addSimSpan(const std::string& track, std::string name,
                    uint64_t start_ns, uint64_t end_ns);

    /** Nanoseconds since the wall epoch (construction or reset()). */
    uint64_t nowNs() const;

    /** Copy of every track's completed spans (wall tracks first). */
    std::vector<TrackRecord> snapshot() const;

    /** Total completed spans across all tracks. */
    std::size_t numSpans() const;

    /** Currently open (unbalanced) spans across all thread tracks. */
    std::size_t numOpenSpans() const;

    /** Number of wall (thread) tracks that recorded at least 1 span. */
    std::size_t numActiveThreadTracks() const;

    /** The whole trace as Chrome trace_event JSON. */
    std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to @p path. False on I/O failure. */
    bool writeChromeTrace(const std::string& path) const;

    /**
     * Plain-text report: per-name totals (count, total time, share)
     * and, per wall track, the fraction of the track's wall interval
     * covered by named top-level spans.
     */
    std::string summary() const;

  private:
    Tracer();
    struct Impl;
    Impl* impl_;
};

/**
 * RAII wall-clock span. Near-zero cost when tracing is disabled; the
 * begin/end pairing survives the enabled flag flipping mid-span.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char* name)
    {
        if (Tracer::enabled()) {
            active_ = true;
            Tracer::global().beginSpan(name);
        }
    }

    explicit TraceSpan(std::string name)
    {
        if (Tracer::enabled()) {
            active_ = true;
            Tracer::global().beginSpan(std::move(name));
        }
    }

    ~TraceSpan()
    {
        if (active_)
            Tracer::global().endSpan();
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    bool active_ = false;
};

/**
 * RAII timer that records its lifetime in seconds into
 * MetricsRegistry::global() under @p metric (always, independent of
 * the tracing flag) and additionally opens a trace span of the same
 * name when tracing is enabled.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string metric);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    std::string metric_;
    uint64_t start_ns_;
    bool span_active_ = false;
};

#define RECSIM_OBS_CAT2(a, b) a##b
#define RECSIM_OBS_CAT(a, b) RECSIM_OBS_CAT2(a, b)

#ifndef RECSIM_OBS_DISABLED
/** Open a wall-clock trace span for the rest of the enclosing scope. */
#define RECSIM_TRACE_SPAN(name)                                            \
    ::recsim::obs::TraceSpan RECSIM_OBS_CAT(recsim_trace_span_,            \
                                            __LINE__)(name)
#else
#define RECSIM_TRACE_SPAN(name) ((void)0)
#endif

} // namespace obs
} // namespace recsim
