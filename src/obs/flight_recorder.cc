#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace recsim {
namespace obs {

namespace detail {
std::atomic<bool> g_recorder_enabled{false};
} // namespace detail

namespace {

constexpr std::size_t kStripes = 16;
constexpr std::size_t kDefaultCapacity = 1 << 16;

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

/**
 * One stripe: a ring written by (usually) one thread. The mutex is
 * per-stripe, so record() takes it uncontended in the common case;
 * snapshot()/size() walk all stripes.
 */
struct Stripe
{
    mutable std::mutex mutex;
    std::vector<Sample> ring;
    /** Next write position (ring.size() == capacity once full). */
    std::size_t head = 0;
    /** Retained sample count (<= stripe capacity). */
    std::size_t filled = 0;
    uint64_t written = 0;
};

struct FlightRecorder::Impl
{
    Stripe stripes[kStripes];
    std::size_t stripe_capacity = kDefaultCapacity / kStripes;
    std::atomic<uint64_t> epoch_ns{steadyNowNs()};
    std::atomic<std::size_t> next_stripe{0};

    mutable std::mutex channel_mutex;
    std::unordered_map<std::string, uint32_t> channel_ids;
    std::vector<std::string> channel_names;
};

namespace {

/** Round-robin stripe assignment, sticky per thread. */
std::size_t
threadStripe(std::atomic<std::size_t>& next)
{
    thread_local std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

} // namespace

FlightRecorder::FlightRecorder() : impl_(new Impl()) {}

FlightRecorder&
FlightRecorder::global()
{
    // Leaky singleton, same rationale as Tracer::global(): worker
    // threads may record during static destruction.
    static FlightRecorder* recorder = new FlightRecorder();
    return *recorder;
}

void
FlightRecorder::setEnabled(bool on)
{
    detail::g_recorder_enabled.store(on, std::memory_order_relaxed);
}

void
FlightRecorder::configure(std::size_t capacity)
{
    RECSIM_ASSERT(capacity >= kStripes,
                  "flight recorder capacity {} < {} stripes", capacity,
                  kStripes);
    for (auto& stripe : impl_->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        stripe.ring.clear();
        stripe.ring.shrink_to_fit();
        stripe.head = 0;
        stripe.filled = 0;
        stripe.written = 0;
    }
    impl_->stripe_capacity = capacity / kStripes;
    impl_->epoch_ns.store(steadyNowNs(), std::memory_order_relaxed);
}

std::size_t
FlightRecorder::capacity() const
{
    return impl_->stripe_capacity * kStripes;
}

std::size_t
FlightRecorder::numStripes() const
{
    return kStripes;
}

uint32_t
FlightRecorder::internChannel(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->channel_mutex);
    const auto it = impl_->channel_ids.find(name);
    if (it != impl_->channel_ids.end())
        return it->second;
    const uint32_t id =
        static_cast<uint32_t>(impl_->channel_names.size());
    impl_->channel_ids.emplace(name, id);
    impl_->channel_names.push_back(name);
    return id;
}

std::string
FlightRecorder::channelName(uint32_t channel) const
{
    std::lock_guard<std::mutex> lock(impl_->channel_mutex);
    if (channel >= impl_->channel_names.size())
        return "?";
    return impl_->channel_names[channel];
}

std::vector<std::string>
FlightRecorder::channels() const
{
    std::lock_guard<std::mutex> lock(impl_->channel_mutex);
    return impl_->channel_names;
}

void
FlightRecorder::record(uint32_t channel, uint64_t step, double value,
                       uint32_t rows)
{
    if (!enabled())
        return;
    Sample sample;
    sample.t_ns = nowNs();
    sample.step = step;
    sample.channel = channel;
    sample.rows = rows;
    sample.value = value;

    Stripe& stripe =
        impl_->stripes[threadStripe(impl_->next_stripe)];
    const std::size_t cap = impl_->stripe_capacity;
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (stripe.ring.size() < cap) {
        // Grow lazily toward the stripe capacity: an idle stripe
        // costs nothing.
        stripe.ring.push_back(sample);
        stripe.head = stripe.ring.size() % cap;
        stripe.filled = stripe.ring.size();
    } else {
        stripe.ring[stripe.head] = sample;
        stripe.head = (stripe.head + 1) % cap;
    }
    ++stripe.written;
}

uint64_t
FlightRecorder::nowNs() const
{
    return steadyNowNs() -
        impl_->epoch_ns.load(std::memory_order_relaxed);
}

std::size_t
FlightRecorder::size() const
{
    std::size_t total = 0;
    for (const auto& stripe : impl_->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        total += stripe.filled;
    }
    return total;
}

uint64_t
FlightRecorder::totalRecorded() const
{
    uint64_t total = 0;
    for (const auto& stripe : impl_->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        total += stripe.written;
    }
    return total;
}

uint64_t
FlightRecorder::dropped() const
{
    uint64_t written = 0;
    std::size_t held = 0;
    for (const auto& stripe : impl_->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        written += stripe.written;
        held += stripe.filled;
    }
    return written - static_cast<uint64_t>(held);
}

std::vector<Sample>
FlightRecorder::snapshot() const
{
    std::vector<Sample> out;
    for (const auto& stripe : impl_->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        out.insert(out.end(), stripe.ring.begin(),
                   stripe.ring.begin() +
                       static_cast<std::ptrdiff_t>(stripe.filled));
    }
    std::sort(out.begin(), out.end(),
              [](const Sample& a, const Sample& b) {
                  if (a.t_ns != b.t_ns)
                      return a.t_ns < b.t_ns;
                  if (a.step != b.step)
                      return a.step < b.step;
                  return a.channel < b.channel;
              });
    return out;
}

void
FlightRecorder::reset()
{
    for (auto& stripe : impl_->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        stripe.ring.clear();
        stripe.head = 0;
        stripe.filled = 0;
        stripe.written = 0;
    }
    impl_->epoch_ns.store(steadyNowNs(), std::memory_order_relaxed);
}

} // namespace obs
} // namespace recsim
