/**
 * @file
 * Batch sample container with exact quantiles and correlations; the
 * fleet analyses (Figs 5, 6, 9) summarize their run populations with it.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace recsim {
namespace stats {

/** Five-number-plus summary of a sample set. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
};

/**
 * Owning container of observations with exact order statistics.
 * Unlike Histogram this keeps every sample, so quantiles are exact.
 */
class SampleSet
{
  public:
    SampleSet() = default;
    explicit SampleSet(std::vector<double> values);

    void add(double x) { values_.push_back(x); }
    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    const std::vector<double>& values() const { return values_; }

    /** Exact quantile by linear interpolation; @p q in [0, 1]. */
    double quantile(double q) const;

    double mean() const;
    double stddev() const;

    /** Full summary in one pass. */
    Summary summarize() const;

    /** One-line rendering of summarize(), for bench output. */
    std::string describe(int precision = 2) const;

  private:
    std::vector<double> values_;
};

/** Pearson correlation of two equal-length series. */
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/** Spearman rank correlation of two equal-length series. */
double spearman(const std::vector<double>& x, const std::vector<double>& y);

} // namespace stats
} // namespace recsim
