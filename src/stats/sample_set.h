/**
 * @file
 * Batch sample container with exact quantiles and correlations; the
 * fleet analyses (Figs 5, 6, 9) summarize their run populations with it.
 */
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace recsim {
namespace stats {

/** Five-number-plus summary of a sample set. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
};

/**
 * Owning container of observations with exact order statistics.
 * Unlike Histogram this keeps every sample, so quantiles are exact.
 */
class SampleSet
{
  public:
    SampleSet() = default;
    explicit SampleSet(std::vector<double> values);

    void add(double x) { values_.push_back(x); }
    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    const std::vector<double>& values() const { return values_; }

    /** Exact quantile by linear interpolation; @p q in [0, 1]. */
    double quantile(double q) const;

    double mean() const;
    double stddev() const;

    /** Full summary in one pass. */
    Summary summarize() const;

    /** One-line rendering of summarize(), for bench output. */
    std::string describe(int precision = 2) const;

  private:
    std::vector<double> values_;
};

/**
 * Tail-latency summary of a sample population: the serving metrics the
 * inference literature reports against SLA targets (p50/p95/p99).
 */
struct TailSummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/**
 * Exact percentile of @p values by linear interpolation between order
 * statistics: position p/100 * (n-1) in the sorted sample (the same
 * rule as SampleSet::quantile, exposed over a raw vector so callers
 * need not copy into a SampleSet first). @p pct in [0, 100]; a
 * single-element sample returns that element for every percentile.
 * @pre @p values is non-empty.
 */
double percentile(std::vector<double> values, double pct);

/** Exact p50/p95/p99 + mean/max of @p values in one sort. */
TailSummary tailSummary(std::vector<double> values);

/**
 * Mutex-guarded sample container for concurrent recording: the
 * serving path's completion latencies are recorded by whichever
 * thread retires a batch, and neither SampleSet nor Histogram is safe
 * for that (both mutate unsynchronized state — see histogram.h).
 * add() is cheap (one lock, one push_back); snapshots copy out so
 * quantile math runs unlocked.
 */
class ConcurrentSampleSet
{
  public:
    /** Record one observation. Thread-safe. */
    void add(double x);

    /** Number of recorded observations. Thread-safe. */
    std::size_t size() const;

    /** Copy of the samples recorded so far. Thread-safe. */
    SampleSet snapshot() const;

    /** tailSummary() of the samples recorded so far. Thread-safe. */
    TailSummary tail() const;

  private:
    mutable std::mutex mutex_;
    std::vector<double> values_;
};

/** Pearson correlation of two equal-length series. */
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/** Spearman rank correlation of two equal-length series. */
double spearman(const std::vector<double>& x, const std::vector<double>& y);

} // namespace stats
} // namespace recsim
