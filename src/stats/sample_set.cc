#include "stats/sample_set.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/running_stat.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace recsim {
namespace stats {

SampleSet::SampleSet(std::vector<double> values)
    : values_(std::move(values))
{
}

double
SampleSet::quantile(double q) const
{
    RECSIM_ASSERT(!values_.empty(), "quantile of empty sample set");
    RECSIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
SampleSet::mean() const
{
    if (values_.empty())
        return 0.0;
    return std::accumulate(values_.begin(), values_.end(), 0.0) /
        static_cast<double>(values_.size());
}

double
SampleSet::stddev() const
{
    RunningStat rs;
    for (double v : values_)
        rs.add(v);
    return rs.stddev();
}

Summary
SampleSet::summarize() const
{
    Summary s;
    s.count = values_.size();
    if (values_.empty())
        return s;
    RunningStat rs;
    for (double v : values_)
        rs.add(v);
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = rs.min();
    s.max = rs.max();
    s.p25 = quantile(0.25);
    s.median = quantile(0.50);
    s.p75 = quantile(0.75);
    s.p95 = quantile(0.95);
    return s;
}

std::string
SampleSet::describe(int precision) const
{
    const Summary s = summarize();
    return util::format(
        "n={} mean={} sd={} min={} p25={} p50={} p75={} p95={} max={}",
        s.count,
        util::fixed(s.mean, precision), util::fixed(s.stddev, precision),
        util::fixed(s.min, precision), util::fixed(s.p25, precision),
        util::fixed(s.median, precision), util::fixed(s.p75, precision),
        util::fixed(s.p95, precision), util::fixed(s.max, precision));
}

namespace {

/** Interpolated order statistic of an already-sorted sample. */
double
sortedPercentile(const std::vector<double>& sorted, double pct)
{
    const double pos =
        pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

double
percentile(std::vector<double> values, double pct)
{
    RECSIM_ASSERT(!values.empty(), "percentile of empty sample");
    RECSIM_ASSERT(pct >= 0.0 && pct <= 100.0,
                  "percentile out of range: {}", pct);
    std::sort(values.begin(), values.end());
    return sortedPercentile(values, pct);
}

TailSummary
tailSummary(std::vector<double> values)
{
    TailSummary t;
    t.count = values.size();
    if (values.empty())
        return t;
    std::sort(values.begin(), values.end());
    t.mean = std::accumulate(values.begin(), values.end(), 0.0) /
        static_cast<double>(values.size());
    t.p50 = sortedPercentile(values, 50.0);
    t.p95 = sortedPercentile(values, 95.0);
    t.p99 = sortedPercentile(values, 99.0);
    t.max = values.back();
    return t;
}

void
ConcurrentSampleSet::add(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    values_.push_back(x);
}

std::size_t
ConcurrentSampleSet::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return values_.size();
}

SampleSet
ConcurrentSampleSet::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return SampleSet(values_);
}

TailSummary
ConcurrentSampleSet::tail() const
{
    std::vector<double> copy;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        copy = values_;
    }
    return tailSummary(std::move(copy));
}

double
pearson(const std::vector<double>& x, const std::vector<double>& y)
{
    RECSIM_ASSERT(x.size() == y.size(), "pearson length mismatch");
    RECSIM_ASSERT(x.size() >= 2, "pearson needs at least two points");
    const double n = static_cast<double>(x.size());
    const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
    const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

namespace {

/** Fractional ranks with tie-averaging. */
std::vector<double>
ranks(const std::vector<double>& v)
{
    std::vector<std::size_t> order(v.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]])
            ++j;
        const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            r[order[k]] = avg;
        i = j + 1;
    }
    return r;
}

} // namespace

double
spearman(const std::vector<double>& x, const std::vector<double>& y)
{
    return pearson(ranks(x), ranks(y));
}

} // namespace stats
} // namespace recsim
