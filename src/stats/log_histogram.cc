#include "stats/log_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "util/logging.h"

namespace recsim {
namespace stats {

namespace {

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** CAS-accumulate @p delta into an atomic double bit pattern. */
void
atomicAddDouble(std::atomic<uint64_t>& bits, double delta)
{
    uint64_t old_bits = bits.load(std::memory_order_relaxed);
    for (;;) {
        const uint64_t new_bits =
            doubleBits(bitsDouble(old_bits) + delta);
        if (bits.compare_exchange_weak(old_bits, new_bits,
                                       std::memory_order_relaxed))
            return;
    }
}

/** CAS @p v into @p bits if cmp(v, current) holds. */
template <typename Cmp>
void
atomicExtremeDouble(std::atomic<uint64_t>& bits, double v, Cmp cmp)
{
    uint64_t old_bits = bits.load(std::memory_order_relaxed);
    while (cmp(v, bitsDouble(old_bits))) {
        if (bits.compare_exchange_weak(old_bits, doubleBits(v),
                                       std::memory_order_relaxed))
            return;
    }
}

} // namespace

// ---------------------------------------------------------------------
// LogHistogramSnapshot
// ---------------------------------------------------------------------

double
LogHistogramSnapshot::binUpperEdge(std::size_t i) const
{
    return std::pow(gamma,
                    static_cast<double>(index_offset +
                                        static_cast<int>(i)));
}

double
LogHistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Nearest-rank position over [0, count-1], mirroring the
    // interpolation anchor stats::percentile uses so the two agree to
    // within one order statistic.
    const uint64_t rank = static_cast<uint64_t>(
        std::llround(q * static_cast<double>(count - 1)));
    // The exact extremes are tracked outside the buckets; substituting
    // them at the extreme ranks makes quantile(0)/quantile(1) exact.
    if (rank == 0)
        return min;
    if (rank == count - 1)
        return max;
    uint64_t seen = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        seen += bins[i];
        if (seen > rank) {
            // Harmonic midpoint of (gamma^(k-1), gamma^k]: within
            // relative_error of every value in the bucket.
            const double upper = binUpperEdge(i);
            double est = 2.0 * upper / (gamma + 1.0);
            // The exact extremes are known, so never report beyond
            // them (also makes quantile(0)/quantile(1) exact).
            est = std::min(std::max(est, min), max);
            return est;
        }
    }
    return max;
}

TailSummary
LogHistogramSnapshot::tail() const
{
    TailSummary t;
    t.count = static_cast<std::size_t>(count);
    if (count == 0)
        return t;
    t.mean = mean();
    t.p50 = quantile(0.50);
    t.p95 = quantile(0.95);
    t.p99 = quantile(0.99);
    t.max = max;
    return t;
}

void
LogHistogramSnapshot::mergeFrom(const LogHistogramSnapshot& other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    RECSIM_ASSERT(bins.size() == other.bins.size() &&
                      index_offset == other.index_offset &&
                      gamma == other.gamma,
                  "merging LogHistograms with different bucketing");
    for (std::size_t i = 0; i < bins.size(); ++i)
        bins[i] += other.bins[i];
    count += other.count;
    sum += other.sum;
}

// ---------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------

LogHistogram::LogHistogram(double relative_error, double min_value,
                           double max_value)
    : rel_err_(relative_error),
      min_value_(min_value),
      max_value_(max_value),
      sum_bits_(doubleBits(0.0)),
      min_bits_(doubleBits(0.0)),
      max_bits_(doubleBits(0.0))
{
    RECSIM_ASSERT(relative_error > 0.0 && relative_error < 1.0,
                  "relative_error must be in (0, 1)");
    RECSIM_ASSERT(min_value > 0.0 && max_value > min_value,
                  "need 0 < min_value < max_value");
    gamma_ = (1.0 + relative_error) / (1.0 - relative_error);
    inv_log_gamma_ = 1.0 / std::log(gamma_);
    // Bucket k covers (gamma^(k-1), gamma^k]; cover indices
    // ceil(log_g(min)) .. ceil(log_g(max)).
    index_offset_ = static_cast<int>(
        std::ceil(std::log(min_value_) * inv_log_gamma_));
    const int hi = static_cast<int>(
        std::ceil(std::log(max_value_) * inv_log_gamma_));
    const std::size_t n = static_cast<std::size_t>(hi - index_offset_) + 1;
    bins_ = std::vector<std::atomic<uint64_t>>(n);
    for (auto& bin : bins_)
        bin.store(0, std::memory_order_relaxed);
    const double inf = std::numeric_limits<double>::infinity();
    min_bits_.store(doubleBits(inf), std::memory_order_relaxed);
    max_bits_.store(doubleBits(-inf), std::memory_order_relaxed);
}

std::size_t
LogHistogram::binIndex(double v) const
{
    if (!(v > min_value_))
        return 0;
    if (v >= max_value_)
        return bins_.size() - 1;
    const int k = static_cast<int>(
        std::ceil(std::log(v) * inv_log_gamma_));
    const int i = k - index_offset_;
    if (i < 0)
        return 0;
    if (static_cast<std::size_t>(i) >= bins_.size())
        return bins_.size() - 1;
    return static_cast<std::size_t>(i);
}

void
LogHistogram::add(double v)
{
    // Extremes and sum update before the bin/count increments, so any
    // snapshot that observes n completed adds also observes their
    // extreme updates (min/max start at +/-inf and are mapped to 0
    // while count == 0).
    atomicExtremeDouble(min_bits_, v, std::less<double>());
    atomicExtremeDouble(max_bits_, v, std::greater<double>());
    atomicAddDouble(sum_bits_, v);
    bins_[binIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
}

LogHistogramSnapshot
LogHistogram::snapshot() const
{
    LogHistogramSnapshot s;
    s.relative_error = rel_err_;
    s.gamma = gamma_;
    s.min_value = min_value_;
    s.index_offset = index_offset_;
    s.bins.resize(bins_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i)
        s.bins[i] = bins_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = bitsDouble(sum_bits_.load(std::memory_order_relaxed));
    s.min = bitsDouble(min_bits_.load(std::memory_order_relaxed));
    s.max = bitsDouble(max_bits_.load(std::memory_order_relaxed));
    // A concurrent add may have bumped count between the bin loads and
    // the count load; clamp so quantile ranks stay inside the bins.
    uint64_t bin_total = 0;
    for (const uint64_t b : s.bins)
        bin_total += b;
    s.count = std::min(s.count, bin_total);
    if (s.count == 0) {
        s.min = 0.0;
        s.max = 0.0;
    }
    return s;
}

void
LogHistogram::merge(const LogHistogram& other)
{
    RECSIM_ASSERT(bins_.size() == other.bins_.size() &&
                      index_offset_ == other.index_offset_ &&
                      gamma_ == other.gamma_,
                  "merging LogHistograms with different bucketing");
    const LogHistogramSnapshot o = other.snapshot();
    if (o.count == 0)
        return;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (o.bins[i])
            bins_[i].fetch_add(o.bins[i], std::memory_order_relaxed);
    }
    count_.fetch_add(o.count, std::memory_order_relaxed);
    atomicAddDouble(sum_bits_, o.sum);
    atomicExtremeDouble(min_bits_, o.min, std::less<double>());
    atomicExtremeDouble(max_bits_, o.max, std::greater<double>());
}

// ---------------------------------------------------------------------
// WindowedHistogram
// ---------------------------------------------------------------------

WindowedHistogram::WindowedHistogram(double window_seconds,
                                     std::size_t max_windows,
                                     double relative_error,
                                     double min_value, double max_value)
    : window_s_(window_seconds),
      rel_err_(relative_error),
      min_value_(min_value),
      max_value_(max_value),
      slots_(max_windows)
{
    RECSIM_ASSERT(window_seconds > 0.0 && max_windows > 0,
                  "need window_seconds > 0 and max_windows > 0");
    for (auto& slot : slots_)
        slot.store(nullptr, std::memory_order_relaxed);
}

WindowedHistogram::~WindowedHistogram()
{
    for (auto& slot : slots_)
        delete slot.load(std::memory_order_acquire);
}

void
WindowedHistogram::add(double t_seconds, double value)
{
    std::size_t idx = 0;
    if (t_seconds > 0.0)
        idx = static_cast<std::size_t>(t_seconds / window_s_);
    if (idx >= slots_.size()) {
        idx = slots_.size() - 1;
        clamped_.fetch_add(1, std::memory_order_relaxed);
    }
    LogHistogram* hist = slots_[idx].load(std::memory_order_acquire);
    if (hist == nullptr) {
        std::lock_guard<std::mutex> lock(create_mutex_);
        hist = slots_[idx].load(std::memory_order_relaxed);
        if (hist == nullptr) {
            hist = new LogHistogram(rel_err_, min_value_, max_value_);
            slots_[idx].store(hist, std::memory_order_release);
        }
    }
    hist->add(value);
}

uint64_t
WindowedHistogram::count() const
{
    uint64_t total = 0;
    for (const auto& slot : slots_) {
        if (const LogHistogram* hist =
                slot.load(std::memory_order_acquire))
            total += hist->count();
    }
    return total;
}

std::vector<WindowSummary>
WindowedHistogram::windows() const
{
    std::vector<WindowSummary> out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const LogHistogram* hist =
            slots_[i].load(std::memory_order_acquire);
        if (hist == nullptr)
            continue;
        const LogHistogramSnapshot snap = hist->snapshot();
        if (snap.count == 0)
            continue;
        WindowSummary w;
        w.index = i;
        w.start_s = static_cast<double>(i) * window_s_;
        w.end_s = w.start_s + window_s_;
        w.tail = snap.tail();
        out.push_back(std::move(w));
    }
    return out;
}

LogHistogramSnapshot
WindowedHistogram::snapshot() const
{
    LogHistogramSnapshot merged;
    bool seeded = false;
    for (const auto& slot : slots_) {
        const LogHistogram* hist =
            slot.load(std::memory_order_acquire);
        if (hist == nullptr)
            continue;
        if (!seeded) {
            merged = hist->snapshot();
            seeded = true;
        } else {
            merged.mergeFrom(hist->snapshot());
        }
    }
    if (!seeded) {
        // No window ever recorded: an empty snapshot with the
        // configured bucketing.
        merged = LogHistogram(rel_err_, min_value_, max_value_)
                     .snapshot();
    }
    return merged;
}

TailSummary
WindowedHistogram::tail() const
{
    return snapshot().tail();
}

} // namespace stats
} // namespace recsim
