/**
 * @file
 * Gaussian kernel density estimation, used to draw the continuous
 * probability-density curves overlaid on the feature-length histograms
 * (Fig 7 of the paper).
 */
#pragma once

#include <cstddef>
#include <vector>

namespace recsim {
namespace stats {

/** One evaluated point of a density curve. */
struct DensityPoint
{
    double x;
    double density;
};

/**
 * Gaussian KDE over a fixed sample set.
 *
 * Bandwidth defaults to Silverman's rule of thumb
 * (1.06 * sigma * n^-1/5); pass an explicit bandwidth to override.
 */
class GaussianKde
{
  public:
    /**
     * @param samples   Observations; must be non-empty.
     * @param bandwidth Kernel bandwidth; <= 0 selects Silverman's rule.
     */
    explicit GaussianKde(std::vector<double> samples,
                         double bandwidth = 0.0);

    /** Density estimate at @p x. */
    double density(double x) const;

    /** Evaluate the density on @p points evenly spaced over [lo, hi]. */
    std::vector<DensityPoint> evaluate(double lo, double hi,
                                       std::size_t points) const;

    double bandwidth() const { return bandwidth_; }

  private:
    std::vector<double> samples_;
    double bandwidth_;
};

} // namespace stats
} // namespace recsim
