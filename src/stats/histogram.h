/**
 * @file
 * Linear- and log-binned histograms with ASCII rendering, used by the
 * bench harnesses to reproduce the paper's distribution figures
 * (Figs 5, 7, 9).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recsim {
namespace stats {

/** Bin scale for Histogram. */
enum class BinScale { Linear, Log10 };

/**
 * Fixed-range histogram. Out-of-range samples are clamped into the first
 * or last bin (and counted separately as underflow/overflow).
 *
 * NOT thread-safe: add() mutates bin counts and totals without
 * synchronization, so concurrent recording (e.g. serving workers
 * retiring batches) must go through stats::ConcurrentSampleSet or
 * obs::MetricsRegistry::observe(), both of which lock — the audit
 * behind tests/test_serve.cc's TSan matrix test. Single-threaded
 * bench/fleet accumulation stays lock-free here.
 */
class Histogram
{
  public:
    /**
     * @param lo    Lower bound of the histogram range.
     * @param hi    Upper bound; must be > lo (and > 0 for Log10 scale).
     * @param bins  Number of bins; must be >= 1.
     * @param scale Linear or logarithmic bin edges.
     */
    Histogram(double lo, double hi, std::size_t bins,
              BinScale scale = BinScale::Linear);

    /** Add one sample. */
    void add(double x);

    /** Add @p weight worth of samples at @p x. */
    void add(double x, double weight);

    std::size_t numBins() const { return counts_.size(); }
    double binCount(std::size_t i) const { return counts_[i]; }

    /** Inclusive lower edge of bin @p i. */
    double binLo(std::size_t i) const;

    /** Exclusive upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    /** Midpoint (arithmetic for linear, geometric for log bins). */
    double binCenter(std::size_t i) const;

    double totalWeight() const { return total_; }
    double underflow() const { return underflow_; }
    double overflow() const { return overflow_; }

    /** Fraction of total weight in bin @p i (0 when empty). */
    double binFraction(std::size_t i) const;

    /**
     * Weighted quantile estimate via linear interpolation within the
     * containing bin. @p q in [0, 1].
     */
    double quantile(double q) const;

    /** Horizontal ASCII bar chart, one row per bin. */
    std::string render(std::size_t max_bar_width = 50) const;

  private:
    std::size_t binIndex(double x) const;
    double toScale(double x) const;

    double lo_, hi_;
    BinScale scale_;
    double slo_, shi_;
    std::vector<double> counts_;
    double total_ = 0.0;
    double underflow_ = 0.0;
    double overflow_ = 0.0;
};

} // namespace stats
} // namespace recsim
