#include "stats/kde.h"

#include <cmath>

#include "stats/running_stat.h"
#include "util/logging.h"

namespace recsim {
namespace stats {

GaussianKde::GaussianKde(std::vector<double> samples, double bandwidth)
    : samples_(std::move(samples)), bandwidth_(bandwidth)
{
    RECSIM_ASSERT(!samples_.empty(), "KDE needs at least one sample");
    if (bandwidth_ <= 0.0) {
        RunningStat rs;
        for (double s : samples_)
            rs.add(s);
        const double n = static_cast<double>(samples_.size());
        const double sigma = rs.stddev();
        // Silverman's rule; fall back to a fixed width for degenerate
        // (zero-variance) samples so density() stays well-defined.
        bandwidth_ = sigma > 0.0
            ? 1.06 * sigma * std::pow(n, -0.2)
            : 1.0;
    }
}

double
GaussianKde::density(double x) const
{
    const double inv_h = 1.0 / bandwidth_;
    const double norm = inv_h / std::sqrt(2.0 * M_PI) /
        static_cast<double>(samples_.size());
    double acc = 0.0;
    for (double s : samples_) {
        const double z = (x - s) * inv_h;
        acc += std::exp(-0.5 * z * z);
    }
    return acc * norm;
}

std::vector<DensityPoint>
GaussianKde::evaluate(double lo, double hi, std::size_t points) const
{
    RECSIM_ASSERT(points >= 2, "need at least two evaluation points");
    std::vector<DensityPoint> out;
    out.reserve(points);
    const double step = (hi - lo) / static_cast<double>(points - 1);
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + step * static_cast<double>(i);
        out.push_back({x, density(x)});
    }
    return out;
}

} // namespace stats
} // namespace recsim
