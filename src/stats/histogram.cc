#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_utils.h"

namespace recsim {
namespace stats {

Histogram::Histogram(double lo, double hi, std::size_t bins, BinScale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(bins, 0.0)
{
    RECSIM_ASSERT(bins >= 1, "histogram needs at least one bin");
    RECSIM_ASSERT(hi > lo, "histogram range is empty");
    if (scale_ == BinScale::Log10)
        RECSIM_ASSERT(lo > 0.0, "log histogram needs positive range");
    slo_ = toScale(lo_);
    shi_ = toScale(hi_);
}

double
Histogram::toScale(double x) const
{
    return scale_ == BinScale::Log10 ? std::log10(x) : x;
}

std::size_t
Histogram::binIndex(double x) const
{
    const double s = toScale(x);
    const double frac = (s - slo_) / (shi_ - slo_);
    const auto idx = static_cast<long>(frac * static_cast<double>(
        counts_.size()));
    return static_cast<std::size_t>(std::clamp<long>(
        idx, 0, static_cast<long>(counts_.size()) - 1));
}

void
Histogram::add(double x)
{
    add(x, 1.0);
}

void
Histogram::add(double x, double weight)
{
    if (x < lo_)
        underflow_ += weight;
    else if (x >= hi_)
        overflow_ += weight;
    counts_[binIndex(x)] += weight;
    total_ += weight;
}

double
Histogram::binLo(std::size_t i) const
{
    const double s = slo_ + (shi_ - slo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
    return scale_ == BinScale::Log10 ? std::pow(10.0, s) : s;
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i + 1);
}

double
Histogram::binCenter(std::size_t i) const
{
    if (scale_ == BinScale::Log10)
        return std::sqrt(binLo(i) * binHi(i));
    return 0.5 * (binLo(i) + binHi(i));
}

double
Histogram::binFraction(std::size_t i) const
{
    return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

double
Histogram::quantile(double q) const
{
    RECSIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (total_ <= 0.0)
        return lo_;
    const double target = q * total_;
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (cum + counts_[i] >= target) {
            const double within = counts_[i] > 0.0
                ? (target - cum) / counts_[i] : 0.0;
            return binLo(i) + within * (binHi(i) - binLo(i));
        }
        cum += counts_[i];
    }
    return hi_;
}

std::string
Histogram::render(std::size_t max_bar_width) const
{
    double peak = 0.0;
    for (double c : counts_)
        peak = std::max(peak, c);
    std::string out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = peak > 0.0
            ? static_cast<std::size_t>(counts_[i] / peak *
                  static_cast<double>(max_bar_width))
            : 0;
        out += util::padLeft(util::countToString(binLo(i)), 8);
        out += "-";
        out += util::padRight(util::countToString(binHi(i)), 8);
        out += " |";
        out += std::string(bar_len, '#');
        out += " ";
        out += util::fixed(binFraction(i) * 100.0, 1);
        out += "%\n";
    }
    return out;
}

} // namespace stats
} // namespace recsim
