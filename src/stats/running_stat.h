/**
 * @file
 * Streaming moment accumulator (Welford's algorithm).
 */
#pragma once

#include <cstdint>

namespace recsim {
namespace stats {

/**
 * Numerically stable streaming mean/variance/min/max accumulator.
 * Mergeable, so per-shard statistics can be combined.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStat& other);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace stats
} // namespace recsim
