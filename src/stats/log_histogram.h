/**
 * @file
 * Mergeable log-bucketed histogram (DDSketch/HDR-style) with a
 * documented relative quantile error bound, plus a windowed wrapper
 * that buckets observations by time so serving can report rolling
 * p50/p95/p99 per window instead of only end-of-replay.
 *
 * Why not SampleSet/Histogram: the serving batch-retire path records
 * latencies from whichever thread completes a batch, and the exact
 * containers either keep every sample (unbounded memory, O(n log n)
 * quantiles) or lock around every add. LogHistogram bins are
 * std::atomic, so add() is wait-free (one index computation plus a
 * relaxed fetch_add) and two histograms recorded on different threads
 * or hosts merge by adding bins — the fleet-accounting property the
 * paper's always-on per-op profiling relies on.
 *
 * Error bound: with relative_error a, bucket i covers
 * (gamma^(i-1), gamma^i] where gamma = (1+a)/(1-a), and quantile()
 * returns the bucket's harmonic midpoint 2*gamma^i/(gamma+1). Any
 * value v in a bucket therefore satisfies |est - v| <= a * v: every
 * reported quantile is within relative_error of an actual sample at
 * that rank (tests/test_stats.cc pins this against the exact
 * stats::percentile oracle). Values outside [min_value, max_value]
 * clamp into the edge buckets and lose the bound (counted, so callers
 * can see it happening).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/sample_set.h"

namespace recsim {
namespace stats {

/**
 * Plain-value copy of a LogHistogram's state: bin counts plus exact
 * count/sum/min/max. Snapshots are what quantile math, merging across
 * windows and the exporters operate on, so the atomic container is
 * only ever read with relaxed loads and never copied.
 */
struct LogHistogramSnapshot
{
    double relative_error = 0.0;
    double gamma = 1.0;
    double min_value = 0.0;
    /** Lowest bucket index covered (bucket 0 of `bins`). */
    int index_offset = 0;
    std::vector<uint64_t> bins;
    uint64_t count = 0;
    double sum = 0.0;
    /** Exact extremes (not bucketed). count == 0 => both 0. */
    double min = 0.0;
    double max = 0.0;

    bool empty() const { return count == 0; }
    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Value within relative_error of the order statistic at
     * nearest-rank position round(q * (count - 1)). @p q in [0, 1];
     * returns 0 when empty. Monotone in q. The exact min/max are
     * substituted at the extremes so quantile(0)/quantile(1) are
     * exact.
     */
    double quantile(double q) const;

    /** Exclusive upper edge of bucket @p i (gamma^(index_offset+i)). */
    double binUpperEdge(std::size_t i) const;

    /** p50/p95/p99 + mean/max, mirroring stats::tailSummary. */
    TailSummary tail() const;

    /** Add @p other's bins/count/sum and widen min/max. The two must
     *  share bucketing parameters (checked). */
    void mergeFrom(const LogHistogramSnapshot& other);
};

/**
 * Thread-safe log-bucketed histogram. add() is wait-free: one log to
 * find the bucket, relaxed atomic increments for the bin, count and
 * sum, CAS loops for the exact min/max. All reads go through
 * snapshot().
 */
class LogHistogram
{
  public:
    /**
     * @param relative_error Quantile error bound a in (0, 1), see file
     *                       comment. Default 1%.
     * @param min_value      Smallest distinguishable value; anything
     *                       below (including <= 0) clamps into the
     *                       lowest bucket.
     * @param max_value      Largest distinguishable value; larger
     *                       values clamp into the highest bucket.
     * Bucket count is log(max/min)/log(gamma) + 2 — about 1.4k bins
     * (11 KB) at the defaults.
     */
    explicit LogHistogram(double relative_error = 0.01,
                          double min_value = 1e-9,
                          double max_value = 1e6);

    /** Record one observation. Thread-safe, wait-free. */
    void add(double v);

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double relativeError() const { return rel_err_; }
    std::size_t numBins() const { return bins_.size(); }

    /** Plain-value copy of the current state. Thread-safe. */
    LogHistogramSnapshot snapshot() const;

    /** Convenience: snapshot().quantile(q). */
    double quantile(double q) const { return snapshot().quantile(q); }

    /** Add another histogram's bins into this one (same parameters,
     *  checked). Thread-safe on both sides. */
    void merge(const LogHistogram& other);

  private:
    std::size_t binIndex(double v) const;

    double rel_err_;
    double gamma_;
    double inv_log_gamma_;
    double min_value_;
    double max_value_;
    int index_offset_;
    std::vector<std::atomic<uint64_t>> bins_;
    std::atomic<uint64_t> count_{0};
    /** Bit pattern of the running double sum (CAS-accumulated). */
    std::atomic<uint64_t> sum_bits_;
    std::atomic<uint64_t> min_bits_;
    std::atomic<uint64_t> max_bits_;
};

/** One time window's worth of a WindowedHistogram. */
struct WindowSummary
{
    std::size_t index = 0;   ///< floor(t / window_seconds).
    double start_s = 0.0;
    double end_s = 0.0;
    TailSummary tail;
};

/**
 * Time-windowed percentile recorder: a lazily-allocated array of
 * LogHistograms, one per fixed-width time window. add(t, v) routes v
 * into window floor(t / window_seconds); windows() summarizes every
 * non-empty window in time order and tail() folds them all into one
 * end-to-end summary (bin-exact merge, same error bound).
 *
 * Thread safety: add() takes a lock only on the first observation of
 * a window (to allocate its histogram); afterwards it is an acquire
 * load plus LogHistogram::add. Time may come from any clock — the
 * serving replay feeds its *virtual* completion times, so windows are
 * virtual-time slices of the trace.
 *
 * Memory is bounded: observations at t >= max_windows * window_seconds
 * clamp into the last window (clamped() counts them).
 */
class WindowedHistogram
{
  public:
    explicit WindowedHistogram(double window_seconds,
                               std::size_t max_windows = 4096,
                               double relative_error = 0.01,
                               double min_value = 1e-9,
                               double max_value = 1e6);
    ~WindowedHistogram();

    WindowedHistogram(const WindowedHistogram&) = delete;
    WindowedHistogram& operator=(const WindowedHistogram&) = delete;

    /** Record @p value at time @p t_seconds (>= 0). Thread-safe. */
    void add(double t_seconds, double value);

    double windowSeconds() const { return window_s_; }
    double relativeError() const { return rel_err_; }
    std::size_t maxWindows() const { return slots_.size(); }

    /** Observations clamped into the last window. */
    uint64_t clamped() const
    {
        return clamped_.load(std::memory_order_relaxed);
    }

    /** Total observations across all windows. Thread-safe. */
    uint64_t count() const;

    /** Per-window summaries, non-empty windows in time order. */
    std::vector<WindowSummary> windows() const;

    /** All windows merged: the end-to-end tail summary. */
    TailSummary tail() const;

    /** Merged snapshot across windows (for exporters). */
    LogHistogramSnapshot snapshot() const;

  private:
    double window_s_;
    double rel_err_;
    double min_value_;
    double max_value_;
    std::vector<std::atomic<LogHistogram*>> slots_;
    std::mutex create_mutex_;
    std::atomic<uint64_t> clamped_{0};
};

} // namespace stats
} // namespace recsim
