/**
 * @file
 * Embedding-table placement strategies (Fig 8 of the paper): on GPU
 * memory, on the GPU server's system memory, on remote CPU parameter
 * servers, or hybrid. planPlacement() checks capacity feasibility,
 * partitions the tables, and summarizes where lookup traffic lands —
 * the inputs the iteration cost model needs.
 */
#pragma once

#include <string>

#include "hw/platform.h"
#include "model/config.h"
#include "placement/partitioner.h"

namespace recsim {
namespace placement {

/** Where the embedding tables live (Fig 8). */
enum class EmbeddingPlacement
{
    GpuMemory,    ///< Distributed over the server's GPUs.
    HostMemory,   ///< System memory of the GPU server.
    RemotePs,     ///< System memory of remote sparse parameter servers.
    Hybrid,       ///< Hottest tables on GPU, remainder on host memory.
    CpuLocal      ///< CPU training: tables on (remote) sparse PS.
};

/** Human-readable placement name. */
std::string toString(EmbeddingPlacement placement);

/** Outcome of planning a placement for a model on a platform. */
struct PlacementPlan
{
    EmbeddingPlacement placement = EmbeddingPlacement::GpuMemory;
    bool feasible = true;
    std::string infeasible_reason;

    /** Table partition across the hosting shards. */
    Partition partition;

    /** Number of GPUs holding at least one table (GpuMemory/Hybrid). */
    std::size_t gpus_used = 0;

    /**
     * GpuMemory only: the tables are small enough to replicate on every
     * GPU, so lookups are fully local and no all-to-all is needed —
     * only a (cheap) sync of the touched rows. Growing tables past the
     * replication budget forces sharding, which introduces the
     * inter-GPU communication the paper blames for the Fig 12 drop.
     */
    bool replicated = false;

    /** Fraction of per-example lookup *bytes* served from GPU memory. */
    double gpu_lookup_fraction = 0.0;

    /** Fraction of lookup bytes served from remote parameter servers. */
    double remote_lookup_fraction = 0.0;

    /** Total resident bytes including optimizer state. */
    double resident_bytes = 0.0;

    /** max/mean lookup traffic across hosting shards. */
    double access_imbalance = 1.0;

    // ---- Hot-tier allocation (PlacementOptions::hot_tier_bytes) ----
    // Empty / zero unless a hot-tier budget was set. Fully-packed
    // tables get their whole residency and hit fraction 1; the
    // leftover budget acts as a per-table hot-row cache whose hit
    // fraction follows the Zipf top-mass of the rows it holds.

    /** Hot-tier bytes allocated to each table (config.sparse order). */
    std::vector<double> table_hot_bytes;

    /** Predicted hot-tier traffic hit fraction per table. */
    std::vector<double> table_hot_hit_fraction;

    /** Total hot-tier bytes allocated across tables. */
    double hot_tier_bytes = 0.0;

    /** Traffic-weighted mean hot hit fraction over all lookups. */
    double hot_hit_fraction = 0.0;
};

/** Knobs for planPlacement(). */
struct PlacementOptions
{
    /** Multiplier on table bytes for optimizer state + fragmentation. */
    double memory_overhead_factor = 1.25;
    /** Fraction of a GPU's memory usable for tables (activations,
     *  buffers and framework overhead consume the rest). */
    double usable_memory_fraction = 0.8;
    /** Fraction of a host's system memory usable for tables: the OS,
     *  input pipeline, staging buffers and framework leave roughly half
     *  (this is why the paper's M3 cannot use Big Basin host memory). */
    double host_usable_memory_fraction = 0.55;
    /** Number of remote sparse parameter servers (RemotePs/CpuLocal). */
    std::size_t num_sparse_ps = 8;
    /**
     * Number of identical GPU servers ganged together (scale-out
     * extension, Section VI-B's "multiple Big Basins" / multi-Zion
     * future work). Tables may shard across all nodes' devices.
     */
    std::size_t num_nodes = 1;
    /**
     * Bytes per embedding element as served (4 = fp32 master, 2 = fp16,
     * 1(+scale/bias) = int8 row-wise quantization — the compression
     * opportunity of Section III-A). Shrinks capacity and lookup
     * bandwidth; see nn::QuantizedEmbeddingBag for the functional side.
     */
    double emb_bytes_per_element = 4.0;
    /** Partitioning objective across shards. */
    BalanceObjective objective = BalanceObjective::AccessBytes;
    /** Fraction of one GPU's usable memory a full replica may occupy
     *  before the planner falls back to sharding. */
    double replication_budget_fraction = 0.05;
    /**
     * Embedding hot-tier capacity budget on the hosting device, bytes
     * (the tiered-memory extension). When positive, the planner
     * chooses a tier per table: whole tables are packed hottest-first
     * by access density, and the leftover budget becomes per-table
     * hot-row caches sized by traffic share. 0 disables tiering.
     */
    double hot_tier_bytes = 0.0;
};

/**
 * Plan where @p config's tables live on @p platform under @p strategy.
 * Never fatal()s: infeasible plans come back with feasible == false and
 * a reason, so sweeps can chart the feasibility frontier (Fig 12).
 */
PlacementPlan planPlacement(EmbeddingPlacement strategy,
                            const model::DlrmConfig& config,
                            const hw::Platform& platform,
                            const PlacementOptions& options = {});

/**
 * Pick the best feasible placement for a model on a platform by
 * estimated lookup service time (the advisor the paper's Fig 1 placement
 * arrows imply). Returns the chosen plan; falls back to RemotePs.
 */
PlacementPlan advisePlacement(const model::DlrmConfig& config,
                              const hw::Platform& platform,
                              const PlacementOptions& options = {});

/**
 * Annotate @p graph with @p plan: every EmbeddingLookup node gets its
 * device (and hosting shard where the partition maps tables 1:1), and
 * the Comm nodes the placement implies are appended — per-PS-shard RPC
 * legs (request / gather / pool / response / gradient push) carrying
 * each shard's fraction of the lookup traffic, the amortized dense
 * sync, and on GPU servers the input-pipeline, all-to-all, PCIe-staging,
 * deserialization and allreduce ops. The per-shard `share` fields are
 * computed with the exact fold the DES used pre-graph, so demands
 * derived from them are bit-identical.
 *
 * @param num_sparse_ps Sparse-PS count of the system (shards beyond the
 *        partition get share 0, mirroring idle servers).
 */
void bindStepGraph(graph::StepGraph& graph, const PlacementPlan& plan,
                   std::size_t num_sparse_ps);

} // namespace placement
} // namespace recsim
