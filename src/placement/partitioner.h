/**
 * @file
 * Embedding-table partitioners: how a set of tables is split across a
 * set of shards (GPUs or sparse parameter servers). The paper notes
 * that differences in access ratios "might create imbalances among
 * servers if not carefully partitioned" — the partitioners here expose
 * that imbalance as a first-class metric.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/spec.h"

namespace recsim {
namespace graph {
struct StepGraph;
} // namespace graph

namespace placement {

/** What the greedy partitioner balances. */
enum class BalanceObjective
{
    Bytes,       ///< Balance resident bytes per shard (capacity-driven).
    AccessBytes  ///< Balance lookup traffic per shard (bandwidth-driven).
};

/** Result of partitioning tables across shards. */
struct Partition
{
    /** shard_of[i] = shard index of table i. */
    std::vector<int> shard_of;
    /** Resident bytes per shard (including optimizer state overhead). */
    std::vector<double> shard_bytes;
    /** Per-example lookup bytes served by each shard. */
    std::vector<double> shard_access_bytes;
    bool feasible = true;
    std::string infeasible_reason;

    std::size_t numShards() const { return shard_bytes.size(); }

    /** Number of shards actually holding at least one table. */
    std::size_t shardsUsed() const;

    /** max / mean access bytes across non-empty shards (1 = perfect). */
    double accessImbalance() const;

    /** max / mean resident bytes across non-empty shards. */
    double bytesImbalance() const;
};

/**
 * Per-table byte and traffic accounting used by the partitioners.
 * @param optimizer_state_factor Multiplier on raw table bytes for
 *        optimizer state (row-wise Adagrad adds one float per row,
 *        i.e. factor 1 + 1/d).
 */
struct TableCosts
{
    std::vector<double> bytes;         ///< Resident bytes per table.
    std::vector<double> access_bytes;  ///< Lookup bytes/example per table.

    TableCosts(const std::vector<data::SparseFeatureSpec>& specs,
               std::size_t emb_dim, double optimizer_state_factor = 1.0);
};

/**
 * Derive per-table costs from a StepGraph's EmbeddingLookup nodes (the
 * graph-IR twin of the spec-based constructor; values are bit-identical
 * because the node annotations use the same expressions). This is the
 * path planPlacement() uses, so the partitioners operate on the same IR
 * the cost model, DES and trainer consume.
 */
TableCosts tableCostsFromGraph(const graph::StepGraph& graph,
                               double optimizer_state_factor = 1.0);

/**
 * Split any table whose bytes exceed @p shard_capacity into row-wise
 * chunks that fit (the standard fallback for monster tables — the
 * paper's Sec IV-B "row-wise partitioning"). Returns per-chunk costs
 * and records which original table each chunk came from.
 */
struct ChunkedCosts
{
    TableCosts costs{std::vector<data::SparseFeatureSpec>{}, 1};
    /** chunk_of[i] = index of the source table of chunk i. */
    std::vector<std::size_t> chunk_of;
};

ChunkedCosts rowWiseSplitOversized(const TableCosts& costs,
                                   double shard_capacity);

/**
 * Greedy largest-first bin packing: tables sorted by the objective
 * weight descending, each assigned to the currently lightest shard that
 * still has capacity. Classic LPT, within 4/3 of optimal balance.
 *
 * @param costs          Per-table accounting.
 * @param num_shards     Number of bins.
 * @param shard_capacity Byte capacity per shard (0 = unlimited).
 * @param objective      What to balance.
 */
Partition greedyPartition(const TableCosts& costs, std::size_t num_shards,
                          double shard_capacity,
                          BalanceObjective objective);

/**
 * Pack shards one by one ("fill first shard, then the next"), the
 * naive strategy that minimizes shards used but maximizes imbalance.
 * Used as the ablation baseline for the partitioning benches.
 */
Partition sequentialPartition(const TableCosts& costs,
                              std::size_t num_shards,
                              double shard_capacity);

/**
 * Row-wise partition of a single large table across @p num_shards:
 * every shard holds hash_size / num_shards rows and serves an equal
 * slice of the lookups. Returns per-shard bytes and access bytes for
 * one table of @p table_bytes and @p access_bytes.
 */
Partition rowWisePartition(double table_bytes, double access_bytes,
                           std::size_t num_shards, double shard_capacity);

} // namespace placement
} // namespace recsim
