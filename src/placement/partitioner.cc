#include "placement/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/step_graph.h"
#include "util/logging.h"

namespace recsim {
namespace placement {

std::size_t
Partition::shardsUsed() const
{
    std::size_t used = 0;
    for (double b : shard_bytes)
        used += b > 0.0;
    return used;
}

namespace {

double
imbalanceOf(const std::vector<double>& loads)
{
    double total = 0.0, peak = 0.0;
    std::size_t nonempty = 0;
    for (double l : loads) {
        if (l <= 0.0)
            continue;
        ++nonempty;
        total += l;
        peak = std::max(peak, l);
    }
    if (nonempty == 0 || total <= 0.0)
        return 1.0;
    const double mean = total / static_cast<double>(nonempty);
    return peak / mean;
}

} // namespace

double
Partition::accessImbalance() const
{
    return imbalanceOf(shard_access_bytes);
}

double
Partition::bytesImbalance() const
{
    return imbalanceOf(shard_bytes);
}

TableCosts::TableCosts(const std::vector<data::SparseFeatureSpec>& specs,
                       std::size_t emb_dim, double optimizer_state_factor)
{
    RECSIM_ASSERT(optimizer_state_factor >= 1.0,
                  "optimizer state cannot shrink a table");
    bytes.reserve(specs.size());
    access_bytes.reserve(specs.size());
    for (const auto& s : specs) {
        const auto dim = static_cast<double>(s.effectiveDim(emb_dim));
        bytes.push_back(static_cast<double>(s.hash_size) * dim *
                        sizeof(float) * optimizer_state_factor);
        access_bytes.push_back(s.effectiveMeanLength() * dim *
                               sizeof(float));
    }
}

TableCosts
tableCostsFromGraph(const graph::StepGraph& g,
                    double optimizer_state_factor)
{
    RECSIM_ASSERT(optimizer_state_factor >= 1.0,
                  "optimizer state cannot shrink a table");
    TableCosts costs(std::vector<data::SparseFeatureSpec>{}, 1);
    for (const auto& node : g.nodes) {
        if (node.kind != graph::NodeKind::EmbeddingLookup)
            continue;
        costs.bytes.push_back(node.param_bytes * optimizer_state_factor);
        costs.access_bytes.push_back(node.bytes_per_example);
    }
    return costs;
}

ChunkedCosts
rowWiseSplitOversized(const TableCosts& costs, double shard_capacity)
{
    ChunkedCosts out;
    out.costs.bytes.clear();
    out.costs.access_bytes.clear();
    for (std::size_t t = 0; t < costs.bytes.size(); ++t) {
        std::size_t chunks = 1;
        if (shard_capacity > 0.0 && costs.bytes[t] > shard_capacity) {
            chunks = static_cast<std::size_t>(
                std::ceil(costs.bytes[t] / shard_capacity));
        }
        for (std::size_t c = 0; c < chunks; ++c) {
            out.costs.bytes.push_back(
                costs.bytes[t] / static_cast<double>(chunks));
            out.costs.access_bytes.push_back(
                costs.access_bytes[t] / static_cast<double>(chunks));
            out.chunk_of.push_back(t);
        }
    }
    return out;
}

Partition
greedyPartition(const TableCosts& costs, std::size_t num_shards,
                double shard_capacity, BalanceObjective objective)
{
    RECSIM_ASSERT(num_shards > 0, "partition into zero shards");
    const std::size_t n = costs.bytes.size();
    Partition part;
    part.shard_of.assign(n, -1);
    part.shard_bytes.assign(num_shards, 0.0);
    part.shard_access_bytes.assign(num_shards, 0.0);

    const auto& weight = objective == BalanceObjective::Bytes
        ? costs.bytes : costs.access_bytes;

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return weight[a] > weight[b];
                     });

    for (std::size_t t : order) {
        // Lightest shard (by objective) with remaining byte capacity.
        int best = -1;
        double best_load = 0.0;
        for (std::size_t s = 0; s < num_shards; ++s) {
            if (shard_capacity > 0.0 &&
                part.shard_bytes[s] + costs.bytes[t] > shard_capacity) {
                continue;
            }
            const double load = objective == BalanceObjective::Bytes
                ? part.shard_bytes[s] : part.shard_access_bytes[s];
            if (best < 0 || load < best_load) {
                best = static_cast<int>(s);
                best_load = load;
            }
        }
        if (best < 0) {
            part.feasible = false;
            double placed = 0.0;
            for (double b : part.shard_bytes)
                placed += b;
            part.infeasible_reason = util::format(
                "no shard has room for a {}-byte table: {} shards of "
                "{} bytes hold {} already", costs.bytes[t], num_shards,
                shard_capacity, placed);
            continue;
        }
        part.shard_of[t] = best;
        part.shard_bytes[best] += costs.bytes[t];
        part.shard_access_bytes[best] += costs.access_bytes[t];
    }
    return part;
}

Partition
sequentialPartition(const TableCosts& costs, std::size_t num_shards,
                    double shard_capacity)
{
    RECSIM_ASSERT(num_shards > 0, "partition into zero shards");
    const std::size_t n = costs.bytes.size();
    Partition part;
    part.shard_of.assign(n, -1);
    part.shard_bytes.assign(num_shards, 0.0);
    part.shard_access_bytes.assign(num_shards, 0.0);

    std::size_t cur = 0;
    for (std::size_t t = 0; t < n; ++t) {
        while (cur < num_shards && shard_capacity > 0.0 &&
               part.shard_bytes[cur] + costs.bytes[t] > shard_capacity) {
            ++cur;
        }
        if (cur >= num_shards) {
            part.feasible = false;
            part.infeasible_reason = "tables exceed total shard capacity";
            break;
        }
        part.shard_of[t] = static_cast<int>(cur);
        part.shard_bytes[cur] += costs.bytes[t];
        part.shard_access_bytes[cur] += costs.access_bytes[t];
    }
    return part;
}

Partition
rowWisePartition(double table_bytes, double access_bytes,
                 std::size_t num_shards, double shard_capacity)
{
    RECSIM_ASSERT(num_shards > 0, "partition into zero shards");
    Partition part;
    part.shard_of.assign(1, 0);
    const double per_shard = table_bytes /
        static_cast<double>(num_shards);
    part.shard_bytes.assign(num_shards, per_shard);
    part.shard_access_bytes.assign(
        num_shards, access_bytes / static_cast<double>(num_shards));
    if (shard_capacity > 0.0 && per_shard > shard_capacity) {
        part.feasible = false;
        part.infeasible_reason = util::format(
            "row-wise slice of {} bytes exceeds shard capacity {}",
            per_shard, shard_capacity);
    }
    return part;
}

} // namespace placement
} // namespace recsim
