#include "placement/placement.h"

#include <algorithm>
#include <numeric>

#include "graph/step_graph.h"
#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace placement {

std::string
toString(EmbeddingPlacement placement)
{
    switch (placement) {
      case EmbeddingPlacement::GpuMemory:
        return "gpu_memory";
      case EmbeddingPlacement::HostMemory:
        return "host_memory";
      case EmbeddingPlacement::RemotePs:
        return "remote_ps";
      case EmbeddingPlacement::Hybrid:
        return "hybrid";
      case EmbeddingPlacement::CpuLocal:
        return "cpu_local";
    }
    util::panic("unknown placement enum value");
}

namespace {

double
totalOf(const std::vector<double>& v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

/** Per-table costs honoring the serving precision, derived from the
 *  model's StepGraph embedding nodes. */
TableCosts
makeCosts(const model::DlrmConfig& config,
          const PlacementOptions& options)
{
    const graph::StepGraph g = graph::buildModelStepGraph(config);
    TableCosts costs =
        tableCostsFromGraph(g, options.memory_overhead_factor);
    const double factor = options.emb_bytes_per_element / 4.0;
    if (factor != 1.0) {
        for (auto& b : costs.bytes)
            b *= factor;
        for (auto& a : costs.access_bytes)
            a *= factor;
    }
    return costs;
}

PlacementPlan
planGpuMemory(const model::DlrmConfig& config,
              const hw::Platform& platform,
              const PlacementOptions& options)
{
    PlacementPlan plan;
    plan.placement = EmbeddingPlacement::GpuMemory;
    if (platform.num_gpus == 0) {
        plan.feasible = false;
        plan.infeasible_reason = "platform has no GPUs";
        return plan;
    }
    TableCosts costs = makeCosts(config, options);
    const double cap = platform.gpu.mem_capacity *
        options.usable_memory_fraction;

    // Replicate when a full copy fits comfortably on every GPU:
    // lookups stay local and no pooled all-to-all is required.
    const double total = totalOf(costs.bytes);
    if (total <= cap * options.replication_budget_fraction) {
        plan.replicated = true;
        plan.partition = greedyPartition(costs, 1, cap,
                                         options.objective);
        plan.feasible = plan.partition.feasible;
        plan.gpus_used = static_cast<std::size_t>(platform.num_gpus);
        plan.gpu_lookup_fraction = 1.0;
        plan.resident_bytes = total;  // single-copy bytes
        plan.access_imbalance = 1.0;
        return plan;
    }

    // Tables larger than one GPU's budget are split row-wise first
    // (Sec IV-B "row-wise partitioning"), then packed greedily.
    const ChunkedCosts chunked = rowWiseSplitOversized(costs, cap);
    plan.partition = greedyPartition(
        chunked.costs,
        static_cast<std::size_t>(platform.num_gpus) *
            std::max<std::size_t>(options.num_nodes, 1),
        cap, options.objective);
    plan.feasible = plan.partition.feasible;
    plan.infeasible_reason = plan.partition.infeasible_reason;
    plan.gpus_used = plan.partition.shardsUsed();
    plan.gpu_lookup_fraction = 1.0;
    plan.resident_bytes = totalOf(plan.partition.shard_bytes);
    plan.access_imbalance = plan.partition.accessImbalance();
    return plan;
}

PlacementPlan
planHostMemory(const model::DlrmConfig& config,
               const hw::Platform& platform,
               const PlacementOptions& options)
{
    PlacementPlan plan;
    plan.placement = EmbeddingPlacement::HostMemory;
    TableCosts costs = makeCosts(config, options);
    const double cap = platform.host.mem_capacity *
        options.host_usable_memory_fraction;
    plan.partition = greedyPartition(
        costs, std::max<std::size_t>(options.num_nodes, 1), cap,
        options.objective);
    plan.feasible = plan.partition.feasible;
    if (!plan.feasible) {
        plan.infeasible_reason = util::format(
            "{} of tables exceed host memory budget", totalOf(costs.bytes));
    }
    plan.resident_bytes = totalOf(plan.partition.shard_bytes);
    plan.access_imbalance = 1.0;
    return plan;
}

PlacementPlan
planRemotePs(EmbeddingPlacement which, const model::DlrmConfig& config,
             const PlacementOptions& options)
{
    PlacementPlan plan;
    plan.placement = which;
    if (options.num_sparse_ps == 0) {
        plan.feasible = false;
        plan.infeasible_reason = "no sparse parameter servers configured";
        return plan;
    }
    TableCosts costs = makeCosts(config, options);
    // Sparse parameter servers are dual-socket CPU servers; oversized
    // tables split row-wise across servers.
    const double cap = hw::Platform::dualSocketCpu().host.mem_capacity *
        options.host_usable_memory_fraction;
    const ChunkedCosts chunked = rowWiseSplitOversized(costs, cap);
    plan.partition = greedyPartition(chunked.costs,
                                     options.num_sparse_ps, cap,
                                     options.objective);
    plan.feasible = plan.partition.feasible;
    plan.infeasible_reason = plan.partition.infeasible_reason;
    plan.remote_lookup_fraction = 1.0;
    plan.resident_bytes = totalOf(plan.partition.shard_bytes);
    plan.access_imbalance = plan.partition.accessImbalance();
    return plan;
}

PlacementPlan
planHybrid(const model::DlrmConfig& config, const hw::Platform& platform,
           const PlacementOptions& options)
{
    PlacementPlan plan;
    plan.placement = EmbeddingPlacement::Hybrid;
    if (platform.num_gpus == 0) {
        plan.feasible = false;
        plan.infeasible_reason = "platform has no GPUs";
        return plan;
    }
    TableCosts costs = makeCosts(config, options);
    const std::size_t n = costs.bytes.size();
    const double gpu_cap = platform.gpu.mem_capacity *
        options.usable_memory_fraction;
    const double host_cap = platform.host.mem_capacity *
        options.host_usable_memory_fraction;

    // Hottest-first by access density: lookup bytes served per resident
    // byte, so scarce GPU memory buys the most traffic.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return costs.access_bytes[a] / costs.bytes[a] >
                             costs.access_bytes[b] / costs.bytes[b];
                     });

    const auto gpus = static_cast<std::size_t>(platform.num_gpus);
    Partition part;
    part.shard_of.assign(n, -1);
    // Shards [0, gpus) are GPUs; shard gpus is host memory.
    part.shard_bytes.assign(gpus + 1, 0.0);
    part.shard_access_bytes.assign(gpus + 1, 0.0);

    double gpu_access = 0.0, total_access = 0.0;
    for (std::size_t t : order) {
        total_access += costs.access_bytes[t];
        // Lightest GPU shard with room, else host.
        int best = -1;
        for (std::size_t s = 0; s < gpus; ++s) {
            if (part.shard_bytes[s] + costs.bytes[t] > gpu_cap)
                continue;
            if (best < 0 ||
                part.shard_access_bytes[s] <
                    part.shard_access_bytes[static_cast<std::size_t>(
                        best)]) {
                best = static_cast<int>(s);
            }
        }
        std::size_t shard;
        if (best >= 0) {
            shard = static_cast<std::size_t>(best);
            gpu_access += costs.access_bytes[t];
        } else {
            shard = gpus;
            if (part.shard_bytes[gpus] + costs.bytes[t] > host_cap) {
                part.feasible = false;
                part.infeasible_reason =
                    "tables exceed GPU + host memory";
            }
        }
        part.shard_of[t] = static_cast<int>(shard);
        part.shard_bytes[shard] += costs.bytes[t];
        part.shard_access_bytes[shard] += costs.access_bytes[t];
    }

    plan.partition = std::move(part);
    plan.feasible = plan.partition.feasible;
    plan.infeasible_reason = plan.partition.infeasible_reason;
    plan.gpus_used = 0;
    for (std::size_t s = 0; s < gpus; ++s)
        plan.gpus_used += plan.partition.shard_bytes[s] > 0.0;
    plan.gpu_lookup_fraction =
        total_access > 0.0 ? gpu_access / total_access : 0.0;
    plan.resident_bytes = totalOf(plan.partition.shard_bytes);
    plan.access_imbalance = plan.partition.accessImbalance();
    return plan;
}

/**
 * Choose a tier per table under the hot-tier capacity budget. Whole
 * tables are packed hottest-first by access density (the same order
 * planHybrid uses for scarce GPU memory — scarce hot bytes should buy
 * the most traffic); the leftover budget is spread over the remaining
 * tables by traffic share as per-table hot-row caches, whose hit
 * fraction is the Zipf top-mass of the rows they hold. This is the
 * analytic twin of nn::CachedBackend's frequency top-K hot set, so the
 * predicted fractions are directly comparable to measured hit rates.
 */
/**
 * Traffic mass of a table's @p rows hottest rows when raw ids are
 * Zipf-distributed over spec.rawSpace() and folded into hash_size rows
 * by modulo: row r aggregates the mass of every alias r + i*hash_size,
 * so the hottest rows carry the head of each fold segment. Reduces to
 * plain zipfTopMass when rawSpace == hash_size. This is the
 * distribution nn::CachedBackend's frequency-ranked hot set sees on
 * the synthetic trace, so predicted and measured hit rates compare.
 */
double
hotRowsTrafficMass(const data::SparseFeatureSpec& spec, uint64_t rows)
{
    const uint64_t raw = spec.rawSpace();
    const uint64_t n = spec.hash_size;
    if (n == 0 || rows >= n)
        return 1.0;
    double mass = 0.0;
    for (uint64_t base = 0; base < raw; base += n) {
        const uint64_t hi = std::min(base + rows, raw);
        mass += util::zipfTopMass(raw, spec.zipf_exponent, hi) -
            util::zipfTopMass(raw, spec.zipf_exponent, base);
    }
    return std::min(mass, 1.0);
}

void
allocateHotTier(PlacementPlan& plan, const model::DlrmConfig& config,
                const PlacementOptions& options)
{
    const std::size_t n = config.numSparse();
    plan.table_hot_bytes.assign(n, 0.0);
    plan.table_hot_hit_fraction.assign(n, 0.0);
    plan.hot_tier_bytes = 0.0;
    plan.hot_hit_fraction = 0.0;
    if (options.hot_tier_bytes <= 0.0 || n == 0)
        return;
    const TableCosts costs = makeCosts(config, options);

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return costs.access_bytes[a] / costs.bytes[a] >
                             costs.access_bytes[b] / costs.bytes[b];
                     });

    // Phase 1: whole tables, densest first, while they fit.
    double remaining = options.hot_tier_bytes;
    std::vector<std::size_t> partial;
    double partial_access = 0.0;
    for (std::size_t t : order) {
        if (costs.bytes[t] <= remaining) {
            plan.table_hot_bytes[t] = costs.bytes[t];
            plan.table_hot_hit_fraction[t] = 1.0;
            remaining -= costs.bytes[t];
        } else {
            partial.push_back(t);
            partial_access += costs.access_bytes[t];
        }
    }

    // Phase 2: leftover budget as hot-row caches by traffic share.
    if (remaining > 0.0 && partial_access > 0.0) {
        for (std::size_t t : partial) {
            const double share =
                costs.access_bytes[t] / partial_access;
            const double hot =
                std::min(remaining * share, costs.bytes[t]);
            if (hot <= 0.0)
                continue;
            const auto& spec = config.sparse[t];
            // costs.bytes already folds element width and overhead, so
            // the row count is just the resident fraction of the table.
            const auto rows = static_cast<uint64_t>(
                static_cast<double>(spec.hash_size) * hot /
                costs.bytes[t]);
            plan.table_hot_bytes[t] = hot;
            plan.table_hot_hit_fraction[t] =
                hotRowsTrafficMass(spec, rows);
        }
    }

    double total_access = 0.0, hit_access = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
        total_access += costs.access_bytes[t];
        hit_access +=
            costs.access_bytes[t] * plan.table_hot_hit_fraction[t];
        plan.hot_tier_bytes += plan.table_hot_bytes[t];
    }
    plan.hot_hit_fraction =
        total_access > 0.0 ? hit_access / total_access : 0.0;
}

} // namespace

PlacementPlan
planPlacement(EmbeddingPlacement strategy,
              const model::DlrmConfig& config,
              const hw::Platform& platform,
              const PlacementOptions& options)
{
    PlacementPlan plan = [&] {
        switch (strategy) {
          case EmbeddingPlacement::GpuMemory:
            return planGpuMemory(config, platform, options);
          case EmbeddingPlacement::HostMemory:
            return planHostMemory(config, platform, options);
          case EmbeddingPlacement::RemotePs:
          case EmbeddingPlacement::CpuLocal:
            return planRemotePs(strategy, config, options);
          case EmbeddingPlacement::Hybrid:
            return planHybrid(config, platform, options);
        }
        util::panic("unknown placement enum value");
    }();
    if (options.hot_tier_bytes > 0.0)
        allocateHotTier(plan, config, options);
    return plan;
}

PlacementPlan
advisePlacement(const model::DlrmConfig& config,
                const hw::Platform& platform,
                const PlacementOptions& options)
{
    // First-order per-example lookup service time for each strategy;
    // the full iteration model (src/cost) refines this, but the ranking
    // only needs the dominant term of each path.
    const auto fp = config.footprint();
    PlacementPlan best;
    bool have_best = false;
    double best_time = 0.0;

    auto consider = [&](EmbeddingPlacement strategy) {
        PlacementPlan plan = planPlacement(strategy, config, platform,
                                           options);
        if (!plan.feasible)
            return;
        double time = 0.0;
        const double gpu_frac = plan.gpu_lookup_fraction;
        const double host_frac = 1.0 - gpu_frac -
            plan.remote_lookup_fraction;
        if (gpu_frac > 0.0) {
            const double shards = static_cast<double>(
                std::max<std::size_t>(plan.gpus_used, 1));
            time += gpu_frac * fp.embedding_bytes /
                (platform.gpu.gatherBandwidth() * shards);
            // Pooled vectors cross the GPU interconnect.
            time += gpu_frac * fp.pooled_bytes /
                std::max(platform.gpu_interconnect.bandwidth, 1.0);
        }
        if (host_frac > 0.0) {
            time += host_frac * fp.embedding_bytes /
                platform.host.gatherBandwidth();
            time += host_frac * fp.pooled_bytes /
                std::max(platform.host_gpu.bandwidth, 1.0);
        }
        if (plan.remote_lookup_fraction > 0.0) {
            time += plan.remote_lookup_fraction * 2.0 *
                fp.pooled_bytes / platform.network.bandwidth;
            time += platform.network.latency;
        }
        if (!have_best || time < best_time) {
            best = std::move(plan);
            best_time = time;
            have_best = true;
        }
    };

    consider(EmbeddingPlacement::GpuMemory);
    consider(EmbeddingPlacement::HostMemory);
    consider(EmbeddingPlacement::Hybrid);
    if (!have_best)
        return planPlacement(EmbeddingPlacement::RemotePs, config,
                             platform, options);
    return best;
}

void
bindStepGraph(graph::StepGraph& g, const PlacementPlan& plan,
              std::size_t num_sparse_ps)
{
    using graph::CommOp;
    using graph::Device;
    using graph::Node;
    using graph::NodeKind;

    // Dense compute (gemms, interaction, loss, optimizer) runs on the
    // trainer CPU in the distributed-CPU system and on the GPU
    // otherwise.
    const Device compute_device =
        plan.placement == EmbeddingPlacement::CpuLocal
        ? Device::TrainerCpu : Device::Gpu;
    for (auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm ||
            node.kind == NodeKind::Interaction ||
            node.kind == NodeKind::Loss ||
            node.kind == NodeKind::OptimizerUpdate) {
            node.device = compute_device;
        }
    }

    // Device (and, where the partition maps tables 1:1, shard) of every
    // embedding node.
    const bool table_shards =
        plan.partition.shard_of.size() ==
        static_cast<std::size_t>(std::count_if(
            g.nodes.begin(), g.nodes.end(), [](const Node& n) {
                return n.kind == NodeKind::EmbeddingLookup;
            }));
    const auto gpu_shards = plan.placement == EmbeddingPlacement::Hybrid
        ? plan.partition.numShards() - 1 : plan.partition.numShards();
    for (auto& node : g.nodes) {
        if (node.kind != NodeKind::EmbeddingLookup)
            continue;
        switch (plan.placement) {
          case EmbeddingPlacement::GpuMemory:
            node.device = Device::Gpu;
            break;
          case EmbeddingPlacement::HostMemory:
            node.device = Device::HostCpu;
            break;
          case EmbeddingPlacement::RemotePs:
          case EmbeddingPlacement::CpuLocal:
            node.device = Device::SparsePs;
            break;
          case EmbeddingPlacement::Hybrid: {
            const int s = table_shards
                ? plan.partition.shard_of[static_cast<std::size_t>(
                      node.table)]
                : -1;
            node.device = s >= 0 &&
                    static_cast<std::size_t>(s) < gpu_shards
                ? Device::Gpu : Device::HostCpu;
            break;
          }
        }
        if (table_shards) {
            node.shard = plan.partition.shard_of[
                static_cast<std::size_t>(node.table)];
        }
        // Tier split chosen by the planner (allocateHotTier). The
        // guard keeps graphs for plans without a hot tier untouched.
        if (node.table >= 0 &&
            static_cast<std::size_t>(node.table) <
                plan.table_hot_bytes.size()) {
            const auto t = static_cast<std::size_t>(node.table);
            node.hot_tier_bytes = plan.table_hot_bytes[t];
            node.hot_hit_fraction = plan.table_hot_hit_fraction[t];
        }
    }

    // This fold (order and the 1e-9 floor) matches the DES's original
    // per-shard share computation exactly.
    double total_access = 0.0;
    for (double a : plan.partition.shard_access_bytes)
        total_access += a;
    total_access = std::max(total_access, 1e-9);

    // Anchor nodes the comm edges attach to. The interaction node is
    // where remotely-pooled embeddings join the compute dataflow; the
    // optimizer is what gradient traffic waits on.
    const std::size_t interaction_idx =
        g.indexOf("interaction");
    const std::size_t optimizer_idx = g.indexOf("optimizer");
    RECSIM_ASSERT(interaction_idx != graph::StepGraph::npos &&
                  optimizer_idx != graph::StepGraph::npos,
                  "bindStepGraph needs a model-built StepGraph");

    auto addComm = [&g](std::string id, CommOp op, Device device,
                        int shard, double share,
                        std::vector<std::size_t> deps) {
        Node node;
        node.id = std::move(id);
        node.kind = NodeKind::Comm;
        node.comm = op;
        node.device = device;
        node.shard = shard;
        node.share = share;
        node.deps = std::move(deps);
        g.nodes.push_back(std::move(node));
        return g.nodes.size() - 1;
    };
    // One RPC chain per sparse-PS shard, request -> gather -> pool ->
    // response; the chains are mutually independent. Returns the
    // response indices so the caller can join them into the compute
    // dataflow (interaction on CPU, deserialize on GPU).
    auto addPsShards = [&](bool with_push,
                           std::vector<std::size_t> request_deps) {
        std::vector<std::size_t> responses;
        for (std::size_t i = 0; i < num_sparse_ps; ++i) {
            const double share = i < plan.partition.numShards()
                ? plan.partition.shard_access_bytes[i] / total_access
                : 0.0;
            const std::string s = ".s" + std::to_string(i);
            const int shard = static_cast<int>(i);
            std::size_t leg = addComm(
                "comm.ps_request" + s, CommOp::PsRequest,
                Device::TrainerCpu, shard, share, request_deps);
            leg = addComm("comm.ps_gather" + s, CommOp::PsGather,
                          Device::SparsePs, shard, share, {leg});
            leg = addComm("comm.ps_pool" + s, CommOp::PsPool,
                          Device::SparsePs, shard, share, {leg});
            leg = addComm("comm.ps_response" + s, CommOp::PsResponse,
                          Device::SparsePs, shard, share, {leg});
            responses.push_back(leg);
            if (with_push) {
                addComm("comm.grad_push" + s, CommOp::GradPush,
                        Device::TrainerCpu, shard, share,
                        {optimizer_idx});
            }
        }
        return responses;
    };

    if (plan.placement == EmbeddingPlacement::CpuLocal) {
        // CPU distributed training: per-shard PS RPC legs plus the
        // amortized dense-PS sync. The pooled vectors arrive over RPC,
        // so the interaction joins on every shard's response — that
        // edge is what lets the bottom MLP overlap the sparse comm.
        const auto responses =
            addPsShards(/*with_push=*/true, /*request_deps=*/{});
        for (std::size_t r : responses)
            g.nodes[interaction_idx].deps.push_back(r);
        addComm("comm.dense_sync", CommOp::DenseSync, Device::DensePs,
                -1, 1.0, {optimizer_idx});
        g.reindex();
        return;
    }

    // GPU-server training. Everything downstream of the batch waits on
    // the input pipeline.
    const std::size_t input_idx = addComm(
        "comm.input", CommOp::Input, Device::HostCpu, -1, 1.0, {});
    std::vector<std::size_t> gpu_embs, host_embs;
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        Node& node = g.nodes[i];
        const bool roots_on_input =
            (node.kind == NodeKind::Gemm &&
             node.role == graph::GemmRole::BottomMlp &&
             node.layer == 0) ||
            node.kind == NodeKind::EmbeddingLookup;
        if (roots_on_input)
            node.deps.push_back(input_idx);
        if (node.kind == NodeKind::EmbeddingLookup) {
            (node.device == Device::Gpu ? gpu_embs : host_embs)
                .push_back(i);
        }
    }
    const double frac_host = std::max(
        0.0, 1.0 - plan.gpu_lookup_fraction - plan.remote_lookup_fraction);
    if (plan.gpu_lookup_fraction > 0.0) {
        if (gpu_embs.empty())
            gpu_embs.push_back(input_idx);
        const std::size_t a2a = addComm(
            "comm.emb_alltoall", CommOp::AllToAll, Device::Gpu, -1,
            plan.gpu_lookup_fraction, std::move(gpu_embs));
        g.nodes[interaction_idx].deps.push_back(a2a);
    }
    if (frac_host > 0.0) {
        if (host_embs.empty())
            host_embs.push_back(input_idx);
        const std::size_t pcie = addComm(
            "comm.host_pcie", CommOp::PcieStage, Device::HostCpu, -1,
            frac_host, std::move(host_embs));
        g.nodes[interaction_idx].deps.push_back(pcie);
    }
    if (plan.remote_lookup_fraction > 0.0) {
        const auto responses =
            addPsShards(/*with_push=*/false,
                        /*request_deps=*/{input_idx});
        const std::size_t deser = addComm(
            "comm.remote_deser", CommOp::Deserialize, Device::HostCpu,
            -1, plan.remote_lookup_fraction, responses);
        g.nodes[interaction_idx].deps.push_back(deser);
    }
    addComm("comm.allreduce", CommOp::AllReduce, Device::Gpu, -1, 1.0,
            {optimizer_idx});
    g.reindex();
}

} // namespace placement
} // namespace recsim
