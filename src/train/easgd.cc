#include "train/easgd.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "train/racy_traffic.h"
#include "util/logging.h"

namespace recsim {
namespace train {

TrainResult
trainEasgd(const model::DlrmConfig& model_config,
           data::SyntheticCtrDataset& dataset, const EasgdConfig& config,
           std::size_t eval_examples)
{
    RECSIM_ASSERT(config.num_workers >= 1, "need at least one worker");
    RECSIM_ASSERT(config.elasticity > 0.0f && config.elasticity <= 1.0f,
                  "elasticity must be in (0, 1]");
    RECSIM_ASSERT(dataset.materializedSize() > eval_examples,
                  "materialize() the dataset before training");
    const TrainConfig& base = config.base;
    const std::size_t train_examples =
        dataset.materializedSize() - eval_examples;

    // Center model: dense params act as the dense PS; its embedding
    // tables act as the shared sparse PS (workers update them in place,
    // Hogwild-style across trainers, as production does).
    model::Dlrm center(model_config, base.model_seed);
    std::mutex center_mutex;

    const std::size_t shard = train_examples / config.num_workers;
    const std::size_t steps_per_worker =
        std::max<std::size_t>(shard / base.batch_size, 1) * base.epochs;

    std::atomic<std::size_t> total_steps{0};
    std::vector<double> final_losses(config.num_workers, 0.0);

    auto worker = [&](std::size_t tid) {
        model::Dlrm replica(model_config, base.model_seed);
        nn::Sgd sgd(base.learning_rate);
        auto center_params = center.denseParams();
        auto replica_params = replica.denseParams();
        const std::size_t begin = tid * shard;
        const std::size_t tail_start = steps_per_worker -
            std::max<std::size_t>(steps_per_worker / 10, 1);
        double tail_loss = 0.0;
        std::size_t tail_count = 0;

        for (std::size_t step = 0; step < steps_per_worker; ++step) {
            RECSIM_TRACE_SPAN("easgd.iteration");
            const std::size_t offset =
                begin + (step * base.batch_size) % std::max(shard, 1ul);
            data::MiniBatch batch =
                dataset.epochBatch(offset, base.batch_size);

            // Pull touched embedding rows from the shared tables.
            // Lock-free: another worker may be pushing into the same
            // rows (see racy_traffic.h).
            for (std::size_t f = 0; f < batch.sparse.size(); ++f) {
                auto& ct = center.tables()[f];
                auto& rt = replica.tables()[f];
                for (uint64_t idx : batch.sparse[f].indices) {
                    const auto row = static_cast<std::size_t>(
                        idx % ct.hashSize());
                    racy::copyRow(ct.table.row(row),
                                  rt.table.row(row), ct.dim());
                }
            }

            const double loss = replica.forwardBackward(batch);
            if (step >= tail_start) {
                tail_loss += loss;
                ++tail_count;
            }

            // Local dense step on the replica.
            sgd.step(replica.bottomMlp());
            sgd.step(replica.topMlp());
            // Sparse rows update the shared tables directly, without
            // locking (Hogwild-style across trainers).
            for (std::size_t f = 0; f < replica.tables().size(); ++f) {
                auto& table = center.tables()[f];
                const auto& grad = replica.sparseGrads()[f];
                for (std::size_t r = 0; r < grad.rows.size(); ++r) {
                    racy::pushRow(
                        table.table.row(static_cast<std::size_t>(
                            grad.rows[r])),
                        grad.values.row(r), table.dim(),
                        base.learning_rate);
                }
            }
            replica.zeroGrad();

            // Periodic elastic sync with the center.
            if ((step + 1) % config.sync_period == 0) {
                RECSIM_TRACE_SPAN("easgd.sync");
                const float alpha = config.elasticity;
                std::lock_guard<std::mutex> lock(center_mutex);
                for (std::size_t i = 0; i < center_params.size(); ++i) {
                    float* c = center_params[i]->data();
                    float* x = replica_params[i]->data();
                    for (std::size_t j = 0;
                         j < center_params[i]->size(); ++j) {
                        const float diff = x[j] - c[j];
                        x[j] -= alpha * diff;
                        c[j] += alpha * diff;
                    }
                }
            }
            total_steps.fetch_add(1, std::memory_order_relaxed);
        }
        final_losses[tid] =
            tail_count ? tail_loss / static_cast<double>(tail_count)
                       : 0.0;
    };

    std::vector<std::thread> threads;
    threads.reserve(config.num_workers);
    for (std::size_t t = 0; t < config.num_workers; ++t)
        threads.emplace_back(worker, t);
    for (auto& t : threads)
        t.join();

    TrainResult result;
    result.steps = total_steps.load();
    double loss = 0.0;
    for (double l : final_losses)
        loss += l;
    result.final_train_loss =
        loss / static_cast<double>(config.num_workers);
    evaluateModel(center, dataset, eval_examples, result);
    return result;
}

} // namespace train
} // namespace recsim
