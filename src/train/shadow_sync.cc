#include "train/shadow_sync.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "train/racy_traffic.h"
#include "util/logging.h"

namespace recsim {
namespace train {

TrainResult
trainShadowSync(const model::DlrmConfig& model_config,
                data::SyntheticCtrDataset& dataset,
                const ShadowSyncConfig& config,
                std::size_t eval_examples)
{
    RECSIM_ASSERT(config.num_workers >= 1, "need at least one worker");
    RECSIM_ASSERT(config.elasticity > 0.0f && config.elasticity <= 1.0f,
                  "elasticity must be in (0, 1]");
    RECSIM_ASSERT(dataset.materializedSize() > eval_examples,
                  "materialize() the dataset before training");
    const TrainConfig& base = config.base;
    const std::size_t train_examples =
        dataset.materializedSize() - eval_examples;

    model::Dlrm center(model_config, base.model_seed);

    // Worker replicas live for the whole run so the shadow thread can
    // average against them while they train. Each replica has a mutex
    // the shadow thread uses for its brief averaging passes; workers
    // take it only around the dense optimizer step (microseconds), so
    // sync stays off the critical path in spirit and nearly in letter.
    struct Worker
    {
        std::unique_ptr<model::Dlrm> replica;
        std::mutex mutex;
        std::atomic<bool> done{false};
    };
    std::vector<Worker> workers(config.num_workers);
    for (auto& w : workers)
        w.replica = std::make_unique<model::Dlrm>(model_config,
                                                  base.model_seed);

    const std::size_t shard = train_examples / config.num_workers;
    const std::size_t steps_per_worker =
        std::max<std::size_t>(shard / base.batch_size, 1) * base.epochs;

    std::atomic<std::size_t> total_steps{0};
    std::vector<double> final_losses(config.num_workers, 0.0);

    auto worker_fn = [&](std::size_t tid) {
        Worker& self = workers[tid];
        nn::Sgd sgd(base.learning_rate);
        const std::size_t begin = tid * shard;
        const std::size_t tail_start = steps_per_worker -
            std::max<std::size_t>(steps_per_worker / 10, 1);
        double tail_loss = 0.0;
        std::size_t tail_count = 0;

        for (std::size_t step = 0; step < steps_per_worker; ++step) {
            RECSIM_TRACE_SPAN("shadow.iteration");
            const std::size_t offset =
                begin + (step * base.batch_size) % std::max(shard, 1ul);
            data::MiniBatch batch =
                dataset.epochBatch(offset, base.batch_size);

            // Pull touched embedding rows from the shared tables.
            // Lock-free: another worker may be pushing into the same
            // rows (see racy_traffic.h).
            for (std::size_t f = 0; f < batch.sparse.size(); ++f) {
                auto& ct = center.tables()[f];
                auto& rt = self.replica->tables()[f];
                for (uint64_t idx : batch.sparse[f].indices) {
                    const auto row = static_cast<std::size_t>(
                        idx % ct.hashSize());
                    racy::copyRow(ct.table.row(row),
                                  rt.table.row(row), ct.dim());
                }
            }

            const double loss = self.replica->forwardBackward(batch);
            if (step >= tail_start) {
                tail_loss += loss;
                ++tail_count;
            }

            {
                std::lock_guard<std::mutex> lock(self.mutex);
                sgd.step(self.replica->bottomMlp());
                sgd.step(self.replica->topMlp());
            }
            // Sparse rows update the shared tables without locking.
            for (std::size_t f = 0;
                 f < self.replica->tables().size(); ++f) {
                auto& table = center.tables()[f];
                const auto& grad = self.replica->sparseGrads()[f];
                for (std::size_t r = 0; r < grad.rows.size(); ++r) {
                    racy::pushRow(
                        table.table.row(static_cast<std::size_t>(
                            grad.rows[r])),
                        grad.values.row(r), table.dim(),
                        base.learning_rate);
                }
            }
            self.replica->zeroGrad();
            total_steps.fetch_add(1, std::memory_order_relaxed);
        }
        final_losses[tid] =
            tail_count ? tail_loss / static_cast<double>(tail_count)
                       : 0.0;
        self.done.store(true, std::memory_order_release);
    };

    // The shadow thread: loop over workers, elastically averaging each
    // with the center, pacing itself to ~sync_rate passes per step.
    std::atomic<uint64_t> shadow_passes{0};
    auto shadow_fn = [&] {
        auto center_params = center.denseParams();
        while (true) {
            RECSIM_TRACE_SPAN("shadow.sync_pass");
            bool all_done = true;
            for (auto& w : workers) {
                if (!w.done.load(std::memory_order_acquire))
                    all_done = false;
                std::lock_guard<std::mutex> lock(w.mutex);
                auto worker_params = w.replica->denseParams();
                // The lock excludes the worker's optimizer step only;
                // its forward pass reads these params concurrently by
                // design (racy_traffic.h).
                for (std::size_t i = 0; i < center_params.size(); ++i) {
                    racy::elasticAverage(center_params[i]->data(),
                                         worker_params[i]->data(),
                                         center_params[i]->size(),
                                         config.elasticity);
                }
            }
            shadow_passes.fetch_add(1, std::memory_order_relaxed);
            if (all_done)
                break;
            // Pace: aim for sync_rate passes per worker step so the
            // shadow thread neither starves nor monopolizes the bus.
            const double target_passes = config.sync_rate *
                static_cast<double>(
                    total_steps.load(std::memory_order_relaxed) + 1) /
                static_cast<double>(config.num_workers);
            if (static_cast<double>(shadow_passes.load()) >
                target_passes) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(config.num_workers + 1);
    for (std::size_t t = 0; t < config.num_workers; ++t)
        threads.emplace_back(worker_fn, t);
    threads.emplace_back(shadow_fn);
    for (auto& t : threads)
        t.join();

    TrainResult result;
    result.steps = total_steps.load();
    double loss = 0.0;
    for (double l : final_losses)
        loss += l;
    result.final_train_loss =
        loss / static_cast<double>(config.num_workers);
    evaluateModel(center, dataset, eval_examples, result);
    return result;
}

} // namespace train
} // namespace recsim
