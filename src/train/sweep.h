/**
 * @file
 * Hyper-parameter retuning: the stand-in for FBLearner's AutoML sweep
 * (Section VI-C). Fig 15's protocol — retune the learning rate for
 * every batch size, then compare the best achievable NE against the
 * small-batch baseline — is implemented by sweepLearningRate().
 */
#pragma once

#include <vector>

#include "train/trainer.h"

namespace recsim {
namespace train {

/** One point of a learning-rate sweep. */
struct SweepPoint
{
    float learning_rate = 0.0f;
    TrainResult result;
};

/** Outcome of a sweep: every point plus the index of the best. */
struct SweepResult
{
    std::vector<SweepPoint> points;
    std::size_t best_index = 0;

    const SweepPoint& best() const { return points[best_index]; }
};

/**
 * Train once per candidate learning rate (all else from @p config) and
 * select the run with the lowest held-out normalized entropy.
 *
 * @param candidates Learning rates to try; must be non-empty.
 */
SweepResult sweepLearningRate(const model::DlrmConfig& model_config,
                              data::SyntheticCtrDataset& dataset,
                              const TrainConfig& config,
                              const std::vector<float>& candidates,
                              std::size_t eval_examples = 8192);

/** A sensible default LR grid (log-spaced, covers SGD and Adagrad). */
std::vector<float> defaultLrGrid();

} // namespace train
} // namespace recsim
