#include "train/step_runner.h"

#include "obs/trace.h"
#include "util/logging.h"

namespace recsim {
namespace train {

namespace {

/**
 * Keeps one "nn.mlp.fwd"/"nn.mlp.bwd" span open across the run of Gemm
 * nodes that belong to the same MLP stack, so the graph walk emits the
 * same stack-level spans Mlp::forward()/backward() do, with the
 * per-node spans nested inside. Like TraceSpan, the begin/end pairing
 * survives the tracing flag flipping mid-span.
 */
class MlpSpanGroup
{
  public:
    ~MlpSpanGroup() { close(); }

    void open(const char* name)
    {
        if (open_)
            return;
        open_ = true;
        if (obs::Tracer::enabled()) {
            obs::Tracer::global().beginSpan(name);
            traced_ = true;
        }
    }

    void close()
    {
        if (open_ && traced_)
            obs::Tracer::global().endSpan();
        open_ = false;
        traced_ = false;
    }

  private:
    bool open_ = false;
    bool traced_ = false;
};

} // namespace

double
runGraphStep(model::Dlrm& model, const data::MiniBatch& batch,
             const graph::StepGraph& graph)
{
    RECSIM_ASSERT(graph.emb_dim == model.config().emb_dim &&
                  graph.num_dense == model.config().num_dense,
                  "StepGraph was built for a different model config");

    double loss = 0.0;
    {
        RECSIM_TRACE_SPAN("model.fwd");
        MlpSpanGroup mlp;
        for (const auto& node : graph.nodes) {
            switch (node.kind) {
              case graph::NodeKind::Gemm:
                if (node.role == graph::GemmRole::Projection) {
                    mlp.close();
                    obs::TraceSpan span(node.id.c_str());
                    model.forwardProjection(
                        static_cast<std::size_t>(node.table));
                } else {
                    mlp.open("nn.mlp.fwd");
                    obs::TraceSpan span(node.id.c_str());
                    if (node.role == graph::GemmRole::BottomMlp)
                        model.forwardBottomLayer(
                            static_cast<std::size_t>(node.layer), batch);
                    else
                        model.forwardTopLayer(
                            static_cast<std::size_t>(node.layer));
                }
                break;
              case graph::NodeKind::EmbeddingLookup: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                model.forwardEmbedding(
                    static_cast<std::size_t>(node.table), batch);
                break;
              }
              case graph::NodeKind::Interaction: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                model.forwardInteraction();
                break;
              }
              default:
                // Loss runs between the halves; OptimizerUpdate is the
                // caller's step(); Comm nodes have no local work.
                mlp.close();
                break;
            }
        }
    }

    {
        obs::TraceSpan span("loss");
        loss = model.lossBackward(batch);
    }

    {
        RECSIM_TRACE_SPAN("model.bwd");
        MlpSpanGroup mlp;
        for (std::size_t i = graph.nodes.size(); i-- > 0;) {
            const auto& node = graph.nodes[i];
            switch (node.kind) {
              case graph::NodeKind::Gemm:
                if (node.role == graph::GemmRole::Projection) {
                    mlp.close();
                    obs::TraceSpan span(node.id.c_str());
                    model.backwardProjection(
                        static_cast<std::size_t>(node.table));
                } else {
                    mlp.open("nn.mlp.bwd");
                    obs::TraceSpan span(node.id.c_str());
                    if (node.role == graph::GemmRole::BottomMlp)
                        model.backwardBottomLayer(
                            static_cast<std::size_t>(node.layer), batch);
                    else
                        model.backwardTopLayer(
                            static_cast<std::size_t>(node.layer));
                }
                break;
              case graph::NodeKind::EmbeddingLookup: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                model.backwardEmbedding(
                    static_cast<std::size_t>(node.table), batch);
                break;
              }
              case graph::NodeKind::Interaction: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                model.backwardInteraction();
                break;
              }
              default:
                mlp.close();
                break;
            }
        }
    }
    return loss;
}

} // namespace train
} // namespace recsim
