#include "train/step_runner.h"

#include <algorithm>
#include <atomic>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace recsim {
namespace train {

namespace {

/** Nodes the trainer dispatches to a model primitive. */
bool
executableNode(const graph::Node& node)
{
    return node.kind == graph::NodeKind::Gemm ||
        node.kind == graph::NodeKind::EmbeddingLookup ||
        node.kind == graph::NodeKind::Interaction;
}

/**
 * Keeps one "nn.mlp.fwd"/"nn.mlp.bwd" span open across the run of Gemm
 * nodes that belong to the same MLP stack, so the graph walk emits the
 * same stack-level spans Mlp::forward()/backward() do, with the
 * per-node spans nested inside. Like TraceSpan, the begin/end pairing
 * survives the tracing flag flipping mid-span.
 */
class MlpSpanGroup
{
  public:
    ~MlpSpanGroup() { close(); }

    void open(const char* name)
    {
        if (open_)
            return;
        open_ = true;
        if (obs::Tracer::enabled()) {
            obs::Tracer::global().beginSpan(name);
            traced_ = true;
        }
    }

    void close()
    {
        if (open_ && traced_)
            obs::Tracer::global().endSpan();
        open_ = false;
        traced_ = false;
    }

  private:
    bool open_ = false;
    bool traced_ = false;
};

/**
 * RAII flight-recorder sample around one node dispatch: when the
 * recorder is enabled, times the enclosed work and records it on the
 * node's channel (one sample per visit — the forward and backward
 * halves record separately under the same id). Inactive construction
 * costs one relaxed atomic load, honoring the recorder's
 * disabled-path contract.
 */
class NodeSample
{
  public:
    /** Channel already interned (GraphExecutor's cached ids). */
    NodeSample(uint32_t channel, uint64_t step, uint32_t rows)
    {
        if (obs::recorderEnabled())
            arm(channel, step, rows);
    }

    /** Channel known but the site may be inactive (the serial walk's
     *  non-executable nodes, or recording off). */
    NodeSample(bool active, uint32_t channel, uint64_t step,
               uint32_t rows)
    {
        if (active)
            arm(channel, step, rows);
    }

    ~NodeSample()
    {
        if (recorder_ != nullptr)
            recorder_->record(
                channel_, step_,
                static_cast<double>(recorder_->nowNs() - start_ns_) *
                    1e-9,
                rows_);
    }

    NodeSample(const NodeSample&) = delete;
    NodeSample& operator=(const NodeSample&) = delete;

  private:
    void arm(uint32_t channel, uint64_t step, uint32_t rows)
    {
        recorder_ = &obs::FlightRecorder::global();
        channel_ = channel;
        step_ = step;
        rows_ = rows;
        start_ns_ = recorder_->nowNs();
    }

    obs::FlightRecorder* recorder_ = nullptr;
    uint32_t channel_ = 0;
    uint32_t rows_ = 0;
    uint64_t step_ = 0;
    uint64_t start_ns_ = 0;
};

/** Step tags for serial runGraphStep() samples (no executor state). */
std::atomic<uint64_t> g_serial_steps{0};

/**
 * Channel ids for a graph's nodes, interned once and memoized: the
 * serial walk asks per step, and paying the recorder's intern mutex
 * per node visit is what the telemetry overhead budget cannot afford.
 * Keyed on identity (address + node count + last node id) so a rebuilt
 * graph re-interns; thread_local because several driver threads may
 * walk different graphs concurrently.
 */
const std::vector<uint32_t>&
graphNodeChannels(const graph::StepGraph& graph)
{
    struct Cache
    {
        const graph::StepGraph* graph = nullptr;
        std::string last_id;
        std::vector<uint32_t> channels;
    };
    thread_local Cache cache;
    const bool hit = cache.graph == &graph &&
        cache.channels.size() == graph.nodes.size() &&
        (graph.nodes.empty() ||
         cache.last_id == graph.nodes.back().id);
    if (!hit) {
        auto& recorder = obs::FlightRecorder::global();
        cache.channels.clear();
        cache.channels.reserve(graph.nodes.size());
        for (const auto& node : graph.nodes)
            cache.channels.push_back(recorder.internChannel(node.id));
        cache.graph = &graph;
        cache.last_id =
            graph.nodes.empty() ? std::string() : graph.nodes.back().id;
    }
    return cache.channels;
}

const std::vector<uint32_t> kNoChannels;

} // namespace

double
runGraphStep(model::Dlrm& model, const data::MiniBatch& batch,
             const graph::StepGraph& graph)
{
    RECSIM_ASSERT(graph.emb_dim == model.config().emb_dim &&
                  graph.num_dense == model.config().num_dense,
                  "StepGraph was built for a different model config");

    const bool recording = obs::recorderEnabled();
    const uint64_t step = recording
        ? g_serial_steps.fetch_add(1, std::memory_order_relaxed)
        : 0;
    const uint32_t rows = static_cast<uint32_t>(batch.batchSize());
    const std::vector<uint32_t>& channels =
        recording ? graphNodeChannels(graph) : kNoChannels;

    double loss = 0.0;
    {
        RECSIM_TRACE_SPAN("model.fwd");
        MlpSpanGroup mlp;
        for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
            const auto& node = graph.nodes[i];
            NodeSample sample(recording && executableNode(node),
                              recording ? channels[i] : 0, step, rows);
            switch (node.kind) {
              case graph::NodeKind::Gemm:
                if (node.role == graph::GemmRole::Projection) {
                    mlp.close();
                    obs::TraceSpan span(node.id.c_str());
                    model.forwardProjection(
                        static_cast<std::size_t>(node.table),
                        node.fused_epilogue);
                } else {
                    mlp.open("nn.mlp.fwd");
                    obs::TraceSpan span(node.id.c_str());
                    if (node.role == graph::GemmRole::BottomMlp)
                        model.forwardBottomLayer(
                            static_cast<std::size_t>(node.layer), batch,
                            node.fused_epilogue);
                    else
                        model.forwardTopLayer(
                            static_cast<std::size_t>(node.layer),
                            node.fused_epilogue);
                }
                break;
              case graph::NodeKind::EmbeddingLookup: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                if (!node.fused_tables.empty())
                    model.forwardEmbeddingGroup(node.fused_tables,
                                                batch);
                else
                    model.forwardEmbedding(
                        static_cast<std::size_t>(node.table), batch);
                break;
              }
              case graph::NodeKind::Interaction: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                model.forwardInteraction();
                break;
              }
              default:
                // Loss runs between the halves; OptimizerUpdate is the
                // caller's step(); Comm nodes have no local work.
                mlp.close();
                break;
            }
        }
    }

    {
        obs::TraceSpan span("loss");
        loss = model.lossBackward(batch);
    }

    {
        RECSIM_TRACE_SPAN("model.bwd");
        MlpSpanGroup mlp;
        for (std::size_t i = graph.nodes.size(); i-- > 0;) {
            const auto& node = graph.nodes[i];
            NodeSample sample(recording && executableNode(node),
                              recording ? channels[i] : 0, step, rows);
            switch (node.kind) {
              case graph::NodeKind::Gemm:
                if (node.role == graph::GemmRole::Projection) {
                    mlp.close();
                    obs::TraceSpan span(node.id.c_str());
                    model.backwardProjection(
                        static_cast<std::size_t>(node.table),
                        node.fused_backward);
                } else {
                    mlp.open("nn.mlp.bwd");
                    obs::TraceSpan span(node.id.c_str());
                    if (node.role == graph::GemmRole::BottomMlp)
                        model.backwardBottomLayer(
                            static_cast<std::size_t>(node.layer), batch,
                            node.fused_backward);
                    else
                        model.backwardTopLayer(
                            static_cast<std::size_t>(node.layer),
                            node.fused_backward, node.fused_flatten);
                }
                break;
              case graph::NodeKind::EmbeddingLookup: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                if (!node.fused_tables.empty())
                    model.backwardEmbeddingGroup(node.fused_tables,
                                                 batch);
                else
                    model.backwardEmbedding(
                        static_cast<std::size_t>(node.table), batch);
                break;
              }
              case graph::NodeKind::Interaction: {
                mlp.close();
                obs::TraceSpan span(node.id.c_str());
                model.backwardInteraction(node.fused_flatten);
                break;
              }
              default:
                mlp.close();
                break;
            }
        }
    }
    return loss;
}

GraphExecutor::GraphExecutor(const graph::StepGraph& graph,
                             util::ThreadPool& pool)
    : graph_(&graph), pool_(&pool)
{
    const std::string problem = graph.validate();
    RECSIM_ASSERT(problem.empty(), "invalid StepGraph: {}", problem);

    const std::size_t n = graph.nodes.size();
    std::vector<char> exec(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        exec[i] = executableNode(graph.nodes[i]) ? 1 : 0;

    // Effective deps: each node's executable predecessors, looking
    // through non-executable nodes (comm legs, loss, optimizer) so a
    // bound graph schedules exactly like its compute skeleton.
    const auto order = graph.topoOrder();
    std::vector<std::vector<std::size_t>> eff(n);
    for (std::size_t i : order) {
        std::vector<std::size_t> e;
        for (std::size_t d : graph.nodes[i].deps) {
            if (exec[d])
                e.push_back(d);
            else
                e.insert(e.end(), eff[d].begin(), eff[d].end());
        }
        std::sort(e.begin(), e.end());
        e.erase(std::unique(e.begin(), e.end()), e.end());
        eff[i] = std::move(e);
    }

    // Forward wave of a node = longest executable-dep chain below it.
    std::vector<std::size_t> level(n, 0);
    std::size_t deepest = 0;
    for (std::size_t i : order) {
        if (!exec[i])
            continue;
        for (std::size_t d : eff[i])
            level[i] = std::max(level[i], level[d] + 1);
        deepest = std::max(deepest, level[i]);
    }
    fwd_waves_.assign(deepest + 1, {});
    for (std::size_t i = 0; i < n; ++i) {
        if (exec[i])
            fwd_waves_[level[i]].push_back(i);
    }

    // Backward waves: levels of the reversed DAG. Visiting the topo
    // order backwards, every successor of i has already pushed its
    // level into blevel[i], so blevel[i] is final when visited.
    std::vector<std::size_t> blevel(n, 0);
    deepest = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const std::size_t i = *it;
        if (!exec[i])
            continue;
        deepest = std::max(deepest, blevel[i]);
        for (std::size_t d : eff[i])
            blevel[d] = std::max(blevel[d], blevel[i] + 1);
    }
    bwd_waves_.assign(deepest + 1, {});
    for (std::size_t i = 0; i < n; ++i) {
        if (exec[i])
            bwd_waves_[blevel[i]].push_back(i);
    }

    // Intern one recorder channel per node up front: the record path
    // then never touches the intern mutex, only the per-thread stripe.
    node_channels_.reserve(n);
    auto& recorder = obs::FlightRecorder::global();
    for (const auto& node : graph.nodes)
        node_channels_.push_back(recorder.internChannel(node.id));
}

void
GraphExecutor::dispatch(std::size_t node_index, model::Dlrm& model,
                        const data::MiniBatch& batch, bool forward,
                        uint64_t step) const
{
    const graph::Node& node = graph_->nodes[node_index];
    // The span opens on the executing thread, so concurrent nodes land
    // on their worker's track under the same node-id names the serial
    // walk, the cost model and the DES report. The recorder sample
    // lands on the worker's stripe under the same id.
    NodeSample sample(node_channels_[node_index], step,
                      static_cast<uint32_t>(batch.batchSize()));
    obs::TraceSpan span(node.id.c_str());
    switch (node.kind) {
      case graph::NodeKind::Gemm:
        if (node.role == graph::GemmRole::Projection) {
            if (forward)
                model.forwardProjection(
                    static_cast<std::size_t>(node.table),
                    node.fused_epilogue);
            else
                model.backwardProjection(
                    static_cast<std::size_t>(node.table),
                    node.fused_backward);
        } else if (node.role == graph::GemmRole::BottomMlp) {
            if (forward)
                model.forwardBottomLayer(
                    static_cast<std::size_t>(node.layer), batch,
                    node.fused_epilogue);
            else
                model.backwardBottomLayer(
                    static_cast<std::size_t>(node.layer), batch,
                    node.fused_backward);
        } else {
            if (forward)
                model.forwardTopLayer(
                    static_cast<std::size_t>(node.layer),
                    node.fused_epilogue);
            else
                model.backwardTopLayer(
                    static_cast<std::size_t>(node.layer),
                    node.fused_backward, node.fused_flatten);
        }
        break;
      case graph::NodeKind::EmbeddingLookup:
        if (forward) {
            if (!node.fused_tables.empty())
                model.forwardEmbeddingGroup(node.fused_tables, batch);
            else
                model.forwardEmbedding(
                    static_cast<std::size_t>(node.table), batch);
        } else {
            if (!node.fused_tables.empty())
                model.backwardEmbeddingGroup(node.fused_tables, batch);
            else
                model.backwardEmbedding(
                    static_cast<std::size_t>(node.table), batch);
        }
        break;
      case graph::NodeKind::Interaction:
        if (forward)
            model.forwardInteraction();
        else
            model.backwardInteraction(node.fused_flatten);
        break;
      default:
        util::panic("GraphExecutor dispatched a non-executable node");
    }
}

void
GraphExecutor::runWave(const std::vector<std::size_t>& wave,
                       model::Dlrm& model, const data::MiniBatch& batch,
                       bool forward, uint64_t step) const
{
    if (wave.empty())
        return;
    if (wave.size() == 1) {
        dispatch(wave[0], model, batch, forward, step);
        return;
    }
    // Grain 1: one node per pool task. Each node writes only its own
    // layer/table buffers, and its inner kernel parallelFor runs
    // inline on the worker (nested-submit rule) with the same chunk
    // geometry as the serial walk — hence bit-identical results.
    pool_->parallelFor(
        0, wave.size(), 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k)
                dispatch(wave[k], model, batch, forward, step);
        });
}

void
GraphExecutor::runForward(model::Dlrm& model,
                          const data::MiniBatch& batch) const
{
    RECSIM_ASSERT(graph_->emb_dim == model.config().emb_dim &&
                  graph_->num_dense == model.config().num_dense,
                  "StepGraph was built for a different model config");
    const uint64_t step = obs::recorderEnabled()
        ? steps_issued_.fetch_add(1, std::memory_order_relaxed)
        : 0;
    RECSIM_TRACE_SPAN("model.fwd");
    for (const auto& wave : fwd_waves_)
        runWave(wave, model, batch, /*forward=*/true, step);
}

double
GraphExecutor::runStep(model::Dlrm& model,
                       const data::MiniBatch& batch) const
{
    RECSIM_ASSERT(graph_->emb_dim == model.config().emb_dim &&
                  graph_->num_dense == model.config().num_dense,
                  "StepGraph was built for a different model config");

    const uint64_t step = obs::recorderEnabled()
        ? steps_issued_.fetch_add(1, std::memory_order_relaxed)
        : 0;
    double loss = 0.0;
    {
        RECSIM_TRACE_SPAN("model.fwd");
        for (const auto& wave : fwd_waves_)
            runWave(wave, model, batch, /*forward=*/true, step);
    }
    {
        obs::TraceSpan span("loss");
        loss = model.lossBackward(batch);
    }
    {
        RECSIM_TRACE_SPAN("model.bwd");
        for (const auto& wave : bwd_waves_)
            runWave(wave, model, batch, /*forward=*/false, step);
    }
    return loss;
}

} // namespace train
} // namespace recsim
