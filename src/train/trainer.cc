#include "train/trainer.h"

#include "graph/step_graph.h"
#include "nn/loss.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"
#include "obs/trace.h"
#include "train/step_runner.h"
#include "util/logging.h"

namespace recsim {
namespace train {

void
evaluateModel(model::Dlrm& model, data::SyntheticCtrDataset& dataset,
              std::size_t eval_examples, TrainResult& result)
{
    RECSIM_ASSERT(dataset.materializedSize() > eval_examples,
                  "dataset too small for {} eval examples",
                  eval_examples);
    const std::size_t eval_start =
        dataset.materializedSize() - eval_examples;
    // Evaluate in chunks to bound peak memory.
    const std::size_t chunk = 2048;
    double loss_sum = 0.0;
    double correct = 0.0;
    std::vector<float> all_labels;
    std::vector<float> all_logits;
    all_labels.reserve(eval_examples);
    all_logits.reserve(eval_examples);
    tensor::Tensor logits;
    for (std::size_t off = 0; off < eval_examples; off += chunk) {
        const std::size_t n = std::min(chunk, eval_examples - off);
        data::MiniBatch batch = dataset.epochBatch(eval_start + off, n);
        model.forward(batch, logits);
        loss_sum += nn::bceWithLogitsLoss(logits, batch.labels) *
            static_cast<double>(n);
        correct += nn::accuracy(logits, batch.labels) *
            static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i) {
            all_labels.push_back(batch.labels[i]);
            all_logits.push_back(logits.data()[i]);
        }
    }
    result.eval_loss = loss_sum / static_cast<double>(eval_examples);
    result.eval_accuracy = correct / static_cast<double>(eval_examples);

    tensor::Tensor logit_tensor(all_logits.size());
    std::copy(all_logits.begin(), all_logits.end(), logit_tensor.data());
    result.eval_ne = nn::normalizedEntropy(logit_tensor, all_labels);
}

TrainResult
trainSingleThread(const model::DlrmConfig& model_config,
                  data::SyntheticCtrDataset& dataset,
                  const TrainConfig& config, std::size_t eval_examples)
{
    RECSIM_ASSERT(dataset.materializedSize() > eval_examples,
                  "materialize() the dataset before training");
    const std::size_t train_examples =
        dataset.materializedSize() - eval_examples;
    RECSIM_ASSERT(config.batch_size > 0 &&
                  config.batch_size <= train_examples,
                  "batch size {} vs {} training examples",
                  config.batch_size, train_examples);

    model::Dlrm model(model_config, config.model_seed);
    if (config.embedding_backend == EmbeddingBackendKind::Cached)
        model.installCachedEmbeddingBackends(
            config.hot_tier_bytes, config.hot_tier_refresh_every);
    // The same per-step operator graph the cost model and the DES
    // consume drives the real training loop (train/step_runner.h).
    // The executor dispatches independent nodes (per-table lookups,
    // projections, bottom MLP) concurrently; results are bit-identical
    // to the serial runGraphStep() walk at any RECSIM_THREADS.
    graph::StepGraph graph = graph::buildModelStepGraph(model_config);
    if (config.fuse_graph)
        graph::fusePass(graph);
    const GraphExecutor executor(graph);
    nn::Sgd sgd(config.learning_rate);
    nn::Adagrad adagrad(config.learning_rate);

    // Flight-recorder channels for the per-step series, interned once
    // outside the loop; the loop body itself only pays the enabled()
    // load when recording is off.
    auto& recorder = obs::FlightRecorder::global();
    const uint32_t step_channel = recorder.internChannel("train.step_s");
    const uint32_t loss_channel = recorder.internChannel("train.loss");
    const obs::PoolSnapshot pool_before = obs::snapshotThreadPool();

    TrainResult result;
    const std::size_t steps_per_epoch =
        train_examples / config.batch_size;
    const std::size_t total_steps = steps_per_epoch * config.epochs;
    const std::size_t tail_start =
        total_steps - std::max<std::size_t>(total_steps / 10, 1);
    double tail_loss = 0.0;
    std::size_t tail_count = 0;

    std::size_t step = 0;
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        for (std::size_t it = 0; it < steps_per_epoch; ++it, ++step) {
            RECSIM_TRACE_SPAN("train.iteration");
            const uint64_t iter_start = obs::Tracer::global().nowNs();
            double loss = 0.0;
            data::MiniBatch batch;
            {
                RECSIM_TRACE_SPAN("train.data");
                batch = dataset.epochBatch(it * config.batch_size,
                                           config.batch_size);
            }
            {
                RECSIM_TRACE_SPAN("train.fwd_bwd");
                loss = executor.runStep(model, batch);
            }
            {
                RECSIM_TRACE_SPAN("train.optimizer");
                // The graph's OptimizerUpdate node closes the step.
                RECSIM_TRACE_SPAN("optimizer");
                if (config.optimizer == OptimizerKind::Sgd)
                    model.step(sgd);
                else
                    model.step(adagrad);
            }
            auto& metrics = obs::MetricsRegistry::global();
            metrics.incr("train.iterations");
            const double iter_s = static_cast<double>(
                obs::Tracer::global().nowNs() - iter_start) * 1e-9;
            metrics.observe("train.iteration_seconds", iter_s);
            if (obs::recorderEnabled()) {
                const uint32_t rows =
                    static_cast<uint32_t>(batch.batchSize());
                recorder.record(step_channel, step, iter_s, rows);
                recorder.record(loss_channel, step, loss, rows);
            }
            if (step >= tail_start) {
                tail_loss += loss;
                ++tail_count;
            }
            if (config.eval_every && step % config.eval_every == 0)
                result.loss_curve.emplace_back(step, loss);
        }
    }
    result.steps = step;
    result.final_train_loss =
        tail_count ? tail_loss / static_cast<double>(tail_count) : 0.0;
    evaluateModel(model, dataset, eval_examples, result);
    obs::publishThreadPoolMetrics();
    // The run's own pool consumption (jobs/tasks/idle attributable to
    // this training loop, not the process lifetime).
    obs::publishThreadPoolMetrics(
        "train.pool", obs::poolDelta(pool_before,
                                     obs::snapshotThreadPool()));
    return result;
}

} // namespace train
} // namespace recsim
