/**
 * @file
 * The *deliberately* lock-free parameter traffic shared by the
 * asynchronous trainers (Hogwild, EASGD, ShadowSync): torn reads and
 * lost updates are part of those algorithms, so these helpers are
 * excluded from ThreadSanitizer instrumentation
 * (RECSIM_NO_SANITIZE_THREAD) and use raw loops rather than
 * std::copy/memcpy, which sanitizer runtimes intercept even in
 * uninstrumented callers. Everything else in the trainers synchronizes
 * normally and stays instrumented.
 */
#pragma once

#include <cstddef>

#include "nn/linear.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace recsim {
namespace train {
namespace racy {

/** Racy element-wise copy of one shared tensor into a replica. */
RECSIM_NO_SANITIZE_THREAD inline void
copyTensor(const tensor::Tensor& from, tensor::Tensor& to)
{
    const float* src = from.data();
    float* dst = to.data();
    const std::size_t n = from.size();
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = src[i];
}

/** Racy pull of one embedding row (shared table -> replica). */
RECSIM_NO_SANITIZE_THREAD inline void
copyRow(const float* src, float* dst, std::size_t dim)
{
    for (std::size_t j = 0; j < dim; ++j)
        dst[j] = src[j];
}

/** Racy SGD push of one sparse-gradient row into a shared table. */
RECSIM_NO_SANITIZE_THREAD inline void
pushRow(float* row, const float* grad, std::size_t dim, float lr)
{
    for (std::size_t j = 0; j < dim; ++j)
        row[j] -= lr * grad[j];
}

/**
 * Apply the dense gradients accumulated in one layer of @p src to the
 * matching layer of @p dst without locking (the Hogwild update).
 */
RECSIM_NO_SANITIZE_THREAD inline void
applyLayerGrads(nn::Linear& dst, const nn::Linear& src, float lr)
{
    float* w = dst.weight.data();
    const float* gw = src.gradWeight.data();
    for (std::size_t i = 0; i < dst.weight.size(); ++i)
        w[i] -= lr * gw[i];
    float* bias = dst.bias.data();
    const float* gb = src.gradBias.data();
    for (std::size_t i = 0; i < dst.bias.size(); ++i)
        bias[i] -= lr * gb[i];
}

/**
 * One elastic-averaging pass over a parameter pair: pulls @p x toward
 * @p c and @p c toward @p x by @p alpha of their difference. Racy
 * because ShadowSync's shadow thread averages a worker's parameters
 * while that worker is mid-forward (the worker only locks around its
 * optimizer step — sync stays off the critical path by design).
 */
RECSIM_NO_SANITIZE_THREAD inline void
elasticAverage(float* c, float* x, std::size_t n, float alpha)
{
    for (std::size_t j = 0; j < n; ++j) {
        const float diff = x[j] - c[j];
        x[j] -= alpha * diff;
        c[j] += alpha * diff;
    }
}

} // namespace racy
} // namespace train
} // namespace recsim
