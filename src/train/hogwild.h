/**
 * @file
 * Hogwild! trainer: multiple threads updating one shared Dlrm without
 * locks (Recht et al., the asynchronous update scheme the paper's CPU
 * trainers run). Races on the shared parameters are the algorithm, not
 * a bug: sparse DLRM gradients rarely collide, so convergence survives.
 */
#pragma once

#include <cstdint>

#include "train/trainer.h"

namespace recsim {
namespace train {

/** Hogwild-specific knobs on top of TrainConfig. */
struct HogwildConfig
{
    TrainConfig base;
    /** Concurrent lock-free workers (the paper's "N hogwild"). */
    std::size_t num_threads = 4;
};

/**
 * Train one shared model with @p config.num_threads lock-free workers.
 * The training set is partitioned across workers; each performs
 * SGD/Adagrad steps on the shared parameters without synchronization.
 */
TrainResult trainHogwild(const model::DlrmConfig& model_config,
                         data::SyntheticCtrDataset& dataset,
                         const HogwildConfig& config,
                         std::size_t eval_examples = 8192);

} // namespace train
} // namespace recsim
