/**
 * @file
 * Model checkpointing: serialize/restore a Dlrm's parameters. The
 * paper's related work stresses that "making training infrastructures
 * reliable has a profound impact in the training workflow efficiency"
 * (CPR, DeepFreeze); long-running recommendation training is expected
 * to resume bit-exactly after preemption. The format is a simple
 * versioned binary layout with a header that rejects mismatched model
 * shapes.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/dlrm.h"

namespace recsim {
namespace train {

/** Result of a restore attempt. */
struct RestoreStatus
{
    bool ok = false;
    std::string error;
};

/**
 * Serialize @p model's parameters (dense MLPs + every embedding table)
 * into a byte buffer. The buffer embeds a format version and a shape
 * signature so restores into a differently-shaped model fail cleanly.
 *
 * When @p optimizer is non-null its Adagrad accumulators (per-element
 * dense state, per-row embedding state) are saved too, so a resumed
 * run continues bit-exactly rather than restarting the accumulators
 * from zero.
 */
std::vector<uint8_t> saveCheckpoint(model::Dlrm& model,
                                    const nn::Adagrad* optimizer =
                                        nullptr);

/**
 * Restore parameters from @p buffer into @p model. The model must have
 * the same architecture (dense dims, table count, hash sizes, emb dim)
 * as the one that produced the checkpoint.
 *
 * When @p optimizer is non-null and the checkpoint carries optimizer
 * state, the Adagrad accumulators are restored as well; a stateless
 * checkpoint resets the optimizer to fresh accumulators.
 */
RestoreStatus restoreCheckpoint(model::Dlrm& model,
                                const std::vector<uint8_t>& buffer,
                                nn::Adagrad* optimizer = nullptr);

/** saveCheckpoint() to a file. Returns false on I/O failure. */
bool saveCheckpointFile(model::Dlrm& model, const std::string& path,
                        const nn::Adagrad* optimizer = nullptr);

/** restoreCheckpoint() from a file. */
RestoreStatus restoreCheckpointFile(model::Dlrm& model,
                                    const std::string& path,
                                    nn::Adagrad* optimizer = nullptr);

/**
 * Estimate the serialized checkpoint size for a model *configuration*
 * without instantiating it — production-scale models are checkpointed
 * from parameter servers, and this is the number capacity planning
 * needs (dense params + tables + header).
 */
double checkpointBytes(const model::DlrmConfig& config);

} // namespace train
} // namespace recsim
