#include "train/hogwild.h"

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/pool_metrics.h"
#include "obs/trace.h"
#include "train/racy_traffic.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace recsim {
namespace train {

// Hogwild's parameter traffic is *deliberately* lock-free: torn reads
// and lost updates are part of the algorithm. All such accesses go
// through the annotated raw-loop helpers in train/racy_traffic.h;
// everything else in this file synchronizes normally and stays
// ThreadSanitizer-instrumented.
namespace {

void
applyDenseGrads(model::Dlrm& master, model::Dlrm& replica, float lr)
{
    auto apply = [lr](nn::Mlp& dst, nn::Mlp& src) {
        for (std::size_t l = 0; l < dst.layers().size(); ++l)
            racy::applyLayerGrads(dst.layers()[l], src.layers()[l], lr);
    };
    apply(master.bottomMlp(), replica.bottomMlp());
    apply(master.topMlp(), replica.topMlp());
}

} // namespace

TrainResult
trainHogwild(const model::DlrmConfig& model_config,
             data::SyntheticCtrDataset& dataset,
             const HogwildConfig& config, std::size_t eval_examples)
{
    RECSIM_ASSERT(config.num_threads >= 1, "need at least one worker");
    RECSIM_ASSERT(dataset.materializedSize() > eval_examples,
                  "materialize() the dataset before training");
    const TrainConfig& base = config.base;
    const std::size_t train_examples =
        dataset.materializedSize() - eval_examples;

    // The master holds the shared parameters. Each worker keeps a
    // private replica for activations/gradient scratch, pulls the
    // master's current parameters without locking before every step,
    // and pushes its gradient update back without locking. Torn reads
    // and lost updates are tolerated by design — that *is* Hogwild.
    model::Dlrm master(model_config, base.model_seed);
    nn::Sgd sgd(base.learning_rate);

    const std::size_t shard = train_examples / config.num_threads;
    const std::size_t steps_per_worker =
        std::max<std::size_t>(shard / base.batch_size, 1) * base.epochs;

    std::atomic<std::size_t> total_steps{0};
    std::vector<double> final_losses(config.num_threads, 0.0);

    auto worker = [&](std::size_t tid) {
        model::Dlrm replica(model_config, base.model_seed);
        auto master_params = master.denseParams();
        auto replica_params = replica.denseParams();
        const std::size_t begin = tid * shard;
        double tail_loss = 0.0;
        std::size_t tail_count = 0;
        const std::size_t tail_start = steps_per_worker -
            std::max<std::size_t>(steps_per_worker / 10, 1);

        for (std::size_t step = 0; step < steps_per_worker; ++step) {
            RECSIM_TRACE_SPAN("hogwild.iteration");
            data::MiniBatch batch;
            {
                RECSIM_TRACE_SPAN("hogwild.pull");
                // Racy pull of the current dense parameters (no
                // locks).
                for (std::size_t i = 0; i < master_params.size(); ++i)
                    racy::copyTensor(*master_params[i],
                                     *replica_params[i]);
                // Embedding rows are read from the master directly:
                // copy the rows this batch touches. For simplicity and
                // fidelity to Hogwild's sparse-access argument,
                // replicate whole tables only once (seed-identical
                // init) and sync touched rows.
                const std::size_t offset = begin +
                    (step * base.batch_size) % std::max(shard, 1ul);
                batch = dataset.epochBatch(offset, base.batch_size);
                for (std::size_t f = 0; f < batch.sparse.size(); ++f) {
                    auto& mt = master.tables()[f];
                    auto& rt = replica.tables()[f];
                    for (uint64_t idx : batch.sparse[f].indices) {
                        const auto row = static_cast<std::size_t>(
                            idx % mt.hashSize());
                        racy::copyRow(mt.table.row(row),
                                      rt.table.row(row), mt.dim());
                    }
                }
            }

            const double loss = replica.forwardBackward(batch);
            if (step >= tail_start) {
                tail_loss += loss;
                ++tail_count;
            }

            {
                RECSIM_TRACE_SPAN("hogwild.push");
                // Racy push: apply the replica's gradients to the
                // master.
                const float lr = base.learning_rate;
                applyDenseGrads(master, replica, lr);
                for (std::size_t f = 0; f < replica.tables().size();
                     ++f) {
                    const auto& grad = replica.sparseGrads()[f];
                    auto& table = master.tables()[f];
                    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
                        racy::pushRow(
                            table.table.row(static_cast<std::size_t>(
                                grad.rows[r])),
                            grad.values.row(r), table.dim(), lr);
                    }
                }
            }
            replica.zeroGrad();
            obs::MetricsRegistry::global().incr("hogwild.iterations");
            total_steps.fetch_add(1, std::memory_order_relaxed);
        }
        final_losses[tid] =
            tail_count ? tail_loss / static_cast<double>(tail_count)
                       : 0.0;
    };

    std::vector<std::thread> threads;
    threads.reserve(config.num_threads);
    for (std::size_t t = 0; t < config.num_threads; ++t)
        threads.emplace_back(worker, t);
    for (auto& t : threads)
        t.join();

    TrainResult result;
    result.steps = total_steps.load();
    double loss = 0.0;
    for (double l : final_losses)
        loss += l;
    result.final_train_loss =
        loss / static_cast<double>(config.num_threads);
    evaluateModel(master, dataset, eval_examples, result);
    obs::publishThreadPoolMetrics();
    return result;
}

} // namespace train
} // namespace recsim
