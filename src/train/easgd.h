/**
 * @file
 * Elastic-Averaging SGD (Zhang, Choromanska & LeCun), the gradient
 * synchronization method Facebook's CPU trainers use with the center
 * dense parameter server (Fig 4 / Table III "easgd"). Worker threads
 * stand in for trainer servers; the center variable stands in for the
 * dense parameter server.
 */
#pragma once

#include <cstdint>

#include "train/trainer.h"

namespace recsim {
namespace train {

/** EASGD-specific knobs on top of TrainConfig. */
struct EasgdConfig
{
    TrainConfig base;
    /** Number of worker replicas (simulated trainer servers). */
    std::size_t num_workers = 4;
    /** Iterations between elastic syncs with the center (tau). */
    std::size_t sync_period = 16;
    /**
     * Elastic coupling strength alpha in
     *   x_i   <- x_i   - alpha (x_i - center)
     *   center <- center + alpha (x_i - center).
     */
    float elasticity = 0.3f;
};

/**
 * Train with @p config.num_workers EASGD replicas. Dense parameters
 * elastically average with a center copy every sync_period steps;
 * embedding tables are shared (model-parallel sparse PS, as in
 * production). Returns metrics of the center model.
 */
TrainResult trainEasgd(const model::DlrmConfig& model_config,
                       data::SyntheticCtrDataset& dataset,
                       const EasgdConfig& config,
                       std::size_t eval_examples = 8192);

} // namespace train
} // namespace recsim
