#include "train/checkpoint.h"

#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace recsim {
namespace train {

namespace {

constexpr uint32_t kMagic = 0x52435031;  // "RCP1"
// v1: header + dense params + tables.
// v2: v1 + optimizer-state flag byte (+ Adagrad accumulators when set).
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

/** Append a POD value to the buffer. */
template <typename T>
void
put(std::vector<uint8_t>& buffer, const T& value)
{
    const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
    buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

/** Append a float span. */
void
putFloats(std::vector<uint8_t>& buffer, const float* data,
          std::size_t count)
{
    const auto* bytes = reinterpret_cast<const uint8_t*>(data);
    buffer.insert(buffer.end(), bytes, bytes + count * sizeof(float));
}

/** Cursor-based reader with bounds checking. */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t>& buffer)
        : buffer_(buffer)
    {
    }

    template <typename T>
    bool
    get(T& value)
    {
        if (pos_ + sizeof(T) > buffer_.size())
            return false;
        std::memcpy(&value, buffer_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    bool
    getFloats(float* data, std::size_t count)
    {
        const std::size_t bytes = count * sizeof(float);
        if (pos_ + bytes > buffer_.size())
            return false;
        std::memcpy(data, buffer_.data() + pos_, bytes);
        pos_ += bytes;
        return true;
    }

    bool atEnd() const { return pos_ == buffer_.size(); }

  private:
    const std::vector<uint8_t>& buffer_;
    std::size_t pos_ = 0;
};

/** Shape signature: rejects restores into a different architecture. */
uint64_t
shapeSignature(model::Dlrm& model)
{
    uint64_t h = 1469598103934665603ULL;  // FNV-1a
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (const auto* param : model.denseParams()) {
        mix(param->rows());
        mix(param->cols());
    }
    for (const auto& table : model.tables()) {
        mix(table.hashSize());
        mix(table.dim());
    }
    return h;
}

} // namespace

/** One accumulator vector: count (0 = never stepped) then payload. */
static void
putState(std::vector<uint8_t>& buffer, const std::vector<float>& acc)
{
    put(buffer, static_cast<uint64_t>(acc.size()));
    putFloats(buffer, acc.data(), acc.size());
}

std::vector<uint8_t>
saveCheckpoint(model::Dlrm& model, const nn::Adagrad* optimizer)
{
    std::vector<uint8_t> buffer;
    buffer.reserve(1024);
    put(buffer, kMagic);
    put(buffer, kVersion);
    put(buffer, shapeSignature(model));

    const auto params = model.denseParams();
    put(buffer, static_cast<uint64_t>(params.size()));
    for (const auto* param : params) {
        put(buffer, static_cast<uint64_t>(param->size()));
        putFloats(buffer, param->data(), param->size());
    }

    put(buffer, static_cast<uint64_t>(model.tables().size()));
    for (const auto& table : model.tables()) {
        put(buffer, static_cast<uint64_t>(table.table.size()));
        putFloats(buffer, table.table.data(), table.table.size());
    }

    put(buffer, static_cast<uint8_t>(optimizer != nullptr));
    if (optimizer != nullptr) {
        for (const auto* param : params)
            putState(buffer, optimizer->denseState(*param));
        for (const auto& table : model.tables())
            putState(buffer, optimizer->rowState(table));
    }
    return buffer;
}

RestoreStatus
restoreCheckpoint(model::Dlrm& model, const std::vector<uint8_t>& buffer,
                  nn::Adagrad* optimizer)
{
    Reader reader(buffer);
    uint32_t magic = 0, version = 0;
    uint64_t signature = 0;
    if (!reader.get(magic) || magic != kMagic)
        return {false, "not a recsim checkpoint (bad magic)"};
    if (!reader.get(version) || version < kMinVersion ||
        version > kVersion) {
        return {false, "unsupported checkpoint version"};
    }
    if (!reader.get(signature) || signature != shapeSignature(model))
        return {false, "model architecture does not match checkpoint"};

    uint64_t n_params = 0;
    if (!reader.get(n_params))
        return {false, "truncated checkpoint (dense header)"};
    const auto params = model.denseParams();
    if (n_params != params.size())
        return {false, "dense parameter count mismatch"};
    for (auto* param : params) {
        uint64_t count = 0;
        if (!reader.get(count) || count != param->size())
            return {false, "dense parameter size mismatch"};
        if (!reader.getFloats(param->data(), param->size()))
            return {false, "truncated checkpoint (dense payload)"};
    }

    uint64_t n_tables = 0;
    if (!reader.get(n_tables) || n_tables != model.tables().size())
        return {false, "embedding table count mismatch"};
    for (auto& table : model.tables()) {
        uint64_t count = 0;
        if (!reader.get(count) || count != table.table.size())
            return {false, "embedding table size mismatch"};
        if (!reader.getFloats(table.table.data(), table.table.size()))
            return {false, "truncated checkpoint (table payload)"};
    }

    bool has_optimizer = false;
    if (version >= 2) {
        uint8_t flag = 0;
        if (!reader.get(flag))
            return {false, "truncated checkpoint (optimizer flag)"};
        has_optimizer = flag != 0;
    }
    if (has_optimizer) {
        // Read the accumulators even when the caller passed no
        // optimizer, so the trailing-bytes check still holds.
        auto read_state = [&](std::size_t expected,
                              std::vector<float>& acc) {
            uint64_t count = 0;
            if (!reader.get(count))
                return false;
            if (count != 0 && count != expected)
                return false;
            acc.resize(count);
            return count == 0 ||
                reader.getFloats(acc.data(), acc.size());
        };
        std::vector<float> acc;
        for (auto* param : params) {
            if (!read_state(param->size(), acc))
                return {false, "corrupt optimizer state (dense)"};
            if (optimizer != nullptr)
                optimizer->setDenseState(*param, acc);
        }
        for (auto& table : model.tables()) {
            if (!read_state(static_cast<std::size_t>(table.hashSize()),
                            acc)) {
                return {false, "corrupt optimizer state (sparse)"};
            }
            if (optimizer != nullptr)
                optimizer->setRowState(table, acc);
        }
    } else if (optimizer != nullptr) {
        // A stateless checkpoint restores to fresh accumulators.
        optimizer->resetState();
    }

    if (!reader.atEnd())
        return {false, "trailing bytes after checkpoint payload"};
    return {true, ""};
}

bool
saveCheckpointFile(model::Dlrm& model, const std::string& path,
                   const nn::Adagrad* optimizer)
{
    const auto buffer = saveCheckpoint(model, optimizer);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
    return static_cast<bool>(out);
}

RestoreStatus
restoreCheckpointFile(model::Dlrm& model, const std::string& path,
                      nn::Adagrad* optimizer)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return {false, "cannot open checkpoint file: " + path};
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<uint8_t> buffer(size);
    if (!in.read(reinterpret_cast<char*>(buffer.data()),
                 static_cast<std::streamsize>(size))) {
        return {false, "cannot read checkpoint file: " + path};
    }
    return restoreCheckpoint(model, buffer, optimizer);
}

double
checkpointBytes(const model::DlrmConfig& config)
{
    // Header + dense params + tables, all FP32 (the optional optimizer
    // section is excluded: capacity planning sizes the parameter
    // payload).
    const double header = 4.0 + 4.0 + 8.0 + 1.0;
    const double dense =
        static_cast<double>(config.mlpParams()) * sizeof(float) + 16.0;
    return header + dense + config.embeddingBytes() +
        static_cast<double>(config.numSparse()) * 8.0 + 16.0;
}

} // namespace train
} // namespace recsim
