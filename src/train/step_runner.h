/**
 * @file
 * Graph-walk execution of one training step: the real trainer's side of
 * the "one iteration, one source of truth" contract. runGraphStep walks
 * the model's StepGraph (graph/step_graph.h) node by node, dispatching
 * each node to the matching Dlrm stepwise primitive and tagging an obs
 * trace span with the node's id — the same ids the analytical
 * nodeBreakdown() and the DES's node_seconds report under, so measured,
 * predicted and simulated per-node times line up
 * (bench/validation_graph_breakdown).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "graph/step_graph.h"
#include "model/dlrm.h"
#include "util/thread_pool.h"

namespace recsim {
namespace train {

/**
 * Execute the forward + loss + backward of one step by walking
 * @p graph in node order (reversed for the backward half).
 *
 * Numerically identical to model.forwardBackward(batch): the walk
 * visits the same primitives in an equivalent order. @p graph must be
 * built from the same DlrmConfig the model was instantiated with
 * (checked). Comm nodes are skipped — this is the single-process
 * trainer — and the OptimizerUpdate node is the caller's step().
 *
 * @return Mean BCE loss of the batch.
 */
double runGraphStep(model::Dlrm& model, const data::MiniBatch& batch,
                    const graph::StepGraph& graph);

/**
 * Dependency-aware parallel execution of one training step.
 *
 * Construction partitions the graph's executable nodes (Gemm,
 * EmbeddingLookup, Interaction — the nodes runGraphStep dispatches to
 * model primitives) into forward *wavefronts*: wave k holds every node
 * whose longest dependency chain through executable nodes has length
 * k. Non-executable nodes (Loss runs between the halves, Optimizer is
 * the caller's step(), Comm has no local work) are skipped by taking
 * the transitive closure of their edges, so e.g. a bottom-MLP layer
 * gated on `comm.input` is simply ready at step start. The backward
 * half mirrors the waves over the reversed edges.
 *
 * runStep() executes the waves in order, dispatching the nodes of one
 * wave concurrently on the thread pool — per-table EmbeddingBag
 * lookups, mixed-dimension projection GEMMs and bottom-MLP layers
 * overlap, which is where the paper's CPU iteration time goes
 * (Figs 9-11).
 *
 * Determinism: results are bit-identical to runGraphStep() at any
 * pool size. Wave membership depends only on the graph; every node
 * writes only its own per-table / per-layer buffers inside the model;
 * and nested kernel parallelFors issued from a wave worker run inline
 * with the same chunk geometry as the serial walk (ThreadPool
 * guarantee), so each node's arithmetic is unchanged — only the
 * interleaving across *independent* nodes varies.
 *
 * Obs spans: "model.fwd", "loss" and "model.bwd" open on the calling
 * thread exactly as in runGraphStep(); per-node spans open on
 * whichever worker runs the node, landing on that thread's track
 * (the Tracer is thread-safe for concurrent begin/end).
 *
 * Flight recorder: when obs::recorderEnabled(), every dispatched node
 * records one sample per visit on a channel named by the node id
 * (interned once at construction), tagged with the executor's step
 * counter and the batch row count — the measured side the
 * obs::DriftMonitor folds against cost::IterationModel predictions.
 * Disabled cost is one relaxed atomic load per node.
 */
class GraphExecutor
{
  public:
    /**
     * Build the wavefront schedule for @p graph, which must stay
     * alive (and unmodified) for the executor's lifetime. Panics if
     * the graph fails validate(). Dispatches to @p pool — the global
     * kernel pool by default, whose inline-nesting rule keeps inner
     * kernels deterministic.
     */
    explicit GraphExecutor(const graph::StepGraph& graph,
                           util::ThreadPool& pool =
                               util::globalThreadPool());

    /**
     * Forward + loss + backward of one step, waves dispatched in
     * parallel. Same contract as runGraphStep(): @p graph must match
     * the model's config (checked), and the return value / model
     * state are bit-identical to the serial walk.
     *
     * @return Mean BCE loss of the batch.
     */
    double runStep(model::Dlrm& model,
                   const data::MiniBatch& batch) const;

    /**
     * Forward pass only: the forward waves dispatched in parallel, no
     * loss and no backward — the serving path (serve/engine.h). The
     * model's logits afterwards are bit-identical to
     * Dlrm::forward() / the forward half of runGraphStep() on the
     * same batch at any pool size. Usable with a full training graph
     * or with a graph::forwardSubgraph()-pruned one (both yield the
     * same forward waves, since pruning only drops nodes the schedule
     * already looked through).
     */
    void runForward(model::Dlrm& model,
                    const data::MiniBatch& batch) const;

    /** Forward waves: indices into the graph's nodes, per level. */
    const std::vector<std::vector<std::size_t>>& forwardWaves() const
    {
        return fwd_waves_;
    }

    /** Backward waves (reversed-edge levels), executed in order. */
    const std::vector<std::vector<std::size_t>>& backwardWaves() const
    {
        return bwd_waves_;
    }

  private:
    void runWave(const std::vector<std::size_t>& wave,
                 model::Dlrm& model, const data::MiniBatch& batch,
                 bool forward, uint64_t step) const;
    void dispatch(std::size_t node_index, model::Dlrm& model,
                  const data::MiniBatch& batch, bool forward,
                  uint64_t step) const;

    const graph::StepGraph* graph_;
    util::ThreadPool* pool_;
    std::vector<std::vector<std::size_t>> fwd_waves_;
    std::vector<std::vector<std::size_t>> bwd_waves_;
    /** Flight-recorder channel per node, interned at construction. */
    std::vector<uint32_t> node_channels_;
    /** Steps/forwards issued, tagging recorder samples. */
    mutable std::atomic<uint64_t> steps_issued_{0};
};

} // namespace train
} // namespace recsim
