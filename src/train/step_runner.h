/**
 * @file
 * Graph-walk execution of one training step: the real trainer's side of
 * the "one iteration, one source of truth" contract. runGraphStep walks
 * the model's StepGraph (graph/step_graph.h) node by node, dispatching
 * each node to the matching Dlrm stepwise primitive and tagging an obs
 * trace span with the node's id — the same ids the analytical
 * nodeBreakdown() and the DES's node_seconds report under, so measured,
 * predicted and simulated per-node times line up
 * (bench/validation_graph_breakdown).
 */
#pragma once

#include "data/dataset.h"
#include "graph/step_graph.h"
#include "model/dlrm.h"

namespace recsim {
namespace train {

/**
 * Execute the forward + loss + backward of one step by walking
 * @p graph in node order (reversed for the backward half).
 *
 * Numerically identical to model.forwardBackward(batch): the walk
 * visits the same primitives in an equivalent order. @p graph must be
 * built from the same DlrmConfig the model was instantiated with
 * (checked). Comm nodes are skipped — this is the single-process
 * trainer — and the OptimizerUpdate node is the caller's step().
 *
 * @return Mean BCE loss of the batch.
 */
double runGraphStep(model::Dlrm& model, const data::MiniBatch& batch,
                    const graph::StepGraph& graph);

} // namespace train
} // namespace recsim
