#include "train/sweep.h"

#include "util/logging.h"

namespace recsim {
namespace train {

std::vector<float>
defaultLrGrid()
{
    return {0.01f, 0.02f, 0.05f, 0.1f, 0.2f, 0.5f};
}

SweepResult
sweepLearningRate(const model::DlrmConfig& model_config,
                  data::SyntheticCtrDataset& dataset,
                  const TrainConfig& config,
                  const std::vector<float>& candidates,
                  std::size_t eval_examples)
{
    RECSIM_ASSERT(!candidates.empty(), "empty learning-rate grid");
    SweepResult sweep;
    sweep.points.reserve(candidates.size());
    for (float lr : candidates) {
        TrainConfig point_config = config;
        point_config.learning_rate = lr;
        SweepPoint point;
        point.learning_rate = lr;
        point.result = trainSingleThread(model_config, dataset,
                                         point_config, eval_examples);
        sweep.points.push_back(std::move(point));
    }
    for (std::size_t i = 1; i < sweep.points.size(); ++i) {
        if (sweep.points[i].result.eval_ne <
            sweep.points[sweep.best_index].result.eval_ne) {
            sweep.best_index = i;
        }
    }
    return sweep;
}

} // namespace train
} // namespace recsim
