/**
 * @file
 * ShadowSync-style training (Zheng et al., cited by the paper alongside
 * EASGD and Hogwild as Facebook's asynchronous methods): parameter
 * synchronization is taken *off the training critical path* — workers
 * never block on sync; a dedicated shadow thread continuously averages
 * worker replicas with the center copy in the background.
 *
 * Compared with EASGD (workers stop to sync every tau steps), workers
 * here spend 100% of their time on forward/backward, which is exactly
 * the throughput argument for the algorithm; the quality risk is the
 * staleness of the background average, measured by the tests and the
 * ablation bench.
 */
#pragma once

#include <cstdint>

#include "train/trainer.h"

namespace recsim {
namespace train {

/** ShadowSync-specific knobs on top of TrainConfig. */
struct ShadowSyncConfig
{
    TrainConfig base;
    /** Concurrent worker replicas. */
    std::size_t num_workers = 4;
    /**
     * Elastic coupling strength per background pass (same role as
     * EASGD's alpha, applied by the shadow thread instead of workers).
     */
    float elasticity = 0.3f;
    /**
     * Target background passes over all workers per worker step —
     * controls how fresh the center stays. The shadow thread self-paces
     * to approximate this rate.
     */
    double sync_rate = 0.25;
};

/**
 * Train with @p config.num_workers replicas and one background shadow
 * thread. Workers update the shared embedding tables in place
 * (Hogwild-style, as in production) and never block; the shadow thread
 * elastically averages dense parameters worker-by-worker until all
 * workers finish. Returns metrics of the center model.
 */
TrainResult trainShadowSync(const model::DlrmConfig& model_config,
                            data::SyntheticCtrDataset& dataset,
                            const ShadowSyncConfig& config,
                            std::size_t eval_examples = 8192);

} // namespace train
} // namespace recsim
