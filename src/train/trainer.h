/**
 * @file
 * Single-threaded reference trainer: the baseline the asynchronous
 * schemes (Hogwild, EASGD) and the batch-size accuracy study compare
 * against. Trains a Dlrm on a materialized SyntheticCtrDataset for a
 * fixed number of epochs and reports loss/NE trajectories.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "model/dlrm.h"

namespace recsim {
namespace train {

/** Which optimizer a trainer uses. */
enum class OptimizerKind { Sgd, Adagrad };

/** Which embedding storage backend the trainer installs. */
enum class EmbeddingBackendKind { Dram, Cached };

/** Training hyper-parameters. */
struct TrainConfig
{
    std::size_t batch_size = 256;
    float learning_rate = 0.1f;
    OptimizerKind optimizer = OptimizerKind::Adagrad;
    std::size_t epochs = 1;
    uint64_t model_seed = 1;
    /** Evaluate on the held-out set every this many iterations
     *  (0 = only at the end). */
    std::size_t eval_every = 0;
    /**
     * Run graph::fusePass over the step graph before training: bias +
     * ReLU fold into GEMM epilogues and per-device embedding lookups
     * batch into grouped nodes. Results are bit-identical to the
     * unfused walk; only the per-step wall time changes.
     */
    bool fuse_graph = false;
    /**
     * Embedding storage backend (nn/embedding_backend.h). Cached
     * splits @p hot_tier_bytes across tables with the placement
     * hot-tier allocator (densest whole tables first, leftover by
     * traffic share) and measures per-tier hit rates; results are
     * bitwise-identical to Dram either way.
     */
    EmbeddingBackendKind embedding_backend = EmbeddingBackendKind::Dram;
    /** Hot-tier capacity budget for the Cached backend, in bytes. */
    double hot_tier_bytes = 0.0;
    /** Batches between hot-set refreshes for the Cached backend. */
    std::size_t hot_tier_refresh_every = 8;
};

/** Outcome of a training run. */
struct TrainResult
{
    /** Mean training loss of the final 10% of iterations. */
    double final_train_loss = 0.0;
    /** BCE loss on the held-out evaluation set. */
    double eval_loss = 0.0;
    /** Normalized entropy on the held-out set (lower is better). */
    double eval_ne = 0.0;
    /** Classification accuracy on the held-out set. */
    double eval_accuracy = 0.0;
    /** Number of optimizer steps taken. */
    std::size_t steps = 0;
    /** (step, train loss) samples along the run. */
    std::vector<std::pair<std::size_t, double>> loss_curve;
};

/**
 * Train @p config's model on the train split of @p dataset and evaluate
 * on the eval split.
 *
 * @param dataset     Must be materialized; the last @p eval_examples
 *                    are held out, the rest form the training set.
 * @param eval_examples Size of the held-out split.
 */
TrainResult trainSingleThread(const model::DlrmConfig& model_config,
                              data::SyntheticCtrDataset& dataset,
                              const TrainConfig& config,
                              std::size_t eval_examples = 8192);

/** Evaluate a model on the last @p eval_examples of @p dataset. */
void evaluateModel(model::Dlrm& model, data::SyntheticCtrDataset& dataset,
                   std::size_t eval_examples, TrainResult& result);

} // namespace train
} // namespace recsim
