/**
 * @file
 * Dynamic batching scheduler: the middle of the serving stack. Queued
 * queries are coalesced into inference batches under three pressures —
 * bigger batches amortize the forward pass (throughput), but every
 * query the batch waits for adds queueing delay (latency), and a query
 * held past its deadline is worthless. The scheduler trades these off
 * with a batch-size cap (queries and summed candidate items), a
 * max-wait bound on the head-of-line query, and deadline-aware
 * eviction of queries that can no longer dispatch in time — the
 * batch-size/latency tradeoff DeepRecSys tunes per platform.
 *
 * The scheduler is a pure virtual-time component: it never sleeps,
 * threads or measures. The driver (serve::InferenceEngine::replay or
 * a test) feeds it arrivals and asks, "engine free at `now`: when may
 * the next batch dispatch, and of what?" — which makes every batching
 * invariant (FIFO order, caps, no-late-dispatch, starvation freedom)
 * directly unit-testable.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/load_gen.h"

namespace recsim {
namespace serve {

/** One batching policy: the knobs of the size/latency tradeoff. */
struct BatchingConfig
{
    /** Max queries coalesced into one batch. */
    std::size_t max_batch_queries = 16;
    /** Max summed candidate items per batch; a single query larger
     *  than this still dispatches, alone. */
    std::size_t max_batch_items = 2048;
    /** Longest the head-of-line query may wait for the batch to fill
     *  after arriving (0 = dispatch greedily). */
    double max_wait_s = 0.002;
};

/** A dispatched batch: FIFO run of queries released together. */
struct Batch
{
    /** Dispatch time the batch was formed for. */
    double release_s = 0.0;
    std::vector<Query> queries;

    /** Summed candidate items (inference batch rows). */
    std::size_t totalItems() const;
};

/**
 * FIFO queue + batch former. Queries enter in arrival order; batches
 * leave as FIFO prefixes, so inter-query ordering is never reshuffled
 * (re-ranking fairness) and the starvation bound is the max-wait knob.
 */
class BatchScheduler
{
  public:
    explicit BatchScheduler(const BatchingConfig& config);

    /** Add an arrival. @pre nondecreasing arrival_s (checked). */
    void enqueue(const Query& q);

    bool idle() const { return queue_.empty(); }
    std::size_t pendingQueries() const { return queue_.size(); }

    /**
     * Earliest time the next batch may dispatch, the engine being
     * free at @p now: the head's arrival (no dispatching before the
     * query exists), extended while waiting could still fill the
     * batch — but never beyond head.arrival + max_wait, never beyond
     * the head's deadline (deadline-aware: holding a query past its
     * deadline only converts it into an eviction), and cut short the
     * moment already-queued queries saturate a cap. @pre !idle().
     */
    double releaseTime(double now) const;

    /**
     * Form the batch dispatching at @p start: first evict every
     * leading query whose deadline has already passed (deadline_s <
     * start — they could no longer be served in time; collect them
     * via drainEvicted()), then pop the longest FIFO prefix of
     * already-arrived queries (arrival_s <= start) under both caps.
     * May return an empty batch when everything admissible was
     * evicted. @p start must be >= the last pop's start.
     */
    Batch pop(double start);

    /** Queries evicted by pop() since the last drain. */
    std::vector<Query> drainEvicted();

    /** Total evictions over the scheduler's lifetime. */
    uint64_t evictedCount() const { return evicted_total_; }

    const BatchingConfig& config() const { return config_; }

  private:
    BatchingConfig config_;
    std::deque<Query> queue_;
    std::vector<Query> evicted_;
    uint64_t evicted_total_ = 0;
    double last_arrival_ = 0.0;
};

} // namespace serve
} // namespace recsim
