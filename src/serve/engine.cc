#include "serve/engine.h"

#include <algorithm>
#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/log_histogram.h"
#include "util/logging.h"

namespace recsim {
namespace serve {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

InferenceEngine::InferenceEngine(const model::DlrmConfig& config,
                                 uint64_t seed, util::ThreadPool& pool)
    : config_(config),
      model_(std::make_unique<model::Dlrm>(config, seed)),
      graph_(graph::forwardSubgraph(graph::buildModelStepGraph(config)))
{
    executor_ = std::make_unique<train::GraphExecutor>(graph_, pool);
}

double
InferenceEngine::scoreBatch(const data::MiniBatch& batch)
{
    obs::TraceSpan span("serve.batch");
    const double t0 = nowSeconds();
    executor_->runForward(*model_, batch);
    return nowSeconds() - t0;
}

ServeReport
InferenceEngine::replay(const std::vector<Query>& queries,
                        const ReplayConfig& config)
{
    ServeReport report;
    report.offered = queries.size();
    if (queries.empty())
        return report;

    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = config_.num_dense;
    ds_cfg.sparse = config_.sparse;
    ds_cfg.seed = config.data_seed;
    data::SyntheticCtrDataset features(ds_cfg);

    BatchScheduler sched(config.batching);
    auto& metrics = obs::MetricsRegistry::global();
    // Completions land in a windowed log-bucketed histogram: wait-free
    // adds on the batch-retire path (today one driver thread retires
    // batches, but the histogram lets future multi-engine drivers
    // share it without a lock), windows keyed on the virtual clock so
    // rolling percentiles line up with the replayed timeline.
    stats::WindowedHistogram latencies(config.latency_window_s,
                                       /*max_windows=*/4096,
                                       config.latency_relative_error);
    auto& recorder = obs::FlightRecorder::global();
    const uint32_t batch_channel =
        recorder.internChannel("serve.batch_s");
    const uint32_t queue_channel =
        recorder.internChannel("serve.queue_depth");

    std::size_t next = 0;  // Next arrival to admit.
    std::size_t late = 0;
    double clock = 0.0;
    double sum_batch_queries = 0.0, sum_batch_items = 0.0;

    while (next < queries.size() || !sched.idle()) {
        if (sched.idle()) {
            // Engine caught up with the stream: jump to the next
            // arrival.
            clock = std::max(clock, queries[next].arrival_s);
            while (next < queries.size() &&
                   queries[next].arrival_s <= clock)
                sched.enqueue(queries[next++]);
        }
        // Admit every arrival up to the release horizon. Admissions
        // can only pull the horizon earlier (a cap may fill sooner;
        // the head never changes), so iterate to the fixed point.
        double release = sched.releaseTime(clock);
        for (;;) {
            bool admitted = false;
            while (next < queries.size() &&
                   queries[next].arrival_s <= release) {
                sched.enqueue(queries[next++]);
                admitted = true;
            }
            if (!admitted)
                break;
            release = sched.releaseTime(clock);
        }

        Batch batch = sched.pop(release);
        const auto evicted_now = sched.drainEvicted();
        report.evicted += evicted_now.size();
        metrics.incr("serve.evicted", evicted_now.size());
        if (batch.queries.empty()) {
            // Everything admissible was evicted; the clock still
            // advances to the dispatch attempt.
            clock = std::max(clock, release);
            continue;
        }

        const std::size_t rows = batch.totalItems();
        const data::MiniBatch mb = features.nextBatch(rows);
        const double service = scoreBatch(mb);
        const double done = release + service;

        report.busy_s += service;
        ++report.batches;
        sum_batch_queries += static_cast<double>(batch.queries.size());
        sum_batch_items += static_cast<double>(rows);
        metrics.incr("serve.batches");
        metrics.incr("serve.queries", batch.queries.size());
        metrics.observe("serve.service_s", service);
        metrics.observe("serve.batch_items",
                        static_cast<double>(rows));
        if (obs::recorderEnabled()) {
            recorder.record(batch_channel, report.batches, service,
                            static_cast<uint32_t>(rows));
            recorder.record(queue_channel, report.batches,
                            static_cast<double>(sched.pendingQueries()));
        }
        for (const Query& q : batch.queries) {
            const double lat = done - q.arrival_s;
            latencies.add(done, lat);
            metrics.observe("serve.latency_s", lat);
            if (done > q.deadline_s)
                ++late;
        }
        report.served += batch.queries.size();
        report.makespan_s = std::max(report.makespan_s, done);
        clock = done;
    }

    report.duration_s = queries.back().arrival_s;
    report.makespan_s = std::max(report.makespan_s, report.duration_s);
    report.offered_qps = report.duration_s > 0.0
        ? static_cast<double>(report.offered) / report.duration_s
        : 0.0;
    report.achieved_qps = report.makespan_s > 0.0
        ? static_cast<double>(report.served) / report.makespan_s
        : 0.0;
    report.latency = latencies.tail();
    report.windows = latencies.windows();
    report.sla_violation_rate =
        static_cast<double>(report.evicted + late) /
        static_cast<double>(report.offered);
    if (report.batches > 0) {
        report.mean_batch_queries =
            sum_batch_queries / static_cast<double>(report.batches);
        report.mean_batch_items =
            sum_batch_items / static_cast<double>(report.batches);
    }
    RECSIM_ASSERT(report.served + report.evicted == report.offered,
                  "replay lost queries: {} served + {} evicted != {}",
                  report.served, report.evicted, report.offered);
    return report;
}

} // namespace serve
} // namespace recsim
