/**
 * @file
 * Forward-only inference engine: the back of the serving stack. Lowers
 * the model's StepGraph to its forward subgraph (the exact compute
 * nodes the trainer runs, minus loss/optimizer/comm) and executes it
 * with the dependency-aware GraphExecutor on the shared ThreadPool —
 * so serving scores are bitwise-identical to the training forward
 * pass, at any pool size, by construction.
 *
 * replay() closes the loop with the load generator and scheduler: a
 * virtual-clock event loop walks an arrival trace, lets the scheduler
 * form batches, executes each batch for real (the service time is the
 * measured wall time of the forward pass), and advances the clock by
 * it. Queries therefore accumulate genuine queueing delay + service
 * time without the harness ever sleeping — an offered load far above
 * capacity replays as fast as the compute itself, which is what makes
 * QPS-vs-SLA sweeps (bench/serving) tractable.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "graph/step_graph.h"
#include "model/dlrm.h"
#include "serve/scheduler.h"
#include "stats/log_histogram.h"
#include "stats/sample_set.h"
#include "train/step_runner.h"
#include "util/thread_pool.h"

namespace recsim {
namespace serve {

/** Knobs of one replay run. */
struct ReplayConfig
{
    BatchingConfig batching;
    /** Seed of the synthetic feature stream backing the queries. */
    uint64_t data_seed = 42;
    /** Width (virtual seconds) of the rolling latency windows. */
    double latency_window_s = 1.0;
    /** Relative error bound of the latency log-histogram — the p50/
     *  p95/p99 in the report are within this of an exact sample. */
    double latency_relative_error = 0.01;
};

/** What one replay run observed. */
struct ServeReport
{
    std::size_t offered = 0;  ///< Queries in the trace.
    std::size_t served = 0;   ///< Completed (possibly late).
    std::size_t evicted = 0;  ///< Dropped past-deadline, never run.
    std::size_t batches = 0;  ///< Forward passes executed.

    /** Trace duration (last arrival), and completion of the last
     *  batch — achieved QPS is served / makespan. */
    double duration_s = 0.0;
    double makespan_s = 0.0;
    double offered_qps = 0.0;
    double achieved_qps = 0.0;

    /** Engine busy time; busy_s / makespan_s is utilization. */
    double busy_s = 0.0;

    /** Completion latency (arrival -> batch completion), seconds.
     *  Evicted queries never complete and are excluded here; they
     *  count toward sla_violation_rate instead. Percentiles come from
     *  the wait-free log-bucketed histogram (relative error
     *  latency_relative_error), not an exact sample sort. */
    stats::TailSummary latency;

    /** Rolling latency windows over the virtual clock
     *  (latency_window_s wide), each with its own percentiles —
     *  the time-resolved view behind the summary above. */
    std::vector<stats::WindowSummary> windows;

    /** (evicted + served-late) / offered. */
    double sla_violation_rate = 0.0;

    double mean_batch_queries = 0.0;
    double mean_batch_items = 0.0;
};

/**
 * One model instance serving queries. Holds the model, its forward
 * subgraph and the executor; one in-flight batch at a time (the
 * intra-batch parallelism lives inside the forward pass, on the
 * ThreadPool).
 */
class InferenceEngine
{
  public:
    /**
     * Instantiate @p config for serving (same size limits as training
     * instantiation). @p pool must outlive the engine.
     */
    explicit InferenceEngine(const model::DlrmConfig& config,
                             uint64_t seed = 1,
                             util::ThreadPool& pool =
                                 util::globalThreadPool());

    InferenceEngine(const InferenceEngine&) = delete;
    InferenceEngine& operator=(const InferenceEngine&) = delete;

    /** The pruned forward-only StepGraph the engine executes. */
    const graph::StepGraph& forwardGraph() const { return graph_; }

    /**
     * Score one feature batch (forward pass only) and return the
     * measured wall seconds. Scores land in logits().
     */
    double scoreBatch(const data::MiniBatch& batch);

    /** Logits of the most recent scoreBatch(), [rows, 1]. */
    const tensor::Tensor& logits() const { return model_->logits(); }

    model::Dlrm& model() { return *model_; }

    /**
     * Replay an arrival trace through a batching policy in virtual
     * time, executing every batch for real. @p queries must be in
     * nondecreasing arrival order (LoadGenerator output is). Records
     * per-query completion latencies into a wait-free windowed
     * log-histogram (rolling percentiles keyed on the *virtual*
     * completion clock) and the obs MetricsRegistry ("serve.*"
     * counters and timings). When the flight recorder is enabled,
     * each retired batch records its measured service time
     * ("serve.batch_s") and the queue depth at retire
     * ("serve.queue_depth").
     */
    ServeReport replay(const std::vector<Query>& queries,
                       const ReplayConfig& config);

  private:
    model::DlrmConfig config_;
    std::unique_ptr<model::Dlrm> model_;
    graph::StepGraph graph_;
    std::unique_ptr<train::GraphExecutor> executor_;
};

} // namespace serve
} // namespace recsim
