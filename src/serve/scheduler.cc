#include "serve/scheduler.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace recsim {
namespace serve {

std::size_t
Batch::totalItems() const
{
    std::size_t items = 0;
    for (const Query& q : queries)
        items += q.candidates;
    return items;
}

BatchScheduler::BatchScheduler(const BatchingConfig& config)
    : config_(config)
{
    RECSIM_ASSERT(config_.max_batch_queries >= 1,
                  "max_batch_queries must be >= 1");
    RECSIM_ASSERT(config_.max_batch_items >= 1,
                  "max_batch_items must be >= 1");
    RECSIM_ASSERT(config_.max_wait_s >= 0.0,
                  "max_wait_s must be non-negative");
}

void
BatchScheduler::enqueue(const Query& q)
{
    RECSIM_ASSERT(queue_.empty() || q.arrival_s >= last_arrival_,
                  "arrivals must be enqueued in nondecreasing order");
    last_arrival_ = q.arrival_s;
    queue_.push_back(q);
}

double
BatchScheduler::releaseTime(double now) const
{
    RECSIM_ASSERT(!queue_.empty(), "releaseTime on an idle scheduler");
    const Query& head = queue_.front();
    const double earliest = std::max(now, head.arrival_s);

    // Hold for more arrivals at most max_wait past the head's arrival,
    // and never past the head's deadline.
    const double hold =
        std::min(head.arrival_s + config_.max_wait_s, head.deadline_s);

    // ... but dispatch the moment already-queued queries fill a cap.
    // The queue is in arrival order, so the cap fills when the
    // saturating query arrives.
    double t_full = std::numeric_limits<double>::infinity();
    std::size_t nq = 0, items = 0;
    for (const Query& q : queue_) {
        ++nq;
        items += q.candidates;
        if (nq >= config_.max_batch_queries ||
            items >= config_.max_batch_items) {
            t_full = q.arrival_s;
            break;
        }
    }
    return std::max(earliest, std::min(hold, t_full));
}

Batch
BatchScheduler::pop(double start)
{
    Batch batch;
    batch.release_s = start;
    std::size_t items = 0;
    while (!queue_.empty()) {
        const Query& q = queue_.front();
        if (q.arrival_s > start)
            break;  // Not yet arrived at dispatch time.
        if (q.deadline_s < start) {
            // Deadline already passed: serving it would only burn
            // engine time on a guaranteed SLA miss.
            evicted_.push_back(q);
            ++evicted_total_;
            queue_.pop_front();
            continue;
        }
        if (batch.queries.size() >= config_.max_batch_queries)
            break;
        if (!batch.queries.empty() &&
            items + q.candidates > config_.max_batch_items)
            break;
        items += q.candidates;
        batch.queries.push_back(q);
        queue_.pop_front();
    }
    return batch;
}

std::vector<Query>
BatchScheduler::drainEvicted()
{
    std::vector<Query> out;
    out.swap(evicted_);
    return out;
}

} // namespace serve
} // namespace recsim
