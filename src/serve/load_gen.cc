#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace recsim {
namespace serve {

LoadGenConfig
loadForModel(const model::DlrmConfig& m, double mean_qps, double sla_s)
{
    LoadGenConfig cfg;
    cfg.mean_qps = mean_qps;
    cfg.sla_s = sla_s;
    // Stable per-model seed so two benches over the same config see
    // the same stream.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : m.name)
        h = (h ^ static_cast<uint64_t>(c)) * 0x100000001b3ULL;
    cfg.seed = h;
    // Size queries so each carries comparable embedding work across
    // models: ~16k activated rows per query at the mean, clamped to
    // the ranking-service range.
    const double lookups =
        std::max(1.0, m.footprint().embedding_lookups);
    cfg.mean_candidates = std::clamp(16384.0 / lookups, 8.0, 256.0);
    cfg.max_candidates =
        static_cast<std::size_t>(cfg.mean_candidates * 8.0);
    return cfg;
}

LoadGenerator::LoadGenerator(const LoadGenConfig& config)
    : config_(config), rng_(config.seed)
{
    RECSIM_ASSERT(config_.mean_qps > 0.0, "mean_qps must be positive");
    RECSIM_ASSERT(config_.diurnal_amplitude >= 0.0 &&
                      config_.diurnal_amplitude < 1.0,
                  "diurnal amplitude must be in [0, 1)");
    RECSIM_ASSERT(config_.diurnal_period_s > 0.0,
                  "diurnal period must be positive");
    RECSIM_ASSERT(config_.mean_candidates > 0.0 &&
                      config_.min_candidates >= 1 &&
                      config_.max_candidates >= config_.min_candidates,
                  "bad candidate distribution");
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean_candidates.
    candidate_mu_ = std::log(config_.mean_candidates) -
        0.5 * config_.candidate_sigma * config_.candidate_sigma;
}

double
LoadGenerator::rate(double t) const
{
    return config_.mean_qps *
        (1.0 +
         config_.diurnal_amplitude *
             std::sin(2.0 * M_PI * t / config_.diurnal_period_s));
}

Query
LoadGenerator::next()
{
    // Lewis-Shedler thinning: homogeneous arrivals at the peak rate,
    // accepted with probability lambda(t) / lambda_max. With A == 0
    // every candidate is accepted and this is a plain Poisson process.
    const double lambda_max =
        config_.mean_qps * (1.0 + config_.diurnal_amplitude);
    for (;;) {
        clock_ += rng_.exponential(lambda_max);
        if (config_.diurnal_amplitude == 0.0 ||
            rng_.uniform() * lambda_max <= rate(clock_))
            break;
    }
    Query q;
    q.id = next_id_++;
    q.arrival_s = clock_;
    const double drawn =
        rng_.lognormal(candidate_mu_, config_.candidate_sigma);
    const auto rounded =
        static_cast<std::size_t>(std::llround(std::max(drawn, 1.0)));
    q.candidates = std::clamp(rounded, config_.min_candidates,
                              config_.max_candidates);
    q.deadline_s = q.arrival_s + config_.sla_s;
    return q;
}

std::vector<Query>
LoadGenerator::generate(double duration_s)
{
    std::vector<Query> out;
    out.reserve(static_cast<std::size_t>(
        config_.mean_qps * std::max(duration_s, 0.0) * 1.2 + 16.0));
    for (;;) {
        Query q = next();
        if (q.arrival_s >= duration_s) {
            // Rewind the id so a subsequent generate() reuses it; the
            // overshoot arrival stays consumed (stream semantics).
            --next_id_;
            break;
        }
        out.push_back(q);
    }
    return out;
}

} // namespace serve
} // namespace recsim
