/**
 * @file
 * Deterministic serving load generator: the DeepRecSys-style front of
 * the inference stack. Production recommendation services see query
 * streams whose arrival process is Poisson at short timescales,
 * modulated by the diurnal traffic cycle at long ones, and whose
 * per-query size (candidate items to score) follows a use-case
 * specific distribution. The generator reproduces all three from one
 * explicit seed, so a serving experiment is exactly replayable: the
 * same seed yields the same queries bit for bit, on any machine and
 * at any thread-pool size (generation never touches the pool).
 *
 * Arrivals are a non-homogeneous Poisson process with rate
 *   lambda(t) = mean_qps * (1 + A * sin(2*pi*t / period)),
 * sampled by Lewis-Shedler thinning of a homogeneous process at
 * lambda_max = mean_qps * (1 + A). Over whole periods the modulation
 * integrates to zero, so the empirical rate converges to mean_qps —
 * a property test in tests/test_serve.cc holds the generator to both
 * identities.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.h"
#include "util/random.h"

namespace recsim {
namespace serve {

/** One inference query: score `candidates` items for one user. */
struct Query
{
    uint64_t id = 0;
    /** Arrival time, seconds from stream start. */
    double arrival_s = 0.0;
    /** Candidate items this query scores (inference batch rows). */
    std::size_t candidates = 1;
    /** SLA deadline: arrival_s + the configured per-query SLA. */
    double deadline_s = 0.0;
};

/** Configuration of the synthetic query stream. */
struct LoadGenConfig
{
    uint64_t seed = 1;
    /** Mean arrival rate over a whole diurnal period (queries/s). */
    double mean_qps = 200.0;
    /** Diurnal swing A in [0, 1): peak = mean * (1+A), trough (1-A). */
    double diurnal_amplitude = 0.0;
    /** Diurnal period (production: 86400 s; benches compress it). */
    double diurnal_period_s = 86400.0;
    /** Per-query latency SLA (deadline offset from arrival). */
    double sla_s = 0.05;
    /** Arithmetic mean of candidates per query. */
    double mean_candidates = 64.0;
    /** Lognormal shape of the candidate distribution. */
    double candidate_sigma = 0.5;
    std::size_t min_candidates = 1;
    std::size_t max_candidates = 512;
};

/**
 * Load profile for serving @p m, in the spirit of DeepRecSys's
 * per-model query-size distributions: query sizes are set so every
 * model sees comparable per-query embedding work — lookup-heavy
 * models (M3-like) get few candidates per query, MLP-dominant ones
 * (M2-like) get many. Deterministic in the model's footprint.
 */
LoadGenConfig loadForModel(const model::DlrmConfig& m, double mean_qps,
                           double sla_s);

/**
 * Seeded query-stream generator. Single-stream and stateful: next()
 * advances one arrival at a time; generate() drains a time window.
 */
class LoadGenerator
{
  public:
    explicit LoadGenerator(const LoadGenConfig& config);

    /** The next query of the stream (strictly increasing arrivals). */
    Query next();

    /** Every query arriving in [0, duration_s), from stream start. */
    std::vector<Query> generate(double duration_s);

    /** Instantaneous arrival rate lambda(t), queries/s. */
    double rate(double t) const;

    const LoadGenConfig& config() const { return config_; }

  private:
    LoadGenConfig config_;
    util::Rng rng_;
    double clock_ = 0.0;
    uint64_t next_id_ = 0;
    /** Lognormal mu hitting mean_candidates with candidate_sigma. */
    double candidate_mu_ = 0.0;
};

} // namespace serve
} // namespace recsim
