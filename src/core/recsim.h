/**
 * @file
 * Umbrella header: include this to get the whole recsim public API.
 *
 *  - model/config.h      model architecture configuration (Table II)
 *  - hw/platform.h       hardware platforms (Table I)
 *  - placement/...       embedding-table placement (Fig 8)
 *  - cost/...            analytical iteration cost model
 *  - sim/dist_sim.h      discrete-event distributed-training sim
 *  - train/...           functional training (Fig 15)
 *  - fleet/...           fleet-level studies (Figs 2, 5, 9)
 *  - core/estimator.h    top-level estimation API
 *  - core/explorer.h     Section V design-space explorer
 */
#pragma once

#include "core/estimator.h"
#include "core/explorer.h"
#include "cost/iteration_model.h"
#include "cost/system_config.h"
#include "data/dataset.h"
#include "data/spec.h"
#include "fleet/fleet_sim.h"
#include "fleet/workload.h"
#include "hw/platform.h"
#include "model/config.h"
#include "model/dlrm.h"
#include "placement/placement.h"
#include "sim/dist_sim.h"
#include "train/easgd.h"
#include "train/hogwild.h"
#include "train/shadow_sync.h"
#include "train/sweep.h"
#include "train/trainer.h"
