#include "core/explorer.h"

#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace recsim {
namespace core {

cost::SystemConfig
TestSuiteParams::cpuSystem() const
{
    return cost::SystemConfig::cpuSetup(1, 1, 1, cpu_batch, 1);
}

cost::SystemConfig
TestSuiteParams::gpuSystem() const
{
    return cost::SystemConfig::bigBasinSetup(
        placement::EmbeddingPlacement::GpuMemory, gpu_batch);
}

DesignSpaceExplorer::DesignSpaceExplorer(Estimator estimator,
                                         TestSuiteParams params)
    : estimator_(std::move(estimator)), params_(params)
{
}

SweepRow
DesignSpaceExplorer::evaluate(const model::DlrmConfig& model,
                              std::string label, double axis,
                              cost::SystemConfig cpu_sys,
                              cost::SystemConfig gpu_sys) const
{
    RECSIM_TRACE_SPAN("core.sweep_row");
    SweepRow row;
    row.label = std::move(label);
    row.axis_value = axis;
    row.cpu = estimator_.estimate(model, cpu_sys);
    row.gpu = estimator_.estimate(model, gpu_sys);
    return row;
}

std::vector<SweepRow>
DesignSpaceExplorer::featureSweep(
    const std::vector<std::size_t>& dense_counts,
    const std::vector<std::size_t>& sparse_counts) const
{
    std::vector<SweepRow> rows;
    for (std::size_t dense : dense_counts) {
        for (std::size_t sparse : sparse_counts) {
            const auto model = model::DlrmConfig::testSuite(
                dense, sparse, params_.hash_size, params_.mlp_width,
                params_.mlp_layers, params_.mean_length,
                params_.truncation);
            rows.push_back(evaluate(
                model, util::format("d{}/s{}", dense, sparse),
                static_cast<double>(dense), params_.cpuSystem(),
                params_.gpuSystem()));
        }
    }
    return rows;
}

std::vector<SweepRow>
DesignSpaceExplorer::batchSweep(
    std::size_t num_dense, std::size_t num_sparse,
    const std::vector<std::size_t>& cpu_batches,
    const std::vector<std::size_t>& gpu_batches) const
{
    RECSIM_ASSERT(cpu_batches.size() == gpu_batches.size(),
                  "batch sweep lists must align");
    const auto model = model::DlrmConfig::testSuite(
        num_dense, num_sparse, params_.hash_size, params_.mlp_width,
        params_.mlp_layers, params_.mean_length, params_.truncation);
    std::vector<SweepRow> rows;
    for (std::size_t i = 0; i < cpu_batches.size(); ++i) {
        cost::SystemConfig cpu_sys = params_.cpuSystem();
        cpu_sys.batch_size = cpu_batches[i];
        cost::SystemConfig gpu_sys = params_.gpuSystem();
        gpu_sys.batch_size = gpu_batches[i];
        rows.push_back(evaluate(
            model,
            util::format("cpu_b{}/gpu_b{}", cpu_batches[i],
                         gpu_batches[i]),
            static_cast<double>(gpu_batches[i]), cpu_sys, gpu_sys));
    }
    return rows;
}

std::vector<SweepRow>
DesignSpaceExplorer::hashSweep(
    std::size_t num_dense, std::size_t num_sparse,
    const std::vector<uint64_t>& hash_sizes) const
{
    std::vector<SweepRow> rows;
    for (uint64_t hash : hash_sizes) {
        const auto model = model::DlrmConfig::testSuite(
            num_dense, num_sparse, hash, params_.mlp_width,
            params_.mlp_layers, params_.mean_length, params_.truncation);
        rows.push_back(evaluate(model,
                                util::countToString(
                                    static_cast<double>(hash)),
                                static_cast<double>(hash),
                                params_.cpuSystem(),
                                params_.gpuSystem()));
    }
    return rows;
}

std::vector<SweepRow>
DesignSpaceExplorer::mlpSweep(
    std::size_t num_dense, std::size_t num_sparse,
    const std::vector<std::pair<std::size_t, std::size_t>>& width_layers)
    const
{
    std::vector<SweepRow> rows;
    for (const auto& [width, layers] : width_layers) {
        const auto model = model::DlrmConfig::testSuite(
            num_dense, num_sparse, params_.hash_size, width, layers,
            params_.mean_length, params_.truncation);
        rows.push_back(evaluate(model,
                                util::format("{}^{}", width, layers),
                                static_cast<double>(width),
                                params_.cpuSystem(),
                                params_.gpuSystem()));
    }
    return rows;
}

} // namespace core
} // namespace recsim
