/**
 * @file
 * Top-level estimation API: one object that answers the questions the
 * paper asks — "what throughput and power efficiency does model M get
 * on system S?", "what is the optimal batch size?", "which placement
 * and platform should this model use?". Thin façade over the cost
 * model, the placement planner and (optionally) the DES.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/iteration_model.h"
#include "cost/system_config.h"
#include "model/config.h"
#include "placement/placement.h"

namespace recsim {
namespace core {

/** A (system, estimate) pair returned by search helpers. */
struct RankedSetup
{
    cost::SystemConfig system;
    cost::IterationEstimate estimate;
};

/** Relative comparison of two setups for the same model (Table III). */
struct SetupComparison
{
    cost::IterationEstimate baseline;
    cost::IterationEstimate candidate;
    /** candidate / baseline throughput. */
    double relative_throughput = 0.0;
    /** candidate / baseline examples-per-joule. */
    double relative_power_efficiency = 0.0;
};

/**
 * The estimator. Holds the calibration constants so alternative
 * calibrations (ablations) can be compared side by side.
 */
class Estimator
{
  public:
    explicit Estimator(cost::CostParams params = {});

    /** Throughput/power/utilization estimate for one setup. */
    cost::IterationEstimate estimate(
        const model::DlrmConfig& model,
        const cost::SystemConfig& system) const;

    /** Candidate vs baseline (Table III rows). */
    SetupComparison compare(const model::DlrmConfig& model,
                            const cost::SystemConfig& baseline,
                            const cost::SystemConfig& candidate) const;

    /**
     * Scan @p batch_candidates and return the smallest batch within
     * @p saturation_tolerance of the peak throughput — the paper's
     * "optimal batch size" criterion (beyond the saturation point,
     * larger batches only hurt model quality).
     */
    RankedSetup optimalBatch(const model::DlrmConfig& model,
                             cost::SystemConfig system,
                             const std::vector<std::size_t>&
                                 batch_candidates,
                             double saturation_tolerance = 0.05) const;

    /**
     * Try every placement on @p system's platform and return feasible
     * setups sorted by throughput, best first.
     */
    std::vector<RankedSetup> rankPlacements(
        const model::DlrmConfig& model,
        const cost::SystemConfig& system) const;

    const cost::CostParams& params() const { return params_; }

  private:
    cost::CostParams params_;
};

} // namespace core
} // namespace recsim
