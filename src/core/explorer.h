/**
 * @file
 * Design-space exploration helpers: the programmable "test suite" of
 * Section V. Each sweep fixes everything except one axis (feature
 * counts, batch size, hash size, MLP dimensions) and evaluates a CPU
 * setup and a GPU setup side by side, exactly as Figs 10-13 do.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace recsim {
namespace core {

/** One row of a sweep: the axis value plus both estimates. */
struct SweepRow
{
    std::string label;
    double axis_value = 0.0;
    cost::IterationEstimate cpu;
    cost::IterationEstimate gpu;

    /** GPU/CPU throughput ratio (0 when CPU infeasible). */
    double throughputRatio() const
    {
        return cpu.throughput > 0.0
            ? gpu.throughput / cpu.throughput : 0.0;
    }

    /** GPU/CPU perf-per-watt ratio. */
    double efficiencyRatio() const
    {
        const double c = cpu.perfPerWatt();
        return c > 0.0 ? gpu.perfPerWatt() / c : 0.0;
    }
};

/** Shared fixed parameters of the Section V test suite. */
struct TestSuiteParams
{
    /** Fixed hash size for every sparse feature (Fig 10/11/13). */
    uint64_t hash_size = 100000;
    /** MLP width and depth (512^3 unless the sweep varies them). */
    std::size_t mlp_width = 512;
    std::size_t mlp_layers = 3;
    /** Mean lookups per sparse feature, truncated at 32 (Sec V). */
    double mean_length = 8.0;
    uint64_t truncation = 32;
    /** Fixed batch sizes: 200 for CPU, 1600 per GPU (Fig 10 caption). */
    std::size_t cpu_batch = 200;
    std::size_t gpu_batch = 1600;
    /** CPU setup: single trainer, one dense and one sparse PS. */
    cost::SystemConfig cpuSystem() const;
    /** GPU setup: one Big Basin, embeddings in GPU memory. */
    cost::SystemConfig gpuSystem() const;
};

/** The Section V explorer. */
class DesignSpaceExplorer
{
  public:
    explicit DesignSpaceExplorer(Estimator estimator = Estimator{},
                                 TestSuiteParams params = {});

    /**
     * Fig 10: grid over dense x sparse feature counts. Returns one row
     * per (dense, sparse) pair, labeled "d<dense>/s<sparse>".
     */
    std::vector<SweepRow> featureSweep(
        const std::vector<std::size_t>& dense_counts,
        const std::vector<std::size_t>& sparse_counts) const;

    /** Fig 11: batch-size scaling at fixed features. */
    std::vector<SweepRow> batchSweep(
        std::size_t num_dense, std::size_t num_sparse,
        const std::vector<std::size_t>& cpu_batches,
        const std::vector<std::size_t>& gpu_batches) const;

    /** Fig 12: hash-size scaling (capacity frontier included). */
    std::vector<SweepRow> hashSweep(
        std::size_t num_dense, std::size_t num_sparse,
        const std::vector<uint64_t>& hash_sizes) const;

    /** Fig 13: MLP width^layers scaling. */
    std::vector<SweepRow> mlpSweep(
        std::size_t num_dense, std::size_t num_sparse,
        const std::vector<std::pair<std::size_t, std::size_t>>&
            width_layers) const;

    const TestSuiteParams& params() const { return params_; }
    const Estimator& estimator() const { return estimator_; }

  private:
    SweepRow evaluate(const model::DlrmConfig& model, std::string label,
                      double axis, cost::SystemConfig cpu_sys,
                      cost::SystemConfig gpu_sys) const;

    Estimator estimator_;
    TestSuiteParams params_;
};

} // namespace core
} // namespace recsim
