#include "core/estimator.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace recsim {
namespace core {

Estimator::Estimator(cost::CostParams params)
    : params_(params)
{
}

cost::IterationEstimate
Estimator::estimate(const model::DlrmConfig& model,
                    const cost::SystemConfig& system) const
{
    RECSIM_TRACE_SPAN("core.estimate");
    return cost::IterationModel(model, system, params_).estimate();
}

SetupComparison
Estimator::compare(const model::DlrmConfig& model,
                   const cost::SystemConfig& baseline,
                   const cost::SystemConfig& candidate) const
{
    SetupComparison cmp;
    cmp.baseline = estimate(model, baseline);
    cmp.candidate = estimate(model, candidate);
    if (cmp.baseline.throughput > 0.0) {
        cmp.relative_throughput =
            cmp.candidate.throughput / cmp.baseline.throughput;
    }
    const double base_eff = cmp.baseline.perfPerWatt();
    if (base_eff > 0.0) {
        cmp.relative_power_efficiency =
            cmp.candidate.perfPerWatt() / base_eff;
    }
    return cmp;
}

RankedSetup
Estimator::optimalBatch(const model::DlrmConfig& model,
                        cost::SystemConfig system,
                        const std::vector<std::size_t>& batch_candidates,
                        double saturation_tolerance) const
{
    RECSIM_ASSERT(!batch_candidates.empty(), "no batch candidates");
    std::vector<RankedSetup> setups;
    double peak = 0.0;
    for (std::size_t batch : batch_candidates) {
        system.batch_size = batch;
        RankedSetup setup{system, estimate(model, system)};
        peak = std::max(peak, setup.estimate.throughput);
        setups.push_back(std::move(setup));
    }
    // Smallest batch whose throughput is within tolerance of the peak:
    // beyond the saturation point extra batch only costs model quality.
    for (auto& setup : setups) {
        if (setup.estimate.feasible &&
            setup.estimate.throughput >=
                peak * (1.0 - saturation_tolerance)) {
            return setup;
        }
    }
    return setups.back();
}

std::vector<RankedSetup>
Estimator::rankPlacements(const model::DlrmConfig& model,
                          const cost::SystemConfig& system) const
{
    std::vector<placement::EmbeddingPlacement> strategies;
    if (system.platform.num_gpus > 0) {
        strategies = {placement::EmbeddingPlacement::GpuMemory,
                      placement::EmbeddingPlacement::HostMemory,
                      placement::EmbeddingPlacement::Hybrid,
                      placement::EmbeddingPlacement::RemotePs};
    } else {
        strategies = {placement::EmbeddingPlacement::CpuLocal};
    }
    std::vector<RankedSetup> ranked;
    for (auto strategy : strategies) {
        cost::SystemConfig candidate = system;
        candidate.placement = strategy;
        if (strategy == placement::EmbeddingPlacement::RemotePs &&
            candidate.num_sparse_ps == 0) {
            candidate.num_sparse_ps = 8;
        }
        RankedSetup setup{candidate, estimate(model, candidate)};
        if (setup.estimate.feasible)
            ranked.push_back(std::move(setup));
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedSetup& a, const RankedSetup& b) {
                         return a.estimate.throughput >
                             b.estimate.throughput;
                     });
    return ranked;
}

} // namespace core
} // namespace recsim
