/**
 * @file
 * Discrete-event simulation kernel, gem5-flavoured: a global event
 * queue ordered by (tick, priority, sequence), where ticks are
 * nanoseconds of simulated time. The distributed-training simulation
 * (src/sim) runs on top of this kernel to capture the queueing and
 * pipelining behaviour the closed-form cost model abstracts away.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace recsim {
namespace des {

/** Simulated time in nanoseconds. */
using Tick = uint64_t;

/** One tick per nanosecond. */
inline constexpr Tick kTicksPerSecond = 1000000000ULL;

/** Convert seconds to ticks (rounding to nearest). */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(
        kTicksPerSecond) + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) /
        static_cast<double>(kTicksPerSecond);
}

/**
 * The event queue and simulated clock.
 *
 * Events are closures scheduled at absolute ticks. Ties break by
 * priority (lower runs first), then strictly by schedule order, so
 * simulations are fully deterministic.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Opaque id usable with deschedule(). */
    using EventId = uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p handler at absolute time @p when (>= now()).
     * @param priority Tie-break priority; lower runs first.
     * @return Id for deschedule().
     */
    EventId schedule(Tick when, Handler handler, int priority = 0);

    /** Schedule @p handler @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, Handler handler, int priority = 0);

    /** Cancel a pending event. Returns false if already run/cancelled. */
    bool deschedule(EventId id);

    /** True if no runnable events remain. */
    bool empty() const;

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return pending_; }

    /**
     * Run events until the queue is empty or the clock passes @p limit.
     * @return Number of events executed.
     */
    uint64_t run(Tick limit = ~0ULL);

    /** Execute at most one event. Returns false if none runnable. */
    bool step(Tick limit = ~0ULL);

    /** Total events executed since construction. */
    uint64_t eventsExecuted() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
        Handler handler;

        bool operator>(const Entry& other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return id > other.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq_;
    std::vector<EventId> cancelled_;
    Tick now_ = 0;
    EventId next_id_ = 1;
    uint64_t executed_ = 0;
    std::size_t pending_ = 0;

    bool isCancelled(EventId id);
};

} // namespace des
} // namespace recsim
