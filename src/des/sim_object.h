/**
 * @file
 * Base class for named simulation objects plus two reusable resource
 * models every node in the training simulation is built from: a
 * serving Resource (FIFO server with a byte/flop rate) and a LinkModel
 * (bandwidth + latency pipe). Both track busy time for utilization
 * reporting.
 */
#pragma once

#include <string>

#include "des/event_queue.h"

namespace recsim {
namespace des {

/** Named object bound to an EventQueue. */
class SimObject
{
  public:
    SimObject(EventQueue& eq, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    const std::string& name() const { return name_; }
    EventQueue& eventQueue() { return eq_; }
    Tick now() const { return eq_.now(); }

  protected:
    EventQueue& eq_;

  private:
    std::string name_;
};

/**
 * A FIFO-served resource with a fixed service rate (units/second),
 * e.g. a memory controller serving gather bytes or a CPU serving
 * flops. acquire() returns the completion tick of a request issued
 * now; requests queue behind earlier ones. Busy time accumulates for
 * utilization reporting.
 */
class Resource : public SimObject
{
  public:
    /**
     * @param rate Units per second (> 0).
     */
    Resource(EventQueue& eq, std::string name, double rate);

    /**
     * Reserve @p units starting no earlier than now; returns the tick
     * at which the request completes.
     */
    Tick acquire(double units);

    /** As acquire() but the request cannot start before @p earliest. */
    Tick acquireAt(Tick earliest, double units);

    double rate() const { return rate_; }

    /** Busy seconds accumulated so far. */
    double busySeconds() const { return ticksToSeconds(busy_); }

    /** Utilization over [0, now] (or [0, end] if given). */
    double utilization(Tick end = 0) const;

  private:
    double rate_;
    Tick free_at_ = 0;
    Tick busy_ = 0;
};

/**
 * A bandwidth/latency pipe: transfer completes after queueing behind
 * earlier transfers at the link rate, plus a fixed latency.
 */
class LinkModel : public SimObject
{
  public:
    LinkModel(EventQueue& eq, std::string name, double bytes_per_second,
              Tick latency);

    /** Completion tick for @p bytes injected now. */
    Tick transfer(double bytes);

    /** As transfer() but injection cannot begin before @p earliest. */
    Tick transferAt(Tick earliest, double bytes);

    double bandwidth() const { return serializer_.rate(); }
    double busySeconds() const { return serializer_.busySeconds(); }
    double utilization(Tick end = 0) const
    {
        return serializer_.utilization(end);
    }

  private:
    Resource serializer_;
    Tick latency_;
};

} // namespace des
} // namespace recsim
