#include "des/sim_object.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace recsim {
namespace des {

SimObject::SimObject(EventQueue& eq, std::string name)
    : eq_(eq), name_(std::move(name))
{
}

Resource::Resource(EventQueue& eq, std::string name, double rate)
    : SimObject(eq, std::move(name)), rate_(rate)
{
    RECSIM_ASSERT(rate > 0.0, "resource '{}' needs a positive rate",
                  this->name());
}

Tick
Resource::acquire(double units)
{
    return acquireAt(now(), units);
}

Tick
Resource::acquireAt(Tick earliest, double units)
{
    RECSIM_ASSERT(units >= 0.0, "negative resource demand");
    const Tick start = std::max(earliest, free_at_);
    const Tick service = secondsToTicks(units / rate_);
    free_at_ = start + service;
    busy_ += service;
    // Busy intervals become sim-time trace spans, so PS memory/CPU and
    // NIC saturation is visible on the same timeline as the workers.
    if (obs::Tracer::enabled() && service > 0)
        obs::Tracer::global().addSimSpan(name(), "busy", start,
                                         free_at_);
    return free_at_;
}

double
Resource::utilization(Tick end) const
{
    const Tick horizon = end ? end : now();
    if (horizon == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(busy_) /
        static_cast<double>(horizon));
}

LinkModel::LinkModel(EventQueue& eq, std::string name,
                     double bytes_per_second, Tick latency)
    : SimObject(eq, name), serializer_(eq, name + ".ser",
                                       bytes_per_second),
      latency_(latency)
{
}

Tick
LinkModel::transfer(double bytes)
{
    return transferAt(now(), bytes);
}

Tick
LinkModel::transferAt(Tick earliest, double bytes)
{
    return serializer_.acquireAt(earliest, bytes) + latency_;
}

} // namespace des
} // namespace recsim
