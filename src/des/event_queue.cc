#include "des/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace recsim {
namespace des {

EventQueue::EventId
EventQueue::schedule(Tick when, Handler handler, int priority)
{
    RECSIM_ASSERT(when >= now_, "scheduling event in the past: {} < {}",
                  when, now_);
    const EventId id = next_id_++;
    pq_.push({when, priority, id, std::move(handler)});
    ++pending_;
    return id;
}

EventQueue::EventId
EventQueue::scheduleAfter(Tick delay, Handler handler, int priority)
{
    return schedule(now_ + delay, std::move(handler), priority);
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == 0 || id >= next_id_)
        return false;
    if (std::find(cancelled_.begin(), cancelled_.end(), id) !=
        cancelled_.end()) {
        return false;
    }
    cancelled_.push_back(id);
    if (pending_ > 0)
        --pending_;
    return true;
}

bool
EventQueue::isCancelled(EventId id)
{
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end())
        return false;
    cancelled_.erase(it);
    return true;
}

bool
EventQueue::empty() const
{
    return pending_ == 0;
}

bool
EventQueue::step(Tick limit)
{
    while (!pq_.empty()) {
        if (pq_.top().when > limit)
            return false;
        Entry entry = pq_.top();
        pq_.pop();
        if (isCancelled(entry.id))
            continue;
        now_ = entry.when;
        --pending_;
        ++executed_;
        entry.handler();
        return true;
    }
    return false;
}

uint64_t
EventQueue::run(Tick limit)
{
    uint64_t count = 0;
    while (step(limit))
        ++count;
    if (!pq_.empty() && pq_.top().when > limit && now_ < limit)
        now_ = limit;
    return count;
}

} // namespace des
} // namespace recsim
