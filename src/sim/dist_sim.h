/**
 * @file
 * Discrete-event simulation of distributed DLRM training (Fig 4 of the
 * paper): trainer servers running Hogwild worker threads, sparse
 * parameter servers serving embedding lookups, a dense parameter server
 * handling EASGD syncs, all connected by bandwidth/latency links.
 *
 * Relative to the closed-form IterationModel, the DES captures queueing
 * at shared services, pipeline overlap across Hogwild workers, and
 * run-to-run variability (optional lognormal service-time noise) — the
 * machinery behind the utilization-distribution study (Fig 5).
 *
 * Service demands are folds over the model's StepGraph (the same IR the
 * cost model and the real trainer consume): aggregate work from
 * IterationModel::workSummary(), per-shard traffic shares from the
 * graph's Comm nodes, and per-node time attribution reported back in
 * DistSimResult::node_seconds under the graph node ids.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cost/iteration_model.h"
#include "cost/system_config.h"
#include "model/config.h"

namespace recsim {
namespace sim {

/** Configuration of one simulated training run. */
struct DistSimConfig
{
    model::DlrmConfig model;
    cost::SystemConfig system;
    cost::CostParams params;

    /** Simulated seconds of the measurement window. */
    double measure_seconds = 2.0;
    /** Iterations per trainer worker before measurement starts. */
    uint64_t warmup_iterations = 4;
    /**
     * Lognormal sigma multiplying every service demand; 0 disables
     * noise. Models the paper's run-to-run system-level variability.
     */
    double service_noise_sigma = 0.0;
    uint64_t seed = 1;
};

/** Measured outcome of a simulated run. */
struct DistSimResult
{
    bool feasible = true;
    std::string infeasible_reason;

    /** Examples per simulated second in the measurement window. */
    double throughput = 0.0;
    /** Iterations completed across all workers in the window. */
    uint64_t iterations = 0;
    /** Mean per-worker iteration latency, seconds. */
    double mean_iteration_seconds = 0.0;

    /**
     * Resource utilizations over the measurement window, keyed by
     * resource name (e.g. "trainer0.cpu", "sparse_ps1.mem", ...).
     */
    std::map<std::string, double> utilization;

    /**
     * Mean simulated seconds per iteration attributed to each StepGraph
     * node (keyed by graph::Node::id, the same ids the analytical
     * nodeBreakdown() and the trainer's obs spans report under).
     * Includes queueing delay at shared services; compute intervals are
     * subdivided across the compute nodes by their modeled cost.
     */
    std::map<std::string, double> node_seconds;

    /** Mean utilization across resources whose name contains @p key. */
    double meanUtilization(const std::string& key) const;
};

/**
 * Run the discrete-event simulation for one configuration.
 *
 * Supported systems: CPU distributed training (trainers + sparse/dense
 * PS) and single-GPU-server training with any placement. Infeasible
 * placements return feasible == false, mirroring IterationModel.
 */
DistSimResult runDistSim(const DistSimConfig& config);

} // namespace sim
} // namespace recsim
