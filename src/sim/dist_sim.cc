#include "sim/dist_sim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "cost/cache_model.h"
#include "des/event_queue.h"
#include "des/sim_object.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace sim {

namespace {

using des::EventQueue;
using des::LinkModel;
using des::Resource;
using des::secondsToTicks;
using des::Tick;
using des::ticksToSeconds;

/** A sparse parameter server: gather memory, pooling CPU, NIC. */
struct SparsePs
{
    std::unique_ptr<Resource> mem;    // gather bytes/s
    std::unique_ptr<Resource> cpu;    // pooling flops/s
    std::unique_ptr<LinkModel> nic;
    double gather_bytes_pe = 0.0;     // per trainer-example served here
    double pool_flops_pe = 0.0;
    double response_bytes_pe = 0.0;
    double request_bytes_pe = 0.0;
};

/**
 * Shared state of one simulated run. Resources are FIFO servers that
 * return completion ticks, so a worker computes its whole iteration
 * schedule synchronously at iteration start and re-arms itself at the
 * completion tick.
 */
class Simulation
{
  public:
    explicit Simulation(const DistSimConfig& cfg);

    DistSimResult run();

  private:
    void startWorker(std::size_t trainer, std::size_t worker);
    Tick cpuIteration(std::size_t trainer, std::size_t worker,
                      Tick start);
    Tick gpuIteration(std::size_t worker, Tick start);
    double noisy(double value);
    void finishIteration(std::size_t trainer, std::size_t worker,
                         Tick start, Tick end);

    /** Worker-track name, e.g. "trainer0.w1" / "gpu.w0". */
    std::string workerTrack(std::size_t trainer, std::size_t worker)
        const;

    /** Emit a simulated-time span when tracing is on. */
    static void simSpan(const std::string& track, const char* name,
                        Tick start, Tick end)
    {
        if (obs::Tracer::enabled() && end > start)
            obs::Tracer::global().addSimSpan(track, name, start, end);
    }

    const DistSimConfig& cfg_;
    cost::IterationModel analytical_;
    EventQueue eq_;
    util::Rng rng_;

    // Trainer-side resources (CPU path: one per trainer; GPU path:
    // index 0 holds the GPU server).
    std::vector<std::unique_ptr<Resource>> trainer_cpu_;
    std::vector<std::unique_ptr<LinkModel>> trainer_nic_;
    /**
     * Gradient pushes are reserved at iteration-start time for a point
     * in the future; putting them on the same FIFO link as requests
     * would let those future reservations block other workers' current
     * requests (the FIFO resource model reserves in processing order).
     * A separate channel keeps the model causal; the uplink is rarely
     * the bottleneck, so the bandwidth split is a minor approximation.
     */
    std::vector<std::unique_ptr<LinkModel>> trainer_push_;
    std::vector<SparsePs> sparse_ps_;
    std::unique_ptr<LinkModel> dense_ps_nic_;

    // GPU-server resources.
    std::unique_ptr<Resource> gpu_compute_;
    std::unique_ptr<Resource> gpu_mem_;
    std::unique_ptr<LinkModel> interconnect_;
    std::unique_ptr<Resource> host_mem_;
    std::unique_ptr<Resource> host_cpu_;
    std::unique_ptr<LinkModel> pcie_;

    // Per-iteration demands (precomputed).
    double compute_seconds_iter_ = 0.0;
    double net_bytes_iter_ = 0.0;
    double dense_sync_bytes_ = 0.0;

    Tick measure_start_ = 0;
    Tick measure_end_ = 0;
    uint64_t iterations_done_ = 0;
    double latency_sum_ = 0.0;
    std::vector<uint64_t> worker_warmup_left_;
    bool gpu_mode_ = false;

    DistSimResult result_;
};

Simulation::Simulation(const DistSimConfig& cfg)
    : cfg_(cfg), analytical_(cfg.model, cfg.system, cfg.params),
      rng_(cfg.seed)
{
}

double
Simulation::noisy(double value)
{
    if (cfg_.service_noise_sigma <= 0.0)
        return value;
    return value * rng_.lognormal(0.0, cfg_.service_noise_sigma);
}

DistSimResult
Simulation::run()
{
    const auto& plan = analytical_.plan();
    if (!plan.feasible) {
        result_.feasible = false;
        result_.infeasible_reason = plan.infeasible_reason;
        return result_;
    }
    const auto& sys = cfg_.system;
    const auto& p = sys.platform;
    const auto& params = cfg_.params;
    const auto fp = cfg_.model.footprint();
    gpu_mode_ = p.num_gpus > 0;

    const double fwd_flops = fp.mlp_flops + fp.interaction_flops;
    const double train_flops =
        fwd_flops * (1.0 + params.backward_flops_multiplier);
    const double b = static_cast<double>(sys.batch_size);
    const double dense_params =
        static_cast<double>(cfg_.model.mlpParams());
    const double sync_period = static_cast<double>(
        std::max<std::size_t>(sys.easgd_sync_period, 1));
    dense_sync_bytes_ = 2.0 * dense_params * sizeof(float) / sync_period;

    const hw::Platform ps_hw = hw::Platform::dualSocketCpu();
    const double total_access = [&] {
        double total = 0.0;
        for (double a : plan.partition.shard_access_bytes)
            total += a;
        return std::max(total, 1e-9);
    }();

    // Sparse PS shards (CPU path and GPU remote path share this).
    const bool remote = !gpu_mode_ || plan.remote_lookup_fraction > 0.0;
    if (remote && sys.num_sparse_ps > 0) {
        const double n_ps = static_cast<double>(sys.num_sparse_ps);
        for (std::size_t i = 0; i < sys.num_sparse_ps; ++i) {
            SparsePs ps;
            const double resident = plan.resident_bytes / n_ps;
            const double gather_rate = ps_hw.host.mem_bandwidth *
                cost::gatherEfficiency(
                    resident,
                    cost::kCpuLlcBytesPerSocket * ps_hw.num_cpu_sockets,
                    ps_hw.host.random_access_efficiency,
                    params.cached_gather_efficiency);
            const std::string name = "sparse_ps" + std::to_string(i);
            ps.mem = std::make_unique<Resource>(eq_, name + ".mem",
                                                gather_rate);
            ps.cpu = std::make_unique<Resource>(
                eq_, name + ".cpu",
                ps_hw.host.peak_flops * params.cpu_mlp_efficiency *
                    params.ps_pooling_flops_fraction);
            ps.nic = std::make_unique<LinkModel>(
                eq_, name + ".nic",
                ps_hw.network.bandwidth * params.network_goodput,
                secondsToTicks(ps_hw.network.latency));
            // This shard's share of the per-example lookup traffic.
            const double share = i < plan.partition.numShards()
                ? plan.partition.shard_access_bytes[i] / total_access
                : 0.0;
            ps.gather_bytes_pe = fp.embedding_bytes *
                params.emb_train_bytes_multiplier * share;
            ps.pool_flops_pe = fp.embedding_lookups *
                static_cast<double>(cfg_.model.emb_dim) * 4.0 * share;
            ps.response_bytes_pe = fp.pooled_bytes * share;
            ps.request_bytes_pe = (fp.pooled_bytes +
                fp.embedding_lookups *
                    params.request_bytes_per_lookup) * share;
            sparse_ps_.push_back(std::move(ps));
        }
    }

    if (!gpu_mode_) {
        // CPU distributed training: per-trainer CPU (a rate-1 seconds
        // server) and NIC; one dense-PS NIC shared by all trainers.
        double act_bytes_pe =
            static_cast<double>(cfg_.model.num_dense) * sizeof(float);
        for (std::size_t w : cfg_.model.bottomDims())
            act_bytes_pe += static_cast<double>(w) * sizeof(float);
        act_bytes_pe += static_cast<double>(
            cfg_.model.interactionWidth()) * sizeof(float);
        for (std::size_t w : cfg_.model.topDims())
            act_bytes_pe += static_cast<double>(w) * sizeof(float);
        act_bytes_pe *= 2.0;
        const double llc =
            0.5 * cost::kCpuLlcBytesPerSocket * p.num_cpu_sockets;
        const double ws = b * act_bytes_pe;
        const double cache_factor = ws > llc
            ? std::pow(llc / ws, params.cpu_cache_pressure_exponent)
            : 1.0;
        const double host_flops = p.host.peak_flops *
            params.cpu_mlp_efficiency * cache_factor;
        compute_seconds_iter_ = b * (train_flops / host_flops +
            params.cpu_per_example_overhead +
            fp.embedding_lookups * params.cpu_per_lookup_overhead) +
            params.cpu_iteration_overhead;
        net_bytes_iter_ = b * (2.0 * fp.pooled_bytes +
            fp.embedding_lookups * params.request_bytes_per_lookup);

        for (std::size_t t = 0; t < sys.num_trainers; ++t) {
            const std::string name = "trainer" + std::to_string(t);
            trainer_cpu_.push_back(std::make_unique<Resource>(
                eq_, name + ".cpu", 1.0));
            trainer_nic_.push_back(std::make_unique<LinkModel>(
                eq_, name + ".nic",
                p.network.bandwidth * params.network_goodput,
                secondsToTicks(p.network.latency)));
            trainer_push_.push_back(std::make_unique<LinkModel>(
                eq_, name + ".push",
                p.network.bandwidth * params.network_goodput,
                secondsToTicks(p.network.latency)));
        }
        if (sys.num_dense_ps > 0) {
            dense_ps_nic_ = std::make_unique<LinkModel>(
                eq_, "dense_ps.nic",
                static_cast<double>(sys.num_dense_ps) *
                    ps_hw.network.bandwidth * params.network_goodput,
                secondsToTicks(ps_hw.network.latency));
        }
    } else {
        // One GPU server; phases modeled as serially acquired resources.
        const double g = static_cast<double>(p.num_gpus);
        gpu_compute_ = std::make_unique<Resource>(
            eq_, "gpu.compute",
            g * p.gpu.peak_flops * params.gpu_mlp_efficiency);
        const double shards = static_cast<double>(
            std::max<std::size_t>(plan.gpus_used, 1));
        double max_shard = 0.0;
        for (std::size_t s = 0;
             s < std::min<std::size_t>(plan.partition.numShards(),
                                       static_cast<std::size_t>(g));
             ++s) {
            max_shard = std::max(max_shard,
                                 plan.partition.shard_bytes[s]);
        }
        const double gather_eff = cost::gatherEfficiency(
            max_shard, cost::kGpuL2Bytes,
            p.gpu.random_access_efficiency,
            params.cached_gather_efficiency);
        gpu_mem_ = std::make_unique<Resource>(
            eq_, "gpu.mem", shards * p.gpu.mem_bandwidth * gather_eff);
        interconnect_ = std::make_unique<LinkModel>(
            eq_, "gpu.interconnect",
            shards * std::max(p.gpu_interconnect.bandwidth, 1.0),
            secondsToTicks(p.gpu_interconnect.latency));
        host_mem_ = std::make_unique<Resource>(
            eq_, "host.mem",
            p.host.mem_bandwidth * cost::gatherEfficiency(
                plan.resident_bytes *
                    (1.0 - plan.gpu_lookup_fraction -
                     plan.remote_lookup_fraction),
                cost::kCpuLlcBytesPerSocket * p.num_cpu_sockets,
                p.host.random_access_efficiency,
                params.cached_gather_efficiency));
        host_cpu_ = std::make_unique<Resource>(
            eq_, "host.cpu", static_cast<double>(p.num_cpu_sockets));
        pcie_ = std::make_unique<LinkModel>(
            eq_, "host.pcie", g * p.host_gpu.bandwidth,
            secondsToTicks(p.host_gpu.latency));
        trainer_nic_.push_back(std::make_unique<LinkModel>(
            eq_, "gpu_server.nic",
            p.network.bandwidth * params.network_goodput,
            secondsToTicks(p.network.latency)));
    }

    // Launch workers and run.
    const std::size_t workers_per_trainer =
        std::max<std::size_t>(sys.hogwild_threads, 1);
    const std::size_t n_trainers = gpu_mode_ ? 1 : sys.num_trainers;
    const uint64_t total_workers = n_trainers * workers_per_trainer;
    worker_warmup_left_.assign(total_workers, cfg_.warmup_iterations);

    // Warmup horizon is open-ended; the measurement window opens when
    // every worker has finished warmup. We approximate by running a
    // generous limit and only counting iterations inside the window.
    measure_start_ = secondsToTicks(0.05);
    measure_end_ = measure_start_ + secondsToTicks(cfg_.measure_seconds);

    for (std::size_t t = 0; t < n_trainers; ++t)
        for (std::size_t w = 0; w < workers_per_trainer; ++w)
            startWorker(t, w);

    eq_.run(measure_end_);

    const double window = ticksToSeconds(measure_end_ - measure_start_);
    const double examples_per_iter = gpu_mode_
        ? b * static_cast<double>(p.num_gpus) : b;
    result_.iterations = iterations_done_;
    result_.throughput =
        static_cast<double>(iterations_done_) * examples_per_iter /
        window;
    result_.mean_iteration_seconds = iterations_done_
        ? latency_sum_ / static_cast<double>(iterations_done_) : 0.0;

    auto record = [&](const std::string& name, double util) {
        result_.utilization[name] = std::min(1.0, util);
    };
    const Tick end = measure_end_;
    for (std::size_t t = 0; t < trainer_cpu_.size(); ++t)
        record(trainer_cpu_[t]->name(),
               trainer_cpu_[t]->utilization(end));
    for (std::size_t t = 0; t < trainer_nic_.size(); ++t)
        record(trainer_nic_[t]->name(),
               trainer_nic_[t]->utilization(end));
    for (auto& ps : sparse_ps_) {
        record(ps.mem->name(), ps.mem->utilization(end));
        record(ps.cpu->name(), ps.cpu->utilization(end));
        record(ps.nic->name(), ps.nic->utilization(end));
    }
    if (dense_ps_nic_)
        record(dense_ps_nic_->name(), dense_ps_nic_->utilization(end));
    if (gpu_compute_) {
        record(gpu_compute_->name(), gpu_compute_->utilization(end));
        record(gpu_mem_->name(), gpu_mem_->utilization(end));
        record(interconnect_->name(), interconnect_->utilization(end));
        record(host_mem_->name(), host_mem_->utilization(end));
        record(host_cpu_->name(), host_cpu_->utilization(end));
        record(pcie_->name(), pcie_->utilization(end));
    }
    return result_;
}

void
Simulation::startWorker(std::size_t trainer, std::size_t worker)
{
    eq_.scheduleAfter(0, [this, trainer, worker] {
        const Tick start = eq_.now();
        const Tick end = gpu_mode_
            ? gpuIteration(worker, start)
            : cpuIteration(trainer, worker, start);
        finishIteration(trainer, worker, start, end);
    });
}

void
Simulation::finishIteration(std::size_t trainer, std::size_t worker,
                            Tick start, Tick end)
{
    simSpan(workerTrack(trainer, worker), "iteration", start, end);
    // Count by completion time only: warmup is excluded by the window
    // opening, so queueing delay under many workers does not eat into
    // the measured window.
    if (end >= measure_start_ && end <= measure_end_) {
        ++iterations_done_;
        latency_sum_ += ticksToSeconds(end - start);
    }
    if (end >= measure_end_)
        return;
    eq_.schedule(end, [this, trainer, worker, end] {
        const Tick next_end = gpu_mode_
            ? gpuIteration(worker, end)
            : cpuIteration(trainer, worker, end);
        finishIteration(trainer, worker, end, next_end);
    });
}

std::string
Simulation::workerTrack(std::size_t trainer, std::size_t worker) const
{
    return (gpu_mode_ ? "gpu" : "trainer" + std::to_string(trainer)) +
        ".w" + std::to_string(worker);
}

Tick
Simulation::cpuIteration(std::size_t trainer, std::size_t worker,
                         Tick start)
{
    const double b = static_cast<double>(cfg_.system.batch_size);
    auto& nic = *trainer_nic_[trainer];
    auto& cpu = *trainer_cpu_[trainer];

    // 1. Issue lookup requests and wait for all pooled responses.
    Tick responses = start;
    for (auto& ps : sparse_ps_) {
        if (ps.gather_bytes_pe <= 0.0 && ps.response_bytes_pe <= 0.0)
            continue;
        const Tick sent =
            nic.transferAt(start, noisy(b * ps.request_bytes_pe * 0.1));
        const Tick gathered =
            ps.mem->acquireAt(sent, noisy(b * ps.gather_bytes_pe));
        const Tick pooled =
            ps.cpu->acquireAt(gathered, noisy(b * ps.pool_flops_pe));
        const Tick replied =
            ps.nic->transferAt(pooled, noisy(b * ps.response_bytes_pe));
        responses = std::max(responses, replied);
    }

    // 2. Forward/backward compute on the trainer.
    const Tick computed =
        cpu.acquireAt(responses, noisy(compute_seconds_iter_));

    // 3. Push pooled gradients back and amortized EASGD dense sync.
    Tick done = computed;
    auto& push = *trainer_push_[trainer];
    for (auto& ps : sparse_ps_) {
        if (ps.response_bytes_pe <= 0.0)
            continue;
        done = std::max(done, push.transferAt(
            computed, noisy(b * ps.response_bytes_pe)));
    }
    if (dense_ps_nic_ && dense_sync_bytes_ > 0.0) {
        done = std::max(done, dense_ps_nic_->transferAt(
            computed, noisy(dense_sync_bytes_)));
    }
    if (obs::Tracer::enabled()) {
        const std::string track = workerTrack(trainer, worker);
        simSpan(track, "lookup", start, responses);
        simSpan(track, "compute", responses, computed);
        simSpan(track, "push", computed, done);
    }
    return done;
}

Tick
Simulation::gpuIteration(std::size_t worker, Tick start)
{
    const auto& sys = cfg_.system;
    const auto& p = sys.platform;
    const auto& params = cfg_.params;
    const auto& plan = analytical_.plan();
    const auto fp = cfg_.model.footprint();
    const double g = static_cast<double>(p.num_gpus);
    const double bg = static_cast<double>(sys.batch_size) * g;

    const double frac_gpu = plan.gpu_lookup_fraction;
    const double frac_remote = plan.remote_lookup_fraction;
    const double frac_host = std::max(0.0, 1.0 - frac_gpu - frac_remote);

    // Input pipeline: host CPU transform + PCIe staging.
    const Tick input_cpu = host_cpu_->acquireAt(start, noisy(
        bg * (params.host_cpu_per_example +
              fp.embedding_lookups * params.host_cpu_per_lookup)));
    const double read_bytes =
        bg * (fp.dense_input_bytes + fp.embedding_lookups * 8.0 + 4.0);
    const Tick input_done =
        pcie_->transferAt(input_cpu, noisy(read_bytes));

    // Embedding phase.
    Tick emb_done = input_done;
    if (frac_gpu > 0.0) {
        const Tick gathered = gpu_mem_->acquireAt(input_done, noisy(
            bg * fp.embedding_bytes * params.emb_train_bytes_multiplier *
            frac_gpu * std::max(plan.access_imbalance, 1.0)));
        const Tick exchanged = interconnect_->transferAt(gathered, noisy(
            2.0 * bg * fp.pooled_bytes * frac_gpu * (g - 1.0) / g));
        emb_done = std::max(emb_done, exchanged);
    }
    if (frac_host > 0.0) {
        const Tick gathered = host_mem_->acquireAt(input_done, noisy(
            bg * fp.embedding_bytes * params.emb_train_bytes_multiplier *
            frac_host));
        const Tick staged = pcie_->transferAt(gathered, noisy(
            2.0 * bg * fp.pooled_bytes * frac_host));
        emb_done = std::max(emb_done, staged);
    }
    if (frac_remote > 0.0 && !sparse_ps_.empty()) {
        auto& nic = *trainer_nic_[0];
        Tick responses = input_done;
        for (auto& ps : sparse_ps_) {
            const Tick sent = nic.transferAt(input_done, noisy(
                bg * ps.request_bytes_pe * 0.1 * frac_remote));
            const Tick gathered = ps.mem->acquireAt(sent, noisy(
                bg * ps.gather_bytes_pe * frac_remote));
            const Tick pooled = ps.cpu->acquireAt(gathered, noisy(
                bg * ps.pool_flops_pe * frac_remote));
            const Tick replied = ps.nic->transferAt(pooled, noisy(
                bg * ps.response_bytes_pe * frac_remote));
            responses = std::max(responses, replied);
        }
        // Deserialization on the host CPUs.
        const Tick deserialized = host_cpu_->acquireAt(responses, noisy(
            2.0 * bg * fp.pooled_bytes * frac_remote /
            params.serialization_bw_per_socket));
        emb_done = std::max(emb_done, deserialized);
    }

    // MLP compute + kernel dispatch + allreduce.
    const double fwd_flops = fp.mlp_flops + fp.interaction_flops;
    const double train_flops =
        fwd_flops * (1.0 + params.backward_flops_multiplier);
    const Tick dispatched = emb_done +
        secondsToTicks(params.gpu_iteration_overhead);
    const Tick computed =
        gpu_compute_->acquireAt(dispatched, noisy(bg * train_flops));
    const double dense_params =
        static_cast<double>(cfg_.model.mlpParams());
    const double allreduce_bw = p.has_nvlink
        ? p.gpu_interconnect.bandwidth : p.host_gpu.bandwidth / 2.0;
    const Tick reduced = computed + secondsToTicks(
        dense_params * sizeof(float) * (g - 1.0) / g / allreduce_bw);
    if (obs::Tracer::enabled()) {
        const std::string track = workerTrack(0, worker);
        simSpan(track, "input", start, input_done);
        simSpan(track, "embedding", input_done, emb_done);
        simSpan(track, "mlp", emb_done, computed);
        simSpan(track, "allreduce", computed, reduced);
    }
    return reduced;
}

} // namespace

double
DistSimResult::meanUtilization(const std::string& key) const
{
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& [name, util] : utilization) {
        if (name.find(key) != std::string::npos) {
            total += util;
            ++count;
        }
    }
    return count ? total / static_cast<double>(count) : 0.0;
}


DistSimResult
runDistSim(const DistSimConfig& config)
{
    Simulation simulation(config);
    return simulation.run();
}

} // namespace sim
} // namespace recsim
