#include "sim/dist_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "cost/cache_model.h"
#include "des/event_queue.h"
#include "graph/step_graph.h"
#include "des/sim_object.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace sim {

namespace {

using des::EventQueue;
using des::LinkModel;
using des::Resource;
using des::secondsToTicks;
using des::Tick;
using des::ticksToSeconds;

/** A sparse parameter server: gather memory, pooling CPU, NIC. */
struct SparsePs
{
    std::unique_ptr<Resource> mem;    // gather bytes/s
    std::unique_ptr<Resource> cpu;    // pooling flops/s
    std::unique_ptr<LinkModel> nic;
    double gather_bytes_pe = 0.0;     // per trainer-example served here
    double pool_flops_pe = 0.0;
    double response_bytes_pe = 0.0;
    double request_bytes_pe = 0.0;
};

/**
 * Shared state of one simulated run. Resources are FIFO servers that
 * return completion ticks, so a worker computes its whole iteration
 * schedule synchronously at iteration start and re-arms itself at the
 * completion tick.
 */
class Simulation
{
  public:
    explicit Simulation(const DistSimConfig& cfg);

    DistSimResult run();

  private:
    void startWorker(std::size_t trainer, std::size_t worker);
    Tick cpuIteration(std::size_t trainer, std::size_t worker,
                      Tick start);
    Tick gpuIteration(std::size_t worker, Tick start);
    double noisy(double value);
    void finishIteration(std::size_t trainer, std::size_t worker,
                         Tick start, Tick end);

    /** Worker-track name, e.g. "trainer0.w1" / "gpu.w0". */
    std::string workerTrack(std::size_t trainer, std::size_t worker)
        const;

    /** Emit a simulated-time span when tracing is on. */
    static void simSpan(const std::string& track, const char* name,
                        Tick start, Tick end)
    {
        if (obs::Tracer::enabled() && end > start)
            obs::Tracer::global().addSimSpan(track, name, start, end);
    }

    static constexpr std::size_t kNoNode =
        std::numeric_limits<std::size_t>::max();

    /**
     * Attribute the interval [a, b) to one StepGraph node: per-node
     * time bookkeeping for DistSimResult::node_seconds plus a sim span
     * named by the node id when tracing.
     */
    void noteNode(std::size_t node_idx, const std::string& track,
                  Tick a, Tick b)
    {
        if (node_idx == kNoNode || b <= a)
            return;
        iter_nodes_.push_back({node_idx, ticksToSeconds(b - a)});
        if (obs::Tracer::enabled()) {
            obs::Tracer::global().addSimSpan(
                track, graph_->nodes[node_idx].id, a, b);
        }
    }

    /**
     * Subdivide [a, b) across several nodes proportionally to their
     * modeled cost fractions (which sum to 1).
     */
    void noteInterval(
        const std::vector<std::pair<std::size_t, double>>& weights,
        const std::string& track, Tick a, Tick b)
    {
        if (b <= a || weights.empty())
            return;
        const auto span = static_cast<double>(b - a);
        double acc = 0.0;
        Tick cur = a;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i].second;
            Tick end = i + 1 == weights.size()
                ? b
                : a + static_cast<Tick>(span * acc + 0.5);
            end = std::min(std::max(end, cur), b);
            noteNode(weights[i].first, track, cur, end);
            cur = end;
        }
    }

    const DistSimConfig& cfg_;
    cost::IterationModel analytical_;
    EventQueue eq_;
    util::Rng rng_;

    // Trainer-side resources (CPU path: one per trainer; GPU path:
    // index 0 holds the GPU server).
    std::vector<std::unique_ptr<Resource>> trainer_cpu_;
    std::vector<std::unique_ptr<LinkModel>> trainer_nic_;
    /**
     * Gradient pushes are reserved at iteration-start time for a point
     * in the future; putting them on the same FIFO link as requests
     * would let those future reservations block other workers' current
     * requests (the FIFO resource model reserves in processing order).
     * A separate channel keeps the model causal; the uplink is rarely
     * the bottleneck, so the bandwidth split is a minor approximation.
     */
    std::vector<std::unique_ptr<LinkModel>> trainer_push_;
    std::vector<SparsePs> sparse_ps_;
    std::unique_ptr<LinkModel> dense_ps_nic_;

    // GPU-server resources.
    std::unique_ptr<Resource> gpu_compute_;
    std::unique_ptr<Resource> gpu_mem_;
    std::unique_ptr<LinkModel> interconnect_;
    std::unique_ptr<Resource> host_mem_;
    std::unique_ptr<Resource> host_cpu_;
    std::unique_ptr<LinkModel> pcie_;

    // Per-iteration demands (precomputed).
    double compute_seconds_iter_ = 0.0;
    double net_bytes_iter_ = 0.0;
    double dense_sync_bytes_ = 0.0;

    // StepGraph bookkeeping: the bound graph, the graph-node index of
    // every DES leg, and cost-fraction weights for subdividing the
    // monolithic compute/gather intervals across their nodes.
    const graph::StepGraph* graph_ = nullptr;
    std::vector<std::size_t> ps_request_node_, ps_gather_node_,
        ps_pool_node_, ps_response_node_, ps_push_node_;
    std::size_t dense_sync_node_ = kNoNode;
    std::size_t input_node_ = kNoNode, a2a_node_ = kNoNode,
        pcie_node_ = kNoNode, deser_node_ = kNoNode,
        allreduce_node_ = kNoNode, optimizer_node_ = kNoNode;
    std::vector<std::pair<std::size_t, double>> compute_weights_;
    std::vector<std::pair<std::size_t, double>> emb_gpu_weights_;
    std::vector<std::pair<std::size_t, double>> emb_host_weights_;

    /**
     * Edge-derived split of the compute interval: nodes with no comm
     * leg upstream (bottom MLP, projections, lookup marshalling) start
     * at iteration start and overlap the RPC/exchange legs; nodes
     * downstream of a comm leg (interaction onward) wait for it.
     * compute_pre_share_ is the pre-side fraction of the compute cost;
     * the weight lists are renormalized within their own interval.
     */
    double compute_pre_share_ = 0.0;
    std::vector<std::pair<std::size_t, double>> compute_pre_weights_;
    std::vector<std::pair<std::size_t, double>> compute_post_weights_;

    /** Scratch: (node index, seconds) of the iteration in flight. */
    std::vector<std::pair<std::size_t, double>> iter_nodes_;
    /** Committed per-node seconds over the measurement window. */
    std::vector<double> node_accum_;

    Tick measure_start_ = 0;
    Tick measure_end_ = 0;
    uint64_t iterations_done_ = 0;
    double latency_sum_ = 0.0;
    std::vector<uint64_t> worker_warmup_left_;
    bool gpu_mode_ = false;

    DistSimResult result_;
};

Simulation::Simulation(const DistSimConfig& cfg)
    : cfg_(cfg), analytical_(cfg.model, cfg.system, cfg.params),
      rng_(cfg.seed)
{
}

double
Simulation::noisy(double value)
{
    if (cfg_.service_noise_sigma <= 0.0)
        return value;
    return value * rng_.lognormal(0.0, cfg_.service_noise_sigma);
}

DistSimResult
Simulation::run()
{
    const auto& plan = analytical_.plan();
    if (!plan.feasible) {
        result_.feasible = false;
        result_.infeasible_reason = plan.infeasible_reason;
        return result_;
    }
    const auto& sys = cfg_.system;
    const auto& p = sys.platform;
    const auto& params = cfg_.params;
    // Work quantities come from the model's StepGraph — the same IR the
    // analytical model folds and the real trainer executes.
    const auto& sum = analytical_.workSummary();
    graph_ = &analytical_.stepGraph();
    node_accum_.assign(graph_->nodes.size(), 0.0);
    gpu_mode_ = p.num_gpus > 0;

    // O(1) per lookup: bindStepGraph() indexed the graph's comm nodes.
    auto nodeIdx = [this](graph::CommOp op, int shard) {
        const graph::Node* node = graph_->findComm(op, shard);
        return node == nullptr
            ? kNoNode
            : static_cast<std::size_t>(node - graph_->nodes.data());
    };

    const double fwd_flops = sum.mlp_flops + sum.interaction_flops;
    const double train_flops =
        fwd_flops * (1.0 + params.backward_flops_multiplier);
    const double b = static_cast<double>(sys.batch_size);
    const double dense_params = sum.dense_param_count;
    const double sync_period = static_cast<double>(
        std::max<std::size_t>(sys.easgd_sync_period, 1));
    dense_sync_bytes_ = 2.0 * dense_params * sizeof(float) / sync_period;

    const hw::Platform ps_hw = hw::Platform::dualSocketCpu();

    // Sparse PS shards (CPU path and GPU remote path share this).
    const bool remote = !gpu_mode_ || plan.remote_lookup_fraction > 0.0;
    if (remote && sys.num_sparse_ps > 0) {
        const double n_ps = static_cast<double>(sys.num_sparse_ps);
        for (std::size_t i = 0; i < sys.num_sparse_ps; ++i) {
            SparsePs ps;
            const double resident = plan.resident_bytes / n_ps;
            // Mirrors cost::IterationModel::sparsePsCapacity: the
            // placement's hot-tier hit share gathers at the managed
            // tier's rate; exact single-tier rate when no hot budget.
            const double gather_rate = cost::tieredGatherBandwidth(
                ps_hw.host.mem_bandwidth,
                ps_hw.host.hotTierBandwidth(), plan.hot_hit_fraction,
                resident,
                cost::kCpuLlcBytesPerSocket * ps_hw.num_cpu_sockets,
                ps_hw.host.random_access_efficiency,
                params.cached_gather_efficiency);
            const std::string name = "sparse_ps" + std::to_string(i);
            ps.mem = std::make_unique<Resource>(eq_, name + ".mem",
                                                gather_rate);
            ps.cpu = std::make_unique<Resource>(
                eq_, name + ".cpu",
                ps_hw.host.peak_flops * params.cpu_mlp_efficiency *
                    params.ps_pooling_flops_fraction);
            ps.nic = std::make_unique<LinkModel>(
                eq_, name + ".nic",
                ps_hw.network.bandwidth * params.network_goodput,
                secondsToTicks(ps_hw.network.latency));
            // This shard's share of the per-example lookup traffic,
            // as bound onto the graph's RPC-leg nodes.
            const std::size_t req =
                nodeIdx(graph::CommOp::PsRequest, static_cast<int>(i));
            const double share = req != kNoNode
                ? graph_->nodes[req].share : 0.0;
            ps_request_node_.push_back(req);
            ps_gather_node_.push_back(
                nodeIdx(graph::CommOp::PsGather, static_cast<int>(i)));
            ps_pool_node_.push_back(
                nodeIdx(graph::CommOp::PsPool, static_cast<int>(i)));
            ps_response_node_.push_back(
                nodeIdx(graph::CommOp::PsResponse, static_cast<int>(i)));
            ps_push_node_.push_back(
                nodeIdx(graph::CommOp::GradPush, static_cast<int>(i)));
            ps.gather_bytes_pe = sum.embedding_bytes *
                params.emb_train_bytes_multiplier * share;
            ps.pool_flops_pe = sum.embedding_lookups *
                static_cast<double>(sum.emb_dim) * 4.0 * share;
            ps.response_bytes_pe = sum.pooled_bytes * share;
            ps.request_bytes_pe = (sum.pooled_bytes +
                sum.embedding_lookups *
                    params.request_bytes_per_lookup) * share;
            sparse_ps_.push_back(std::move(ps));
        }
    }
    dense_sync_node_ = nodeIdx(graph::CommOp::DenseSync, -1);
    input_node_ = nodeIdx(graph::CommOp::Input, -1);
    a2a_node_ = nodeIdx(graph::CommOp::AllToAll, -1);
    pcie_node_ = nodeIdx(graph::CommOp::PcieStage, -1);
    deser_node_ = nodeIdx(graph::CommOp::Deserialize, -1);
    allreduce_node_ = nodeIdx(graph::CommOp::AllReduce, -1);
    optimizer_node_ = graph_->indexOf("optimizer");
    if (optimizer_node_ == graph::StepGraph::npos)
        optimizer_node_ = kNoNode;

    if (!gpu_mode_) {
        // CPU distributed training: per-trainer CPU (a rate-1 seconds
        // server) and NIC; one dense-PS NIC shared by all trainers.
        const double act_bytes_pe = sum.activation_bytes;
        const double llc =
            0.5 * cost::kCpuLlcBytesPerSocket * p.num_cpu_sockets;
        const double ws = b * act_bytes_pe;
        const double cache_factor = ws > llc
            ? std::pow(llc / ws, params.cpu_cache_pressure_exponent)
            : 1.0;
        const double host_flops = p.host.peak_flops *
            params.cpu_mlp_efficiency * cache_factor;
        // Mirrors IterationModel::estimateCpu(): unfused GEMM epilogue
        // traffic and the per-lookup-node dispatch charge ride the
        // compute interval, so fusePass shrinks the simulated column
        // exactly as it shrinks the analytical one.
        compute_seconds_iter_ = b * (train_flops / host_flops +
            (sum.epilogue_traffic_bytes +
             sum.bwd_epilogue_traffic_bytes) / p.host.mem_bandwidth +
            params.cpu_per_example_overhead +
            sum.embedding_lookups * params.cpu_per_lookup_overhead) +
            static_cast<double>(sum.embedding_tables) *
                params.cpu_per_table_dispatch +
            params.cpu_iteration_overhead;
        net_bytes_iter_ = b * (2.0 * sum.pooled_bytes +
            sum.embedding_lookups * params.request_bytes_per_lookup);

        // The trainer-compute interval is one monolithic service
        // acquisition; subdivide it across the graph's compute nodes by
        // the same per-node costs the analytical nodeBreakdown uses.
        {
            double total = 0.0;
            for (std::size_t i = 0; i < graph_->nodes.size(); ++i) {
                const auto& node = graph_->nodes[i];
                double c = 0.0;
                switch (node.kind) {
                  case graph::NodeKind::Gemm:
                  case graph::NodeKind::Interaction:
                    c = b * node.fwd_flops *
                        (1.0 + params.backward_flops_multiplier) /
                        host_flops +
                        b * (node.epilogue_traffic_bytes +
                             node.bwd_epilogue_traffic_bytes) /
                            p.host.mem_bandwidth;
                    break;
                  case graph::NodeKind::EmbeddingLookup:
                    c = b * node.lookups_per_example *
                            params.cpu_per_lookup_overhead +
                        params.cpu_per_table_dispatch;
                    break;
                  case graph::NodeKind::OptimizerUpdate:
                    c = b * params.cpu_per_example_overhead +
                        params.cpu_iteration_overhead;
                    break;
                  default:
                    break;
                }
                if (c > 0.0) {
                    compute_weights_.push_back({i, c});
                    total += c;
                }
            }
            for (auto& [idx, w] : compute_weights_)
                w /= total;
        }

        for (std::size_t t = 0; t < sys.num_trainers; ++t) {
            const std::string name = "trainer" + std::to_string(t);
            trainer_cpu_.push_back(std::make_unique<Resource>(
                eq_, name + ".cpu", 1.0));
            trainer_nic_.push_back(std::make_unique<LinkModel>(
                eq_, name + ".nic",
                p.network.bandwidth * params.network_goodput,
                secondsToTicks(p.network.latency)));
            trainer_push_.push_back(std::make_unique<LinkModel>(
                eq_, name + ".push",
                p.network.bandwidth * params.network_goodput,
                secondsToTicks(p.network.latency)));
        }
        if (sys.num_dense_ps > 0) {
            dense_ps_nic_ = std::make_unique<LinkModel>(
                eq_, "dense_ps.nic",
                static_cast<double>(sys.num_dense_ps) *
                    ps_hw.network.bandwidth * params.network_goodput,
                secondsToTicks(ps_hw.network.latency));
        }
    } else {
        // One GPU server; phases modeled as serially acquired resources.
        const double g = static_cast<double>(p.num_gpus);
        gpu_compute_ = std::make_unique<Resource>(
            eq_, "gpu.compute",
            g * p.gpu.peak_flops * params.gpu_mlp_efficiency);
        const double shards = static_cast<double>(
            std::max<std::size_t>(plan.gpus_used, 1));
        double max_shard = 0.0;
        for (std::size_t s = 0;
             s < std::min<std::size_t>(plan.partition.numShards(),
                                       static_cast<std::size_t>(g));
             ++s) {
            max_shard = std::max(max_shard,
                                 plan.partition.shard_bytes[s]);
        }
        const double gather_rate = cost::tieredGatherBandwidth(
            p.gpu.mem_bandwidth, p.gpu.hotTierBandwidth(),
            plan.hot_hit_fraction, max_shard, cost::kGpuL2Bytes,
            p.gpu.random_access_efficiency,
            params.cached_gather_efficiency);
        gpu_mem_ = std::make_unique<Resource>(
            eq_, "gpu.mem", shards * gather_rate);
        interconnect_ = std::make_unique<LinkModel>(
            eq_, "gpu.interconnect",
            shards * std::max(p.gpu_interconnect.bandwidth, 1.0),
            secondsToTicks(p.gpu_interconnect.latency));
        host_mem_ = std::make_unique<Resource>(
            eq_, "host.mem",
            cost::tieredGatherBandwidth(
                p.host.mem_bandwidth, p.host.hotTierBandwidth(),
                plan.hot_hit_fraction,
                plan.resident_bytes *
                    (1.0 - plan.gpu_lookup_fraction -
                     plan.remote_lookup_fraction),
                cost::kCpuLlcBytesPerSocket * p.num_cpu_sockets,
                p.host.random_access_efficiency,
                params.cached_gather_efficiency));
        host_cpu_ = std::make_unique<Resource>(
            eq_, "host.cpu", static_cast<double>(p.num_cpu_sockets));
        pcie_ = std::make_unique<LinkModel>(
            eq_, "host.pcie", g * p.host_gpu.bandwidth,
            secondsToTicks(p.host_gpu.latency));
        trainer_nic_.push_back(std::make_unique<LinkModel>(
            eq_, "gpu_server.nic",
            p.network.bandwidth * params.network_goodput,
            secondsToTicks(p.network.latency)));

        // Subdivision weights: GPU compute by node FLOPs, the gather
        // intervals by each table's bytes within its hosting device.
        double gpu_bytes = 0.0, host_bytes = 0.0;
        for (std::size_t i = 0; i < graph_->nodes.size(); ++i) {
            const auto& node = graph_->nodes[i];
            if ((node.kind == graph::NodeKind::Gemm ||
                 node.kind == graph::NodeKind::Interaction) &&
                node.fwd_flops > 0.0 && fwd_flops > 0.0) {
                compute_weights_.push_back(
                    {i, node.fwd_flops / fwd_flops});
            }
            if (node.kind != graph::NodeKind::EmbeddingLookup)
                continue;
            if (node.device == graph::Device::Gpu) {
                emb_gpu_weights_.push_back({i, node.bytes_per_example});
                gpu_bytes += node.bytes_per_example;
            } else if (node.device == graph::Device::HostCpu) {
                emb_host_weights_.push_back({i, node.bytes_per_example});
                host_bytes += node.bytes_per_example;
            }
        }
        for (auto& [idx, w] : emb_gpu_weights_)
            w /= gpu_bytes;
        for (auto& [idx, w] : emb_host_weights_)
            w /= host_bytes;
    }

    // Split the compute interval on the graph's dependency edges: a
    // compute node downstream of a comm leg (interaction and everything
    // after it — the pooled vectors join there) cannot start before the
    // leg completes, while the rest (bottom MLP, projections, lookup
    // marshalling) is ready at iteration start and genuinely overlaps
    // the comm. The input pipeline is excluded: it gates the whole
    // iteration and is scheduled explicitly on the GPU path.
    {
        std::vector<char> downstream(graph_->nodes.size(), 0);
        for (std::size_t i : graph_->topoOrder()) {
            const auto& node = graph_->nodes[i];
            bool flag = node.kind == graph::NodeKind::Comm &&
                node.comm != graph::CommOp::Input;
            for (std::size_t d : node.deps)
                flag = flag || downstream[d] != 0;
            downstream[i] = flag ? 1 : 0;
        }
        double pre_mass = 0.0, total_mass = 0.0;
        for (const auto& [idx, w] : compute_weights_) {
            total_mass += w;
            if (downstream[idx] == 0)
                pre_mass += w;
        }
        compute_pre_share_ =
            total_mass > 0.0 ? pre_mass / total_mass : 0.0;
        for (const auto& [idx, w] : compute_weights_) {
            (downstream[idx] != 0 ? compute_post_weights_
                                  : compute_pre_weights_)
                .push_back({idx, w});
        }
        const double post_mass = total_mass - pre_mass;
        for (auto& [idx, w] : compute_pre_weights_) {
            if (pre_mass > 0.0)
                w /= pre_mass;
        }
        for (auto& [idx, w] : compute_post_weights_) {
            if (post_mass > 0.0)
                w /= post_mass;
        }
    }

    // Launch workers and run.
    const std::size_t workers_per_trainer =
        std::max<std::size_t>(sys.hogwild_threads, 1);
    const std::size_t n_trainers = gpu_mode_ ? 1 : sys.num_trainers;
    const uint64_t total_workers = n_trainers * workers_per_trainer;
    worker_warmup_left_.assign(total_workers, cfg_.warmup_iterations);

    // Warmup horizon is open-ended; the measurement window opens when
    // every worker has finished warmup. We approximate by running a
    // generous limit and only counting iterations inside the window.
    measure_start_ = secondsToTicks(0.05);
    measure_end_ = measure_start_ + secondsToTicks(cfg_.measure_seconds);

    for (std::size_t t = 0; t < n_trainers; ++t)
        for (std::size_t w = 0; w < workers_per_trainer; ++w)
            startWorker(t, w);

    eq_.run(measure_end_);

    const double window = ticksToSeconds(measure_end_ - measure_start_);
    const double examples_per_iter = gpu_mode_
        ? b * static_cast<double>(p.num_gpus) : b;
    result_.iterations = iterations_done_;
    result_.throughput =
        static_cast<double>(iterations_done_) * examples_per_iter /
        window;
    result_.mean_iteration_seconds = iterations_done_
        ? latency_sum_ / static_cast<double>(iterations_done_) : 0.0;

    auto record = [&](const std::string& name, double util) {
        result_.utilization[name] = std::min(1.0, util);
    };
    const Tick end = measure_end_;
    for (std::size_t t = 0; t < trainer_cpu_.size(); ++t)
        record(trainer_cpu_[t]->name(),
               trainer_cpu_[t]->utilization(end));
    for (std::size_t t = 0; t < trainer_nic_.size(); ++t)
        record(trainer_nic_[t]->name(),
               trainer_nic_[t]->utilization(end));
    for (auto& ps : sparse_ps_) {
        record(ps.mem->name(), ps.mem->utilization(end));
        record(ps.cpu->name(), ps.cpu->utilization(end));
        record(ps.nic->name(), ps.nic->utilization(end));
    }
    if (dense_ps_nic_)
        record(dense_ps_nic_->name(), dense_ps_nic_->utilization(end));
    if (gpu_compute_) {
        record(gpu_compute_->name(), gpu_compute_->utilization(end));
        record(gpu_mem_->name(), gpu_mem_->utilization(end));
        record(interconnect_->name(), interconnect_->utilization(end));
        record(host_mem_->name(), host_mem_->utilization(end));
        record(host_cpu_->name(), host_cpu_->utilization(end));
        record(pcie_->name(), pcie_->utilization(end));
    }
    if (iterations_done_ > 0) {
        const double n = static_cast<double>(iterations_done_);
        for (std::size_t i = 0; i < graph_->nodes.size(); ++i) {
            if (node_accum_[i] > 0.0)
                result_.node_seconds[graph_->nodes[i].id] =
                    node_accum_[i] / n;
        }
    }
    return result_;
}

void
Simulation::startWorker(std::size_t trainer, std::size_t worker)
{
    eq_.scheduleAfter(0, [this, trainer, worker] {
        const Tick start = eq_.now();
        const Tick end = gpu_mode_
            ? gpuIteration(worker, start)
            : cpuIteration(trainer, worker, start);
        finishIteration(trainer, worker, start, end);
    });
}

void
Simulation::finishIteration(std::size_t trainer, std::size_t worker,
                            Tick start, Tick end)
{
    simSpan(workerTrack(trainer, worker), "iteration", start, end);
    // Count by completion time only: warmup is excluded by the window
    // opening, so queueing delay under many workers does not eat into
    // the measured window.
    if (end >= measure_start_ && end <= measure_end_) {
        ++iterations_done_;
        latency_sum_ += ticksToSeconds(end - start);
        for (const auto& [idx, s] : iter_nodes_)
            node_accum_[idx] += s;
    }
    iter_nodes_.clear();
    if (end >= measure_end_)
        return;
    eq_.schedule(end, [this, trainer, worker, end] {
        const Tick next_end = gpu_mode_
            ? gpuIteration(worker, end)
            : cpuIteration(trainer, worker, end);
        finishIteration(trainer, worker, end, next_end);
    });
}

std::string
Simulation::workerTrack(std::size_t trainer, std::size_t worker) const
{
    return (gpu_mode_ ? "gpu" : "trainer" + std::to_string(trainer)) +
        ".w" + std::to_string(worker);
}

Tick
Simulation::cpuIteration(std::size_t trainer, std::size_t worker,
                         Tick start)
{
    const double b = static_cast<double>(cfg_.system.batch_size);
    auto& nic = *trainer_nic_[trainer];
    auto& cpu = *trainer_cpu_[trainer];
    const std::string track = obs::Tracer::enabled()
        ? workerTrack(trainer, worker) : std::string();

    // 1. Issue lookup requests; the per-shard RPC chains run
    // independently (graph edges: request -> gather -> pool ->
    // response per shard).
    Tick responses = start;
    for (std::size_t i = 0; i < sparse_ps_.size(); ++i) {
        auto& ps = sparse_ps_[i];
        if (ps.gather_bytes_pe <= 0.0 && ps.response_bytes_pe <= 0.0)
            continue;
        const Tick sent =
            nic.transferAt(start, noisy(b * ps.request_bytes_pe * 0.1));
        const Tick gathered =
            ps.mem->acquireAt(sent, noisy(b * ps.gather_bytes_pe));
        const Tick pooled =
            ps.cpu->acquireAt(gathered, noisy(b * ps.pool_flops_pe));
        const Tick replied =
            ps.nic->transferAt(pooled, noisy(b * ps.response_bytes_pe));
        noteNode(ps_request_node_[i], track, start, sent);
        noteNode(ps_gather_node_[i], track, sent, gathered);
        noteNode(ps_pool_node_[i], track, gathered, pooled);
        noteNode(ps_response_node_[i], track, pooled, replied);
        responses = std::max(responses, replied);
    }

    // 2a. Compute with no comm upstream (bottom MLP, projections,
    // lookup marshalling) overlaps the RPC legs — the comm/compute
    // overlap the paper's async CPU training relies on (Sec. V).
    Tick pre_done = start;
    const double pre_seconds =
        compute_seconds_iter_ * compute_pre_share_;
    if (pre_seconds > 0.0) {
        pre_done = cpu.acquireAt(start, noisy(pre_seconds));
        noteInterval(compute_pre_weights_, track, start, pre_done);
    }

    // 2b. Compute downstream of the pooled responses (interaction,
    // top MLP, loss, optimizer) joins on responses + local compute.
    const Tick join = std::max(pre_done, responses);
    Tick computed = join;
    const double post_seconds = compute_seconds_iter_ - pre_seconds;
    if (post_seconds > 0.0) {
        computed = cpu.acquireAt(join, noisy(post_seconds));
        noteInterval(compute_post_weights_, track, join, computed);
    }

    // 3. Push pooled gradients back and amortized EASGD dense sync.
    Tick done = computed;
    auto& push = *trainer_push_[trainer];
    for (std::size_t i = 0; i < sparse_ps_.size(); ++i) {
        auto& ps = sparse_ps_[i];
        if (ps.response_bytes_pe <= 0.0)
            continue;
        const Tick pushed = push.transferAt(
            computed, noisy(b * ps.response_bytes_pe));
        noteNode(ps_push_node_[i], track, computed, pushed);
        done = std::max(done, pushed);
    }
    if (dense_ps_nic_ && dense_sync_bytes_ > 0.0) {
        const Tick synced = dense_ps_nic_->transferAt(
            computed, noisy(dense_sync_bytes_));
        noteNode(dense_sync_node_, track, computed, synced);
        done = std::max(done, synced);
    }
    return done;
}

Tick
Simulation::gpuIteration(std::size_t worker, Tick start)
{
    const auto& sys = cfg_.system;
    const auto& p = sys.platform;
    const auto& params = cfg_.params;
    const auto& plan = analytical_.plan();
    const auto& sum = analytical_.workSummary();
    const double g = static_cast<double>(p.num_gpus);
    const double bg = static_cast<double>(sys.batch_size) * g;
    const std::string track = obs::Tracer::enabled()
        ? workerTrack(0, worker) : std::string();

    const double frac_gpu = plan.gpu_lookup_fraction;
    const double frac_remote = plan.remote_lookup_fraction;
    const double frac_host = std::max(0.0, 1.0 - frac_gpu - frac_remote);

    // Input pipeline: host CPU transform + PCIe staging.
    const Tick input_cpu = host_cpu_->acquireAt(start, noisy(
        bg * (params.host_cpu_per_example +
              sum.embedding_lookups * params.host_cpu_per_lookup)));
    const double read_bytes =
        bg * (sum.dense_input_bytes + sum.embedding_lookups * 8.0 + 4.0);
    const Tick input_done =
        pcie_->transferAt(input_cpu, noisy(read_bytes));
    noteNode(input_node_, track, start, input_done);

    // Embedding phase.
    Tick emb_done = input_done;
    if (frac_gpu > 0.0) {
        const Tick gathered = gpu_mem_->acquireAt(input_done, noisy(
            bg * sum.embedding_bytes * params.emb_train_bytes_multiplier *
            frac_gpu * std::max(plan.access_imbalance, 1.0)));
        const Tick exchanged = interconnect_->transferAt(gathered, noisy(
            2.0 * bg * sum.pooled_bytes * frac_gpu * (g - 1.0) / g));
        noteInterval(emb_gpu_weights_, track, input_done, gathered);
        noteNode(a2a_node_, track, gathered, exchanged);
        emb_done = std::max(emb_done, exchanged);
    }
    if (frac_host > 0.0) {
        const Tick gathered = host_mem_->acquireAt(input_done, noisy(
            bg * sum.embedding_bytes * params.emb_train_bytes_multiplier *
            frac_host));
        const Tick staged = pcie_->transferAt(gathered, noisy(
            2.0 * bg * sum.pooled_bytes * frac_host));
        noteInterval(emb_host_weights_, track, input_done, gathered);
        noteNode(pcie_node_, track, gathered, staged);
        emb_done = std::max(emb_done, staged);
    }
    if (frac_remote > 0.0 && !sparse_ps_.empty()) {
        auto& nic = *trainer_nic_[0];
        Tick responses = input_done;
        for (std::size_t i = 0; i < sparse_ps_.size(); ++i) {
            auto& ps = sparse_ps_[i];
            const Tick sent = nic.transferAt(input_done, noisy(
                bg * ps.request_bytes_pe * 0.1 * frac_remote));
            const Tick gathered = ps.mem->acquireAt(sent, noisy(
                bg * ps.gather_bytes_pe * frac_remote));
            const Tick pooled = ps.cpu->acquireAt(gathered, noisy(
                bg * ps.pool_flops_pe * frac_remote));
            const Tick replied = ps.nic->transferAt(pooled, noisy(
                bg * ps.response_bytes_pe * frac_remote));
            noteNode(ps_request_node_[i], track, input_done, sent);
            noteNode(ps_gather_node_[i], track, sent, gathered);
            noteNode(ps_pool_node_[i], track, gathered, pooled);
            noteNode(ps_response_node_[i], track, pooled, replied);
            responses = std::max(responses, replied);
        }
        // Deserialization on the host CPUs.
        const Tick deserialized = host_cpu_->acquireAt(responses, noisy(
            2.0 * bg * sum.pooled_bytes * frac_remote /
            params.serialization_bw_per_socket));
        noteNode(deser_node_, track, responses, deserialized);
        emb_done = std::max(emb_done, deserialized);
    }

    // MLP compute + kernel dispatch + allreduce. Compute with no comm
    // upstream (the bottom MLP) overlaps the embedding exchange, per
    // the graph edges — dense compute hiding the all-to-all; the rest
    // (interaction onward) waits for the pooled embeddings.
    const double fwd_flops = sum.mlp_flops + sum.interaction_flops;
    const double train_flops =
        fwd_flops * (1.0 + params.backward_flops_multiplier);
    Tick pre_done = input_done;
    const double pre_flops = bg * train_flops * compute_pre_share_;
    if (pre_flops > 0.0) {
        pre_done = gpu_compute_->acquireAt(input_done, noisy(pre_flops));
        noteInterval(compute_pre_weights_, track, input_done, pre_done);
    }
    const Tick joined = std::max(emb_done, pre_done);
    const Tick dispatched = joined +
        secondsToTicks(params.gpu_iteration_overhead);
    const Tick computed = gpu_compute_->acquireAt(
        dispatched, noisy(bg * train_flops - pre_flops));
    noteNode(optimizer_node_, track, joined, dispatched);
    noteInterval(compute_post_weights_, track, dispatched, computed);
    const double dense_params = sum.dense_param_count;
    const double allreduce_bw = p.has_nvlink
        ? p.gpu_interconnect.bandwidth : p.host_gpu.bandwidth / 2.0;
    const Tick reduced = computed + secondsToTicks(
        dense_params * sizeof(float) * (g - 1.0) / g / allreduce_bw);
    noteNode(allreduce_node_, track, computed, reduced);
    return reduced;
}

} // namespace

double
DistSimResult::meanUtilization(const std::string& key) const
{
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& [name, util] : utilization) {
        if (name.find(key) != std::string::npos) {
            total += util;
            ++count;
        }
    }
    return count ? total / static_cast<double>(count) : 0.0;
}


DistSimResult
runDistSim(const DistSimConfig& config)
{
    Simulation simulation(config);
    return simulation.run();
}

} // namespace sim
} // namespace recsim
