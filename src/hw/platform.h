/**
 * @file
 * Hardware platform descriptors for the three training systems of
 * Table I: the dual-socket CPU server, the Big Basin 8-GPU server, and
 * the prototype Zion 8-socket GPU server. These are the constants the
 * analytical cost models and the discrete-event simulation consume.
 *
 * Derating factors (achievable fraction of peak for GEMMs, random-access
 * efficiency of gathers) are first-order calibration constants; they are
 * documented per platform and recorded in EXPERIMENTS.md.
 */
#pragma once

#include <string>

namespace recsim {
namespace hw {

/** A compute device: one CPU socket group or one GPU. */
struct ComputeDevice
{
    std::string name;
    /** Peak FP32 throughput, FLOP/s. */
    double peak_flops = 0.0;
    /** Achievable fraction of peak for DLRM-scale GEMMs. */
    double mlp_efficiency = 0.35;
    /** Attached memory streaming bandwidth, B/s. */
    double mem_bandwidth = 0.0;
    /** Attached memory capacity, bytes. */
    double mem_capacity = 0.0;
    /** Fraction of streaming bandwidth achieved by random gathers. */
    double random_access_efficiency = 0.3;
    /** Fixed per-kernel dispatch overhead, seconds (GPUs only). */
    double kernel_launch_overhead = 0.0;
    /**
     * Embedding hot-tier capacity, bytes (HBM partition, on-package
     * SRAM, or a pinned-DRAM cache in front of slower storage). 0 =
     * flat single-tier memory; the tiered gather terms in cost/ and
     * sim/ only engage when this is set.
     */
    double hot_tier_bytes = 0.0;
    /**
     * Hot-tier streaming bandwidth, B/s. 0 defaults to mem_bandwidth
     * (a pinned partition of the same DRAM: capacity tiering without a
     * bandwidth step — hits then only skip the random-access derating).
     */
    double hot_tier_bandwidth = 0.0;

    /** Effective GEMM rate, FLOP/s. */
    double effectiveFlops() const { return peak_flops * mlp_efficiency; }

    /** Effective gather bandwidth, B/s. */
    double gatherBandwidth() const
    {
        return mem_bandwidth * random_access_efficiency;
    }

    /** Hot-tier bandwidth with the same-DRAM default applied. */
    double hotTierBandwidth() const
    {
        return hot_tier_bandwidth > 0.0 ? hot_tier_bandwidth
                                        : mem_bandwidth;
    }
};

/** A point-to-point or aggregated interconnect. */
struct Link
{
    std::string name;
    /** Per-endpoint bandwidth, B/s. */
    double bandwidth = 0.0;
    /** One-way latency, seconds. */
    double latency = 0.0;

    /** Transfer time for @p bytes including latency. */
    double transferTime(double bytes) const
    {
        return bandwidth > 0.0 ? latency + bytes / bandwidth : latency;
    }
};

/** Which of the three server classes a Platform describes. */
enum class PlatformKind { CpuServer, BigBasin, Zion };

/**
 * One training server (Table I row). The CPU platform has num_gpus == 0;
 * accelerated platforms describe the per-GPU device, the GPU-GPU
 * interconnect and the host link.
 */
struct Platform
{
    std::string name;
    PlatformKind kind = PlatformKind::CpuServer;

    /** Aggregate host CPU (all sockets combined). */
    ComputeDevice host;
    int num_cpu_sockets = 2;

    int num_gpus = 0;
    ComputeDevice gpu;  ///< Per-GPU device (ignored when num_gpus == 0).

    /**
     * Per-GPU aggregate GPU<->GPU bandwidth. On Big Basin this is the
     * NVLink hybrid cube mesh; on the prototype Zion there was no direct
     * GPU-GPU path, so traffic is staged through the host (low
     * bandwidth, high latency) — the paper's explanation for Zion's poor
     * GPU-memory placement performance (Fig 14).
     */
    Link gpu_interconnect;
    bool has_nvlink = false;

    /** Host <-> GPU link (PCIe), per GPU. */
    Link host_gpu;

    /** Server NIC. */
    Link network;

    /** Provisioned power capacity, watts. */
    double power_watts = 0.0;

    /** Total GPU memory across the server, bytes. */
    double totalGpuMemory() const
    {
        return static_cast<double>(num_gpus) * gpu.mem_capacity;
    }

    /** Effective all-GPU GEMM rate, FLOP/s. */
    double totalGpuFlops() const
    {
        return static_cast<double>(num_gpus) * gpu.effectiveFlops();
    }

    // ---- Table I factories -----------------------------------------

    /** Dual-socket Skylake CPU server: 256 GB DRAM, 25 Gbps Ethernet. */
    static Platform dualSocketCpu();

    /**
     * Big Basin: 8x V100 (NVLink hybrid cube mesh), dual-socket host,
     * 256 GB system memory, 100 Gbps Ethernet.
     * @param gpu_mem_gb 16 or 32 (Table I lists both SKUs; the fleet
     *        default is the 16 GB SKU).
     */
    static Platform bigBasin(double gpu_mem_gb = 16.0);

    /**
     * Prototype Zion: 8x V100 without direct GPU-GPU interconnect,
     * 8 CPU sockets, ~2 TB system memory at ~1 TB/s, 4x 100 Gbps IB.
     */
    static Platform zionPrototype();
};

} // namespace hw
} // namespace recsim
