#include "hw/platform.h"

#include "util/units.h"

namespace recsim {
namespace hw {

using util::gbps;
using util::gBps;
using util::kGB;
using util::kTFLOPS;

namespace {

/**
 * One Skylake socket: 20 cores x 2.0 GHz AVX-512 x 32 FLOP/cycle
 * ~= 1.28 TF/s peak; six DDR4-2666 channels ~= 85 GB/s stream.
 */
ComputeDevice
skylakeSocket()
{
    ComputeDevice d;
    d.name = "skylake_socket";
    d.peak_flops = 1.28 * kTFLOPS;
    d.mlp_efficiency = 0.40;
    d.mem_bandwidth = gBps(85.0);
    d.mem_capacity = 128.0 * kGB;
    d.random_access_efficiency = 0.35;
    d.kernel_launch_overhead = 0.0;
    return d;
}

/** Aggregate @p n sockets into one host device. */
ComputeDevice
hostOf(int n_sockets, double total_mem_bytes, double total_bw,
       double random_eff = 0.35)
{
    ComputeDevice d = skylakeSocket();
    d.name = "host_x" + std::to_string(n_sockets);
    d.peak_flops *= n_sockets;
    d.mem_bandwidth = total_bw;
    d.mem_capacity = total_mem_bytes;
    d.random_access_efficiency = random_eff;
    return d;
}

/** NVIDIA Tesla V100: 15.7 TF FP32, 900 GB/s HBM2 (Table I / Sec IV-A). */
ComputeDevice
v100(double mem_gb)
{
    ComputeDevice d;
    d.name = "v100";
    d.peak_flops = 15.7 * kTFLOPS;
    d.mlp_efficiency = 0.45;
    d.mem_bandwidth = gBps(900.0);
    d.mem_capacity = mem_gb * kGB;
    d.random_access_efficiency = 0.35;
    d.kernel_launch_overhead = 8e-6;
    return d;
}

/** Baseline dual-socket server power envelope, watts. */
constexpr double kCpuServerWatts = 450.0;

} // namespace

Platform
Platform::dualSocketCpu()
{
    Platform p;
    p.name = "dual_socket_cpu";
    p.kind = PlatformKind::CpuServer;
    p.num_cpu_sockets = 2;
    p.host = hostOf(2, 256.0 * kGB, gBps(170.0));
    p.num_gpus = 0;
    p.network = {"25GbE", gbps(25.0), 20e-6};
    p.power_watts = kCpuServerWatts;
    return p;
}

Platform
Platform::bigBasin(double gpu_mem_gb)
{
    Platform p;
    p.name = "big_basin";
    p.kind = PlatformKind::BigBasin;
    p.num_cpu_sockets = 2;
    p.host = hostOf(2, 256.0 * kGB, gBps(170.0));
    p.num_gpus = 8;
    p.gpu = v100(gpu_mem_gb);
    // Hybrid cube mesh: 6 NVLink lanes x ~25 GB/s per GPU; effective
    // all-to-all bandwidth per GPU derated for multi-hop routes.
    p.gpu_interconnect = {"nvlink_hcm", gBps(100.0), 5e-6};
    p.has_nvlink = true;
    p.host_gpu = {"pcie3_x16", gBps(12.0), 10e-6};
    p.network = {"100GbE", gbps(100.0), 20e-6};
    // The paper: "Power capacity requirement of a Big Basin server is
    // 7.3 times higher than the dual-socket CPU server."
    p.power_watts = 7.3 * kCpuServerWatts;
    return p;
}

Platform
Platform::zionPrototype()
{
    Platform p;
    p.name = "zion_prototype";
    p.kind = PlatformKind::Zion;
    p.num_cpu_sockets = 8;
    // Zion's 8-socket complex has many more memory channels and deeper
    // queues, and 256 B embedding vectors span four sequential cache
    // lines, so gathers retain a large fraction of stream bandwidth —
    // the paper's "fast look-up operations".
    p.host = hostOf(8, 2000.0 * kGB, gBps(1000.0), 0.80);
    p.num_gpus = 8;
    p.gpu = v100(32.0);
    // Prototype Zion had no direct GPU-GPU communication: all inter-GPU
    // traffic is staged through host memory over PCIe (Fig 14 text).
    p.gpu_interconnect = {"via_host", gBps(2.0), 50e-6};
    p.has_nvlink = false;
    p.host_gpu = {"pcie3_x16", gBps(12.0), 10e-6};
    p.network = {"4x_ib_100", gbps(400.0), 10e-6};
    // 8 sockets + 8 GPUs + fabric; roughly BB plus three extra
    // dual-socket complexes.
    p.power_watts = 10.3 * kCpuServerWatts;
    return p;
}

} // namespace hw
} // namespace recsim
