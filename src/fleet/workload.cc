#include "fleet/workload.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace fleet {

std::vector<WorkloadClass>
defaultWorkloads()
{
    // Relative frequencies/durations follow Fig 2's qualitative layout:
    // recommendation ranking models retrain continuously (hours-long
    // runs, many per day); translation RNNs and vision CNNs train far
    // less frequently but for longer.
    return {
        {"news_feed", ModelFamily::Recommendation, 96.0, 5.0, 0.5},
        {"search", ModelFamily::Recommendation, 48.0, 4.0, 0.5},
        {"language_translation", ModelFamily::Rnn, 4.0, 24.0, 0.6},
        {"facer", ModelFamily::Cnn, 2.0, 12.0, 0.6},
        {"object_detection", ModelFamily::Cnn, 1.0, 48.0, 0.7},
    };
}

std::vector<WorkloadRun>
sampleFleet(const std::vector<WorkloadClass>& classes, double days,
            util::Rng& rng)
{
    RECSIM_ASSERT(days > 0.0, "fleet sample over non-positive horizon");
    std::vector<WorkloadRun> runs;
    for (const auto& cls : classes) {
        const auto whole_days = static_cast<uint64_t>(days);
        for (uint64_t day = 0; day <= whole_days; ++day) {
            const double span =
                std::min(1.0, days - static_cast<double>(day));
            if (span <= 0.0)
                break;
            const uint64_t count =
                rng.poisson(cls.runs_per_day * span);
            for (uint64_t i = 0; i < count; ++i) {
                WorkloadRun run;
                run.workload = cls.name;
                run.day = static_cast<double>(day) +
                    rng.uniform() * span;
                run.duration_hours = cls.mean_duration_hours *
                    rng.lognormal(-0.5 * cls.duration_sigma *
                                      cls.duration_sigma,
                                  cls.duration_sigma);
                runs.push_back(std::move(run));
            }
        }
    }
    return runs;
}

double
recommendationGrowth(double base_runs_per_day, double months)
{
    // 7x over 18 months, i.e. exp growth rate ln(7)/18 per month.
    const double rate = std::log(7.0) / 18.0;
    return base_runs_per_day * std::exp(rate * months);
}

} // namespace fleet
} // namespace recsim
