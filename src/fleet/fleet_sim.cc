#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>

#include "cost/iteration_model.h"
#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace fleet {

UtilizationDistributions
utilizationStudy(const UtilizationStudyConfig& config)
{
    util::Rng rng(config.seed);
    UtilizationDistributions out;
    const char* keys[] = {
        "trainer_cpu", "trainer_mem_bw", "trainer_mem_capacity",
        "trainer_network", "ps_cpu", "ps_mem_bw", "ps_mem_capacity",
        "ps_network",
    };
    for (const char* key : keys)
        out.emplace(key, stats::SampleSet{});

    for (std::size_t run = 0; run < config.num_runs; ++run) {
        // Per-run model-configuration jitter: engineers vary feature
        // lengths, add/drop tables, and tune the batch size.
        model::DlrmConfig m = config.base_model;
        util::Rng run_rng = rng.fork(run + 1);
        const double jitter = config.config_jitter;
        for (auto& spec : m.sparse) {
            spec.mean_length = std::max(
                1.0, spec.mean_length *
                    run_rng.lognormal(0.0, jitter));
        }
        if (!m.sparse.empty() && run_rng.bernoulli(0.3)) {
            // Occasionally drop a table (feature removed).
            m.sparse.erase(m.sparse.begin() +
                static_cast<long>(run_rng.uniformInt(m.sparse.size())));
        }
        cost::SystemConfig sys = config.system;
        sys.batch_size = std::max<std::size_t>(
            32, static_cast<std::size_t>(
                static_cast<double>(sys.batch_size) *
                run_rng.lognormal(0.0, jitter * 0.5)));

        // System-level noise: multiplicative on the achieved
        // utilizations, modeling co-location and hardware variability.
        cost::IterationModel im(m, sys);
        const auto est = im.estimate();
        if (!est.feasible)
            continue;
        auto noisy = [&](double u) {
            return std::clamp(
                u * run_rng.lognormal(0.0, config.system_noise_sigma),
                0.0, 1.0);
        };
        out["trainer_cpu"].add(noisy(est.util.trainer_cpu));
        out["trainer_mem_bw"].add(noisy(est.util.trainer_mem_bw));
        out["trainer_mem_capacity"].add(
            noisy(est.util.trainer_mem_capacity));
        out["trainer_network"].add(noisy(est.util.trainer_network));
        out["ps_cpu"].add(noisy(est.util.sparse_ps_cpu));
        out["ps_mem_bw"].add(noisy(est.util.sparse_ps_mem_bw));
        out["ps_mem_capacity"].add(
            noisy(est.util.sparse_ps_mem_capacity));
        out["ps_network"].add(noisy(est.util.sparse_ps_network));
    }
    return out;
}

ServerCountDistributions
serverCountStudy(const ServerCountStudyConfig& config)
{
    util::Rng rng(config.seed);
    ServerCountDistributions out;
    const double ps_capacity_bytes =
        hw::Platform::dualSocketCpu().host.mem_capacity * 0.55;

    for (std::size_t i = 0; i < config.num_workflows; ++i) {
        // Trainer counts: a modal de-facto value plus a lognormal tail
        // of workflows with special throughput requirements.
        std::size_t trainers;
        if (rng.bernoulli(config.modal_trainer_fraction)) {
            trainers = config.modal_trainers;
        } else {
            trainers = std::max<uint64_t>(
                1, static_cast<uint64_t>(
                    static_cast<double>(config.modal_trainers) *
                    rng.lognormal(0.0, 0.7)));
            trainers = std::min<std::size_t>(trainers, 60);
        }
        out.trainers.add(static_cast<double>(trainers));

        // Parameter-server counts: the larger of a bandwidth-driven
        // baseline (how many shards the lookup traffic needs) and the
        // capacity-driven minimum (how many 256 GB servers hold the
        // tables). Model sizes span ~1 GB to ~1 TB across experiments,
        // so the distribution is wide (Fig 9, right).
        const double model_bytes = 4e9 * rng.lognormal(2.0, 1.5);
        const double capacity_driven =
            std::ceil(model_bytes / ps_capacity_bytes);
        const double bandwidth_driven =
            std::ceil(rng.lognormal(std::log(6.0) - 0.5, 1.0));
        const auto ps = static_cast<std::size_t>(std::clamp(
            std::max(capacity_driven, bandwidth_driven), 1.0, 40.0));
        out.parameter_servers.add(static_cast<double>(ps));
    }
    return out;
}

} // namespace fleet
} // namespace recsim
