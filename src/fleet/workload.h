/**
 * @file
 * Fleet workload classes (Fig 2 of the paper): each ML use case trains
 * with a characteristic frequency and duration. Recommendation models
 * (News Feed, Search) are the most frequently trained; translation and
 * vision workloads train less often. The constants follow the paper and
 * its companion datacenter study (Hazelwood et al., HPCA 2018).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recsim {
namespace util {
class Rng;
} // namespace util

namespace fleet {

/** Category of model a workload trains. */
enum class ModelFamily { Recommendation, Rnn, Cnn };

/** One training workload class. */
struct WorkloadClass
{
    std::string name;
    ModelFamily family = ModelFamily::Recommendation;
    /** Mean training runs per day, fleet-wide. */
    double runs_per_day = 1.0;
    /** Mean duration of one training run, hours. */
    double mean_duration_hours = 1.0;
    /** Lognormal sigma of run durations. */
    double duration_sigma = 0.4;
};

/** One sampled training run. */
struct WorkloadRun
{
    std::string workload;
    double day = 0.0;             ///< Start time, days since epoch.
    double duration_hours = 0.0;
};

/** The Fig 2 workload mix. */
std::vector<WorkloadClass> defaultWorkloads();

/**
 * Sample every run the fleet executes over @p days days: per class,
 * Poisson run counts per day with lognormal durations.
 */
std::vector<WorkloadRun> sampleFleet(
    const std::vector<WorkloadClass>& classes, double days,
    util::Rng& rng);

/**
 * Growth model: the paper reports recommendation training workflows
 * grew 7x over 18 months. Returns runs/day for a recommendation class
 * @p months after the reference point.
 */
double recommendationGrowth(double base_runs_per_day, double months);

} // namespace fleet
} // namespace recsim
