/**
 * @file
 * Fleet-level studies behind the paper's distribution figures:
 *  - utilizationStudy(): run-to-run resource-utilization distributions
 *    of a fixed-scale ranking model (Fig 5), produced by jittering the
 *    model configuration and injecting system-level noise into the
 *    cost model / DES;
 *  - serverCountStudy(): distributions of trainer and parameter-server
 *    counts across a month of CPU workflows (Fig 9).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cost/system_config.h"
#include "model/config.h"
#include "stats/sample_set.h"

namespace recsim {
namespace fleet {

/** Knobs of the Fig 5 study. */
struct UtilizationStudyConfig
{
    /** Base model; defaults to an M1-like ranking model. */
    model::DlrmConfig base_model = model::DlrmConfig::m1Prod();
    /** Fixed-scale system (same server counts for every run). */
    cost::SystemConfig system =
        cost::SystemConfig::cpuSetup(6, 8, 2, 200, 1);
    /** Number of training runs to sample (a week of retrains). */
    std::size_t num_runs = 500;
    /** Relative jitter of per-run model configuration (lengths, batch). */
    double config_jitter = 0.25;
    /** Lognormal sigma of system-level noise on service rates. */
    double system_noise_sigma = 0.15;
    uint64_t seed = 7;
};

/**
 * Result of the Fig 5 study: per resource, the distribution of
 * utilization across runs. Keys: "trainer_cpu", "trainer_mem_bw",
 * "trainer_mem_capacity", "trainer_network", "ps_cpu", "ps_mem_bw",
 * "ps_mem_capacity", "ps_network".
 */
using UtilizationDistributions = std::map<std::string, stats::SampleSet>;

/** Run the Fig 5 study. */
UtilizationDistributions utilizationStudy(
    const UtilizationStudyConfig& config);

/** Knobs of the Fig 9 study. */
struct ServerCountStudyConfig
{
    /** Number of workflows in the sampled month. */
    std::size_t num_workflows = 2000;
    /**
     * Fraction of workflows using the de-facto standard trainer count
     * (the paper reports over 40% reuse the same number).
     */
    double modal_trainer_fraction = 0.42;
    std::size_t modal_trainers = 10;
    uint64_t seed = 9;
};

/** Result of the Fig 9 study. */
struct ServerCountDistributions
{
    stats::SampleSet trainers;
    stats::SampleSet parameter_servers;
};

/**
 * Run the Fig 9 study: trainer counts concentrate on a modal value
 * (throughput requirements change rarely); parameter-server counts
 * derive from each workflow's embedding-memory footprint, which varies
 * widely as engineers add and remove features.
 */
ServerCountDistributions serverCountStudy(
    const ServerCountStudyConfig& config);

} // namespace fleet
} // namespace recsim
