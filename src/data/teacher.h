/**
 * @file
 * Hidden "teacher" scoring model that labels the synthetic CTR stream.
 *
 * Production click data is unavailable, so labels are drawn from a fixed
 * random ground-truth function of the features. The student DLRM can
 * therefore *learn* (loss and NE genuinely decrease), which is all the
 * accuracy experiments (Fig 15) require.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "data/spec.h"
#include "nn/embedding_bag.h"

namespace recsim {
namespace util {
class Rng;
} // namespace util

namespace data {

/**
 * Linear-plus-cross teacher: the click logit is a weighted sum of the
 * dense features, per-ID scores for every sparse lookup, a few random
 * dense x sparse cross terms, and Gaussian label noise.
 */
class TeacherModel
{
  public:
    /**
     * @param num_dense     Width of the dense feature vector.
     * @param specs         Sparse feature specs (uses rawSpace() scores).
     * @param rng           Parameter stream (fixes the ground truth).
     * @param label_noise   Stddev of Gaussian noise added to the logit.
     * @param bias          Logit offset controlling the base CTR.
     */
    TeacherModel(std::size_t num_dense,
                 const std::vector<SparseFeatureSpec>& specs,
                 util::Rng& rng, double label_noise = 0.5,
                 double bias = -1.0);

    /**
     * Ground-truth click probability for one example.
     * @param dense  num_dense feature values.
     * @param sparse Per-feature activated raw indices.
     */
    double clickProbability(
        const std::vector<float>& dense,
        const std::vector<std::vector<uint64_t>>& sparse,
        util::Rng& noise_rng) const;

    std::size_t numDense() const { return dense_w_.size(); }
    std::size_t numSparse() const { return id_scores_.size(); }

  private:
    std::vector<float> dense_w_;
    /** Per-feature score table indexed by raw ID modulo its size. */
    std::vector<std::vector<float>> id_scores_;
    /** (dense index, sparse feature, weight) cross terms. */
    struct Cross
    {
        std::size_t dense_idx;
        std::size_t sparse_idx;
        float weight;
    };
    std::vector<Cross> crosses_;
    double label_noise_;
    double bias_;
};

} // namespace data
} // namespace recsim
