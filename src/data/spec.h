/**
 * @file
 * Sparse-feature (embedding-table) specifications and generators that
 * reproduce the per-table populations the paper characterizes: hash
 * sizes spanning 30 to 20 M with model-specific means (Fig 6) and
 * long-tailed mean feature lengths (Fig 7).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recsim {
namespace util {
class Rng;
} // namespace util

namespace data {

/**
 * Static description of one sparse feature and its embedding table
 * (the paper's X_i with hash size m_i).
 */
struct SparseFeatureSpec
{
    std::string name;
    /** Rows in the embedding table after hashing (m_i). */
    uint64_t hash_size = 100000;
    /** Mean number of activated indices (lookups) per example. */
    double mean_length = 1.0;
    /** Zipf skew of index popularity; 0 = uniform. */
    double zipf_exponent = 1.05;
    /** Cap on lookups per example; 0 disables truncation. */
    uint64_t truncation = 0;
    /**
     * Size of the raw (pre-hash) ID space. Larger than hash_size means
     * hash collisions occur, as in production. 0 defaults to
     * 4 * hash_size.
     */
    uint64_t raw_id_space = 0;
    /**
     * Mixed-dimension embeddings (Ginart et al., the paper's memory-
     * efficiency citation [17]): a per-table embedding width override.
     * 0 keeps the model's shared dimension; smaller values shrink this
     * table and add a learned projection up to the shared dimension.
     */
    std::size_t dim_override = 0;

    /** Effective embedding width given the model's shared dim. */
    std::size_t effectiveDim(std::size_t model_dim) const
    {
        return dim_override ? dim_override : model_dim;
    }

    /** Effective raw space (applies the default rule). */
    uint64_t rawSpace() const
    {
        return raw_id_space ? raw_id_space : 4 * hash_size;
    }

    /** Expected lookups per example after truncation (approximate). */
    double effectiveMeanLength() const;
};

/**
 * Parameters of a synthetic table population mimicking one production
 * model. Hash sizes are lognormal (clipped to [min_hash, max_hash]);
 * mean lengths are lognormal with a configurable rank correlation to the
 * hash sizes (the paper notes access frequency does *not* strongly
 * correlate with table size — some of the most accessed tables are
 * small — so production-like populations use a weak negative value).
 */
struct TablePopulationParams
{
    std::size_t num_tables = 32;
    /** Target arithmetic mean of hash sizes (e.g. 5.7e6 for M1). */
    double mean_hash_size = 5.7e6;
    /** Lognormal shape of hash sizes; larger = more spread. */
    double hash_sigma = 2.2;
    uint64_t min_hash = 30;
    uint64_t max_hash = 20000000;
    /** Target mean of per-table mean lengths (e.g. 28 for M1). */
    double mean_length = 28.0;
    /** Lognormal shape of mean lengths. */
    double length_sigma = 1.0;
    double min_length = 1.0;
    double max_length = 200.0;
    /** Gaussian-copula correlation between hash size and length. */
    double hash_length_correlation = -0.2;
    /** Zipf skew applied to every generated table. */
    double zipf_exponent = 1.05;
    /** Truncation applied to every generated table (0 = none). */
    uint64_t truncation = 0;
};

/**
 * Draw a correlated (hash size, mean length) population of table specs.
 * Deterministic for a given @p rng state.
 */
std::vector<SparseFeatureSpec>
generateTablePopulation(const TablePopulationParams& params,
                        util::Rng& rng);

/** Sum of table parameter bytes for an embedding dim @p d (FP32). */
double totalEmbeddingBytes(const std::vector<SparseFeatureSpec>& specs,
                           std::size_t emb_dim);

/** Arithmetic mean of the specs' hash sizes. */
double meanHashSize(const std::vector<SparseFeatureSpec>& specs);

/** Arithmetic mean of the specs' mean lengths. */
double meanFeatureLength(const std::vector<SparseFeatureSpec>& specs);

} // namespace data
} // namespace recsim
