#include "data/teacher.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace data {

namespace {

/** Teacher score tables are capped to keep memory bounded. */
constexpr uint64_t kMaxScoreTable = 1 << 20;

} // namespace

TeacherModel::TeacherModel(std::size_t num_dense,
                           const std::vector<SparseFeatureSpec>& specs,
                           util::Rng& rng, double label_noise, double bias)
    : label_noise_(label_noise), bias_(bias)
{
    dense_w_.resize(num_dense);
    for (auto& w : dense_w_)
        w = static_cast<float>(rng.normal(0.0, 1.0 /
            std::sqrt(std::max<std::size_t>(num_dense, 1))));

    id_scores_.reserve(specs.size());
    for (const auto& spec : specs) {
        const uint64_t n = std::min(spec.rawSpace(), kMaxScoreTable);
        std::vector<float> scores(n);
        for (auto& s : scores)
            s = static_cast<float>(rng.normal(0.0, 0.5));
        id_scores_.push_back(std::move(scores));
    }

    // A handful of dense x sparse cross terms to make the ground truth
    // non-additive (so the interaction layer has something to learn).
    const std::size_t num_crosses =
        std::min<std::size_t>(specs.size(), 8);
    for (std::size_t c = 0; c < num_crosses && num_dense > 0; ++c) {
        crosses_.push_back({
            static_cast<std::size_t>(rng.uniformInt(num_dense)),
            static_cast<std::size_t>(rng.uniformInt(specs.size())),
            static_cast<float>(rng.normal(0.0, 0.5))});
    }
}

double
TeacherModel::clickProbability(
    const std::vector<float>& dense,
    const std::vector<std::vector<uint64_t>>& sparse,
    util::Rng& noise_rng) const
{
    RECSIM_ASSERT(dense.size() == dense_w_.size(),
                  "teacher dense width mismatch");
    RECSIM_ASSERT(sparse.size() == id_scores_.size(),
                  "teacher sparse count mismatch");

    double z = bias_;
    for (std::size_t i = 0; i < dense.size(); ++i)
        z += dense_w_[i] * dense[i];

    // Per-feature mean of the activated IDs' scores.
    std::vector<double> feature_scores(sparse.size(), 0.0);
    for (std::size_t f = 0; f < sparse.size(); ++f) {
        if (sparse[f].empty())
            continue;
        const auto& tbl = id_scores_[f];
        double acc = 0.0;
        for (uint64_t id : sparse[f])
            acc += tbl[id % tbl.size()];
        feature_scores[f] = acc / static_cast<double>(sparse[f].size());
        z += feature_scores[f];
    }

    for (const auto& cross : crosses_)
        z += cross.weight * dense[cross.dense_idx] *
            feature_scores[cross.sparse_idx];

    if (label_noise_ > 0.0)
        z += noise_rng.normal(0.0, label_noise_);

    return z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                    : std::exp(z) / (1.0 + std::exp(z));
}

} // namespace data
} // namespace recsim
