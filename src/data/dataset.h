/**
 * @file
 * Synthetic click-through-rate dataset: the stand-in for the production
 * Hive training tables the paper's reader servers stream. Generates
 * dense vectors, multi-hot sparse features with Zipfian index popularity
 * and Poisson lengths, and teacher-model labels.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/spec.h"
#include "data/teacher.h"
#include "nn/embedding_bag.h"
#include "tensor/tensor.h"

namespace recsim {
namespace util {
class Rng;
class ZipfSampler;
} // namespace util

namespace data {

/** One training mini-batch in the layout the DLRM model consumes. */
struct MiniBatch
{
    tensor::Tensor dense;                 ///< [B, num_dense]
    std::vector<nn::SparseBatch> sparse;  ///< One CSR batch per feature.
    std::vector<float> labels;            ///< B labels in {0, 1}.

    std::size_t batchSize() const { return labels.size(); }

    /** Total embedding lookups across all features. */
    std::size_t totalLookups() const;
};

/** Configuration of the synthetic stream. */
struct DatasetConfig
{
    std::size_t num_dense = 64;
    std::vector<SparseFeatureSpec> sparse;
    /** Stddev of Gaussian label noise in the teacher logit. */
    double label_noise = 0.5;
    /** Teacher logit bias (controls base CTR). */
    double teacher_bias = -1.0;
    uint64_t seed = 42;
};

/**
 * Deterministic synthetic CTR stream.
 *
 * Two usage modes:
 *  - streaming: nextBatch(b) draws fresh examples (infinite stream);
 *  - materialized: materialize(n) fixes an n-example dataset that
 *    epochBatch() then serves in order, so runs with different batch
 *    sizes train on *identical* data — required for the Fig 15
 *    accuracy-vs-batch-size comparison.
 */
class SyntheticCtrDataset
{
  public:
    explicit SyntheticCtrDataset(DatasetConfig config);
    ~SyntheticCtrDataset();

    SyntheticCtrDataset(const SyntheticCtrDataset&) = delete;
    SyntheticCtrDataset& operator=(const SyntheticCtrDataset&) = delete;

    /** Draw a fresh batch from the stream. */
    MiniBatch nextBatch(std::size_t batch_size);

    /** Fix an n-example in-memory dataset for epoch-based training. */
    void materialize(std::size_t n);

    /** Number of materialized examples (0 if streaming only). */
    std::size_t materializedSize() const;

    /**
     * Batch [start, start + b) of the materialized set; wraps around.
     * @pre materialize() was called.
     */
    MiniBatch epochBatch(std::size_t start, std::size_t batch_size) const;

    const DatasetConfig& config() const { return config_; }
    const TeacherModel& teacher() const { return *teacher_; }

    /** Empirical base CTR of the materialized data (label mean). */
    double baseCtr() const;

  private:
    struct Example;
    Example drawExample();
    MiniBatch assemble(const std::vector<const Example*>& rows) const;

    DatasetConfig config_;
    std::unique_ptr<TeacherModel> teacher_;
    std::unique_ptr<util::Rng> rng_;
    std::vector<std::unique_ptr<util::ZipfSampler>> index_samplers_;
    std::vector<Example> materialized_;
};

} // namespace data
} // namespace recsim
