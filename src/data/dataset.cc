#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace data {

std::size_t
MiniBatch::totalLookups() const
{
    std::size_t total = 0;
    for (const auto& s : sparse)
        total += s.totalLookups();
    return total;
}

/** One fully drawn example (pre-batching representation). */
struct SyntheticCtrDataset::Example
{
    std::vector<float> dense;
    std::vector<std::vector<uint64_t>> sparse;
    float label;
};

SyntheticCtrDataset::SyntheticCtrDataset(DatasetConfig config)
    : config_(std::move(config))
{
    RECSIM_ASSERT(config_.num_dense > 0, "dataset needs dense features");
    rng_ = std::make_unique<util::Rng>(config_.seed);
    util::Rng teacher_rng = rng_->fork(0x7eac4e6ULL);
    teacher_ = std::make_unique<TeacherModel>(
        config_.num_dense, config_.sparse, teacher_rng,
        config_.label_noise, config_.teacher_bias);
    index_samplers_.reserve(config_.sparse.size());
    for (const auto& spec : config_.sparse) {
        index_samplers_.push_back(std::make_unique<util::ZipfSampler>(
            spec.rawSpace(), spec.zipf_exponent));
    }
}

SyntheticCtrDataset::~SyntheticCtrDataset() = default;

SyntheticCtrDataset::Example
SyntheticCtrDataset::drawExample()
{
    Example ex;
    ex.dense.resize(config_.num_dense);
    for (auto& v : ex.dense)
        v = static_cast<float>(rng_->normal());

    ex.sparse.resize(config_.sparse.size());
    for (std::size_t f = 0; f < config_.sparse.size(); ++f) {
        const auto& spec = config_.sparse[f];
        uint64_t len = std::max<uint64_t>(
            1, rng_->poisson(spec.mean_length));
        if (spec.truncation > 0)
            len = std::min(len, spec.truncation);
        ex.sparse[f].reserve(len);
        for (uint64_t k = 0; k < len; ++k)
            ex.sparse[f].push_back((*index_samplers_[f])(*rng_));
    }

    const double p = teacher_->clickProbability(ex.dense, ex.sparse,
                                                *rng_);
    ex.label = rng_->bernoulli(p) ? 1.0f : 0.0f;
    return ex;
}

MiniBatch
SyntheticCtrDataset::assemble(const std::vector<const Example*>& rows)
    const
{
    const std::size_t b = rows.size();
    MiniBatch batch;
    batch.dense = tensor::Tensor(b, config_.num_dense);
    batch.labels.resize(b);
    batch.sparse.resize(config_.sparse.size());
    for (auto& sb : batch.sparse)
        sb.offsets.assign(1, 0);

    for (std::size_t i = 0; i < b; ++i) {
        const Example& ex = *rows[i];
        std::copy(ex.dense.begin(), ex.dense.end(), batch.dense.row(i));
        batch.labels[i] = ex.label;
        for (std::size_t f = 0; f < ex.sparse.size(); ++f) {
            auto& sb = batch.sparse[f];
            sb.indices.insert(sb.indices.end(), ex.sparse[f].begin(),
                              ex.sparse[f].end());
            sb.offsets.push_back(sb.indices.size());
        }
    }
    return batch;
}

MiniBatch
SyntheticCtrDataset::nextBatch(std::size_t batch_size)
{
    RECSIM_ASSERT(batch_size > 0, "empty batch requested");
    std::vector<Example> drawn;
    drawn.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i)
        drawn.push_back(drawExample());
    std::vector<const Example*> rows;
    rows.reserve(batch_size);
    for (const auto& ex : drawn)
        rows.push_back(&ex);
    return assemble(rows);
}

void
SyntheticCtrDataset::materialize(std::size_t n)
{
    RECSIM_ASSERT(n > 0, "materialize of zero examples");
    materialized_.clear();
    materialized_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        materialized_.push_back(drawExample());
}

std::size_t
SyntheticCtrDataset::materializedSize() const
{
    return materialized_.size();
}

MiniBatch
SyntheticCtrDataset::epochBatch(std::size_t start,
                                std::size_t batch_size) const
{
    RECSIM_ASSERT(!materialized_.empty(),
                  "epochBatch before materialize()");
    std::vector<const Example*> rows;
    rows.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i)
        rows.push_back(&materialized_[(start + i) % materialized_.size()]);
    return assemble(rows);
}

double
SyntheticCtrDataset::baseCtr() const
{
    RECSIM_ASSERT(!materialized_.empty(), "baseCtr before materialize()");
    double total = 0.0;
    for (const auto& ex : materialized_)
        total += ex.label;
    return total / static_cast<double>(materialized_.size());
}

} // namespace data
} // namespace recsim
