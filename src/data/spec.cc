#include "data/spec.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace recsim {
namespace data {

double
SparseFeatureSpec::effectiveMeanLength() const
{
    if (truncation == 0)
        return mean_length;
    return std::min(mean_length, static_cast<double>(truncation));
}

std::vector<SparseFeatureSpec>
generateTablePopulation(const TablePopulationParams& params,
                        util::Rng& rng)
{
    RECSIM_ASSERT(params.num_tables > 0, "empty table population");
    RECSIM_ASSERT(std::abs(params.hash_length_correlation) <= 1.0,
                  "correlation out of range");

    // Lognormal parameters hitting the requested arithmetic means:
    // E[lognormal(mu, s)] = exp(mu + s^2/2).
    const double mu_h = std::log(params.mean_hash_size) -
        0.5 * params.hash_sigma * params.hash_sigma;
    const double mu_l = std::log(params.mean_length) -
        0.5 * params.length_sigma * params.length_sigma;
    const double rho = params.hash_length_correlation;

    std::vector<double> hashes(params.num_tables);
    std::vector<double> lengths(params.num_tables);
    for (std::size_t i = 0; i < params.num_tables; ++i) {
        // Gaussian copula: z2 correlated with z1 by rho.
        const double z1 = rng.normal();
        const double z2 = rho * z1 +
            std::sqrt(1.0 - rho * rho) * rng.normal();
        hashes[i] = std::exp(mu_h + params.hash_sigma * z1);
        lengths[i] = std::exp(mu_l + params.length_sigma * z2);
    }

    // Clipping to [min, max] biases the sample mean below the lognormal
    // mean; rescale iteratively so the population hits the Table II /
    // Fig 6 targets (e.g. mean hash 5.7 M for M1) exactly enough.
    auto rescale = [](std::vector<double>& v, double target, double lo,
                      double hi) {
        for (int pass = 0; pass < 6; ++pass) {
            double mean = 0.0;
            for (double& x : v) {
                x = std::clamp(x, lo, hi);
                mean += x;
            }
            mean /= static_cast<double>(v.size());
            const double factor = target / mean;
            if (std::abs(factor - 1.0) < 1e-3)
                break;
            for (double& x : v)
                x = std::clamp(x * factor, lo, hi);
        }
    };
    rescale(hashes, params.mean_hash_size,
            static_cast<double>(params.min_hash),
            static_cast<double>(params.max_hash));
    rescale(lengths, params.mean_length, params.min_length,
            params.max_length);

    std::vector<SparseFeatureSpec> specs;
    specs.reserve(params.num_tables);
    for (std::size_t i = 0; i < params.num_tables; ++i) {
        SparseFeatureSpec spec;
        spec.name = "table_" + std::to_string(i);
        spec.hash_size = static_cast<uint64_t>(hashes[i]);
        spec.mean_length = lengths[i];
        spec.zipf_exponent = params.zipf_exponent;
        spec.truncation = params.truncation;
        specs.push_back(std::move(spec));
    }
    return specs;
}

double
totalEmbeddingBytes(const std::vector<SparseFeatureSpec>& specs,
                    std::size_t emb_dim)
{
    double bytes = 0.0;
    for (const auto& s : specs)
        bytes += static_cast<double>(s.hash_size) *
            static_cast<double>(emb_dim) * sizeof(float);
    return bytes;
}

double
meanHashSize(const std::vector<SparseFeatureSpec>& specs)
{
    RECSIM_ASSERT(!specs.empty(), "mean of empty population");
    double total = 0.0;
    for (const auto& s : specs)
        total += static_cast<double>(s.hash_size);
    return total / static_cast<double>(specs.size());
}

double
meanFeatureLength(const std::vector<SparseFeatureSpec>& specs)
{
    RECSIM_ASSERT(!specs.empty(), "mean of empty population");
    double total = 0.0;
    for (const auto& s : specs)
        total += s.mean_length;
    return total / static_cast<double>(specs.size());
}

} // namespace data
} // namespace recsim
