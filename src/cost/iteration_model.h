/**
 * @file
 * Analytical iteration cost model: the substitute for measuring on the
 * real fleet. Given a model architecture (DlrmConfig), a system
 * configuration (SystemConfig) and calibration constants (CostParams),
 * it produces steady-state training throughput, the per-phase time
 * breakdown, the binding bottleneck, per-resource utilizations and
 * power efficiency — everything the paper's evaluation figures plot.
 *
 * The model is a roofline-plus-bottleneck analysis over the model's
 * StepGraph (graph/step_graph.h) — the same per-iteration operator IR
 * the DES schedules and the real trainer executes:
 *  - every phase (MLP compute, embedding gather, collective or PS
 *    communication, input) is costed as max(work/rate) over the
 *    resources it exercises, with the work folded from graph nodes;
 *  - shared services (sparse/dense parameter servers, readers) impose
 *    system-wide throughput caps;
 *  - throughput = min(trainer-side rate, service caps), and
 *    utilization = demand / capacity at the achieved throughput.
 */
#pragma once

#include <string>
#include <vector>

#include "cost/system_config.h"
#include "graph/step_graph.h"
#include "model/config.h"
#include "placement/placement.h"

namespace recsim {
namespace cost {

/**
 * Calibration constants of the cost model. Defaults are calibrated so
 * the Table III relative-throughput shape holds (see EXPERIMENTS.md);
 * they absorb framework inefficiency the hardware specs alone cannot
 * express (Caffe2-era op dispatch, RPC serialization, imperfect
 * overlap).
 */
struct CostParams
{
    /** Backward pass cost relative to forward (dW and dX GEMMs). */
    double backward_flops_multiplier = 2.0;
    /** Embedding traffic multiplier in training: forward read plus
     *  backward read-modify-write of rows and optimizer state. */
    double emb_train_bytes_multiplier = 2.0;

    /** Per-iteration framework overhead on a CPU trainer, seconds. */
    double cpu_iteration_overhead = 0.3e-3;
    /** Per-example host-seconds of feature transform / op dispatch. */
    double cpu_per_example_overhead = 1.5e-6;
    /** Per-lookup host-seconds on the trainer (id marshalling, pooled
     *  vector copies); dominates for lookup-heavy models like M1/M3. */
    double cpu_per_lookup_overhead = 8.0e-9;
    /** Achievable fraction of CPU peak for trainer GEMMs (calibrated
     *  to production per-trainer throughput; overrides the platform's
     *  generic value inside the model). */
    double cpu_mlp_efficiency = 0.5;
    /** Activation working-set bytes per example per MLP-width unit;
     *  past the LLC this derates GEMM efficiency (Fig 11 CPU roll-off). */
    double cpu_cache_pressure_exponent = 0.35;

    /** Per-iteration host-side dispatch/sync overhead on a GPU server. */
    double gpu_iteration_overhead = 1.5e-3;
    /** Achievable fraction of GPU peak for DLRM-scale GEMMs. */
    double gpu_mlp_efficiency = 0.35;
    /** Socket-seconds of host CPU work per example on a GPU server
     *  (input pipeline, batching, H2D staging). The paper repeatedly
     *  observes the dual-socket Big Basin host becoming the bottleneck;
     *  Zion's 8 sockets quarter this cost. */
    double host_cpu_per_example = 0.8e-6;
    /** Socket-seconds of host CPU per embedding lookup on a GPU server
     *  (id batching in the input pipeline). */
    double host_cpu_per_lookup = 0.5e-9;
    /** Kernel launches per MLP layer (fwd + dgrad + wgrad). */
    double gpu_kernels_per_layer = 3.0;
    /** Fixed kernels per iteration (loss, optimizer, interaction...). */
    double gpu_fixed_kernels = 30.0;

    /** RPC serialization bandwidth per CPU socket, B/s. */
    double serialization_bw_per_socket = 5.0e9;
    /** Fraction of NIC line rate achieved as RPC goodput. */
    double network_goodput = 0.85;
    /** Extra bytes per lookup for index/request framing. */
    double request_bytes_per_lookup = 4.0;
    /** Concurrent outstanding embedding RPCs a trainer sustains. */
    double remote_inflight_rpcs = 384.0;
    /** Parameter-server request service time, seconds. */
    double ps_service_time = 20.0e-6;

    /** Gather efficiency when the working set is cache-resident. */
    double cached_gather_efficiency = 0.9;

    /** Fraction of host FLOPs usable for PS-side pooling. */
    double ps_pooling_flops_fraction = 0.5;

    /**
     * Host-seconds of per-iteration op dispatch for each
     * EmbeddingLookup *node* in the step graph (Caffe2-era per-op
     * overhead). Grouped lookup nodes (graph::fusePass) pay this once
     * per group instead of once per table, which is how the batching
     * win surfaces in the analytical column. Default 0: calibration of
     * the headline figures predates this term, so it is opt-in.
     */
    double cpu_per_table_dispatch = 0.0;

    /**
     * Run graph::fusePass over the bound step graph at construction:
     * GEMM epilogue traffic drops to zero and per-device lookups merge
     * into grouped nodes, so estimate()/nodeBreakdown() price the
     * fused iteration (bench/validation_graph_breakdown compares both).
     */
    bool fuse_step_graph = false;
};

/** One named time component of an iteration, seconds. */
struct PhaseTime
{
    std::string name;
    double seconds = 0.0;
};

/** Estimated time attributed to one StepGraph node, seconds. */
struct NodeTime
{
    /** graph::Node::id — the key the DES's node_seconds map and the
     *  trainer's obs spans also report under. */
    std::string node_id;
    double seconds = 0.0;
};

/** Per-resource utilization in [0, 1] at the achieved throughput. */
struct Utilizations
{
    double trainer_cpu = 0.0;
    double trainer_mem_bw = 0.0;
    double trainer_mem_capacity = 0.0;
    double trainer_network = 0.0;
    double gpu_compute = 0.0;
    double gpu_mem_bw = 0.0;
    double gpu_interconnect = 0.0;
    double host_mem_bw = 0.0;
    double pcie = 0.0;
    double sparse_ps_cpu = 0.0;
    double sparse_ps_mem_bw = 0.0;
    double sparse_ps_mem_capacity = 0.0;
    double sparse_ps_network = 0.0;
    double dense_ps_network = 0.0;
    double reader_network = 0.0;

    /** (name, value) pairs for reporting. */
    std::vector<std::pair<std::string, double>> asList() const;
};

/**
 * Full result of one estimate.
 *
 * Phase composition rule (what the property tests assert): the phases in
 * `breakdown` account for `iteration_seconds` under the model's
 * max/sum bottleneck structure.
 *  - CPU trainers: compute and communication pipeline across Hogwild
 *    workers and async prefetch, so
 *      iteration_seconds = max(mlp_compute + lookup_overhead +
 *                              framework_overhead, trainer_network).
 *  - GPU servers: the local phases serialize; the remote-PS phase
 *    overlaps them only when >= 2 Hogwild workers pipeline batches:
 *      local = sum of every phase except emb_remote;
 *      iteration_seconds = max(local, emb_remote)   if hogwild >= 2
 *                                                   and emb_remote > 0,
 *                          local + emb_remote        otherwise.
 * (Equalities hold to floating-point re-association, i.e. ~1e-12
 * relative.)
 */
struct IterationEstimate
{
    bool feasible = true;
    std::string infeasible_reason;

    /** Wall time of one trainer iteration, seconds. */
    double iteration_seconds = 0.0;
    /** Examples consumed per system iteration. */
    double examples_per_iteration = 0.0;
    /** System training throughput, examples/second. */
    double throughput = 0.0;
    /** The resource that binds. */
    std::string bottleneck;

    std::vector<PhaseTime> breakdown;
    Utilizations util;

    /** Sum of nodeBreakdown() seconds: the no-overlap iteration time
     *  (every node serialized). */
    double serial_sum_seconds = 0.0;
    /** Longest path through the StepGraph's dep edges with each node
     *  costed at its nodeBreakdown() seconds: the iteration's lower
     *  bound under perfect comm/compute overlap. */
    double critical_path_seconds = 0.0;
    /** critical_path_seconds / serial_sum_seconds, in (0, 1]. Low
     *  values = the edges hide most of the work (e.g. async PS
     *  placements hiding sparse comm behind the MLP); 1 = a pure
     *  chain with nothing to overlap. */
    double overlap_efficiency = 1.0;

    double power_watts = 0.0;
    /** examples / second / watt. */
    double perfPerWatt() const
    {
        return power_watts > 0.0 ? throughput / power_watts : 0.0;
    }
};

/**
 * The estimator. Construction plans the embedding placement, lowers the
 * model into its StepGraph and binds the placement to it; estimate()
 * is pure and cheap, so sweeps construct one model per design point.
 * All work quantities (FLOPs, bytes, lookups) are folds over the graph
 * nodes — the same IR the DES schedules and the trainer executes.
 */
class IterationModel
{
  public:
    IterationModel(model::DlrmConfig model_config,
                   SystemConfig system_config, CostParams params = {});

    /** Steady-state estimate for the configured system. */
    IterationEstimate estimate() const;

    /**
     * Per-node time attribution of one iteration: every compute node
     * costed at its phase's rate, every Comm node at its link/service
     * rate, mirroring the demand expressions the DES uses so the two
     * line up node by node (bench/validation_graph_breakdown). Compute
     * phases of estimate().breakdown are sums over their nodes; on the
     * GPU path every phase is. Empty when the plan is infeasible.
     */
    std::vector<NodeTime> nodeBreakdown() const;

    const placement::PlacementPlan& plan() const { return plan_; }
    const model::DlrmConfig& modelConfig() const { return model_; }
    const SystemConfig& systemConfig() const { return system_; }

    /** The bound operator graph of one training step. */
    const graph::StepGraph& stepGraph() const { return graph_; }

    /** Aggregate work totals folded from the graph (== footprint()). */
    const graph::WorkSummary& workSummary() const { return summary_; }

    /**
     * Fraction of remote lookup traffic served by the trainer-side
     * hot-row cache (0 when no cache is configured). Analytic: Zipf
     * top-k mass with the cache split across the graph's embedding
     * nodes by access share.
     */
    double remoteCacheHitFraction() const;

    /**
     * Traffic-weighted fraction of embedding gather traffic the
     * placement routes to the managed hot tier
     * (SystemConfig::emb_hot_tier_bytes budget, packed by
     * placement::planPlacement). 0 when no hot tier is configured.
     * This is the analytic prediction the executable
     * nn::CachedBackend's measured hit rate is validated against
     * (bench/validation_graph_breakdown, bench/ext_caching).
     */
    double hotTierHitFraction() const { return plan_.hot_hit_fraction; }

  private:
    IterationEstimate estimateCpu() const;
    IterationEstimate estimateGpu() const;
    std::vector<NodeTime> nodeBreakdownCpu() const;
    std::vector<NodeTime> nodeBreakdownGpu() const;

    /** Sparse-PS aggregate serving capacity, examples/s (0 = none). */
    double sparsePsCapacity() const;

    model::DlrmConfig model_;
    SystemConfig system_;
    CostParams params_;
    placement::PlacementPlan plan_;
    graph::StepGraph graph_;
    graph::WorkSummary summary_;
};

} // namespace cost
} // namespace recsim
