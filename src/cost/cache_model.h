/**
 * @file
 * Cache-residency model for embedding gathers. Small tables stay
 * resident in the on-chip cache and gather near streaming bandwidth;
 * terabyte-scale tables are pure random access. This is one of the two
 * mechanisms behind the hash-size scaling result (Fig 12): growing the
 * hash size pushes tables out of cache *and* across more GPUs.
 */
#pragma once

namespace recsim {
namespace cost {

/** Last-level cache sizes used by the gather model, bytes. */
inline constexpr double kGpuL2Bytes = 6.0e6;     ///< V100 L2.
inline constexpr double kCpuLlcBytesPerSocket = 27.5e6;  ///< SKL 20c LLC.

/**
 * Fraction of gather *traffic* a cache of @p cache_bytes serves for a
 * working set of @p resident_bytes, under Zipf-skewed access: the
 * cache holds the hottest rows, serving roughly cache/resident of
 * *capacity* but a larger share of traffic (the soft-skew quadratic
 * captures that). 1.0 when the working set fits entirely.
 *
 * This is the same curve gatherEfficiency interpolates with, exposed
 * so tier-aware cost terms and the CachedBackend validation can
 * consume the hit fraction directly.
 */
double cacheTrafficHitFraction(double resident_bytes,
                               double cache_bytes);

/**
 * Effective gather efficiency (fraction of streaming bandwidth) for a
 * working set of @p resident_bytes against a cache of @p cache_bytes.
 *
 * Cache-resident working sets achieve @p cached_eff; far larger ones
 * decay toward @p random_eff with the cache hit fraction
 * cache_bytes / resident_bytes (Zipf-skewed access keeps hot rows
 * cached, so the decay is hyperbolic rather than a step).
 */
double gatherEfficiency(double resident_bytes, double cache_bytes,
                        double random_eff, double cached_eff = 0.9);

/**
 * Effective gather bandwidth of a two-tier embedding store: the
 * @p hot_hit fraction of traffic is served by an explicitly managed
 * hot tier at @p hot_bw * @p cached_eff (a managed tier gathers near
 * streaming rate — no random-access derating), the remainder by the
 * cold tier at @p cold_bw * gatherEfficiency(resident, cache, ...).
 * Harmonic blend: time adds, bandwidth doesn't. With @p hot_hit == 0
 * this is exactly the single-tier rate every existing call site used,
 * so configurations without a hot tier are untouched to the last bit.
 */
double tieredGatherBandwidth(double cold_bw, double hot_bw,
                             double hot_hit, double resident_bytes,
                             double cache_bytes, double random_eff,
                             double cached_eff = 0.9);

} // namespace cost
} // namespace recsim
