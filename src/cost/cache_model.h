/**
 * @file
 * Cache-residency model for embedding gathers. Small tables stay
 * resident in the on-chip cache and gather near streaming bandwidth;
 * terabyte-scale tables are pure random access. This is one of the two
 * mechanisms behind the hash-size scaling result (Fig 12): growing the
 * hash size pushes tables out of cache *and* across more GPUs.
 */
#pragma once

namespace recsim {
namespace cost {

/** Last-level cache sizes used by the gather model, bytes. */
inline constexpr double kGpuL2Bytes = 6.0e6;     ///< V100 L2.
inline constexpr double kCpuLlcBytesPerSocket = 27.5e6;  ///< SKL 20c LLC.

/**
 * Effective gather efficiency (fraction of streaming bandwidth) for a
 * working set of @p resident_bytes against a cache of @p cache_bytes.
 *
 * Cache-resident working sets achieve @p cached_eff; far larger ones
 * decay toward @p random_eff with the cache hit fraction
 * cache_bytes / resident_bytes (Zipf-skewed access keeps hot rows
 * cached, so the decay is hyperbolic rather than a step).
 */
double gatherEfficiency(double resident_bytes, double cache_bytes,
                        double random_eff, double cached_eff = 0.9);

} // namespace cost
} // namespace recsim
