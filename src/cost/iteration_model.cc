#include "cost/iteration_model.h"

#include <algorithm>
#include <cmath>

#include "cost/cache_model.h"
#include "util/random.h"
#include "util/logging.h"

namespace recsim {
namespace cost {

namespace {

/** Seconds per example a resource needs, given demand and rate. */
double
perExample(double units_per_example, double units_per_second)
{
    return units_per_second > 0.0
        ? units_per_example / units_per_second : 0.0;
}

} // namespace

std::vector<std::pair<std::string, double>>
Utilizations::asList() const
{
    return {
        {"trainer_cpu", trainer_cpu},
        {"trainer_mem_bw", trainer_mem_bw},
        {"trainer_mem_capacity", trainer_mem_capacity},
        {"trainer_network", trainer_network},
        {"gpu_compute", gpu_compute},
        {"gpu_mem_bw", gpu_mem_bw},
        {"gpu_interconnect", gpu_interconnect},
        {"host_mem_bw", host_mem_bw},
        {"pcie", pcie},
        {"sparse_ps_cpu", sparse_ps_cpu},
        {"sparse_ps_mem_bw", sparse_ps_mem_bw},
        {"sparse_ps_mem_capacity", sparse_ps_mem_capacity},
        {"sparse_ps_network", sparse_ps_network},
        {"dense_ps_network", dense_ps_network},
        {"reader_network", reader_network},
    };
}

IterationModel::IterationModel(model::DlrmConfig model_config,
                               SystemConfig system_config,
                               CostParams params)
    : model_(std::move(model_config)), system_(std::move(system_config)),
      params_(params)
{
    system_.placement_options.num_sparse_ps =
        std::max<std::size_t>(system_.num_sparse_ps, 1);
    system_.placement_options.emb_bytes_per_element =
        system_.emb_bytes_per_element;
    system_.placement_options.hot_tier_bytes =
        system_.emb_hot_tier_bytes;
    if (system_.platform.num_gpus > 0) {
        system_.placement_options.num_nodes =
            std::max<std::size_t>(system_.num_trainers, 1);
    }
    plan_ = placement::planPlacement(system_.placement, model_,
                                     system_.platform,
                                     system_.placement_options);
    graph_ = graph::buildModelStepGraph(model_);
    placement::bindStepGraph(graph_, plan_, system_.num_sparse_ps);
    if (params_.fuse_step_graph)
        graph::fusePass(graph_);
    summary_ = graph::summarize(graph_);
}

double
IterationModel::remoteCacheHitFraction() const
{
    if (system_.remote_cache_bytes <= 0.0)
        return 0.0;
    const double row_bytes = static_cast<double>(summary_.emb_dim) *
        system_.emb_bytes_per_element;
    const double cache_rows = system_.remote_cache_bytes / row_bytes;
    const double total_access = std::max(
        summary_.embedding_lookups, 1e-9);
    // Fold over the model's sparse specs rather than the graph's
    // lookup nodes: fusePass merges per-table nodes into grouped ones
    // (losing per-table rows/zipf), and the cache splits by *table*
    // either way. Specs and unfused emb nodes are in the same order
    // with identical annotations, so this is the same arithmetic.
    double hit = 0.0;
    for (const auto& spec : model_.sparse) {
        const double share = spec.effectiveMeanLength() / total_access;
        const auto rows = static_cast<uint64_t>(cache_rows * share);
        hit += share * util::zipfTopMass(spec.hash_size,
                                         spec.zipf_exponent, rows);
    }
    return std::min(hit, 1.0);
}

double
IterationModel::sparsePsCapacity() const
{
    if (system_.num_sparse_ps == 0)
        return 0.0;
    const hw::Platform ps = hw::Platform::dualSocketCpu();
    const double n = static_cast<double>(system_.num_sparse_ps);

    const double resident_per_ps = plan_.resident_bytes / n;
    // Hot-tier-aware gather rate: the placement's traffic-weighted hit
    // fraction routes that share of bytes to the managed hot tier
    // (DRAM-speed unless the device declares a faster one); identical
    // to the single-tier rate when no hot budget is configured.
    const double gather_bw = tieredGatherBandwidth(
        ps.host.mem_bandwidth, ps.host.hotTierBandwidth(),
        plan_.hot_hit_fraction, resident_per_ps,
        kCpuLlcBytesPerSocket * ps.num_cpu_sockets,
        ps.host.random_access_efficiency,
        params_.cached_gather_efficiency);
    // Trainer-side cache hits never reach the PS: only the cold share
    // of forward pulls plus the (write-through) gradient pushes remain.
    const double hit = remoteCacheHitFraction();
    const double emb_train_bytes = summary_.embedding_bytes *
        ((1.0 - hit) + (params_.emb_train_bytes_multiplier - 1.0));

    // Pooling + gradient scatter arithmetic on the PS cores.
    const double pool_flops = summary_.embedding_lookups *
        static_cast<double>(summary_.emb_dim) * 2.0 * 2.0;
    const double pool_rate = ps.host.peak_flops *
        params_.cpu_mlp_efficiency * params_.ps_pooling_flops_fraction;

    // NIC: pooled vectors out + gradients in + index requests.
    const double nic_bytes = 2.0 * summary_.pooled_bytes +
        summary_.embedding_lookups * params_.request_bytes_per_lookup;
    const double nic_rate = ps.network.bandwidth *
        params_.network_goodput;

    const double s_per_example = std::max({
        perExample(emb_train_bytes, gather_bw),
        perExample(pool_flops, pool_rate),
        perExample(nic_bytes, nic_rate)});
    if (s_per_example <= 0.0)
        return 0.0;
    const double imbalance = std::max(plan_.access_imbalance, 1.0);
    return n / (s_per_example * imbalance);
}

IterationEstimate
IterationModel::estimate() const
{
    IterationEstimate est;
    if (!plan_.feasible) {
        est.feasible = false;
        est.infeasible_reason = plan_.infeasible_reason.empty()
            ? "embedding placement infeasible"
            : plan_.infeasible_reason;
        est.power_watts = system_.totalPowerWatts();
        return est;
    }
    est = system_.platform.num_gpus > 0 ? estimateGpu()
                                        : estimateCpu();

    // Critical-path fold over the graph edges: the iteration's lower
    // bound under perfect overlap. nodeBreakdown() emits one entry per
    // graph node in node order, so entry i costs graph node i. This
    // rides alongside the calibrated max/sum estimate above — it does
    // not change iteration_seconds — and overlap_efficiency =
    // critical/sum is how much of the serial work the edges can hide
    // (PS-sharded placements hide most sparse comm, Sec. V).
    const std::vector<NodeTime> nodes = nodeBreakdown();
    if (nodes.size() == graph_.numNodes() && !nodes.empty()) {
        double sum = 0.0;
        for (const NodeTime& t : nodes)
            sum += t.seconds;
        est.serial_sum_seconds = sum;
        est.critical_path_seconds = graph_.criticalPath(
            [&nodes](std::size_t i) { return nodes[i].seconds; });
        est.overlap_efficiency = sum > 0.0
            ? est.critical_path_seconds / sum : 1.0;
    }
    return est;
}

IterationEstimate
IterationModel::estimateCpu() const
{
    IterationEstimate est;
    const hw::Platform& p = system_.platform;
    const double b = static_cast<double>(system_.batch_size);
    const double n_tr = static_cast<double>(system_.num_trainers);

    const double fwd_flops =
        summary_.mlp_flops + summary_.interaction_flops;
    const double train_flops =
        fwd_flops * (1.0 + params_.backward_flops_multiplier);
    const double dense_params = summary_.dense_param_count;

    // Cache pressure: activation working set past the LLC derates GEMMs
    // (the Fig 11 CPU batch-size roll-off).
    const double act_bytes_pe = summary_.activation_bytes;
    // Only about half the LLC is available to the GEMM working set
    // (the rest serves the input pipeline and lookup staging).
    const double llc = 0.5 * kCpuLlcBytesPerSocket * p.num_cpu_sockets;
    const double ws = b * act_bytes_pe;
    const double cache_factor = ws > llc
        ? std::pow(llc / ws, params_.cpu_cache_pressure_exponent) : 1.0;
    const double host_flops =
        p.host.peak_flops * params_.cpu_mlp_efficiency * cache_factor;

    // Unfused GEMM epilogues (bias + ReLU passes over the activations
    // forward; dReLU mask, bias-grad sumRows and the interaction
    // flatten/scatter buffers backward) are extra streaming memory
    // traffic; fusePass zeroes both summary terms, which is the
    // analytical fusion win.
    const double epilogue_s_pe =
        (summary_.epilogue_traffic_bytes +
         summary_.bwd_epilogue_traffic_bytes) / p.host.mem_bandwidth;
    const double compute_s_pe = train_flops / host_flops +
        epilogue_s_pe + params_.cpu_per_example_overhead +
        summary_.embedding_lookups * params_.cpu_per_lookup_overhead;
    // Per-iteration op dispatch, once per EmbeddingLookup *node* —
    // grouped nodes pay it once per group.
    const double dispatch_s =
        static_cast<double>(summary_.embedding_tables) *
        params_.cpu_per_table_dispatch;
    const double t_compute = b * compute_s_pe + dispatch_s +
        params_.cpu_iteration_overhead;

    // Trainer <-> sparse PS traffic: pooled vectors both ways plus
    // index requests; EASGD dense sync amortized over the period.
    const double net_bytes_pe = 2.0 * summary_.pooled_bytes +
        summary_.embedding_lookups * params_.request_bytes_per_lookup;
    const double sync_period = system_.sync_mode == SyncMode::Easgd
        ? static_cast<double>(std::max<std::size_t>(
              system_.easgd_sync_period, 1))
        : 1.0;
    const double dense_sync_bytes =
        2.0 * dense_params * sizeof(float) / sync_period;
    const double nic_rate = p.network.bandwidth * params_.network_goodput;
    const double t_net = (b * net_bytes_pe + dense_sync_bytes) / nic_rate +
        4.0 * p.network.latency;

    // Compute and communication pipeline across hogwild workers and
    // async prefetch, so the iteration critical path is the max.
    const double t_iter = std::max(t_compute, t_net);
    const double trainer_rate = b / t_iter;
    const double trainer_agg = n_tr * trainer_rate;

    est.breakdown = {
        {"mlp_compute",
         b * (train_flops / host_flops + epilogue_s_pe)},
        {"lookup_overhead",
         b * summary_.embedding_lookups *
             params_.cpu_per_lookup_overhead + dispatch_s},
        {"framework_overhead",
         b * params_.cpu_per_example_overhead +
             params_.cpu_iteration_overhead},
        {"trainer_network", t_net},
    };

    // Service caps.
    double throughput = trainer_agg;
    est.bottleneck = "trainer_compute";
    if (t_net >= t_compute)
        est.bottleneck = "trainer_network";

    const double ps_cap = sparsePsCapacity();
    if (ps_cap > 0.0 && ps_cap < throughput) {
        throughput = ps_cap;
        est.bottleneck = "sparse_ps";
    }

    double dense_cap = 0.0;
    if (system_.num_dense_ps > 0) {
        const double bytes_pe = dense_sync_bytes / b;
        dense_cap = static_cast<double>(system_.num_dense_ps) *
            nic_rate / std::max(bytes_pe, 1e-12);
        if (dense_cap < throughput) {
            throughput = dense_cap;
            est.bottleneck = "dense_ps";
        }
    }

    double reader_cap = 0.0;
    const double read_bytes_pe = summary_.dense_input_bytes +
        summary_.embedding_lookups * 8.0 + 4.0;
    if (system_.num_readers > 0) {
        reader_cap = static_cast<double>(system_.num_readers) *
            nic_rate / read_bytes_pe;
        if (reader_cap < throughput) {
            throughput = reader_cap;
            est.bottleneck = "reader";
        }
    }

    est.iteration_seconds = t_iter;
    est.examples_per_iteration = b * n_tr;
    est.throughput = throughput;

    // Utilizations at the achieved throughput.
    const double x_tr = throughput / n_tr;  // examples/s per trainer
    est.util.trainer_cpu = std::min(1.0, x_tr * compute_s_pe +
        (params_.cpu_iteration_overhead + dispatch_s) * x_tr / b);
    // Trainer memory traffic: activations (fwd + bwd re-reads), weight
    // streams amortized over the batch, and the moderate arithmetic
    // intensity of DLRM GEMMs (~0.12 B/FLOP of DRAM traffic).
    const double mlp_mem_bytes_pe = act_bytes_pe * 3.0 +
        dense_params * sizeof(float) * 3.0 / b +
        train_flops * 0.12;
    est.util.trainer_mem_bw = std::min(
        1.0, x_tr * mlp_mem_bytes_pe / p.host.mem_bandwidth);
    est.util.trainer_mem_capacity = std::min(
        1.0, (2.0 * dense_params * sizeof(float) +
              b * act_bytes_pe * system_.hogwild_threads) /
            p.host.mem_capacity);
    est.util.trainer_network = std::min(
        1.0, x_tr * (net_bytes_pe + dense_sync_bytes / b) / nic_rate);
    if (ps_cap > 0.0) {
        const double n_ps = static_cast<double>(system_.num_sparse_ps);
        est.util.sparse_ps_cpu = std::min(1.0, throughput / ps_cap *
            0.8);
        est.util.sparse_ps_mem_bw = std::min(1.0, throughput / ps_cap);
        est.util.sparse_ps_mem_capacity = std::min(
            1.0, plan_.resident_bytes /
                (n_ps * hw::Platform::dualSocketCpu().host.mem_capacity));
        est.util.sparse_ps_network = std::min(
            1.0, throughput * net_bytes_pe /
                (n_ps * nic_rate));
    }
    if (dense_cap > 0.0)
        est.util.dense_ps_network = std::min(1.0,
                                             throughput / dense_cap);
    if (reader_cap > 0.0)
        est.util.reader_network = std::min(1.0,
                                           throughput / reader_cap);

    est.power_watts = system_.totalPowerWatts();
    return est;
}

IterationEstimate
IterationModel::estimateGpu() const
{
    IterationEstimate est;
    const hw::Platform& p = system_.platform;
    const double g = static_cast<double>(p.num_gpus);
    const double n_nodes = static_cast<double>(
        std::max<std::size_t>(system_.num_trainers, 1));
    const double bg =
        static_cast<double>(system_.batch_size) * g;  // per-node batch
    const double bg_global = bg * n_nodes;
    const double nic_rate =
        p.network.bandwidth * params_.network_goodput;

    const double fwd_flops =
        summary_.mlp_flops + summary_.interaction_flops;
    const double train_flops =
        fwd_flops * (1.0 + params_.backward_flops_multiplier);
    const double dense_params = summary_.dense_param_count;
    const double d = static_cast<double>(summary_.emb_dim);
    // Serving precision scales every byte the tables move or occupy
    // (quantization extension).
    const double compression = system_.emb_bytes_per_element / 4.0;
    const double emb_train_bytes = summary_.embedding_bytes *
        compression * params_.emb_train_bytes_multiplier;

    // ---- MLP compute + kernel dispatch ------------------------------
    const double gpu_flops =
        g * p.gpu.peak_flops * params_.gpu_mlp_efficiency;
    const double t_mlp = bg * train_flops / gpu_flops;
    const double n_layers = static_cast<double>(summary_.mlp_layers);
    // Embedding ops cannot batch across tables: every table costs
    // lookup + gradient + optimizer kernels, doubled when the tables
    // are sharded (routing indices to owners and results back).
    const bool sharded = !plan_.replicated && plan_.gpus_used > 1;
    const double emb_kernels = 3.0 *
        static_cast<double>(summary_.embedding_tables) *
        (sharded ? 2.0 : 1.0) * plan_.gpu_lookup_fraction;
    const double kernels = n_layers * params_.gpu_kernels_per_layer +
        params_.gpu_fixed_kernels + emb_kernels +
        (sharded ? 2.0 * g : 0.0);
    const double t_launch = kernels * p.gpu.kernel_launch_overhead +
        params_.gpu_iteration_overhead;

    // ---- Embedding path ---------------------------------------------
    const double frac_gpu = plan_.gpu_lookup_fraction;
    const double frac_remote = plan_.remote_lookup_fraction;
    const double frac_host =
        std::max(0.0, 1.0 - frac_gpu - frac_remote);

    double t_gather_gpu = 0.0, t_a2a = 0.0;
    if (frac_gpu > 0.0 && plan_.replicated) {
        // Replicated tables: every GPU gathers only its local batch
        // from its own (small, cache-friendly) copy; the only
        // communication is an allreduce-style sync of the touched rows.
        const double rate = tieredGatherBandwidth(
            p.gpu.mem_bandwidth, p.gpu.hotTierBandwidth(),
            plan_.hot_hit_fraction, plan_.resident_bytes, kGpuL2Bytes,
            p.gpu.random_access_efficiency,
            params_.cached_gather_efficiency);
        t_gather_gpu = bg * emb_train_bytes * frac_gpu / (g * rate);
        const double touched_bytes = std::min(
            plan_.resident_bytes,
            bg * summary_.embedding_lookups * d * sizeof(float));
        t_a2a = 2.0 * touched_bytes * (g - 1.0) / g /
            (g * std::max(p.gpu_interconnect.bandwidth, 1.0)) +
            2.0 * p.gpu_interconnect.latency;
    } else if (frac_gpu > 0.0) {
        const double shards = static_cast<double>(
            std::max<std::size_t>(plan_.gpus_used, 1));
        double max_shard = 0.0;
        for (std::size_t s = 0;
             s < plan_.partition.numShards(); ++s) {
            max_shard = std::max(max_shard,
                                 plan_.partition.shard_bytes[s]);
        }
        const double rate = tieredGatherBandwidth(
            p.gpu.mem_bandwidth, p.gpu.hotTierBandwidth(),
            plan_.hot_hit_fraction, max_shard, kGpuL2Bytes,
            p.gpu.random_access_efficiency,
            params_.cached_gather_efficiency);
        const double imbalance = std::max(plan_.access_imbalance, 1.0);
        // Owner shards serve the *global* batch.
        t_gather_gpu = bg_global * emb_train_bytes * frac_gpu *
            imbalance / (shards * rate);
        // Pooled embeddings all-to-all: senders are the table-owning
        // GPUs, consumers are all data-parallel GPUs. Raw indices must
        // also be routed to the owners.
        const double index_bytes = bg_global * summary_.embedding_lookups *
            frac_gpu * 8.0 * (g - 1.0) / g;
        t_a2a = (2.0 * bg_global * summary_.pooled_bytes * frac_gpu *
                     (g - 1.0) / g + index_bytes) /
            (shards * std::max(p.gpu_interconnect.bandwidth, 1.0)) +
            2.0 * p.gpu_interconnect.latency;
        // Tables spanning multiple nodes: the cross-node share of the
        // pooled exchange crosses the NICs — the "multiple Big Basins
        // need fast inter-node GPU-GPU communication" case the paper
        // could not test.
        if (n_nodes > 1.0 &&
            plan_.gpus_used > static_cast<std::size_t>(g)) {
            t_a2a += 2.0 * bg_global * summary_.pooled_bytes * frac_gpu *
                (n_nodes - 1.0) / n_nodes / (n_nodes * nic_rate) +
                2.0 * p.network.latency;
        }
    }

    double t_host = 0.0, t_pcie = 0.0;
    if (frac_host > 0.0) {
        const double host_resident = plan_.resident_bytes *
            (plan_.placement == placement::EmbeddingPlacement::Hybrid
                 ? frac_host : 1.0);
        const double rate = tieredGatherBandwidth(
            p.host.mem_bandwidth, p.host.hotTierBandwidth(),
            plan_.hot_hit_fraction, host_resident,
            kCpuLlcBytesPerSocket * p.num_cpu_sockets,
            p.host.random_access_efficiency,
            params_.cached_gather_efficiency);
        const double t_bw = bg_global * emb_train_bytes * frac_host /
            (n_nodes * rate);
        const double pool_flops = bg_global * summary_.embedding_lookups *
            frac_host * d * 2.0 * 2.0;
        const double t_pool = pool_flops /
            (n_nodes * p.host.peak_flops * params_.cpu_mlp_efficiency *
             params_.ps_pooling_flops_fraction);
        t_host = std::max(t_bw, t_pool);
        t_pcie = 2.0 * bg * summary_.pooled_bytes * frac_host /
            (g * p.host_gpu.bandwidth);
        // Host shards spanning nodes exchange pooled vectors over NICs.
        if (n_nodes > 1.0 && plan_.partition.shardsUsed() > 1) {
            t_host += 2.0 * bg_global * summary_.pooled_bytes * frac_host *
                (n_nodes - 1.0) / n_nodes / (n_nodes * nic_rate) +
                2.0 * p.network.latency;
        }
    }

    // Remote sparse lookups: the paper's M3 path. Three costs compound:
    // NIC bytes, RPC serialization on the GPU server's host CPUs (its
    // observed bottleneck), and request latency limited by the number of
    // in-flight RPCs. Hogwild workers (>= 2) pipeline batches, so the
    // bandwidth terms overlap each other and the latency term divides
    // by the worker count.
    const double hogwild = static_cast<double>(
        std::max<std::size_t>(system_.hogwild_threads, 1));
    double t_remote = 0.0;
    if (frac_remote > 0.0) {
        // A trainer-side hot-row cache absorbs the Zipf-hot share of
        // pulls (caching extension); gradient pushes still go through.
        const double hit = remoteCacheHitFraction();
        const double bytes_rt = bg * frac_remote *
            (summary_.pooled_bytes * compression * (1.0 - hit) +
             summary_.pooled_bytes +
             summary_.embedding_lookups * params_.request_bytes_per_lookup *
                 (1.0 - hit));
        const double t_net = bytes_rt /
            (p.network.bandwidth * params_.network_goodput) +
            2.0 * p.network.latency;
        const double t_serial = bytes_rt /
            (params_.serialization_bw_per_socket *
             static_cast<double>(p.num_cpu_sockets));
        const double rtt = 2.0 * p.network.latency +
            params_.ps_service_time;
        const double requests = bg * frac_remote * (1.0 - hit) *
            static_cast<double>(summary_.embedding_tables);
        const double t_latency = requests * rtt /
            (params_.remote_inflight_rpcs * hogwild);
        t_remote = hogwild >= 2.0
            ? std::max(t_net, t_serial) + t_latency
            : t_net + t_serial + t_latency;
    }

    // ---- Dense gradient allreduce across GPUs -----------------------
    // Over NVLink when present; otherwise staged through host memory at
    // PCIe rates. Either way the reduction pipelines with the backward
    // pass, so only half of it lands on the critical path.
    const double allreduce_bw = p.has_nvlink
        ? p.gpu_interconnect.bandwidth
        : p.host_gpu.bandwidth / 2.0;
    double t_allreduce =
        (2.0 * dense_params * sizeof(float) * (g - 1.0) / g /
             std::max(allreduce_bw, 1.0) +
         2.0 * p.gpu_interconnect.latency) * 0.5;
    if (n_nodes > 1.0) {
        // Ring allreduce across nodes over the NICs, pipelined with
        // the backward pass like the intra-node stage.
        t_allreduce += (2.0 * dense_params * sizeof(float) *
                            (n_nodes - 1.0) / n_nodes / nic_rate +
                        2.0 * p.network.latency) * 0.5;
    }

    // ---- Input pipeline ---------------------------------------------
    const double read_bytes_pe = summary_.dense_input_bytes +
        summary_.embedding_lookups * 8.0 + 4.0;
    const double t_input = bg * read_bytes_pe /
        (g * p.host_gpu.bandwidth) +
        bg * (params_.host_cpu_per_example +
              summary_.embedding_lookups * params_.host_cpu_per_lookup) /
            static_cast<double>(p.num_cpu_sockets);

    const double t_local = t_mlp + t_launch + t_gather_gpu + t_a2a +
        t_host + t_pcie + t_allreduce + t_input;
    // Hogwild workers overlap the remote phase with local compute.
    const double t_iter = hogwild >= 2.0 && frac_remote > 0.0
        ? std::max(t_local, t_remote)
        : t_local + t_remote;

    est.breakdown = {
        {"mlp_compute", t_mlp},
        {"kernel_dispatch", t_launch},
        {"emb_gather_gpu", t_gather_gpu},
        {"emb_alltoall", t_a2a},
        {"emb_gather_host", t_host},
        {"emb_pcie", t_pcie},
        {"emb_remote", t_remote},
        {"dense_allreduce", t_allreduce},
        {"input_pipeline", t_input},
    };

    double throughput = bg_global / t_iter;
    // Name the largest phase as the trainer-side bottleneck.
    est.bottleneck = "mlp_compute";
    double worst = t_mlp;
    for (const auto& phase : est.breakdown) {
        if (phase.seconds > worst) {
            worst = phase.seconds;
            est.bottleneck = phase.name;
        }
    }

    double ps_cap = 0.0;
    if (frac_remote > 0.0) {
        ps_cap = sparsePsCapacity();
        if (ps_cap > 0.0 && ps_cap < throughput) {
            throughput = ps_cap;
            est.bottleneck = "sparse_ps";
        }
    }
    double reader_cap = 0.0;
    if (system_.num_readers > 0) {
        const double nic_rate = p.network.bandwidth *
            params_.network_goodput;
        reader_cap = static_cast<double>(system_.num_readers) *
            hw::Platform::dualSocketCpu().network.bandwidth *
            params_.network_goodput / read_bytes_pe;
        // The GPU server itself must also ingest the stream.
        reader_cap = std::min(reader_cap, nic_rate / read_bytes_pe);
        if (reader_cap < throughput) {
            throughput = reader_cap;
            est.bottleneck = "reader";
        }
    }

    est.iteration_seconds = t_iter;
    est.examples_per_iteration = bg_global;
    est.throughput = throughput;

    const double x = throughput / n_nodes;  // examples/s per node
    est.util.gpu_compute = std::min(1.0, x * train_flops / gpu_flops);
    est.util.gpu_mem_bw = std::min(
        1.0, x * (emb_train_bytes * frac_gpu +
                  train_flops / 2.0 * sizeof(float) * 0.25) /
            (g * p.gpu.mem_bandwidth));
    if (p.gpu_interconnect.bandwidth > 0.0) {
        est.util.gpu_interconnect = std::min(
            1.0, x * (2.0 * summary_.pooled_bytes * frac_gpu * (g - 1.0) / g +
                      2.0 * dense_params * sizeof(float) * (g - 1.0) /
                          g / bg) /
                (g * p.gpu_interconnect.bandwidth));
    }
    est.util.host_mem_bw = std::min(
        1.0, x * emb_train_bytes * frac_host / p.host.mem_bandwidth);
    est.util.pcie = std::min(
        1.0, x * (2.0 * summary_.pooled_bytes * (frac_host + frac_remote) +
                  read_bytes_pe) / (g * p.host_gpu.bandwidth));
    est.util.trainer_cpu = std::min(
        1.0, x * (frac_remote + frac_host) *
            (2.0 * summary_.pooled_bytes /
             (params_.serialization_bw_per_socket *
              static_cast<double>(p.num_cpu_sockets))));
    est.util.trainer_network = std::min(
        1.0, x * frac_remote * 2.0 * summary_.pooled_bytes /
            (p.network.bandwidth * params_.network_goodput));
    est.util.trainer_mem_capacity = std::min(
        1.0, plan_.resident_bytes * frac_host /
            std::max(p.host.mem_capacity, 1.0));
    if (ps_cap > 0.0) {
        est.util.sparse_ps_mem_bw = std::min(1.0, throughput / ps_cap);
        est.util.sparse_ps_mem_capacity = std::min(
            1.0, plan_.resident_bytes /
                (static_cast<double>(
                     std::max<std::size_t>(system_.num_sparse_ps, 1)) *
                 hw::Platform::dualSocketCpu().host.mem_capacity));
    }
    if (reader_cap > 0.0)
        est.util.reader_network = std::min(1.0, throughput / reader_cap);

    est.power_watts = system_.totalPowerWatts();
    return est;
}

std::vector<NodeTime>
IterationModel::nodeBreakdown() const
{
    if (!plan_.feasible)
        return {};
    return system_.platform.num_gpus > 0 ? nodeBreakdownGpu()
                                         : nodeBreakdownCpu();
}

std::vector<NodeTime>
IterationModel::nodeBreakdownCpu() const
{
    const hw::Platform& p = system_.platform;
    const double b = static_cast<double>(system_.batch_size);
    const double bwd = 1.0 + params_.backward_flops_multiplier;

    // Trainer GEMM rate under cache pressure (as estimateCpu()).
    const double llc = 0.5 * kCpuLlcBytesPerSocket * p.num_cpu_sockets;
    const double ws = b * summary_.activation_bytes;
    const double cache_factor = ws > llc
        ? std::pow(llc / ws, params_.cpu_cache_pressure_exponent) : 1.0;
    const double host_flops =
        p.host.peak_flops * params_.cpu_mlp_efficiency * cache_factor;

    const double nic_rate = p.network.bandwidth * params_.network_goodput;
    const double sync_period = system_.sync_mode == SyncMode::Easgd
        ? static_cast<double>(std::max<std::size_t>(
              system_.easgd_sync_period, 1))
        : 1.0;
    const double dense_sync_bytes = 2.0 * summary_.dense_param_count *
        sizeof(float) / sync_period;

    // Sparse-PS service rates, mirroring the DES's resources.
    const hw::Platform ps_hw = hw::Platform::dualSocketCpu();
    const double n_ps = static_cast<double>(
        std::max<std::size_t>(system_.num_sparse_ps, 1));
    const double gather_rate = tieredGatherBandwidth(
        ps_hw.host.mem_bandwidth, ps_hw.host.hotTierBandwidth(),
        plan_.hot_hit_fraction, plan_.resident_bytes / n_ps,
        kCpuLlcBytesPerSocket * ps_hw.num_cpu_sockets,
        ps_hw.host.random_access_efficiency,
        params_.cached_gather_efficiency);
    const double pool_rate = ps_hw.host.peak_flops *
        params_.cpu_mlp_efficiency * params_.ps_pooling_flops_fraction;
    const double ps_nic_rate = ps_hw.network.bandwidth *
        params_.network_goodput;
    const double dense_rate = static_cast<double>(system_.num_dense_ps) *
        ps_nic_rate;
    const double d = static_cast<double>(summary_.emb_dim);

    std::vector<NodeTime> out;
    out.reserve(graph_.numNodes());
    for (const auto& node : graph_.nodes) {
        double s = 0.0;
        switch (node.kind) {
          case graph::NodeKind::Gemm:
          case graph::NodeKind::Interaction:
            s = b * node.fwd_flops * bwd / host_flops +
                b * (node.epilogue_traffic_bytes +
                     node.bwd_epilogue_traffic_bytes) /
                    p.host.mem_bandwidth;
            break;
          case graph::NodeKind::EmbeddingLookup:
            // Trainer-side id marshalling + pooled-vector handling (the
            // gather itself runs on the PS, comm.ps_gather.* nodes)
            // plus the per-node op-dispatch charge grouped nodes
            // amortize.
            s = b * node.lookups_per_example *
                    params_.cpu_per_lookup_overhead +
                params_.cpu_per_table_dispatch;
            break;
          case graph::NodeKind::OptimizerUpdate:
            s = b * params_.cpu_per_example_overhead +
                params_.cpu_iteration_overhead;
            break;
          case graph::NodeKind::Loss:
            break;
          case graph::NodeKind::Comm:
            switch (node.comm) {
              case graph::CommOp::PsRequest:
                s = b * node.share *
                    (summary_.pooled_bytes +
                     summary_.embedding_lookups *
                         params_.request_bytes_per_lookup) *
                    0.1 / nic_rate;
                break;
              case graph::CommOp::PsGather:
                s = b * node.share * summary_.embedding_bytes *
                    params_.emb_train_bytes_multiplier / gather_rate;
                break;
              case graph::CommOp::PsPool:
                s = b * node.share * summary_.embedding_lookups * d *
                    4.0 / pool_rate;
                break;
              case graph::CommOp::PsResponse:
                s = b * node.share * summary_.pooled_bytes /
                    ps_nic_rate;
                break;
              case graph::CommOp::GradPush:
                s = b * node.share * summary_.pooled_bytes / nic_rate;
                break;
              case graph::CommOp::DenseSync:
                s = dense_rate > 0.0
                    ? dense_sync_bytes / dense_rate : 0.0;
                break;
              default:
                break;
            }
            break;
        }
        out.push_back({node.id, s});
    }
    return out;
}

std::vector<NodeTime>
IterationModel::nodeBreakdownGpu() const
{
    // Phase totals from the estimate, attributed to the graph nodes that
    // make them up so per-phase sums reproduce the breakdown exactly.
    const IterationEstimate est = estimateGpu();
    auto phase = [&est](const char* name) {
        for (const auto& ph : est.breakdown) {
            if (ph.name == name)
                return ph.seconds;
        }
        return 0.0;
    };

    const hw::Platform& p = system_.platform;
    const double g = static_cast<double>(p.num_gpus);
    const double bg = static_cast<double>(system_.batch_size) * g;
    const double frac_remote = plan_.remote_lookup_fraction;
    const double d = static_cast<double>(summary_.emb_dim);

    const double flops_total =
        summary_.mlp_flops + summary_.interaction_flops;

    // Gather-byte totals of each hosting device group.
    double gpu_bytes = 0.0, host_bytes = 0.0;
    for (const auto& node : graph_.nodes) {
        if (node.kind != graph::NodeKind::EmbeddingLookup)
            continue;
        if (node.device == graph::Device::Gpu)
            gpu_bytes += node.bytes_per_example;
        else if (node.device == graph::Device::HostCpu)
            host_bytes += node.bytes_per_example;
    }

    // The remote-PS phase splits over the RPC-leg nodes in proportion
    // to their DES service demands.
    const hw::Platform ps_hw = hw::Platform::dualSocketCpu();
    const double n_ps = static_cast<double>(
        std::max<std::size_t>(system_.num_sparse_ps, 1));
    const double gather_rate = tieredGatherBandwidth(
        ps_hw.host.mem_bandwidth, ps_hw.host.hotTierBandwidth(),
        plan_.hot_hit_fraction, plan_.resident_bytes / n_ps,
        kCpuLlcBytesPerSocket * ps_hw.num_cpu_sockets,
        ps_hw.host.random_access_efficiency,
        params_.cached_gather_efficiency);
    const double pool_rate = ps_hw.host.peak_flops *
        params_.cpu_mlp_efficiency * params_.ps_pooling_flops_fraction;
    const double ps_nic_rate = ps_hw.network.bandwidth *
        params_.network_goodput;
    const double nic_rate = p.network.bandwidth * params_.network_goodput;
    auto remoteWeight = [&](const graph::Node& node) {
        switch (node.comm) {
          case graph::CommOp::PsRequest:
            return bg * node.share *
                (summary_.pooled_bytes + summary_.embedding_lookups *
                 params_.request_bytes_per_lookup) * 0.1 * frac_remote /
                nic_rate;
          case graph::CommOp::PsGather:
            return bg * node.share * summary_.embedding_bytes *
                params_.emb_train_bytes_multiplier * frac_remote /
                gather_rate;
          case graph::CommOp::PsPool:
            return bg * node.share * summary_.embedding_lookups * d *
                4.0 * frac_remote / pool_rate;
          case graph::CommOp::PsResponse:
            return bg * node.share * summary_.pooled_bytes *
                frac_remote / ps_nic_rate;
          case graph::CommOp::Deserialize:
            return 2.0 * bg * summary_.pooled_bytes * frac_remote /
                (params_.serialization_bw_per_socket *
                 static_cast<double>(p.num_cpu_sockets));
          default:
            return 0.0;
        }
    };
    double remote_total = 0.0;
    for (const auto& node : graph_.nodes) {
        if (node.kind == graph::NodeKind::Comm)
            remote_total += remoteWeight(node);
    }
    const double remote_scale = remote_total > 0.0
        ? phase("emb_remote") / remote_total : 0.0;

    std::vector<NodeTime> out;
    out.reserve(graph_.numNodes());
    for (const auto& node : graph_.nodes) {
        double s = 0.0;
        switch (node.kind) {
          case graph::NodeKind::Gemm:
          case graph::NodeKind::Interaction:
            if (flops_total > 0.0)
                s = phase("mlp_compute") * node.fwd_flops / flops_total;
            break;
          case graph::NodeKind::EmbeddingLookup:
            if (node.device == graph::Device::Gpu && gpu_bytes > 0.0) {
                s = phase("emb_gather_gpu") * node.bytes_per_example /
                    gpu_bytes;
            } else if (node.device == graph::Device::HostCpu &&
                       host_bytes > 0.0) {
                s = phase("emb_gather_host") * node.bytes_per_example /
                    host_bytes;
            }
            // SparsePs-hosted tables: served by the comm.ps_* legs.
            break;
          case graph::NodeKind::OptimizerUpdate:
            s = phase("kernel_dispatch");
            break;
          case graph::NodeKind::Loss:
            break;
          case graph::NodeKind::Comm:
            switch (node.comm) {
              case graph::CommOp::Input:
                s = phase("input_pipeline");
                break;
              case graph::CommOp::AllToAll:
                s = phase("emb_alltoall");
                break;
              case graph::CommOp::PcieStage:
                s = phase("emb_pcie");
                break;
              case graph::CommOp::AllReduce:
                s = phase("dense_allreduce");
                break;
              default:
                s = remote_scale * remoteWeight(node);
                break;
            }
            break;
        }
        out.push_back({node.id, s});
    }
    return out;
}

} // namespace cost
} // namespace recsim
