#include "cost/cache_model.h"

#include <algorithm>

#include "util/logging.h"

namespace recsim {
namespace cost {

double
cacheTrafficHitFraction(double resident_bytes, double cache_bytes)
{
    if (resident_bytes <= cache_bytes || resident_bytes <= 0.0)
        return 1.0;
    // Hit fraction under Zipf-skewed access: the cache holds the hottest
    // rows, serving roughly cache/resident of *capacity* but a larger
    // share of *traffic*; the sqrt soft-skew captures that.
    const double hit = std::min(1.0, cache_bytes / resident_bytes);
    return std::min(1.0, 1.8 * hit + 0.2 * hit * hit);
}

double
gatherEfficiency(double resident_bytes, double cache_bytes,
                 double random_eff, double cached_eff)
{
    RECSIM_ASSERT(random_eff > 0.0 && cached_eff >= random_eff,
                  "inconsistent gather efficiencies");
    // Early-out keeps the fully-resident result exactly cached_eff
    // (the interpolation below would perturb it in the last ulp).
    if (resident_bytes <= cache_bytes || resident_bytes <= 0.0)
        return cached_eff;
    const double traffic_hit =
        cacheTrafficHitFraction(resident_bytes, cache_bytes);
    return random_eff + (cached_eff - random_eff) * traffic_hit;
}

double
tieredGatherBandwidth(double cold_bw, double hot_bw, double hot_hit,
                      double resident_bytes, double cache_bytes,
                      double random_eff, double cached_eff)
{
    const double cold_rate = cold_bw *
        gatherEfficiency(resident_bytes, cache_bytes, random_eff,
                         cached_eff);
    if (hot_hit <= 0.0)
        return cold_rate;  // bit-identical single-tier fast path
    RECSIM_ASSERT(hot_hit <= 1.0 && hot_bw > 0.0,
                  "inconsistent hot-tier parameters");
    const double hot_rate = hot_bw * cached_eff;
    return 1.0 /
        ((1.0 - hot_hit) / cold_rate + hot_hit / hot_rate);
}

} // namespace cost
} // namespace recsim
