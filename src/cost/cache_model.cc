#include "cost/cache_model.h"

#include <algorithm>

#include "util/logging.h"

namespace recsim {
namespace cost {

double
gatherEfficiency(double resident_bytes, double cache_bytes,
                 double random_eff, double cached_eff)
{
    RECSIM_ASSERT(random_eff > 0.0 && cached_eff >= random_eff,
                  "inconsistent gather efficiencies");
    if (resident_bytes <= cache_bytes || resident_bytes <= 0.0)
        return cached_eff;
    // Hit fraction under Zipf-skewed access: the cache holds the hottest
    // rows, serving roughly cache/resident of *capacity* but a larger
    // share of *traffic*; the sqrt soft-skew captures that.
    const double hit = std::min(1.0, cache_bytes / resident_bytes);
    const double traffic_hit = std::min(1.0, 1.8 * hit + 0.2 * hit * hit);
    return random_eff + (cached_eff - random_eff) * traffic_hit;
}

} // namespace cost
} // namespace recsim
