/**
 * @file
 * System-side training configuration (Section IV-B of the paper): which
 * platform, where the embedding tables live, how many trainer /
 * parameter-server / reader servers, batch size, and the gradient
 * synchronization mode.
 */
#pragma once

#include <cstddef>
#include <string>

#include "hw/platform.h"
#include "placement/placement.h"

namespace recsim {
namespace cost {

/** Gradient synchronization method (Section III-A.6). */
enum class SyncMode
{
    Easgd,  ///< Elastic-averaging SGD with a center dense PS.
    Sync    ///< Fully synchronous allreduce (GPU-local training).
};

std::string toString(SyncMode mode);

/** Complete system configuration for one training run. */
struct SystemConfig
{
    hw::Platform platform = hw::Platform::dualSocketCpu();
    placement::EmbeddingPlacement placement =
        placement::EmbeddingPlacement::CpuLocal;

    /**
     * Trainer servers. For CPU platforms: the trainer fleet size. For
     * GPU platforms: the number of identical GPU servers ganged
     * data-parallel (the scale-out extension; 1 = the paper's
     * single-server setups).
     */
    std::size_t num_trainers = 1;
    /** Dense parameter servers holding MLP parameters. */
    std::size_t num_dense_ps = 1;
    /** Sparse parameter servers holding embedding tables. */
    std::size_t num_sparse_ps = 1;
    /**
     * Reader servers streaming examples from the warehouse. 0 means
     * auto-scaled: the paper notes readers are provisioned so that data
     * reading never bottlenecks training, so no reader cap is applied.
     */
    std::size_t num_readers = 0;

    /**
     * Batch size per trainer (CPU platforms) or per GPU (accelerated
     * platforms), matching the paper's "optimal batch size per GPU".
     */
    std::size_t batch_size = 200;

    /** Asynchronous Hogwild worker threads per trainer. */
    std::size_t hogwild_threads = 1;

    SyncMode sync_mode = SyncMode::Easgd;
    /** Iterations between EASGD syncs with the dense PS. */
    std::size_t easgd_sync_period = 16;

    /** Include reader servers in the power accounting. */
    bool count_reader_power = false;

    /**
     * Serving precision of the embedding tables, bytes per element
     * (4 = fp32, 2 = fp16, 1 = int8 row-wise) — the quantization
     * extension. Scales table capacity and lookup bandwidth in the
     * cost model; nn::QuantizedEmbeddingBag measures the accuracy side.
     */
    double emb_bytes_per_element = 4.0;

    /**
     * Trainer-side hot-row cache for remote (parameter-server)
     * placements, bytes — the caching extension. Zipf-skewed access
     * means a small cache absorbs a large lookup fraction.
     */
    double remote_cache_bytes = 0.0;

    /**
     * Embedding hot-tier capacity on the device holding the tables,
     * bytes — the tiered-memory extension (MTrainS-style). The
     * placement planner packs hot tables / hot rows into this budget,
     * per-tier gather terms engage in the cost model and the DES, and
     * the executable counterpart is nn::CachedBackend with the same
     * budget. 0 = flat single-tier memory (all existing setups).
     */
    double emb_hot_tier_bytes = 0.0;

    placement::PlacementOptions placement_options;

    /** Global examples per iteration across the whole system. */
    std::size_t globalBatch() const;

    /** Total provisioned power of the setup, watts. */
    double totalPowerWatts() const;

    /** One-line summary for reports. */
    std::string summary() const;

    // ---- Named setups (Table III "CPU Setup" / "GPU Setup" rows) ----

    /** N-trainer CPU setup with dense+sparse PS split. */
    static SystemConfig cpuSetup(std::size_t trainers,
                                 std::size_t sparse_ps,
                                 std::size_t dense_ps,
                                 std::size_t batch = 200,
                                 std::size_t hogwild = 1);

    /** Single Big Basin with a chosen placement. */
    static SystemConfig bigBasinSetup(
        placement::EmbeddingPlacement placement, std::size_t batch_per_gpu,
        std::size_t remote_sparse_ps = 0);

    /** Single prototype Zion with a chosen placement. */
    static SystemConfig zionSetup(placement::EmbeddingPlacement placement,
                                  std::size_t batch_per_gpu,
                                  std::size_t remote_sparse_ps = 0);
};

} // namespace cost
} // namespace recsim
