#include "cost/system_config.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_utils.h"

namespace recsim {
namespace cost {

std::string
toString(SyncMode mode)
{
    switch (mode) {
      case SyncMode::Easgd:
        return "easgd";
      case SyncMode::Sync:
        return "sync";
    }
    util::panic("unknown sync mode");
}

std::size_t
SystemConfig::globalBatch() const
{
    if (platform.num_gpus > 0) {
        return batch_size * static_cast<std::size_t>(platform.num_gpus) *
            std::max<std::size_t>(num_trainers, 1);
    }
    return batch_size * num_trainers * hogwild_threads;
}

double
SystemConfig::totalPowerWatts() const
{
    const double cpu_server =
        hw::Platform::dualSocketCpu().power_watts;
    double watts = 0.0;
    if (platform.num_gpus > 0) {
        watts += platform.power_watts *
            static_cast<double>(std::max<std::size_t>(num_trainers, 1));
        // Remote sparse PS for a GPU trainer are CPU servers.
        if (placement == placement::EmbeddingPlacement::RemotePs)
            watts += static_cast<double>(num_sparse_ps) * cpu_server;
    } else {
        watts += static_cast<double>(num_trainers) * platform.power_watts;
        watts += static_cast<double>(num_sparse_ps + num_dense_ps) *
            cpu_server;
    }
    if (count_reader_power)
        watts += static_cast<double>(num_readers) * cpu_server;
    return watts;
}

std::string
SystemConfig::summary() const
{
    return util::format(
        "{} x{} trainers, {} sparse PS, {} dense PS, emb on {}, "
        "batch {}, {} ({} hogwild)",
        platform.name, num_trainers, num_sparse_ps, num_dense_ps,
        placement::toString(placement), batch_size, toString(sync_mode),
        hogwild_threads);
}

SystemConfig
SystemConfig::cpuSetup(std::size_t trainers, std::size_t sparse_ps,
                       std::size_t dense_ps, std::size_t batch,
                       std::size_t hogwild)
{
    SystemConfig cfg;
    cfg.platform = hw::Platform::dualSocketCpu();
    cfg.placement = placement::EmbeddingPlacement::CpuLocal;
    cfg.num_trainers = trainers;
    cfg.num_sparse_ps = sparse_ps;
    cfg.num_dense_ps = dense_ps;
    cfg.batch_size = batch;
    cfg.hogwild_threads = hogwild;
    cfg.sync_mode = SyncMode::Easgd;
    cfg.placement_options.num_sparse_ps = sparse_ps;
    return cfg;
}

SystemConfig
SystemConfig::bigBasinSetup(placement::EmbeddingPlacement placement,
                            std::size_t batch_per_gpu,
                            std::size_t remote_sparse_ps)
{
    SystemConfig cfg;
    cfg.platform = hw::Platform::bigBasin();
    cfg.placement = placement;
    cfg.num_trainers = 1;
    cfg.num_dense_ps = 0;
    cfg.num_sparse_ps = remote_sparse_ps;
    cfg.batch_size = batch_per_gpu;
    cfg.sync_mode = SyncMode::Sync;
    cfg.placement_options.num_sparse_ps =
        remote_sparse_ps ? remote_sparse_ps : 1;
    return cfg;
}

SystemConfig
SystemConfig::zionSetup(placement::EmbeddingPlacement placement,
                        std::size_t batch_per_gpu,
                        std::size_t remote_sparse_ps)
{
    SystemConfig cfg = bigBasinSetup(placement, batch_per_gpu,
                                     remote_sparse_ps);
    cfg.platform = hw::Platform::zionPrototype();
    return cfg;
}

} // namespace cost
} // namespace recsim
