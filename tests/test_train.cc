/**
 * @file
 * Tests for the functional training substrate: single-thread baseline,
 * Hogwild, EASGD, and the learning-rate sweep behind Fig 15.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "train/easgd.h"
#include "train/shadow_sync.h"
#include "train/hogwild.h"
#include "train/sweep.h"
#include "train/trainer.h"

namespace recsim::train {
namespace {

model::DlrmConfig
tinyModel()
{
    return model::DlrmConfig::tinyReplica(4, 8, 500, 8);
}

data::DatasetConfig
tinyData(uint64_t seed = 77)
{
    const auto m = tinyModel();
    data::DatasetConfig cfg;
    cfg.num_dense = m.num_dense;
    cfg.sparse = m.sparse;
    cfg.seed = seed;
    return cfg;
}

TEST(SingleThread, LearnsBeyondBaseRate)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(12000);
    TrainConfig cfg;
    cfg.batch_size = 128;
    cfg.learning_rate = 0.05f;
    cfg.epochs = 2;
    const TrainResult result =
        trainSingleThread(tinyModel(), ds, cfg, 2000);
    EXPECT_GT(result.steps, 100u);
    EXPECT_LT(result.eval_ne, 1.0);  // beats predicting the base CTR
    EXPECT_GT(result.eval_accuracy, 0.5);
    EXPECT_TRUE(std::isfinite(result.final_train_loss));
}

TEST(SingleThread, DeterministicForSeeds)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(6000);
    TrainConfig cfg;
    cfg.batch_size = 128;
    cfg.learning_rate = 0.05f;
    const auto a = trainSingleThread(tinyModel(), ds, cfg, 1000);
    const auto b = trainSingleThread(tinyModel(), ds, cfg, 1000);
    EXPECT_DOUBLE_EQ(a.eval_ne, b.eval_ne);
    EXPECT_DOUBLE_EQ(a.eval_loss, b.eval_loss);
}

TEST(SingleThread, SgdAndAdagradBothLearn)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(8000);
    TrainConfig cfg;
    cfg.batch_size = 128;
    cfg.learning_rate = 0.05f;
    cfg.optimizer = OptimizerKind::Sgd;
    const auto sgd = trainSingleThread(tinyModel(), ds, cfg, 1000);
    cfg.optimizer = OptimizerKind::Adagrad;
    const auto adagrad = trainSingleThread(tinyModel(), ds, cfg, 1000);
    EXPECT_LT(sgd.eval_ne, 1.0);
    EXPECT_LT(adagrad.eval_ne, 1.0);
}

TEST(SingleThread, LossCurveRecordedWhenRequested)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(6000);
    TrainConfig cfg;
    cfg.batch_size = 128;
    cfg.eval_every = 10;
    const auto result = trainSingleThread(tinyModel(), ds, cfg, 1000);
    EXPECT_GT(result.loss_curve.size(), 2u);
    EXPECT_EQ(result.loss_curve.front().first, 0u);
}

TEST(SingleThread, MoreStepsImproveNe)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(12000);
    TrainConfig short_cfg;
    short_cfg.batch_size = 2048;  // few steps on the same data
    short_cfg.learning_rate = 0.05f;
    TrainConfig long_cfg = short_cfg;
    long_cfg.batch_size = 128;    // many steps
    const auto few = trainSingleThread(tinyModel(), ds, short_cfg, 2000);
    const auto many = trainSingleThread(tinyModel(), ds, long_cfg, 2000);
    // The Fig 15 mechanism: at the same LR, fewer/larger steps converge
    // less within one pass over the data.
    EXPECT_LT(many.eval_ne, few.eval_ne);
}

TEST(Hogwild, LearnsWithMultipleThreads)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(12000);
    HogwildConfig cfg;
    cfg.base.batch_size = 128;
    cfg.base.learning_rate = 0.05f;
    cfg.num_threads = 4;
    const auto result = trainHogwild(tinyModel(), ds, cfg, 2000);
    EXPECT_LT(result.eval_ne, 1.0);
    EXPECT_GT(result.steps, 0u);
}

TEST(Hogwild, SingleThreadDegeneratesToSequential)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(8000);
    HogwildConfig cfg;
    cfg.base.batch_size = 128;
    cfg.base.learning_rate = 0.05f;
    cfg.num_threads = 1;
    const auto result = trainHogwild(tinyModel(), ds, cfg, 1000);
    EXPECT_LT(result.eval_ne, 1.0);
}

TEST(Easgd, CenterModelLearns)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(12000);
    EasgdConfig cfg;
    cfg.base.batch_size = 64;
    cfg.base.learning_rate = 0.05f;
    cfg.base.epochs = 3;
    cfg.num_workers = 4;
    cfg.sync_period = 4;
    const auto result = trainEasgd(tinyModel(), ds, cfg, 2000);
    EXPECT_LT(result.eval_ne, 1.0);
    EXPECT_GT(result.steps, 0u);
}

TEST(Easgd, MoreFrequentSyncTracksCloser)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(12000);
    EasgdConfig cfg;
    cfg.base.batch_size = 64;
    cfg.base.learning_rate = 0.05f;
    cfg.base.epochs = 2;
    cfg.num_workers = 4;
    cfg.sync_period = 2;
    const auto frequent = trainEasgd(tinyModel(), ds, cfg, 2000);
    cfg.sync_period = 256;
    const auto rare = trainEasgd(tinyModel(), ds, cfg, 2000);
    // With very rare syncs the center barely moves; NE must be worse
    // (or at best equal) than with tight coupling.
    EXPECT_LE(frequent.eval_ne, rare.eval_ne + 0.05);
}

TEST(ShadowSync, CenterModelLearns)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(12000);
    ShadowSyncConfig cfg;
    cfg.base.batch_size = 64;
    cfg.base.learning_rate = 0.05f;
    cfg.base.epochs = 3;
    cfg.num_workers = 4;
    const auto result = trainShadowSync(tinyModel(), ds, cfg, 2000);
    EXPECT_LT(result.eval_ne, 1.1);
    EXPECT_GT(result.steps, 0u);
    EXPECT_TRUE(std::isfinite(result.final_train_loss));
}

TEST(ShadowSync, SingleWorkerStillConverges)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(8000);
    ShadowSyncConfig cfg;
    cfg.base.batch_size = 64;
    cfg.base.learning_rate = 0.05f;
    cfg.base.epochs = 2;
    cfg.num_workers = 1;
    const auto result = trainShadowSync(tinyModel(), ds, cfg, 1000);
    EXPECT_LT(result.eval_ne, 1.1);
}

TEST(Sweep, PicksBestLearningRate)
{
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(8000);
    TrainConfig cfg;
    cfg.batch_size = 256;
    const auto sweep = sweepLearningRate(
        tinyModel(), ds, cfg, {0.0001f, 0.05f}, 1000);
    ASSERT_EQ(sweep.points.size(), 2u);
    // 0.05 should clearly beat a nearly-frozen 0.0001.
    EXPECT_EQ(sweep.best_index, 1u);
    for (const auto& point : sweep.points)
        EXPECT_GE(point.result.eval_ne, sweep.best().result.eval_ne);
}

TEST(Sweep, DefaultGridIsSortedAndPositive)
{
    const auto grid = defaultLrGrid();
    ASSERT_GT(grid.size(), 2u);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_GT(grid[i], 0.0f);
        if (i) {
            EXPECT_GT(grid[i], grid[i - 1]);
        }
    }
}

} // namespace
} // namespace recsim::train
