/**
 * @file
 * Tests for train::GraphExecutor, the dependency-aware step executor:
 * its wavefront schedule must cover every executable node exactly once,
 * and a training run through it must stay bitwise-identical to the
 * serial runGraphStep walk at every thread-pool size — losses per step
 * and final dense parameters alike. The equivalence is the whole
 * contract: inter-op parallelism is only admissible because it cannot
 * change a single bit of the result.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "cost/iteration_model.h"
#include "data/dataset.h"
#include "graph/step_graph.h"
#include "model/dlrm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "train/step_runner.h"
#include "util/thread_pool.h"

namespace recsim::train {
namespace {

/** Model zoo exercising uniform tables, mixed dims, and tiny shapes. */
std::vector<model::DlrmConfig>
modelZoo()
{
    std::vector<model::DlrmConfig> zoo;
    zoo.push_back(model::DlrmConfig::tinyReplica(8, 13, 2000, 16));
    zoo.push_back(model::DlrmConfig::tinyReplica(4, 8, 500, 8));
    // Mixed dimensions add proj.t* nodes (emb -> proj chains).
    auto m = model::DlrmConfig::tinyReplica(8, 13, 2000, 16);
    for (std::size_t f = 0; f < m.sparse.size(); ++f)
        m.sparse[f].mean_length = 0.5 + static_cast<double>(f);
    zoo.push_back(model::applyMixedDimensions(m, 0.5, 4));
    return zoo;
}

data::DatasetConfig
datasetFor(const model::DlrmConfig& m)
{
    data::DatasetConfig cfg;
    cfg.num_dense = m.num_dense;
    cfg.sparse = m.sparse;
    cfg.seed = 7;
    return cfg;
}

bool
bitwiseEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/** Bitwise comparison of every dense parameter tensor. */
void
expectParamsBitwiseEqual(model::Dlrm& a, model::Dlrm& b,
                         const std::string& context)
{
    auto pa = a.denseParams();
    auto pb = b.denseParams();
    ASSERT_EQ(pa.size(), pb.size()) << context;
    for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->size(), pb[i]->size()) << context;
        EXPECT_EQ(std::memcmp(pa[i]->data(), pb[i]->data(),
                              pa[i]->size() * sizeof(float)),
                  0)
            << context << " tensor " << i;
    }
}

/**
 * Train @p steps via the serial walk and via the executor on same-seed
 * models with identical batches, applying SGD each step, and require
 * bitwise-equal losses and final parameters.
 */
void
checkSerialEquivalence(const model::DlrmConfig& cfg,
                       const graph::StepGraph& graph,
                       const GraphExecutor& executor,
                       std::size_t threads)
{
    auto& pool = util::globalThreadPool();
    pool.resize(threads);
    const std::string context =
        cfg.name + " @" + std::to_string(threads) + "t";

    model::Dlrm serial_model(cfg, 3);
    model::Dlrm exec_model(cfg, 3);
    data::SyntheticCtrDataset ds(datasetFor(cfg));
    const nn::Sgd sgd(0.05f);
    for (std::size_t step = 0; step < 5; ++step) {
        const auto batch = ds.nextBatch(32);
        const double a = runGraphStep(serial_model, batch, graph);
        const double b = executor.runStep(exec_model, batch);
        EXPECT_TRUE(bitwiseEqual(a, b))
            << context << " step " << step << ": " << a << " vs " << b;
        serial_model.step(sgd);
        exec_model.step(sgd);
    }
    expectParamsBitwiseEqual(serial_model, exec_model, context);
    pool.resize(1);
}

TEST(GraphExecutor, BitwiseEqualToSerialWalkAcrossThreadCounts)
{
    for (const auto& cfg : modelZoo()) {
        const auto graph = graph::buildModelStepGraph(cfg);
        const GraphExecutor executor(graph);
        for (const std::size_t threads : {1u, 2u, 8u})
            checkSerialEquivalence(cfg, graph, executor, threads);
    }
}

/**
 * Bitwise comparison of accumulated gradients: every MLP layer's
 * dW/db plus the per-table sparse grads (rows and values).
 */
void
expectGradsBitwiseEqual(model::Dlrm& a, model::Dlrm& b,
                        const std::string& context)
{
    auto cmp_mlp = [&](nn::Mlp& ma, nn::Mlp& mb, const char* which) {
        ASSERT_EQ(ma.layers().size(), mb.layers().size()) << context;
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            nn::Linear& x = ma.layers()[l];
            nn::Linear& y = mb.layers()[l];
            ASSERT_EQ(x.gradWeight.size(), y.gradWeight.size());
            EXPECT_EQ(std::memcmp(x.gradWeight.data(),
                                  y.gradWeight.data(),
                                  x.gradWeight.size() * sizeof(float)),
                      0)
                << context << " " << which << " l" << l << " dW";
            EXPECT_EQ(std::memcmp(x.gradBias.data(), y.gradBias.data(),
                                  x.gradBias.size() * sizeof(float)),
                      0)
                << context << " " << which << " l" << l << " db";
        }
    };
    cmp_mlp(a.bottomMlp(), b.bottomMlp(), "bottom");
    cmp_mlp(a.topMlp(), b.topMlp(), "top");

    const auto& sa = a.sparseGrads();
    const auto& sb = b.sparseGrads();
    ASSERT_EQ(sa.size(), sb.size()) << context;
    for (std::size_t t = 0; t < sa.size(); ++t) {
        ASSERT_EQ(sa[t].rows, sb[t].rows) << context << " table " << t;
        ASSERT_EQ(sa[t].values.size(), sb[t].values.size());
        EXPECT_EQ(std::memcmp(sa[t].values.data(), sb[t].values.data(),
                              sa[t].values.size() * sizeof(float)),
                  0)
            << context << " table " << t << " values";
    }
}

TEST(GraphExecutor, FusedBackwardGradsBitwiseEqualToUnfused)
{
    // Pre-optimizer gradient state after one fused step — dense dW/db
    // and sparse grads alike — must carry the exact bits of the
    // unfused serial walk at every thread count. Stricter than the
    // post-SGD parameter check: nothing can hide in the update.
    auto& pool = util::globalThreadPool();
    for (const auto& cfg : modelZoo()) {
        const auto unfused = graph::buildModelStepGraph(cfg);
        auto fused_graph = graph::buildModelStepGraph(cfg);
        graph::fusePass(fused_graph);
        const GraphExecutor executor(fused_graph);

        for (const std::size_t threads : {1u, 2u, 8u}) {
            pool.resize(threads);
            const std::string context = cfg.name + " grads @" +
                std::to_string(threads) + "t";
            model::Dlrm unfused_model(cfg, 3);
            model::Dlrm fused_serial(cfg, 3);
            model::Dlrm fused_exec(cfg, 3);
            data::SyntheticCtrDataset ds(datasetFor(cfg));
            const auto batch = ds.nextBatch(32);
            const double a =
                runGraphStep(unfused_model, batch, unfused);
            const double b =
                runGraphStep(fused_serial, batch, fused_graph);
            const double c = executor.runStep(fused_exec, batch);
            EXPECT_TRUE(bitwiseEqual(a, b)) << context << " serial";
            EXPECT_TRUE(bitwiseEqual(a, c)) << context << " executor";
            expectGradsBitwiseEqual(unfused_model, fused_serial,
                                    context + " serial");
            expectGradsBitwiseEqual(unfused_model, fused_exec,
                                    context + " executor");
            pool.resize(1);
        }
    }
}

TEST(GraphExecutor, FusedGraphBitwiseEqualToUnfusedSerialWalk)
{
    // fusePass rewrites the IR (epilogue-fused GEMMs, grouped
    // lookups); execution through the fused graph — serial walk and
    // wavefront executor alike — must stay bit-identical to the
    // unfused serial walk at every thread count. This is the whole
    // license for the fusion pass.
    auto& pool = util::globalThreadPool();
    for (const auto& cfg : modelZoo()) {
        const auto unfused = graph::buildModelStepGraph(cfg);
        auto fused_graph = graph::buildModelStepGraph(cfg);
        graph::fusePass(fused_graph);
        ASSERT_NE(fused_graph.find("emb.grouped.g0"), nullptr);
        const GraphExecutor executor(fused_graph);

        for (const std::size_t threads : {1u, 2u, 8u}) {
            pool.resize(threads);
            const std::string context = cfg.name + " fused @" +
                std::to_string(threads) + "t";
            model::Dlrm unfused_model(cfg, 3);
            model::Dlrm fused_serial(cfg, 3);
            model::Dlrm fused_exec(cfg, 3);
            data::SyntheticCtrDataset ds(datasetFor(cfg));
            const nn::Sgd sgd(0.05f);
            for (std::size_t step = 0; step < 5; ++step) {
                const auto batch = ds.nextBatch(32);
                const double a =
                    runGraphStep(unfused_model, batch, unfused);
                const double b =
                    runGraphStep(fused_serial, batch, fused_graph);
                const double c = executor.runStep(fused_exec, batch);
                EXPECT_TRUE(bitwiseEqual(a, b))
                    << context << " serial step " << step;
                EXPECT_TRUE(bitwiseEqual(a, c))
                    << context << " executor step " << step;
                unfused_model.step(sgd);
                fused_serial.step(sgd);
                fused_exec.step(sgd);
            }
            expectParamsBitwiseEqual(unfused_model, fused_serial,
                                     context + " serial");
            expectParamsBitwiseEqual(unfused_model, fused_exec,
                                     context + " executor");
            pool.resize(1);
        }
    }
}

TEST(GraphExecutor, BoundGraphSchedulesLikeComputeSkeleton)
{
    // A placement-bound graph carries Comm/Loss/Optimizer nodes the
    // executor must look through; the result must still match the
    // serial walk over the same bound graph.
    const auto cfg = model::DlrmConfig::tinyReplica(8, 13, 2000, 16);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    const cost::IterationModel im(cfg, sys);
    const auto& bound = im.stepGraph();
    ASSERT_NE(bound.findComm(graph::CommOp::PsRequest), nullptr);

    const GraphExecutor executor(bound);
    for (const std::size_t threads : {1u, 8u})
        checkSerialEquivalence(cfg, bound, executor, threads);
}

TEST(GraphExecutor, ForwardSubgraphMatchesTrainingForwardBitwise)
{
    // The serving contract: the pruned forward StepGraph, run through
    // runForward on the executor, must produce logits memcmp-equal to
    // the forward half of the serial training walk — on plain and
    // mixed-dim models, at 1/2/8 threads.
    auto& pool = util::globalThreadPool();
    for (const auto& cfg : modelZoo()) {
        const auto training = graph::buildModelStepGraph(cfg);
        const auto serving = graph::forwardSubgraph(training);
        const GraphExecutor executor(serving);
        data::SyntheticCtrDataset ds(datasetFor(cfg));
        for (std::size_t step = 0; step < 3; ++step) {
            const auto batch = ds.nextBatch(32);

            // Serial reference: the forward half of runGraphStep
            // (identical to Dlrm::forward by the PR-4 contract).
            model::Dlrm ref_model(cfg, 3);
            tensor::Tensor ref_logits;
            ref_model.forward(batch, ref_logits);

            for (const std::size_t threads : {1u, 2u, 8u}) {
                pool.resize(threads);
                model::Dlrm serve_model(cfg, 3);
                executor.runForward(serve_model, batch);
                const auto& logits = serve_model.logits();
                ASSERT_EQ(logits.size(), ref_logits.size());
                EXPECT_EQ(std::memcmp(logits.data(), ref_logits.data(),
                                      logits.size() * sizeof(float)),
                          0)
                    << cfg.name << " step " << step << " @" << threads
                    << "t: serving forward diverged from training "
                       "forward";
            }
        }
    }
    pool.resize(1);
}

TEST(GraphExecutor, RunForwardOnFullGraphMatchesPrunedGraph)
{
    // Pruning only drops nodes the schedule looks through, so the
    // full training graph and its forward subgraph must yield the
    // same forward waves — and the same bits.
    const auto cfg = model::DlrmConfig::tinyReplica(8, 13, 2000, 16);
    const auto training = graph::buildModelStepGraph(cfg);
    const auto serving = graph::forwardSubgraph(training);
    const GraphExecutor full(training);
    const GraphExecutor pruned(serving);
    ASSERT_EQ(full.forwardWaves().size(), pruned.forwardWaves().size());
    for (std::size_t w = 0; w < full.forwardWaves().size(); ++w)
        EXPECT_EQ(full.forwardWaves()[w].size(),
                  pruned.forwardWaves()[w].size());

    data::SyntheticCtrDataset ds(datasetFor(cfg));
    const auto batch = ds.nextBatch(16);
    model::Dlrm a(cfg, 3), b(cfg, 3);
    full.runForward(a, batch);
    pruned.runForward(b, batch);
    ASSERT_EQ(a.logits().size(), b.logits().size());
    EXPECT_EQ(std::memcmp(a.logits().data(), b.logits().data(),
                          a.logits().size() * sizeof(float)),
              0);
}

TEST(GraphExecutor, WavesCoverEachExecutableNodeExactlyOnce)
{
    const auto cfg = model::DlrmConfig::tinyReplica(8, 13, 2000, 16);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    const cost::IterationModel im(cfg, sys);
    const auto& g = im.stepGraph();
    const GraphExecutor executor(g);

    std::set<std::size_t> executable;
    for (std::size_t i = 0; i < g.numNodes(); ++i) {
        const auto& node = g.nodes[i];
        if (node.kind == graph::NodeKind::Gemm ||
            node.kind == graph::NodeKind::EmbeddingLookup ||
            node.kind == graph::NodeKind::Interaction)
            executable.insert(i);
    }
    ASSERT_FALSE(executable.empty());

    for (const auto* waves :
         {&executor.forwardWaves(), &executor.backwardWaves()}) {
        std::set<std::size_t> seen;
        for (const auto& wave : *waves) {
            EXPECT_FALSE(wave.empty());
            for (std::size_t i : wave) {
                EXPECT_TRUE(seen.insert(i).second)
                    << "node " << g.nodes[i].id << " scheduled twice";
            }
        }
        EXPECT_EQ(seen, executable);
    }
}

TEST(GraphExecutor, ForwardWavesRespectDependencies)
{
    // Every effective predecessor of a node must sit in an earlier
    // wave: within the model graph the deps are all executable, so the
    // raw edges already must be honored.
    const auto cfg = model::DlrmConfig::tinyReplica(8, 13, 2000, 16);
    const auto g = graph::buildModelStepGraph(cfg);
    const GraphExecutor executor(g);

    std::vector<std::size_t> wave_of(g.numNodes(), 0);
    for (std::size_t w = 0; w < executor.forwardWaves().size(); ++w) {
        for (std::size_t i : executor.forwardWaves()[w])
            wave_of[i] = w;
    }
    for (const auto& wave : executor.forwardWaves()) {
        for (std::size_t i : wave) {
            for (std::size_t d : g.nodes[i].deps) {
                if (g.nodes[d].kind == graph::NodeKind::Gemm ||
                    g.nodes[d].kind ==
                        graph::NodeKind::EmbeddingLookup ||
                    g.nodes[d].kind == graph::NodeKind::Interaction) {
                    EXPECT_LT(wave_of[d], wave_of[i])
                        << g.nodes[d].id << " !< " << g.nodes[i].id;
                }
            }
        }
    }
}

} // namespace
} // namespace recsim::train
