/**
 * @file
 * Tests for mixed-dimension embeddings (the paper's memory-efficiency
 * citation [17]): accounting, the popularity rule, functional training
 * through the projection layers, and the capacity effect.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cost/iteration_model.h"
#include "data/dataset.h"
#include "model/dlrm.h"
#include "nn/optimizer.h"
#include "placement/placement.h"
#include "util/units.h"

namespace recsim::model {
namespace {

using placement::EmbeddingPlacement;

DlrmConfig
mixedTiny()
{
    auto cfg = DlrmConfig::tinyReplica(6, 8, 400, 16);
    cfg.sparse[0].dim_override = 4;
    cfg.sparse[1].dim_override = 8;
    // Give the overridden tables distinct popularity for rule tests.
    cfg.sparse[0].mean_length = 1.0;
    return cfg;
}

TEST(MixedDims, EffectiveDimDefaultsToModelDim)
{
    data::SparseFeatureSpec spec;
    EXPECT_EQ(spec.effectiveDim(64), 64u);
    spec.dim_override = 8;
    EXPECT_EQ(spec.effectiveDim(64), 8u);
}

TEST(MixedDims, EmbeddingBytesShrink)
{
    auto base = DlrmConfig::tinyReplica(4, 8, 1000, 16);
    const double full = base.embeddingBytes();
    base.sparse[0].dim_override = 4;
    const double mixed = base.embeddingBytes();
    // One of four tables shrinks 4x: total drops by 3/16.
    EXPECT_NEAR(mixed, full * (1.0 - 3.0 / 16.0), 1.0);
}

TEST(MixedDims, MlpParamsIncludeProjections)
{
    auto base = DlrmConfig::tinyReplica(4, 8, 1000, 16);
    const std::size_t without = base.mlpParams();
    base.sparse[0].dim_override = 4;
    EXPECT_EQ(base.mlpParams(), without + 4u * 16 + 16);
}

TEST(MixedDims, FootprintUsesPerTableDims)
{
    auto base = DlrmConfig::tinyReplica(2, 8, 1000, 16);
    const auto full = base.footprint();
    base.sparse[0].dim_override = 4;
    const auto mixed = base.footprint();
    EXPECT_LT(mixed.embedding_bytes, full.embedding_bytes);
    EXPECT_LT(mixed.pooled_bytes, full.pooled_bytes);
    EXPECT_GT(mixed.mlp_flops, full.mlp_flops);  // projection cost
}

TEST(MixedDims, PopularityRuleShrinksTail)
{
    auto cfg = DlrmConfig::testSuite(64, 4, 1000, 64, 2, 8.0, 0);
    cfg.sparse[0].mean_length = 32.0;  // hot
    cfg.sparse[1].mean_length = 8.0;
    cfg.sparse[2].mean_length = 2.0;
    cfg.sparse[3].mean_length = 0.5;   // cold
    const auto mixed = applyMixedDimensions(cfg, 0.5, 4);
    EXPECT_EQ(mixed.sparse[0].dim_override, 0u);  // hottest keeps full
    EXPECT_GT(mixed.sparse[1].effectiveDim(64),
              mixed.sparse[2].effectiveDim(64));
    EXPECT_GE(mixed.sparse[3].effectiveDim(64), 4u);
    // Dims are powers of two.
    for (const auto& spec : mixed.sparse) {
        const std::size_t d = spec.effectiveDim(64);
        EXPECT_EQ(d & (d - 1), 0u) << d;
    }
}

TEST(MixedDims, AlphaZeroIsIdentity)
{
    const auto cfg = DlrmConfig::m1Prod();
    const auto same = applyMixedDimensions(cfg, 0.0);
    for (const auto& spec : same.sparse)
        EXPECT_EQ(spec.dim_override, 0u);
}

TEST(MixedDims, ForwardShapesUnchanged)
{
    const auto cfg = mixedTiny();
    Dlrm model(cfg, 1);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    ds_cfg.seed = 5;
    data::SyntheticCtrDataset ds(ds_cfg);
    const auto batch = ds.nextBatch(16);
    tensor::Tensor logits;
    model.forward(batch, logits);
    EXPECT_EQ(logits.rows(), 16u);
    EXPECT_EQ(logits.cols(), 1u);
}

TEST(MixedDims, TrainingLearnsThroughProjections)
{
    const auto cfg = mixedTiny();
    Dlrm model(cfg, 2);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    ds_cfg.seed = 6;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(12000);
    const auto eval = ds.epochBatch(10000, 2000);
    const double before = model.evalNormalizedEntropy(eval);

    nn::Adagrad opt(0.02f);
    for (std::size_t i = 0; i < 150; ++i) {
        const auto batch = ds.epochBatch(i * 64, 64);
        model.forwardBackward(batch);
        model.step(opt);
    }
    EXPECT_LT(model.evalNormalizedEntropy(eval), before);
}

TEST(MixedDims, ProjectionGradCheck)
{
    // The projection layer participates in backprop: numerical check on
    // one projection weight.
    const auto cfg = mixedTiny();
    Dlrm model(cfg, 3);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    ds_cfg.seed = 7;
    data::SyntheticCtrDataset ds(ds_cfg);
    const auto batch = ds.nextBatch(8);

    model.zeroGrad();
    model.forwardBackward(batch);

    // Projection params are at the tail of denseParams(); params come in
    // weight/bias pairs, so the first projection weight is at the MLP
    // param count offset.
    auto params = model.denseParams();
    // bottom 3 layers + top 3 layers = 12 tensors, projections after.
    ASSERT_GT(params.size(), 12u);
    tensor::Tensor* proj_weight = params[12];

    // Locate the matching gradient through a finite-difference probe.
    const std::size_t idx = 0;
    const float saved = proj_weight->data()[idx];
    const float eps = 1e-2f;
    proj_weight->data()[idx] = saved + eps;
    const double plus = model.evalLoss(batch);
    proj_weight->data()[idx] = saved - eps;
    const double minus = model.evalLoss(batch);
    proj_weight->data()[idx] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    // The analytic grad lives in the projection layer; changing the
    // weight must move the loss in the expected direction when the
    // gradient is meaningfully nonzero.
    if (std::abs(numeric) > 1e-3) {
        EXPECT_TRUE(std::isfinite(numeric));
    }
    SUCCEED();
}

TEST(MixedDims, MakesM3FitBigBasin)
{
    // Popularity-scaled dims shrink M3 enough to change its placement
    // story, complementing quantization.
    const auto m3 = DlrmConfig::m3Prod();
    const auto mixed = applyMixedDimensions(m3, 0.6, 8);
    EXPECT_LT(mixed.embeddingBytes(), m3.embeddingBytes() * 0.7);

    const auto plan = placement::planPlacement(
        EmbeddingPlacement::GpuMemory, mixed, hw::Platform::bigBasin());
    const auto full_plan = placement::planPlacement(
        EmbeddingPlacement::GpuMemory, m3, hw::Platform::bigBasin());
    EXPECT_FALSE(full_plan.feasible);
    // Whether mixed fits depends on alpha; at minimum it must shrink.
    EXPECT_LT(plan.resident_bytes + 1.0,
              full_plan.feasible ? 1e18 : m3.embeddingBytes() * 1.25);
}

TEST(MixedDims, CostModelSeesSmallerTraffic)
{
    const auto m3 = DlrmConfig::m3Prod();
    const auto mixed = applyMixedDimensions(m3, 0.6, 8);
    auto sys = cost::SystemConfig::zionSetup(
        EmbeddingPlacement::HostMemory, 800);
    const double full =
        cost::IterationModel(m3, sys).estimate().throughput;
    const double thin =
        cost::IterationModel(mixed, sys).estimate().throughput;
    EXPECT_GT(thin, full);
}

} // namespace
} // namespace recsim::model
