/**
 * @file
 * Unit tests for recsim::model: Table II encodings, footprint
 * accounting, and the functional DLRM (shapes, grad check, learning).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "model/config.h"
#include "model/dlrm.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/units.h"

namespace recsim::model {
namespace {

TEST(Config, M1MatchesTableII)
{
    const auto m1 = DlrmConfig::m1Prod();
    EXPECT_EQ(m1.numSparse(), 30u);
    EXPECT_EQ(m1.num_dense, 800u);
    EXPECT_EQ(m1.bottom_mlp, std::vector<std::size_t>{512});
    EXPECT_EQ(m1.top_mlp, (std::vector<std::size_t>{512, 512, 512}));
    // "Embedding Size [GB]: tens" with mean lookups 28 per table.
    const double gb = m1.embeddingBytes() / util::kGB;
    EXPECT_GT(gb, 10.0);
    EXPECT_LT(gb, 100.0);
    EXPECT_NEAR(m1.meanLookupsPerExample() / 30.0, 28.0, 2.0);
}

TEST(Config, M2MatchesTableII)
{
    const auto m2 = DlrmConfig::m2Prod();
    EXPECT_EQ(m2.numSparse(), 13u);
    EXPECT_EQ(m2.num_dense, 504u);
    EXPECT_EQ(m2.bottom_mlp, std::vector<std::size_t>{1024});
    const double gb = m2.embeddingBytes() / util::kGB;
    EXPECT_GT(gb, 10.0);
    EXPECT_LT(gb, 100.0);
    EXPECT_NEAR(m2.meanLookupsPerExample() / 13.0, 17.0, 2.0);
}

TEST(Config, M3MatchesTableII)
{
    const auto m3 = DlrmConfig::m3Prod();
    EXPECT_EQ(m3.numSparse(), 127u);
    EXPECT_EQ(m3.num_dense, 809u);
    EXPECT_EQ(m3.top_mlp,
              (std::vector<std::size_t>{512, 256, 512, 256, 512}));
    // "Embedding Size [GB]: hundreds".
    const double gb = m3.embeddingBytes() / util::kGB;
    EXPECT_GT(gb, 100.0);
    EXPECT_LT(gb, 1000.0);
    EXPECT_NEAR(m3.meanLookupsPerExample() / 127.0, 49.0, 4.0);
}

TEST(Config, BottomDimsAppendEmbeddingProjection)
{
    auto cfg = DlrmConfig::m1Prod();
    const auto dims = cfg.bottomDims();
    ASSERT_EQ(dims.size(), 2u);
    EXPECT_EQ(dims.back(), cfg.emb_dim);
    cfg.interaction = nn::InteractionKind::Concat;
    EXPECT_EQ(cfg.bottomDims().size(), 1u);
}

TEST(Config, TopDimsAppendLogitLayer)
{
    const auto cfg = DlrmConfig::m1Prod();
    EXPECT_EQ(cfg.topDims().back(), 1u);
    EXPECT_EQ(cfg.topDims().size(), cfg.top_mlp.size() + 1);
}

TEST(Config, InteractionWidthDot)
{
    auto cfg = DlrmConfig::testSuite(64, 4, 1000);
    // F = 5 vectors -> 10 pairs + emb_dim passthrough.
    EXPECT_EQ(cfg.interactionWidth(), cfg.emb_dim + 10u);
}

TEST(Config, InteractionWidthConcat)
{
    auto cfg = DlrmConfig::testSuite(64, 4, 1000);
    cfg.interaction = nn::InteractionKind::Concat;
    EXPECT_EQ(cfg.interactionWidth(),
              cfg.bottomDims().back() + 4u * cfg.emb_dim);
}

TEST(Config, MlpParamsCountsBothStacks)
{
    DlrmConfig cfg;
    cfg.num_dense = 10;
    cfg.emb_dim = 4;
    cfg.bottom_mlp = {8};
    cfg.top_mlp = {6};
    cfg.interaction = nn::InteractionKind::Concat;
    cfg.sparse.resize(2);
    for (auto& s : cfg.sparse)
        s.hash_size = 100;
    // bottom: 10*8+8; top input = 8 + 2*4 = 16: 16*6+6, logit 6*1+1.
    EXPECT_EQ(cfg.mlpParams(), 10u * 8 + 8 + 16 * 6 + 6 + 6 + 1);
}

TEST(Config, FootprintScalesWithFeatures)
{
    const auto small = DlrmConfig::testSuite(64, 4, 1000);
    const auto more_dense = DlrmConfig::testSuite(512, 4, 1000);
    const auto more_sparse = DlrmConfig::testSuite(64, 64, 1000);
    EXPECT_GT(more_dense.footprint().mlp_flops,
              small.footprint().mlp_flops);
    EXPECT_GT(more_sparse.footprint().embedding_bytes,
              small.footprint().embedding_bytes);
    EXPECT_GT(more_sparse.footprint().interaction_flops,
              small.footprint().interaction_flops);
}

TEST(Config, FootprintEmbeddingBytesFormula)
{
    auto cfg = DlrmConfig::testSuite(64, 2, 1000, 64, 1, 4.0, 0);
    const auto fp = cfg.footprint();
    EXPECT_DOUBLE_EQ(fp.embedding_lookups, 8.0);
    EXPECT_DOUBLE_EQ(fp.embedding_bytes,
                     8.0 * static_cast<double>(cfg.emb_dim) * 4.0);
    EXPECT_DOUBLE_EQ(fp.pooled_bytes,
                     2.0 * static_cast<double>(cfg.emb_dim) * 4.0);
}

TEST(Config, SummaryMentionsName)
{
    const auto cfg = DlrmConfig::m1Prod();
    EXPECT_NE(cfg.summary().find("M1_prod"), std::string::npos);
}

TEST(Config, MlpDimsToString)
{
    EXPECT_EQ(mlpDimsToString({512, 256, 512}), "512-256-512");
    EXPECT_EQ(mlpDimsToString({}), "-");
}

data::DatasetConfig
datasetFor(const DlrmConfig& cfg, uint64_t seed = 11)
{
    data::DatasetConfig ds;
    ds.num_dense = cfg.num_dense;
    ds.sparse = cfg.sparse;
    ds.seed = seed;
    return ds;
}

TEST(Dlrm, ForwardShapes)
{
    const auto cfg = DlrmConfig::tinyReplica();
    Dlrm model(cfg, 1);
    data::SyntheticCtrDataset ds(datasetFor(cfg));
    const auto batch = ds.nextBatch(32);
    tensor::Tensor logits;
    model.forward(batch, logits);
    EXPECT_EQ(logits.rows(), 32u);
    EXPECT_EQ(logits.cols(), 1u);
}

TEST(Dlrm, DeterministicForSeed)
{
    const auto cfg = DlrmConfig::tinyReplica();
    Dlrm a(cfg, 5), b(cfg, 5);
    data::SyntheticCtrDataset ds(datasetFor(cfg));
    const auto batch = ds.nextBatch(8);
    tensor::Tensor la, lb;
    a.forward(batch, la);
    b.forward(batch, lb);
    EXPECT_LT(tensor::maxAbsDiff(la, lb), 1e-9);
}

TEST(Dlrm, ForwardBackwardReturnsFiniteLoss)
{
    const auto cfg = DlrmConfig::tinyReplica();
    Dlrm model(cfg, 1);
    data::SyntheticCtrDataset ds(datasetFor(cfg));
    const auto batch = ds.nextBatch(16);
    const double loss = model.forwardBackward(batch);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0);
    // Sparse grads were produced for touched tables.
    std::size_t touched = 0;
    for (const auto& g : model.sparseGrads())
        touched += !g.rows.empty();
    EXPECT_GT(touched, 0u);
}

TEST(Dlrm, SgdTrainingReducesLoss)
{
    const auto cfg = DlrmConfig::tinyReplica(4, 8, 500, 8);
    Dlrm model(cfg, 1);
    data::SyntheticCtrDataset ds(datasetFor(cfg));
    ds.materialize(4096);
    nn::Sgd opt(0.05f);

    double first_losses = 0.0, last_losses = 0.0;
    const std::size_t iters = 120;
    for (std::size_t i = 0; i < iters; ++i) {
        const auto batch = ds.epochBatch((i * 64) % 3840, 64);
        const double loss = model.forwardBackward(batch);
        model.step(opt);
        if (i < 10)
            first_losses += loss;
        if (i >= iters - 10)
            last_losses += loss;
    }
    EXPECT_LT(last_losses, first_losses * 0.98);
}

TEST(Dlrm, AdagradTrainingReducesNe)
{
    const auto cfg = DlrmConfig::tinyReplica(4, 8, 500, 8);
    Dlrm model(cfg, 2);
    data::SyntheticCtrDataset ds(datasetFor(cfg, 21));
    ds.materialize(16384);
    const auto eval = ds.epochBatch(14000, 2000);
    const double ne_before = model.evalNormalizedEntropy(eval);

    nn::Adagrad opt(0.02f);
    for (std::size_t i = 0; i < 200; ++i) {
        const auto batch = ds.epochBatch(i * 64, 64);
        model.forwardBackward(batch);
        model.step(opt);
    }
    const double ne_after = model.evalNormalizedEntropy(eval);
    EXPECT_LT(ne_after, ne_before);
    EXPECT_LT(ne_after, 1.0);  // beats the base-rate predictor
}

TEST(Dlrm, DenseParamsExposesAllLayers)
{
    const auto cfg = DlrmConfig::tinyReplica();
    Dlrm model(cfg, 1);
    const auto params = model.denseParams();
    // bottom (2 hidden + projection) + top (2 hidden + logit) layers,
    // weight + bias each.
    EXPECT_EQ(params.size(), 2u * (3 + 3));
    std::size_t total = 0;
    for (const auto* p : params)
        total += p->size();
    EXPECT_EQ(total, model.numDenseParams());
}

TEST(Dlrm, GradCheckEndToEnd)
{
    // Numerical gradient of the full model loss wrt a bottom-MLP weight
    // and an embedding row.
    auto cfg = DlrmConfig::tinyReplica(2, 4, 50, 4);
    Dlrm model(cfg, 3);
    data::SyntheticCtrDataset ds(datasetFor(cfg, 31));
    const auto batch = ds.nextBatch(8);

    model.zeroGrad();
    model.forwardBackward(batch);

    auto loss_fn = [&] { return model.evalLoss(batch); };

    // FP32 forward + ReLU kinks make individual coordinates noisy;
    // require the bulk of sampled coordinates to agree and the overall
    // direction (cosine similarity) to be near 1.
    auto& layer = model.bottomMlp().layers()[0];
    std::size_t checked = 0, within = 0;
    double dot = 0.0, a2 = 0.0, b2 = 0.0;
    for (std::size_t i = 0; i < layer.weight.size(); i += 7) {
        const float saved = layer.weight.data()[i];
        const float eps = 1e-2f;
        layer.weight.data()[i] = saved + eps;
        const double plus = loss_fn();
        layer.weight.data()[i] = saved - eps;
        const double minus = loss_fn();
        layer.weight.data()[i] = saved;
        const double numeric = (plus - minus) / (2.0 * eps);
        const double analytic = layer.gradWeight.data()[i];
        ++checked;
        within += std::abs(analytic - numeric) <
            std::max(5e-3, 0.2 * std::abs(numeric));
        dot += analytic * numeric;
        a2 += analytic * analytic;
        b2 += numeric * numeric;
    }
    ASSERT_GT(checked, 20u);
    EXPECT_GT(static_cast<double>(within) /
                  static_cast<double>(checked),
              0.85);
    EXPECT_GT(dot / std::sqrt(a2 * b2), 0.995);
}

TEST(DlrmDeath, OversizedConfigIsFatal)
{
    const auto m3 = DlrmConfig::m3Prod();  // ~120 GB of tables
    EXPECT_DEATH(Dlrm model(m3, 1), "analytical cost models");
}

} // namespace
} // namespace recsim::model
