/**
 * @file
 * Unit tests for recsim::hw: Table I platform constants and the device
 * helper math.
 */
#include <gtest/gtest.h>

#include "hw/platform.h"
#include "util/units.h"

namespace recsim::hw {
namespace {

TEST(Platform, DualSocketCpuMatchesTableI)
{
    const Platform p = Platform::dualSocketCpu();
    EXPECT_EQ(p.kind, PlatformKind::CpuServer);
    EXPECT_EQ(p.num_gpus, 0);
    EXPECT_EQ(p.num_cpu_sockets, 2);
    EXPECT_DOUBLE_EQ(p.host.mem_capacity, 256.0 * util::kGB);
    EXPECT_DOUBLE_EQ(p.network.bandwidth, util::gbps(25.0));
    EXPECT_DOUBLE_EQ(p.totalGpuMemory(), 0.0);
}

TEST(Platform, BigBasinMatchesTableI)
{
    const Platform p = Platform::bigBasin();
    EXPECT_EQ(p.kind, PlatformKind::BigBasin);
    EXPECT_EQ(p.num_gpus, 8);
    EXPECT_TRUE(p.has_nvlink);
    // V100: 15.7 TF FP32, 900 GB/s HBM2.
    EXPECT_DOUBLE_EQ(p.gpu.peak_flops, 15.7e12);
    EXPECT_DOUBLE_EQ(p.gpu.mem_bandwidth, util::gBps(900.0));
    EXPECT_DOUBLE_EQ(p.host.mem_capacity, 256.0 * util::kGB);
    EXPECT_DOUBLE_EQ(p.network.bandwidth, util::gbps(100.0));
    // Default SKU is 16 GB -> 128 GB total; 32 GB SKU doubles it.
    EXPECT_DOUBLE_EQ(p.totalGpuMemory(), 128.0 * util::kGB);
    EXPECT_DOUBLE_EQ(Platform::bigBasin(32.0).totalGpuMemory(),
                     256.0 * util::kGB);
}

TEST(Platform, BigBasinPowerIs7point3xCpuServer)
{
    const Platform cpu = Platform::dualSocketCpu();
    const Platform bb = Platform::bigBasin();
    EXPECT_NEAR(bb.power_watts / cpu.power_watts, 7.3, 1e-9);
}

TEST(Platform, ZionMatchesTableI)
{
    const Platform p = Platform::zionPrototype();
    EXPECT_EQ(p.kind, PlatformKind::Zion);
    EXPECT_EQ(p.num_cpu_sockets, 8);
    EXPECT_EQ(p.num_gpus, 8);
    EXPECT_FALSE(p.has_nvlink);
    // ~2 TB system memory, ~1 TB/s memory bandwidth.
    EXPECT_DOUBLE_EQ(p.host.mem_capacity, 2000.0 * util::kGB);
    EXPECT_DOUBLE_EQ(p.host.mem_bandwidth, util::gBps(1000.0));
    // 4x IB 100 Gbps.
    EXPECT_DOUBLE_EQ(p.network.bandwidth, util::gbps(400.0));
}

TEST(Platform, ZionHostOutclassesBigBasinHost)
{
    const Platform bb = Platform::bigBasin();
    const Platform zion = Platform::zionPrototype();
    EXPECT_GT(zion.host.mem_bandwidth, 4.0 * bb.host.mem_bandwidth);
    EXPECT_GT(zion.host.mem_capacity, 4.0 * bb.host.mem_capacity);
    EXPECT_GT(zion.host.peak_flops, 2.0 * bb.host.peak_flops);
}

TEST(Platform, ZionInterconnectWeakerThanNvlink)
{
    const Platform bb = Platform::bigBasin();
    const Platform zion = Platform::zionPrototype();
    EXPECT_LT(zion.gpu_interconnect.bandwidth,
              bb.gpu_interconnect.bandwidth / 10.0);
}

TEST(ComputeDevice, EffectiveRates)
{
    ComputeDevice d;
    d.peak_flops = 10.0e12;
    d.mlp_efficiency = 0.5;
    d.mem_bandwidth = 100.0e9;
    d.random_access_efficiency = 0.3;
    EXPECT_DOUBLE_EQ(d.effectiveFlops(), 5.0e12);
    EXPECT_DOUBLE_EQ(d.gatherBandwidth(), 30.0e9);
}

TEST(Link, TransferTimeIncludesLatency)
{
    Link link{"test", 1.0e9, 10.0e-6};
    EXPECT_DOUBLE_EQ(link.transferTime(1.0e9), 1.0 + 10.0e-6);
    EXPECT_DOUBLE_EQ(link.transferTime(0.0), 10.0e-6);
}

TEST(Platform, TotalGpuFlopsAggregates)
{
    const Platform bb = Platform::bigBasin();
    EXPECT_DOUBLE_EQ(bb.totalGpuFlops(),
                     8.0 * bb.gpu.peak_flops * bb.gpu.mlp_efficiency);
}

} // namespace
} // namespace recsim::hw
