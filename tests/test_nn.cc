/**
 * @file
 * Unit tests for recsim::nn. The backward passes are verified against
 * central-difference numerical gradients — the strongest correctness
 * property a manual-backprop stack can have.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/embedding_bag.h"
#include "nn/interaction.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace recsim::nn {
namespace {

using tensor::Tensor;

/** Central-difference gradient of scalar-valued f wrt x[i]. */
double
numericalGrad(Tensor& x, std::size_t i,
              const std::function<double()>& f, float eps = 1e-3f)
{
    const float saved = x.data()[i];
    x.data()[i] = saved + eps;
    const double plus = f();
    x.data()[i] = saved - eps;
    const double minus = f();
    x.data()[i] = saved;
    return (plus - minus) / (2.0 * eps);
}

/** Scalar loss used by grad checks: 0.5 * sum(y^2). */
double
halfSquaredSum(const Tensor& y)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
        acc += 0.5 * static_cast<double>(y.data()[i]) * y.data()[i];
    return acc;
}

/** d(halfSquaredSum)/dy = y. */
Tensor
lossGrad(const Tensor& y)
{
    return y;
}

TEST(Linear, ForwardMatchesManual)
{
    util::Rng rng(1);
    Linear layer(2, 3, rng);
    layer.weight.at(0, 0) = 1.0f;
    layer.weight.at(0, 1) = 2.0f;
    layer.weight.at(0, 2) = 3.0f;
    layer.weight.at(1, 0) = 4.0f;
    layer.weight.at(1, 1) = 5.0f;
    layer.weight.at(1, 2) = 6.0f;
    layer.bias[0] = 0.1f;
    layer.bias[1] = 0.2f;
    layer.bias[2] = 0.3f;

    Tensor x(1, 2);
    x.at(0, 0) = 1.0f;
    x.at(0, 1) = 2.0f;
    Tensor y;
    layer.forward(x, y);
    EXPECT_NEAR(y.at(0, 0), 9.1f, 1e-5);
    EXPECT_NEAR(y.at(0, 1), 12.2f, 1e-5);
    EXPECT_NEAR(y.at(0, 2), 15.3f, 1e-5);
}

TEST(Linear, GradCheckWeightsBiasInput)
{
    util::Rng rng(2);
    Linear layer(4, 3, rng);
    Tensor x(2, 4);
    x.fillNormal(rng, 1.0f);

    auto loss = [&] {
        Tensor y;
        layer.forward(x, y);
        return halfSquaredSum(y);
    };

    Tensor y;
    layer.forward(x, y);
    layer.zeroGrad();
    Tensor dx;
    layer.backward(x, lossGrad(y), dx);

    for (std::size_t i = 0; i < layer.weight.size(); i += 3) {
        EXPECT_NEAR(layer.gradWeight.data()[i],
                    numericalGrad(layer.weight, i, loss), 2e-2)
            << "weight " << i;
    }
    for (std::size_t i = 0; i < layer.bias.size(); ++i) {
        EXPECT_NEAR(layer.gradBias.data()[i],
                    numericalGrad(layer.bias, i, loss), 2e-2)
            << "bias " << i;
    }
    for (std::size_t i = 0; i < x.size(); i += 2) {
        EXPECT_NEAR(dx.data()[i], numericalGrad(x, i, loss), 2e-2)
            << "input " << i;
    }
}

TEST(Linear, GradsAccumulateAcrossCalls)
{
    util::Rng rng(3);
    Linear layer(2, 2, rng);
    Tensor x(1, 2);
    x.fill(1.0f);
    Tensor y;
    layer.forward(x, y);
    Tensor dy(1, 2);
    dy.fill(1.0f);
    layer.backwardNoInputGrad(x, dy);
    const float once = layer.gradWeight.at(0, 0);
    layer.backwardNoInputGrad(x, dy);
    EXPECT_NEAR(layer.gradWeight.at(0, 0), 2.0f * once, 1e-6);
    layer.zeroGrad();
    EXPECT_EQ(layer.gradWeight.at(0, 0), 0.0f);
}

TEST(Mlp, ForwardShapes)
{
    util::Rng rng(4);
    Mlp mlp(8, {16, 4}, rng);
    EXPECT_EQ(mlp.inFeatures(), 8u);
    EXPECT_EQ(mlp.outFeatures(), 4u);
    EXPECT_EQ(mlp.numLayers(), 2u);
    Tensor x(3, 8);
    x.fillNormal(rng, 1.0f);
    Tensor y;
    mlp.forward(x, y);
    EXPECT_EQ(y.rows(), 3u);
    EXPECT_EQ(y.cols(), 4u);
}

TEST(Mlp, NumParamsCountsAllLayers)
{
    util::Rng rng(5);
    Mlp mlp(8, {16, 4}, rng);
    EXPECT_EQ(mlp.numParams(), 8u * 16 + 16 + 16 * 4 + 4);
}

TEST(Mlp, GradCheckThroughReluStack)
{
    util::Rng rng(6);
    Mlp mlp(3, {5, 4, 2}, rng);
    Tensor x(2, 3);
    x.fillNormal(rng, 1.0f);

    auto loss = [&] {
        Tensor y;
        mlp.forward(x, y);
        return halfSquaredSum(y);
    };

    Tensor y;
    mlp.forward(x, y);
    mlp.zeroGrad();
    Tensor dx;
    mlp.backward(x, lossGrad(y), dx);

    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(dx.data()[i], numericalGrad(x, i, loss), 3e-2);

    auto& first = mlp.layers()[0];
    for (std::size_t i = 0; i < first.weight.size(); i += 2) {
        EXPECT_NEAR(first.gradWeight.data()[i],
                    numericalGrad(first.weight, i, loss), 3e-2);
    }
    auto& last = mlp.layers()[2];
    for (std::size_t i = 0; i < last.weight.size(); ++i) {
        EXPECT_NEAR(last.gradWeight.data()[i],
                    numericalGrad(last.weight, i, loss), 3e-2);
    }
}

SparseBatch
makeBatch(std::vector<std::vector<uint64_t>> per_example)
{
    SparseBatch batch;
    batch.offsets.push_back(0);
    for (auto& ex : per_example) {
        batch.indices.insert(batch.indices.end(), ex.begin(), ex.end());
        batch.offsets.push_back(batch.indices.size());
    }
    return batch;
}

TEST(EmbeddingBag, SumPoolingAddsRows)
{
    util::Rng rng(7);
    EmbeddingBag bag(4, 2, rng, Pooling::Sum);
    bag.table.zero();
    bag.table.at(1, 0) = 1.0f;
    bag.table.at(1, 1) = 2.0f;
    bag.table.at(3, 0) = 10.0f;
    bag.table.at(3, 1) = 20.0f;

    const SparseBatch batch = makeBatch({{1, 3}, {}, {1, 1}});
    Tensor out;
    bag.forward(batch, out);
    EXPECT_EQ(out.rows(), 3u);
    EXPECT_NEAR(out.at(0, 0), 11.0f, 1e-6);
    EXPECT_NEAR(out.at(0, 1), 22.0f, 1e-6);
    EXPECT_EQ(out.at(1, 0), 0.0f);  // empty example -> zero row
    EXPECT_NEAR(out.at(2, 0), 2.0f, 1e-6);
}

TEST(EmbeddingBag, MeanPoolingDividesByLength)
{
    util::Rng rng(8);
    EmbeddingBag bag(4, 1, rng, Pooling::Mean);
    bag.table.zero();
    bag.table.at(0, 0) = 2.0f;
    bag.table.at(1, 0) = 4.0f;
    const SparseBatch batch = makeBatch({{0, 1}});
    Tensor out;
    bag.forward(batch, out);
    EXPECT_NEAR(out.at(0, 0), 3.0f, 1e-6);
}

TEST(EmbeddingBag, HashTrickWrapsIndices)
{
    util::Rng rng(9);
    EmbeddingBag bag(4, 1, rng, Pooling::Sum);
    bag.table.zero();
    bag.table.at(1, 0) = 5.0f;
    // 9 % 4 == 1: collides with row 1.
    const SparseBatch batch = makeBatch({{9}});
    Tensor out;
    bag.forward(batch, out);
    EXPECT_NEAR(out.at(0, 0), 5.0f, 1e-6);
}

TEST(EmbeddingBag, BackwardCoalescesDuplicateRows)
{
    util::Rng rng(10);
    EmbeddingBag bag(8, 2, rng, Pooling::Sum);
    const SparseBatch batch = makeBatch({{2, 2, 5}, {5}});
    Tensor dy(2, 2);
    dy.fill(1.0f);
    SparseGrad grad;
    bag.backward(batch, dy, grad);
    ASSERT_EQ(grad.rows.size(), 2u);
    // Row 2 appears twice in example 0 -> gradient 2; row 5 appears in
    // both examples -> gradient 2 as well.
    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
        EXPECT_NEAR(grad.values.at(r, 0), 2.0f, 1e-6);
        EXPECT_NEAR(grad.values.at(r, 1), 2.0f, 1e-6);
    }
}

TEST(EmbeddingBag, GradCheck)
{
    util::Rng rng(11);
    EmbeddingBag bag(6, 3, rng, Pooling::Mean);
    const SparseBatch batch = makeBatch({{0, 2, 2}, {4}});

    auto loss = [&] {
        Tensor out;
        bag.forward(batch, out);
        return halfSquaredSum(out);
    };

    Tensor out;
    bag.forward(batch, out);
    SparseGrad grad;
    bag.backward(batch, lossGrad(out), grad);

    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
        for (std::size_t j = 0; j < bag.dim(); ++j) {
            const std::size_t flat =
                static_cast<std::size_t>(grad.rows[r]) * bag.dim() + j;
            EXPECT_NEAR(grad.values.at(r, j),
                        numericalGrad(bag.table, flat, loss), 2e-2);
        }
    }
}

TEST(EmbeddingBag, ParamBytes)
{
    util::Rng rng(12);
    EmbeddingBag bag(1000, 64, rng);
    EXPECT_EQ(bag.paramBytes(), 1000u * 64 * 4);
}

TEST(CatInteraction, ConcatAndSplit)
{
    CatInteraction cat;
    Tensor dense(2, 3);
    dense.fill(1.0f);
    std::vector<Tensor> embs(2, Tensor(2, 2));
    embs[0].fill(2.0f);
    embs[1].fill(3.0f);
    Tensor out;
    cat.forward(dense, embs, out);
    EXPECT_EQ(out.cols(), 7u);
    EXPECT_EQ(out.at(0, 0), 1.0f);
    EXPECT_EQ(out.at(0, 3), 2.0f);
    EXPECT_EQ(out.at(0, 5), 3.0f);

    Tensor dy(2, 7);
    for (std::size_t i = 0; i < dy.size(); ++i)
        dy.data()[i] = static_cast<float>(i);
    Tensor d_dense;
    std::vector<Tensor> d_embs;
    cat.backward(dense, embs, dy, d_dense, d_embs);
    EXPECT_EQ(d_dense.at(0, 2), 2.0f);
    EXPECT_EQ(d_embs[0].at(0, 0), 3.0f);
    EXPECT_EQ(d_embs[1].at(0, 1), 6.0f);
}

TEST(DotInteraction, OutWidthFormula)
{
    EXPECT_EQ(DotInteraction::outWidth(3, 8), 8u + 6u);
    EXPECT_EQ(DotInteraction::outWidth(0, 8), 8u);
}

TEST(DotInteraction, ForwardComputesPairwiseDots)
{
    DotInteraction dot;
    Tensor dense(1, 2);
    dense.at(0, 0) = 1.0f;
    dense.at(0, 1) = 2.0f;
    std::vector<Tensor> embs(1, Tensor(1, 2));
    embs[0].at(0, 0) = 3.0f;
    embs[0].at(0, 1) = 4.0f;
    Tensor out;
    dot.forward(dense, embs, out);
    ASSERT_EQ(out.cols(), 3u);
    EXPECT_EQ(out.at(0, 0), 1.0f);
    EXPECT_EQ(out.at(0, 1), 2.0f);
    EXPECT_NEAR(out.at(0, 2), 11.0f, 1e-6);  // 1*3 + 2*4
}

TEST(DotInteraction, GradCheck)
{
    util::Rng rng(13);
    DotInteraction dot;
    Tensor dense(2, 4);
    dense.fillNormal(rng, 1.0f);
    std::vector<Tensor> embs(3, Tensor(2, 4));
    for (auto& e : embs)
        e.fillNormal(rng, 1.0f);

    auto loss = [&] {
        Tensor out;
        dot.forward(dense, embs, out);
        return halfSquaredSum(out);
    };

    Tensor out;
    dot.forward(dense, embs, out);
    Tensor d_dense;
    std::vector<Tensor> d_embs;
    dot.backward(dense, embs, lossGrad(out), d_dense, d_embs);

    for (std::size_t i = 0; i < dense.size(); ++i)
        EXPECT_NEAR(d_dense.data()[i], numericalGrad(dense, i, loss),
                    5e-2);
    for (std::size_t s = 0; s < embs.size(); ++s)
        for (std::size_t i = 0; i < embs[s].size(); i += 3)
            EXPECT_NEAR(d_embs[s].data()[i],
                        numericalGrad(embs[s], i, loss), 5e-2);
}

TEST(Loss, BceKnownValues)
{
    Tensor logits{0.0f};
    const std::vector<float> labels = {1.0f};
    EXPECT_NEAR(bceWithLogitsLoss(logits, labels), std::log(2.0), 1e-6);
}

TEST(Loss, BceGradMatchesNumerical)
{
    util::Rng rng(14);
    Tensor logits(5);
    logits.fillNormal(rng, 2.0f);
    const std::vector<float> labels = {1.0f, 0.0f, 1.0f, 0.0f, 1.0f};
    Tensor grad;
    bceWithLogits(logits, labels, grad);
    auto loss = [&] { return bceWithLogitsLoss(logits, labels); };
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(grad.data()[i], numericalGrad(logits, i, loss),
                    1e-3);
}

TEST(Loss, BceStableForExtremeLogits)
{
    Tensor logits{100.0f, -100.0f};
    const std::vector<float> labels = {1.0f, 0.0f};
    const double loss = bceWithLogitsLoss(logits, labels);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(Loss, NormalizedEntropyOfBaseRatePredictorIsOne)
{
    // Predicting exactly the base rate gives NE == 1.
    const double p = 0.3;
    const float logit = std::log(p / (1.0 - p));
    Tensor logits(10);
    logits.fill(logit);
    std::vector<float> labels(10, 0.0f);
    labels[0] = labels[1] = labels[2] = 1.0f;  // 30% positives
    EXPECT_NEAR(normalizedEntropy(logits, labels), 1.0, 1e-6);
}

TEST(Loss, NormalizedEntropyBelowOneForGoodModel)
{
    Tensor logits{4.0f, -4.0f, 4.0f, -4.0f};
    const std::vector<float> labels = {1.0f, 0.0f, 1.0f, 0.0f};
    EXPECT_LT(normalizedEntropy(logits, labels), 0.2);
}

TEST(Loss, Accuracy)
{
    Tensor logits{2.0f, -1.0f, 0.5f, -0.5f};
    const std::vector<float> labels = {1.0f, 0.0f, 0.0f, 1.0f};
    EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.5);
}

TEST(Sgd, DenseStep)
{
    Tensor p{1.0f, 2.0f};
    Tensor g{0.5f, -0.5f};
    Sgd opt(0.1f);
    opt.step(p, g);
    EXPECT_NEAR(p[0], 0.95f, 1e-6);
    EXPECT_NEAR(p[1], 2.05f, 1e-6);
}

TEST(Sgd, SparseStepTouchesOnlyListedRows)
{
    util::Rng rng(15);
    EmbeddingBag bag(4, 2, rng);
    const Tensor before = bag.table;
    SparseGrad grad;
    grad.rows = {2};
    grad.values = Tensor(1, 2);
    grad.values.fill(1.0f);
    Sgd opt(0.5f);
    opt.stepSparse(bag, grad);
    EXPECT_NEAR(bag.table.at(2, 0), before.at(2, 0) - 0.5f, 1e-6);
    EXPECT_EQ(bag.table.at(0, 0), before.at(0, 0));
    EXPECT_EQ(bag.table.at(3, 1), before.at(3, 1));
}

TEST(Adagrad, StepShrinksWithAccumulation)
{
    Tensor p(1);
    p[0] = 0.0f;
    Tensor g{1.0f};
    Adagrad opt(0.1f);
    opt.step(p, g);
    const float first = -p[0];
    const float before = p[0];
    opt.step(p, g);
    const float second = before - p[0];
    EXPECT_GT(first, 0.0f);
    EXPECT_GT(second, 0.0f);
    EXPECT_LT(second, first);
}

TEST(Adagrad, RowwiseSparseOnlyTouchesRows)
{
    util::Rng rng(16);
    EmbeddingBag bag(4, 2, rng);
    const Tensor before = bag.table;
    SparseGrad grad;
    grad.rows = {1};
    grad.values = Tensor(1, 2);
    grad.values.fill(2.0f);
    Adagrad opt(0.1f);
    opt.stepSparse(bag, grad);
    EXPECT_NE(bag.table.at(1, 0), before.at(1, 0));
    EXPECT_EQ(bag.table.at(0, 0), before.at(0, 0));
}

TEST(OptimizerDeath, NonPositiveLrPanics)
{
    EXPECT_DEATH(Sgd(0.0f), "positive");
    EXPECT_DEATH(Adagrad(-1.0f), "positive");
}

} // namespace
} // namespace recsim::nn
