/**
 * @file
 * Tests of the StepGraph IR (src/graph): the builder lowers a
 * DlrmConfig into typed per-step operator nodes, summarize() reproduces
 * DlrmConfig::footprint() bit for bit (the cost model depends on it),
 * and placement::bindStepGraph attaches devices, shards and traffic
 * shares the way the DES expects.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cost/iteration_model.h"
#include "graph/step_graph.h"
#include "model/config.h"
#include "placement/placement.h"

namespace recsim {
namespace {

using graph::NodeKind;

TEST(StepGraph, BuildsOneNodePerOperator)
{
    const auto m = model::DlrmConfig::testSuite(128, 6, 50000);
    const auto g = graph::buildModelStepGraph(m);

    EXPECT_EQ(g.indicesOf(NodeKind::EmbeddingLookup).size(),
              m.numSparse());
    const std::size_t gemms = g.indicesOf(NodeKind::Gemm).size();
    EXPECT_EQ(gemms, m.bottomDims().size() + m.topDims().size());
    EXPECT_EQ(g.indicesOf(NodeKind::Interaction).size(), 1u);
    EXPECT_EQ(g.indicesOf(NodeKind::Loss).size(), 1u);
    EXPECT_EQ(g.indicesOf(NodeKind::OptimizerUpdate).size(), 1u);

    // Ids are the stable cross-consumer keys.
    EXPECT_NE(g.find("bottom_mlp.l0"), nullptr);
    EXPECT_NE(g.find("emb.t5"), nullptr);
    EXPECT_NE(g.find("interaction"), nullptr);
    EXPECT_NE(g.find("optimizer"), nullptr);
    EXPECT_EQ(g.find("emb.t6"), nullptr);
}

TEST(StepGraph, SummarizeMatchesFootprintBitForBit)
{
    for (const auto& m : {model::DlrmConfig::testSuite(256, 8, 100000),
                          model::DlrmConfig::m1Prod(),
                          model::DlrmConfig::m2Prod(),
                          model::DlrmConfig::m3Prod()}) {
        const auto fp = m.footprint();
        const auto s = graph::summarize(graph::buildModelStepGraph(m));
        EXPECT_EQ(s.mlp_flops, fp.mlp_flops) << m.name;
        EXPECT_EQ(s.interaction_flops, fp.interaction_flops) << m.name;
        EXPECT_EQ(s.embedding_bytes, fp.embedding_bytes) << m.name;
        EXPECT_EQ(s.embedding_lookups, fp.embedding_lookups) << m.name;
        EXPECT_EQ(s.pooled_bytes, fp.pooled_bytes) << m.name;
        EXPECT_EQ(s.dense_input_bytes, fp.dense_input_bytes) << m.name;
        EXPECT_EQ(s.dense_param_count,
                  static_cast<double>(m.mlpParams())) << m.name;
        EXPECT_EQ(s.embedding_tables, m.numSparse()) << m.name;
    }
}

TEST(StepGraph, MixedDimsGetProjectionNodes)
{
    // Uniform tables all keep the full width; spread the popularity so
    // the mixed-dimension rule shrinks the tail.
    auto m = model::DlrmConfig::testSuite(64, 4, 1000, 64, 2, 8.0, 0);
    m.sparse[0].mean_length = 32.0;
    m.sparse[1].mean_length = 8.0;
    m.sparse[2].mean_length = 2.0;
    m.sparse[3].mean_length = 0.5;
    const auto without = graph::buildModelStepGraph(m);
    EXPECT_EQ(without.findComm(graph::CommOp::None), nullptr);

    const auto mixed = model::applyMixedDimensions(m, 0.5, 4);
    const auto g = graph::buildModelStepGraph(mixed);
    std::size_t projections = 0;
    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm &&
            node.role == graph::GemmRole::Projection) {
            ++projections;
            // A projection follows its (narrower) table.
            const auto* emb = g.find(
                "emb.t" + std::to_string(node.table));
            ASSERT_NE(emb, nullptr);
            EXPECT_EQ(emb->out_width, node.in_width);
            EXPECT_LT(node.in_width, mixed.emb_dim);
            EXPECT_EQ(node.out_width, mixed.emb_dim);
        }
    }
    EXPECT_GT(projections, 0u);
    // Summaries still match the config's own accounting.
    const auto fp = mixed.footprint();
    const auto s = graph::summarize(g);
    EXPECT_EQ(s.mlp_flops, fp.mlp_flops);
    EXPECT_EQ(s.embedding_bytes, fp.embedding_bytes);
}

TEST(StepGraph, BindAttachesCpuCommNodesWithShares)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    // IterationModel's construction is the canonical build+bind path.
    const cost::IterationModel im(m, sys);
    const auto& g = im.stepGraph();

    double total_share = 0.0;
    for (std::size_t s = 0; s < sys.num_sparse_ps; ++s) {
        const auto* req = g.findComm(graph::CommOp::PsRequest,
                                     static_cast<int>(s));
        ASSERT_NE(req, nullptr) << "shard " << s;
        EXPECT_GE(req->share, 0.0);
        total_share += req->share;
        EXPECT_NE(g.findComm(graph::CommOp::PsGather,
                             static_cast<int>(s)), nullptr);
        EXPECT_NE(g.findComm(graph::CommOp::GradPush,
                             static_cast<int>(s)), nullptr);
    }
    EXPECT_NEAR(total_share, 1.0, 1e-12);
    EXPECT_NE(g.findComm(graph::CommOp::DenseSync), nullptr);
    // No GPU-only collectives on the CPU system.
    EXPECT_EQ(g.findComm(graph::CommOp::AllReduce), nullptr);

    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::EmbeddingLookup) {
            EXPECT_EQ(node.device, graph::Device::SparsePs);
        }
        if (node.kind == NodeKind::Gemm) {
            EXPECT_EQ(node.device, graph::Device::TrainerCpu);
        }
    }
}

TEST(StepGraph, BindAssignsGpuDevices)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::bigBasinSetup(
        placement::EmbeddingPlacement::GpuMemory, 1600);
    const cost::IterationModel im(m, sys);
    const auto& g = im.stepGraph();

    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::EmbeddingLookup ||
            node.kind == NodeKind::Gemm) {
            EXPECT_EQ(node.device, graph::Device::Gpu);
        }
    }
    EXPECT_NE(g.findComm(graph::CommOp::AllReduce), nullptr);
    EXPECT_NE(g.findComm(graph::CommOp::Input), nullptr);
    EXPECT_EQ(g.findComm(graph::CommOp::DenseSync), nullptr);
}

// ---------------------------------------------------------------------
// Dependency edges, topological order, validation, critical path
// ---------------------------------------------------------------------

/** Position of each node in @p order (inverse permutation). */
std::vector<std::size_t>
positionsOf(const graph::StepGraph& g,
            const std::vector<std::size_t>& order)
{
    std::vector<std::size_t> pos(g.numNodes(), graph::StepGraph::npos);
    for (std::size_t p = 0; p < order.size(); ++p)
        pos[order[p]] = p;
    return pos;
}

TEST(StepGraphDeps, TopoOrderIsAValidSchedule)
{
    // Model-built and placement-bound graphs alike: topoOrder() is a
    // permutation in which every dep precedes its consumer.
    std::vector<graph::StepGraph> graphs;
    graphs.push_back(graph::buildModelStepGraph(
        model::DlrmConfig::testSuite(128, 6, 50000)));
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    graphs.push_back(cost::IterationModel(
        m, cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1)).stepGraph());
    graphs.push_back(cost::IterationModel(
        m, cost::SystemConfig::bigBasinSetup(
               placement::EmbeddingPlacement::RemotePs, 1600, 4))
        .stepGraph());

    for (const auto& g : graphs) {
        EXPECT_EQ(g.validate(), "");
        const auto order = g.topoOrder();
        ASSERT_EQ(order.size(), g.numNodes());
        const auto pos = positionsOf(g, order);
        for (std::size_t i = 0; i < g.numNodes(); ++i) {
            ASSERT_NE(pos[i], graph::StepGraph::npos);
            for (std::size_t d : g.nodes[i].deps) {
                EXPECT_LT(pos[d], pos[i])
                    << g.nodes[d].id << " !< " << g.nodes[i].id;
            }
        }
    }
}

TEST(StepGraphDeps, ModelGraphWiresTheDataflow)
{
    auto m = model::DlrmConfig::testSuite(64, 4, 1000, 64, 2, 8.0, 0);
    m.sparse[0].mean_length = 32.0;
    m.sparse[3].mean_length = 0.5;
    const auto mixed = model::applyMixedDimensions(m, 0.5, 4);
    const auto g = graph::buildModelStepGraph(mixed);

    // Bottom MLP chains layer by layer from the input.
    EXPECT_TRUE(g.find("bottom_mlp.l0")->deps.empty());
    ASSERT_EQ(g.find("bottom_mlp.l1")->deps.size(), 1u);
    EXPECT_EQ(g.find("bottom_mlp.l1")->deps[0],
              g.indexOf("bottom_mlp.l0"));

    // Tables are roots; a projection consumes exactly its table.
    std::size_t last_bottom = graph::StepGraph::npos;
    for (std::size_t i = 0; i < g.numNodes(); ++i) {
        const auto& node = g.nodes[i];
        if (node.kind == NodeKind::Gemm &&
            node.role == graph::GemmRole::BottomMlp)
            last_bottom = i;
        if (node.kind == NodeKind::EmbeddingLookup) {
            EXPECT_TRUE(node.deps.empty()) << node.id;
        }
        if (node.kind == NodeKind::Gemm &&
            node.role == graph::GemmRole::Projection) {
            ASSERT_EQ(node.deps.size(), 1u) << node.id;
            EXPECT_EQ(node.deps[0],
                      g.indexOf("emb.t" + std::to_string(node.table)));
        }
    }

    // Interaction joins the bottom output and one producer per table
    // (the table itself, or its projection when narrow).
    const auto& ix = g.nodes[g.indexOf("interaction")];
    ASSERT_EQ(ix.deps.size(), 1u + mixed.numSparse());
    EXPECT_EQ(ix.deps[0], last_bottom);
    for (std::size_t f = 0; f < mixed.numSparse(); ++f) {
        const std::size_t producer = ix.deps[1 + f];
        const auto& p = g.nodes[producer];
        EXPECT_EQ(p.table, static_cast<int>(f));
        if (p.kind == NodeKind::Gemm) {
            EXPECT_EQ(p.role, graph::GemmRole::Projection);
        }
    }

    // Top MLP -> loss -> optimizer is a chain.
    EXPECT_EQ(g.find("top_mlp.l0")->deps[0], g.indexOf("interaction"));
    ASSERT_EQ(g.find("loss")->deps.size(), 1u);
    ASSERT_EQ(g.find("optimizer")->deps.size(), 1u);
    EXPECT_EQ(g.find("optimizer")->deps[0], g.indexOf("loss"));
}

TEST(StepGraphDeps, DepsStableAcrossRebuilds)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    const auto a = cost::IterationModel(m, sys).stepGraph();
    const auto b = cost::IterationModel(m, sys).stepGraph();
    ASSERT_EQ(a.numNodes(), b.numNodes());
    for (std::size_t i = 0; i < a.numNodes(); ++i) {
        EXPECT_EQ(a.nodes[i].id, b.nodes[i].id);
        EXPECT_EQ(a.nodes[i].deps, b.nodes[i].deps) << a.nodes[i].id;
    }
    EXPECT_EQ(a.topoOrder(), b.topoOrder());
}

TEST(StepGraphDeps, ValidateRejectsMalformedEdges)
{
    const auto m = model::DlrmConfig::testSuite(128, 4, 10000);

    auto g = graph::buildModelStepGraph(m);
    EXPECT_EQ(g.validate(), "");

    auto bad = g;
    bad.nodes[1].deps.push_back(bad.numNodes() + 5);
    EXPECT_NE(bad.validate(), "");

    bad = g;
    bad.nodes[2].deps.push_back(2);
    EXPECT_NE(bad.validate(), "");

    bad = g;
    bad.nodes[1].deps.push_back(0);
    bad.nodes[1].deps.push_back(0);
    EXPECT_NE(bad.validate(), "");

    // A cycle: make node 0 depend on the optimizer (which transitively
    // depends on everything).
    bad = g;
    bad.nodes[0].deps.push_back(bad.indexOf("optimizer"));
    EXPECT_NE(bad.validate(), "");
}

TEST(StepGraphDeps, CpuBindChainsPsLegsAndJoinsInteraction)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    const auto g =
        cost::IterationModel(m, sys).stepGraph();

    const auto idx = [&g](const graph::Node* node) {
        return static_cast<std::size_t>(node - g.nodes.data());
    };
    const auto& ix = g.nodes[g.indexOf("interaction")];
    for (std::size_t s = 0; s < sys.num_sparse_ps; ++s) {
        const int shard = static_cast<int>(s);
        const auto* req = g.findComm(graph::CommOp::PsRequest, shard);
        const auto* gather = g.findComm(graph::CommOp::PsGather, shard);
        const auto* pool = g.findComm(graph::CommOp::PsPool, shard);
        const auto* resp = g.findComm(graph::CommOp::PsResponse, shard);
        ASSERT_NE(req, nullptr);
        ASSERT_NE(resp, nullptr);
        // request -> gather -> pool -> response, rooted at the start.
        EXPECT_TRUE(req->deps.empty());
        EXPECT_EQ(gather->deps, std::vector<std::size_t>{idx(req)});
        EXPECT_EQ(pool->deps, std::vector<std::size_t>{idx(gather)});
        EXPECT_EQ(resp->deps, std::vector<std::size_t>{idx(pool)});
        // The pooled vectors join the compute at the interaction.
        EXPECT_NE(std::find(ix.deps.begin(), ix.deps.end(), idx(resp)),
                  ix.deps.end());
        // Gradient push waits on the optimizer.
        const auto* push = g.findComm(graph::CommOp::GradPush, shard);
        ASSERT_NE(push, nullptr);
        EXPECT_EQ(push->deps, std::vector<std::size_t>{
                                  g.indexOf("optimizer")});
    }
    const auto* sync = g.findComm(graph::CommOp::DenseSync);
    ASSERT_NE(sync, nullptr);
    EXPECT_EQ(sync->deps,
              std::vector<std::size_t>{g.indexOf("optimizer")});
}

TEST(StepGraphDeps, GpuBindRootsComputeOnInputPipeline)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto g = cost::IterationModel(
        m, cost::SystemConfig::bigBasinSetup(
               placement::EmbeddingPlacement::GpuMemory, 1600))
        .stepGraph();

    const auto* input = g.findComm(graph::CommOp::Input);
    ASSERT_NE(input, nullptr);
    const std::size_t input_idx =
        static_cast<std::size_t>(input - g.nodes.data());
    EXPECT_TRUE(input->deps.empty());

    // First bottom layer and every table wait on the input pipeline.
    const auto& l0 = *g.find("bottom_mlp.l0");
    EXPECT_NE(std::find(l0.deps.begin(), l0.deps.end(), input_idx),
              l0.deps.end());
    for (const auto& node : g.nodes) {
        if (node.kind != NodeKind::EmbeddingLookup)
            continue;
        EXPECT_NE(
            std::find(node.deps.begin(), node.deps.end(), input_idx),
            node.deps.end())
            << node.id;
    }

    // The all-to-all consumes the GPU-resident tables and feeds the
    // interaction; the allreduce waits on the optimizer.
    const auto* a2a = g.findComm(graph::CommOp::AllToAll);
    ASSERT_NE(a2a, nullptr);
    EXPECT_FALSE(a2a->deps.empty());
    const std::size_t a2a_idx =
        static_cast<std::size_t>(a2a - g.nodes.data());
    const auto& ix = g.nodes[g.indexOf("interaction")];
    EXPECT_NE(std::find(ix.deps.begin(), ix.deps.end(), a2a_idx),
              ix.deps.end());
    const auto* ar = g.findComm(graph::CommOp::AllReduce);
    ASSERT_NE(ar, nullptr);
    EXPECT_EQ(ar->deps,
              std::vector<std::size_t>{g.indexOf("optimizer")});
}

TEST(StepGraphDeps, EveryNodeConnectsToTheOptimizer)
{
    // Reachability: each node either feeds the optimizer (transitively)
    // or consumes it (gradient traffic) — no disconnected islands.
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    for (const auto& g :
         {cost::IterationModel(
              m, cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1))
              .stepGraph(),
          cost::IterationModel(
              m, cost::SystemConfig::bigBasinSetup(
                     placement::EmbeddingPlacement::RemotePs, 1600, 4))
              .stepGraph()}) {
        const std::size_t opt = g.indexOf("optimizer");
        std::vector<char> feeds_opt(g.numNodes(), 0);
        feeds_opt[opt] = 1;
        const auto order = g.topoOrder();
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            for (std::size_t d : g.nodes[*it].deps) {
                if (feeds_opt[*it])
                    feeds_opt[d] = 1;
            }
        }
        for (std::size_t i = 0; i < g.numNodes(); ++i) {
            if (feeds_opt[i])
                continue;
            const auto& deps = g.nodes[i].deps;
            EXPECT_NE(std::find(deps.begin(), deps.end(), opt),
                      deps.end())
                << g.nodes[i].id << " is disconnected";
        }
    }
}

TEST(StepGraphDeps, CriticalPathMatchesHandComputedChain)
{
    // Diamond: 0 -> {1, 2} -> 3 with costs 1, 10, 2, 5: the longest
    // path is 0 -> 1 -> 3 = 16.
    graph::StepGraph g;
    for (int i = 0; i < 4; ++i) {
        graph::Node node;
        node.id = "n" + std::to_string(i);
        g.nodes.push_back(node);
    }
    g.nodes[1].deps = {0};
    g.nodes[2].deps = {0};
    g.nodes[3].deps = {1, 2};
    const std::vector<double> costs = {1.0, 10.0, 2.0, 5.0};
    EXPECT_DOUBLE_EQ(
        g.criticalPath([&costs](std::size_t i) { return costs[i]; }),
        16.0);
    // Uniform zero cost collapses the path to zero.
    EXPECT_DOUBLE_EQ(g.criticalPath([](std::size_t) { return 0.0; }),
                     0.0);
}

TEST(StepGraphDeps, IndexedLookupsMatchLinearScan)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    auto g = cost::IterationModel(
        m, cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1)).stepGraph();

    // The indexed graph answers exactly like a linear scan would.
    for (std::size_t i = 0; i < g.numNodes(); ++i) {
        const auto& node = g.nodes[i];
        EXPECT_EQ(g.indexOf(node.id),
                  static_cast<std::size_t>(
                      g.find(node.id) - g.nodes.data()));
        EXPECT_EQ(g.nodes[g.indexOf(node.id)].id, node.id);
    }
    EXPECT_EQ(g.indexOf("no_such_node"), graph::StepGraph::npos);
    EXPECT_EQ(g.find("no_such_node"), nullptr);

    // Mutating nodes without reindex() falls back to the linear scan:
    // lookups stay correct, including for the new node.
    graph::Node extra;
    extra.id = "hand_added";
    extra.kind = NodeKind::Comm;
    extra.comm = graph::CommOp::DenseSync;
    extra.shard = 7;
    g.nodes.push_back(extra);
    EXPECT_EQ(g.indexOf("hand_added"), g.numNodes() - 1);
    EXPECT_EQ(g.findComm(graph::CommOp::DenseSync, 7),
              &g.nodes.back());
    // After reindex() the maps cover the new node too.
    g.reindex();
    EXPECT_EQ(g.indexOf("hand_added"), g.numNodes() - 1);
    EXPECT_EQ(g.findComm(graph::CommOp::DenseSync, 7),
              &g.nodes.back());
}

TEST(ForwardSubgraph, ModelGraphDropsOnlyTheTrainingSinks)
{
    // In the unbound model graph Loss and OptimizerUpdate are pure
    // sinks, so pruning must keep every other node with its dep list
    // verbatim (modulo index compaction, which is the identity here
    // because the sinks sit at the end of the vector).
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto full = graph::buildModelStepGraph(m);
    const auto fwd = graph::forwardSubgraph(full);

    EXPECT_TRUE(fwd.validate().empty());
    ASSERT_EQ(fwd.numNodes(), full.numNodes() - 2);
    for (std::size_t i = 0; i < fwd.numNodes(); ++i) {
        EXPECT_EQ(fwd.nodes[i].id, full.nodes[i].id);
        EXPECT_EQ(fwd.nodes[i].deps, full.nodes[i].deps);
    }
    EXPECT_EQ(fwd.find("loss"), nullptr);
    EXPECT_EQ(fwd.find("optimizer"), nullptr);
}

TEST(ForwardSubgraph, BoundGraphRewiresThroughCommNodes)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    const auto bound = cost::IterationModel(m, sys).stepGraph();
    ASSERT_NE(bound.findComm(graph::CommOp::PsRequest), nullptr);
    const auto fwd = graph::forwardSubgraph(bound);
    EXPECT_TRUE(fwd.validate().empty());

    // Exactly the executable nodes survive, in vector order, with
    // their annotations (shard/device/size metadata) untouched.
    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < bound.numNodes(); ++i) {
        const auto kind = bound.nodes[i].kind;
        if (kind == NodeKind::Gemm ||
            kind == NodeKind::EmbeddingLookup ||
            kind == NodeKind::Interaction)
            kept.push_back(i);
    }
    ASSERT_EQ(fwd.numNodes(), kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
        const auto& orig = bound.nodes[kept[i]];
        const auto& node = fwd.nodes[i];
        EXPECT_EQ(node.id, orig.id);
        EXPECT_EQ(node.kind, orig.kind);
        EXPECT_EQ(node.shard, orig.shard);
        EXPECT_EQ(node.device, orig.device);
        EXPECT_EQ(node.in_width, orig.in_width);
        EXPECT_EQ(node.out_width, orig.out_width);
        EXPECT_DOUBLE_EQ(node.fwd_flops, orig.fwd_flops);
    }

    // Every rewired dep edge must correspond to a real path in the
    // bound graph whose interior nodes were all dropped: walk back
    // from the dependent through dropped nodes only and require the
    // dep to be reachable.
    for (std::size_t i = 0; i < fwd.numNodes(); ++i) {
        const std::size_t node_orig = kept[i];
        for (std::size_t d : fwd.nodes[i].deps) {
            ASSERT_LT(d, kept.size());
            const std::size_t dep_orig = kept[d];
            // BFS over original deps, passing through dropped nodes.
            std::vector<std::size_t> frontier = {node_orig};
            std::vector<char> seen(bound.numNodes(), 0);
            bool reachable = false;
            while (!frontier.empty() && !reachable) {
                const std::size_t cur = frontier.back();
                frontier.pop_back();
                for (std::size_t p : bound.nodes[cur].deps) {
                    if (p == dep_orig) {
                        reachable = true;
                        break;
                    }
                    const auto kind = bound.nodes[p].kind;
                    const bool dropped =
                        kind == NodeKind::Comm ||
                        kind == NodeKind::Loss ||
                        kind == NodeKind::OptimizerUpdate;
                    if (dropped && !seen[p]) {
                        seen[p] = 1;
                        frontier.push_back(p);
                    }
                }
            }
            EXPECT_TRUE(reachable)
                << fwd.nodes[i].id << " -> " << fwd.nodes[d].id
                << " has no dropped-node path in the bound graph";
        }
    }

    // Spot check: the interaction reached the PS legs only through
    // comm nodes; after pruning it must join the embedding lookups
    // (its kept ancestors through PsResponse) directly.
    const auto& ix = fwd.nodes[fwd.indexOf("interaction")];
    std::size_t emb_deps = 0;
    for (std::size_t d : ix.deps)
        if (fwd.nodes[d].kind == NodeKind::EmbeddingLookup)
            ++emb_deps;
    EXPECT_GT(emb_deps, 0u);
}

// ---- fusePass -------------------------------------------------------

/** Mixed-dim config: emb -> proj chains exercise the dep rewiring. */
model::DlrmConfig
fusionConfig()
{
    auto m = model::DlrmConfig::testSuite(64, 6, 1000, 64, 2, 8.0, 0);
    for (std::size_t f = 0; f < m.sparse.size(); ++f)
        m.sparse[f].mean_length = 0.5 + static_cast<double>(f);
    return model::applyMixedDimensions(m, 0.5, 4);
}

TEST(FusePass, MarksEveryGemmEpilogueFused)
{
    auto g = graph::buildModelStepGraph(fusionConfig());
    const auto before = graph::summarize(g);
    EXPECT_GT(before.epilogue_traffic_bytes, 0.0);

    graph::fusePass(g);
    for (const auto& node : g.nodes) {
        if (node.kind != NodeKind::Gemm)
            continue;
        EXPECT_TRUE(node.fused_epilogue) << node.id;
        EXPECT_EQ(node.epilogue_traffic_bytes, 0.0) << node.id;
    }
    EXPECT_EQ(graph::summarize(g).epilogue_traffic_bytes, 0.0);
}

TEST(FusePass, MarksBackwardFusionAndFlatten)
{
    auto g = graph::buildModelStepGraph(fusionConfig());
    const auto before = graph::summarize(g);
    EXPECT_GT(before.bwd_epilogue_traffic_bytes, 0.0);

    graph::fusePass(g);
    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm) {
            EXPECT_TRUE(node.fused_backward) << node.id;
            EXPECT_EQ(node.bwd_epilogue_traffic_bytes, 0.0) << node.id;
            // The flatten rewrite claims exactly the top-MLP entry
            // layer on the GEMM side.
            EXPECT_EQ(node.fused_flatten,
                      node.role == graph::GemmRole::TopMlp &&
                          node.layer == 0)
                << node.id;
        } else if (node.kind == NodeKind::Interaction) {
            EXPECT_TRUE(node.fused_flatten);
            EXPECT_EQ(node.bwd_epilogue_traffic_bytes, 0.0);
        } else {
            EXPECT_FALSE(node.fused_backward) << node.id;
            EXPECT_FALSE(node.fused_flatten) << node.id;
        }
    }
    EXPECT_EQ(graph::summarize(g).bwd_epilogue_traffic_bytes, 0.0);
}

TEST(FusePass, BuilderBwdEpilogueBytesFollowTheTrafficFormula)
{
    // Unfused backward: every GEMM pays the bias-grad sumRows re-read
    // of dy [B, out]; hidden layers (mask = previous activation) also
    // pay reluBackward's read+write of the input grad [B, in];
    // projections pay bias-grad only. The Interaction node carries the
    // flatten-buffer round trip the flatten rewrite removes.
    const auto cfg = fusionConfig();
    const auto g = graph::buildModelStepGraph(cfg);
    const auto dims = cfg.bottomDims();
    std::size_t in = cfg.num_dense;
    for (std::size_t l = 0; l < dims.size(); ++l) {
        const auto* node =
            g.find("bottom_mlp.l" + std::to_string(l));
        ASSERT_NE(node, nullptr);
        const double want = (static_cast<double>(dims[l]) +
                             (l > 0 ? 2.0 * static_cast<double>(in)
                                    : 0.0)) *
            sizeof(float);
        EXPECT_EQ(node->bwd_epilogue_traffic_bytes, want) << node->id;
        in = dims[l];
    }
    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm &&
            node.role == graph::GemmRole::Projection) {
            EXPECT_EQ(node.bwd_epilogue_traffic_bytes,
                      static_cast<double>(node.out_width) *
                          sizeof(float))
                << node.id;
        }
    }
    const auto* ix = g.find("interaction");
    ASSERT_NE(ix, nullptr);
    const double want_ix =
        (cfg.interaction == nn::InteractionKind::DotProduct
             ? 4.0 * static_cast<double>(cfg.emb_dim)
             : 2.0 * static_cast<double>(cfg.interactionWidth())) *
        sizeof(float);
    EXPECT_EQ(ix->bwd_epilogue_traffic_bytes, want_ix);
}

TEST(FusePass, BuilderEpilogueBytesFollowTheTrafficFormula)
{
    // Hidden MLP layers pay a bias pass plus a ReLU pass (4 bytes
    // moved per output element per pass direction); last layers and
    // projections pay bias only.
    const auto cfg = fusionConfig();
    const auto g = graph::buildModelStepGraph(cfg);
    const auto dims = cfg.bottomDims();
    for (std::size_t l = 0; l < dims.size(); ++l) {
        const auto* node =
            g.find("bottom_mlp.l" + std::to_string(l));
        ASSERT_NE(node, nullptr);
        const double passes = l + 1 < dims.size() ? 4.0 : 2.0;
        EXPECT_EQ(node->epilogue_traffic_bytes,
                  passes * static_cast<double>(dims[l]) *
                      sizeof(float))
            << node->id;
    }
    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm &&
            node.role == graph::GemmRole::Projection) {
            EXPECT_EQ(node.epilogue_traffic_bytes,
                      2.0 * static_cast<double>(node.out_width) *
                          sizeof(float))
                << node.id;
        }
    }
}

TEST(FusePass, GroupsLookupsWithExactAnnotationSums)
{
    const auto cfg = fusionConfig();
    const auto unfused = graph::buildModelStepGraph(cfg);
    auto g = graph::buildModelStepGraph(cfg);
    graph::fusePass(g);
    EXPECT_TRUE(g.validate().empty());

    // Unbound graph: every lookup shares one (unassigned) device, so
    // exactly one grouped node replaces them all.
    EXPECT_EQ(g.indicesOf(NodeKind::EmbeddingLookup).size(), 1u);
    const auto* grouped = g.find("emb.grouped.g0");
    ASSERT_NE(grouped, nullptr);

    // fused_tables lists the members in merge (= node) order, and each
    // annotation is the exact member-order sum.
    std::vector<int> want_tables;
    double lookups = 0.0, bytes = 0.0, pooled = 0.0, params = 0.0;
    for (const auto& node : unfused.nodes) {
        if (node.kind != NodeKind::EmbeddingLookup)
            continue;
        want_tables.push_back(node.table);
        lookups += node.lookups_per_example;
        bytes += node.bytes_per_example;
        pooled += node.pooled_bytes_per_example;
        params += node.param_bytes;
    }
    EXPECT_EQ(grouped->fused_tables, want_tables);
    EXPECT_EQ(grouped->lookups_per_example, lookups);
    EXPECT_EQ(grouped->bytes_per_example, bytes);
    EXPECT_EQ(grouped->pooled_bytes_per_example, pooled);
    EXPECT_EQ(grouped->param_bytes, params);

    // Work totals the cost model folds are preserved exactly; only the
    // node count collapses.
    const auto before = graph::summarize(unfused);
    const auto after = graph::summarize(g);
    EXPECT_EQ(after.embedding_lookups, before.embedding_lookups);
    EXPECT_EQ(after.embedding_bytes, before.embedding_bytes);
    EXPECT_EQ(after.pooled_bytes, before.pooled_bytes);
    EXPECT_EQ(after.mlp_flops, before.mlp_flops);
    EXPECT_EQ(after.embedding_tables, 1u);
}

TEST(FusePass, RewiresConsumersOntoTheGroupedNode)
{
    const auto cfg = fusionConfig();
    auto g = graph::buildModelStepGraph(cfg);
    graph::fusePass(g);
    ASSERT_TRUE(g.validate().empty());
    EXPECT_FALSE(g.topoOrder().empty());

    const std::size_t gi = g.indexOf("emb.grouped.g0");
    ASSERT_NE(gi, graph::StepGraph::npos);

    // Every pre-fusion consumer of a per-table lookup (projections and
    // the interaction) must now depend on the grouped node instead,
    // with the edge deduplicated.
    bool found_proj = false;
    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm &&
            node.role == graph::GemmRole::Projection) {
            found_proj = true;
            EXPECT_EQ(std::count(node.deps.begin(), node.deps.end(),
                                 gi),
                      1)
                << node.id;
        }
    }
    ASSERT_TRUE(found_proj);
    const auto& ix = g.nodes[g.indexOf("interaction")];
    EXPECT_EQ(std::count(ix.deps.begin(), ix.deps.end(), gi), 1);
    // No dangling references to the merged per-table ids.
    EXPECT_EQ(g.find("emb.t0"), nullptr);
}

TEST(FusePass, Idempotent)
{
    auto g = graph::buildModelStepGraph(fusionConfig());
    graph::fusePass(g);
    const auto once = g;
    graph::fusePass(g);
    ASSERT_EQ(g.nodes.size(), once.nodes.size());
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        EXPECT_EQ(g.nodes[i].id, once.nodes[i].id);
        EXPECT_EQ(g.nodes[i].deps, once.nodes[i].deps);
        EXPECT_EQ(g.nodes[i].lookups_per_example,
                  once.nodes[i].lookups_per_example);
        EXPECT_EQ(g.nodes[i].fused_tables, once.nodes[i].fused_tables);
    }
}

TEST(FusePass, BoundGraphGroupsPerDeviceWithStableIds)
{
    // A CPU PS system spreads the tables over shards of one device
    // (SparsePs). Grouping is per device — never per shard — so the
    // bound graph produces the same grouped id the unbound graph does,
    // keeping the three validation columns keyed alike.
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    cost::CostParams params;
    params.fuse_step_graph = true;
    const cost::IterationModel im(m, sys, params);
    const auto& g = im.stepGraph();
    ASSERT_TRUE(g.validate().empty());

    EXPECT_EQ(g.indicesOf(NodeKind::EmbeddingLookup).size(), 1u);
    const auto* grouped = g.find("emb.grouped.g0");
    ASSERT_NE(grouped, nullptr);
    EXPECT_EQ(grouped->device, graph::Device::SparsePs);
    EXPECT_EQ(grouped->fused_tables.size(), m.numSparse());
    // Members span PS shards, so the grouped node claims none.
    EXPECT_EQ(grouped->shard, -1);
    // Comm legs survive untouched, one chain per shard.
    for (std::size_t s = 0; s < sys.num_sparse_ps; ++s) {
        EXPECT_NE(g.findComm(graph::CommOp::PsGather,
                             static_cast<int>(s)), nullptr);
    }
}

} // namespace
} // namespace recsim
