/**
 * @file
 * Tests of the StepGraph IR (src/graph): the builder lowers a
 * DlrmConfig into typed per-step operator nodes, summarize() reproduces
 * DlrmConfig::footprint() bit for bit (the cost model depends on it),
 * and placement::bindStepGraph attaches devices, shards and traffic
 * shares the way the DES expects.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cost/iteration_model.h"
#include "graph/step_graph.h"
#include "model/config.h"
#include "placement/placement.h"

namespace recsim {
namespace {

using graph::NodeKind;

TEST(StepGraph, BuildsOneNodePerOperator)
{
    const auto m = model::DlrmConfig::testSuite(128, 6, 50000);
    const auto g = graph::buildModelStepGraph(m);

    EXPECT_EQ(g.indicesOf(NodeKind::EmbeddingLookup).size(),
              m.numSparse());
    const std::size_t gemms = g.indicesOf(NodeKind::Gemm).size();
    EXPECT_EQ(gemms, m.bottomDims().size() + m.topDims().size());
    EXPECT_EQ(g.indicesOf(NodeKind::Interaction).size(), 1u);
    EXPECT_EQ(g.indicesOf(NodeKind::Loss).size(), 1u);
    EXPECT_EQ(g.indicesOf(NodeKind::OptimizerUpdate).size(), 1u);

    // Ids are the stable cross-consumer keys.
    EXPECT_NE(g.find("bottom_mlp.l0"), nullptr);
    EXPECT_NE(g.find("emb.t5"), nullptr);
    EXPECT_NE(g.find("interaction"), nullptr);
    EXPECT_NE(g.find("optimizer"), nullptr);
    EXPECT_EQ(g.find("emb.t6"), nullptr);
}

TEST(StepGraph, SummarizeMatchesFootprintBitForBit)
{
    for (const auto& m : {model::DlrmConfig::testSuite(256, 8, 100000),
                          model::DlrmConfig::m1Prod(),
                          model::DlrmConfig::m2Prod(),
                          model::DlrmConfig::m3Prod()}) {
        const auto fp = m.footprint();
        const auto s = graph::summarize(graph::buildModelStepGraph(m));
        EXPECT_EQ(s.mlp_flops, fp.mlp_flops) << m.name;
        EXPECT_EQ(s.interaction_flops, fp.interaction_flops) << m.name;
        EXPECT_EQ(s.embedding_bytes, fp.embedding_bytes) << m.name;
        EXPECT_EQ(s.embedding_lookups, fp.embedding_lookups) << m.name;
        EXPECT_EQ(s.pooled_bytes, fp.pooled_bytes) << m.name;
        EXPECT_EQ(s.dense_input_bytes, fp.dense_input_bytes) << m.name;
        EXPECT_EQ(s.dense_param_count,
                  static_cast<double>(m.mlpParams())) << m.name;
        EXPECT_EQ(s.embedding_tables, m.numSparse()) << m.name;
    }
}

TEST(StepGraph, MixedDimsGetProjectionNodes)
{
    // Uniform tables all keep the full width; spread the popularity so
    // the mixed-dimension rule shrinks the tail.
    auto m = model::DlrmConfig::testSuite(64, 4, 1000, 64, 2, 8.0, 0);
    m.sparse[0].mean_length = 32.0;
    m.sparse[1].mean_length = 8.0;
    m.sparse[2].mean_length = 2.0;
    m.sparse[3].mean_length = 0.5;
    const auto without = graph::buildModelStepGraph(m);
    EXPECT_EQ(without.findComm(graph::CommOp::None), nullptr);

    const auto mixed = model::applyMixedDimensions(m, 0.5, 4);
    const auto g = graph::buildModelStepGraph(mixed);
    std::size_t projections = 0;
    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::Gemm &&
            node.role == graph::GemmRole::Projection) {
            ++projections;
            // A projection follows its (narrower) table.
            const auto* emb = g.find(
                "emb.t" + std::to_string(node.table));
            ASSERT_NE(emb, nullptr);
            EXPECT_EQ(emb->out_width, node.in_width);
            EXPECT_LT(node.in_width, mixed.emb_dim);
            EXPECT_EQ(node.out_width, mixed.emb_dim);
        }
    }
    EXPECT_GT(projections, 0u);
    // Summaries still match the config's own accounting.
    const auto fp = mixed.footprint();
    const auto s = graph::summarize(g);
    EXPECT_EQ(s.mlp_flops, fp.mlp_flops);
    EXPECT_EQ(s.embedding_bytes, fp.embedding_bytes);
}

TEST(StepGraph, BindAttachesCpuCommNodesWithShares)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(2, 3, 1, 200, 1);
    // IterationModel's construction is the canonical build+bind path.
    const cost::IterationModel im(m, sys);
    const auto& g = im.stepGraph();

    double total_share = 0.0;
    for (std::size_t s = 0; s < sys.num_sparse_ps; ++s) {
        const auto* req = g.findComm(graph::CommOp::PsRequest,
                                     static_cast<int>(s));
        ASSERT_NE(req, nullptr) << "shard " << s;
        EXPECT_GE(req->share, 0.0);
        total_share += req->share;
        EXPECT_NE(g.findComm(graph::CommOp::PsGather,
                             static_cast<int>(s)), nullptr);
        EXPECT_NE(g.findComm(graph::CommOp::GradPush,
                             static_cast<int>(s)), nullptr);
    }
    EXPECT_NEAR(total_share, 1.0, 1e-12);
    EXPECT_NE(g.findComm(graph::CommOp::DenseSync), nullptr);
    // No GPU-only collectives on the CPU system.
    EXPECT_EQ(g.findComm(graph::CommOp::AllReduce), nullptr);

    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::EmbeddingLookup) {
            EXPECT_EQ(node.device, graph::Device::SparsePs);
        }
        if (node.kind == NodeKind::Gemm) {
            EXPECT_EQ(node.device, graph::Device::TrainerCpu);
        }
    }
}

TEST(StepGraph, BindAssignsGpuDevices)
{
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::bigBasinSetup(
        placement::EmbeddingPlacement::GpuMemory, 1600);
    const cost::IterationModel im(m, sys);
    const auto& g = im.stepGraph();

    for (const auto& node : g.nodes) {
        if (node.kind == NodeKind::EmbeddingLookup ||
            node.kind == NodeKind::Gemm) {
            EXPECT_EQ(node.device, graph::Device::Gpu);
        }
    }
    EXPECT_NE(g.findComm(graph::CommOp::AllReduce), nullptr);
    EXPECT_NE(g.findComm(graph::CommOp::Input), nullptr);
    EXPECT_EQ(g.findComm(graph::CommOp::DenseSync), nullptr);
}

} // namespace
} // namespace recsim
