/**
 * @file
 * Central-difference gradient checks for every layer with a hand-written
 * backward: Linear, Mlp, EmbeddingBag (sum and mean pooling), the
 * QuantizedEmbeddingBag Fp32 dequant path, CatInteraction,
 * DotInteraction, BCE-with-logits, and the assembled Dlrm. Each check
 * scalarizes the layer output with a fixed coefficient pattern and
 * compares the analytic gradient of that scalar against (L(p+h) -
 * L(p-h)) / 2h at several shapes. A final mutation test corrupts an
 * analytic gradient and asserts the checker rejects it, so the suite
 * itself cannot silently go soft.
 */
#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include <cstring>

#include "data/dataset.h"
#include "graph/step_graph.h"
#include "model/dlrm.h"
#include "nn/embedding_bag.h"
#include "nn/interaction.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/quantized_embedding.h"
#include "tensor/tensor.h"
#include "train/step_runner.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace recsim::nn {
namespace {

using tensor::Tensor;

/** Scalar loss re-evaluated at perturbed parameter values. */
using LossFn = std::function<double()>;

constexpr double kStep = 1e-2;
constexpr double kTol = 1e-3;

/**
 * Fixed O(1) coefficients c_k = 0.4 + 0.15 * (k mod 7) used to
 * scalarize a layer output: L = sum_k c_k * out[k]. dL/dout[k] = c_k.
 */
float
coef(std::size_t k)
{
    return 0.4f + 0.15f * static_cast<float>(k % 7);
}

/** Tensor of scalarization coefficients with the given shape. */
Tensor
coefTensor(std::size_t rows, std::size_t cols)
{
    Tensor c(rows, cols);
    for (std::size_t k = 0; k < c.size(); ++k)
        c.data()[k] = coef(k);
    return c;
}

/** L = sum_k coef(k) * out[k], accumulated in double. */
double
weightedSum(const Tensor& out)
{
    double sum = 0.0;
    for (std::size_t k = 0; k < out.size(); ++k)
        sum += static_cast<double>(coef(k)) * out.data()[k];
    return sum;
}

/** Central difference dL/dp for one scalar parameter. */
double
numericGradAt(float& p, const LossFn& loss, double step)
{
    const float orig = p;
    p = static_cast<float>(orig + step);
    const double up = loss();
    p = static_cast<float>(orig - step);
    const double down = loss();
    p = orig;
    return (up - down) / (2.0 * step);
}

double
numericGrad(float& p, const LossFn& loss)
{
    return numericGradAt(p, loss, kStep);
}

/** Relative error with a floor so near-zero grads compare absolutely. */
double
relErr(double analytic, double numeric)
{
    const double scale =
        std::max({std::fabs(analytic), std::fabs(numeric), 0.25});
    return std::fabs(analytic - numeric) / scale;
}

/**
 * Check every entry of @p analytic against the central difference of
 * @p loss wrt the matching entry of @p params. Returns the max relative
 * error (for the mutation test); EXPECTs each entry within tolerance.
 */
double
checkGrads(const float* analytic, float* params, std::size_t n,
           const LossFn& loss, const std::string& what)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double numeric = numericGrad(params[i], loss);
        const double err = relErr(analytic[i], numeric);
        worst = std::max(worst, err);
        EXPECT_LT(err, kTol)
            << what << "[" << i << "]: analytic=" << analytic[i]
            << " numeric=" << numeric;
    }
    return worst;
}

/** Random rank-2 tensor in U(-1, 1). */
Tensor
randomInput(std::size_t rows, std::size_t cols, util::Rng& rng)
{
    Tensor x(rows, cols);
    x.fillUniform(rng, -1.0f, 1.0f);
    return x;
}

// ---------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------

void
checkLinear(std::size_t batch, std::size_t in, std::size_t out,
            uint64_t seed)
{
    util::Rng rng(seed);
    Linear lin(in, out, rng);
    lin.bias.fillUniform(rng, -0.5f, 0.5f);
    Tensor x = randomInput(batch, in, rng);
    Tensor y(batch, out);

    const LossFn loss = [&] {
        lin.forward(x, y);
        return weightedSum(y);
    };

    lin.forward(x, y);
    const Tensor dy = coefTensor(batch, out);
    Tensor dx(batch, in);
    lin.zeroGrad();
    lin.backward(x, dy, dx);

    checkGrads(lin.gradWeight.data(), lin.weight.data(),
               lin.weight.size(), loss, "linear.gradWeight");
    checkGrads(lin.gradBias.data(), lin.bias.data(), lin.bias.size(),
               loss, "linear.gradBias");
    checkGrads(dx.data(), x.data(), x.size(), loss, "linear.dx");
}

TEST(GradCheck, LinearSmall) { checkLinear(3, 5, 4, 11); }
TEST(GradCheck, LinearSingleExample) { checkLinear(1, 2, 7, 12); }
TEST(GradCheck, LinearWide) { checkLinear(2, 9, 3, 13); }

// ---------------------------------------------------------------------
// Mlp (ReLU stack; fixed seeds keep pre-activations away from kinks)
// ---------------------------------------------------------------------

void
checkMlp(std::size_t batch, std::size_t in,
         const std::vector<std::size_t>& dims, uint64_t seed)
{
    util::Rng rng(seed);
    Mlp mlp(in, dims, rng);
    for (Linear& layer : mlp.layers())
        layer.bias.fillUniform(rng, -0.3f, 0.3f);
    Tensor x = randomInput(batch, in, rng);
    Tensor y(batch, dims.back());

    const LossFn loss = [&] {
        mlp.forward(x, y);
        return weightedSum(y);
    };

    mlp.forward(x, y);
    const Tensor dy = coefTensor(batch, dims.back());
    Tensor dx(batch, in);
    mlp.zeroGrad();
    mlp.backward(x, dy, dx);

    for (std::size_t l = 0; l < mlp.layers().size(); ++l) {
        Linear& layer = mlp.layers()[l];
        const std::string tag = "mlp.layer" + std::to_string(l);
        checkGrads(layer.gradWeight.data(), layer.weight.data(),
                   layer.weight.size(), loss, tag + ".gradWeight");
        checkGrads(layer.gradBias.data(), layer.bias.data(),
                   layer.bias.size(), loss, tag + ".gradBias");
    }
    checkGrads(dx.data(), x.data(), x.size(), loss, "mlp.dx");
}

TEST(GradCheck, MlpTwoLayer) { checkMlp(3, 6, {5, 4}, 21); }
TEST(GradCheck, MlpThreeLayer) { checkMlp(2, 4, {6, 5, 3}, 22); }

// ---------------------------------------------------------------------
// EmbeddingBag (sum and mean pooling, duplicate rows, empty example)
// ---------------------------------------------------------------------

/** 4-example batch: duplicates within and across bags, one empty bag. */
SparseBatch
lookupBatch()
{
    SparseBatch batch;
    batch.indices = {0, 3, 3, 1, 4, 0, 2};
    batch.offsets = {0, 3, 5, 5, 7};
    return batch;
}

void
checkEmbeddingBag(Pooling pooling, uint64_t seed)
{
    constexpr uint64_t kRows = 6;
    constexpr std::size_t kDim = 3;
    util::Rng rng(seed);
    EmbeddingBag bag(kRows, kDim, rng, pooling);
    const SparseBatch batch = lookupBatch();
    Tensor out(batch.batchSize(), kDim);

    const LossFn loss = [&] {
        bag.forward(batch, out);
        return weightedSum(out);
    };

    bag.forward(batch, out);
    const Tensor dy = coefTensor(batch.batchSize(), kDim);
    SparseGrad grad;
    bag.backward(batch, dy, grad);

    // Analytic gradient of the full table: scatter the deduplicated
    // per-row grads; untouched rows must have exactly zero gradient.
    Tensor full(static_cast<std::size_t>(kRows), kDim);
    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
        for (std::size_t j = 0; j < kDim; ++j)
            full.at(static_cast<std::size_t>(grad.rows[r]), j) =
                grad.values.at(r, j);
    }
    checkGrads(full.data(), bag.table.data(), bag.table.size(), loss,
               pooling == Pooling::Sum ? "embsum.table" : "embmean.table");
}

TEST(GradCheck, EmbeddingBagSum)
{
    checkEmbeddingBag(Pooling::Sum, 31);
}

TEST(GradCheck, EmbeddingBagMean)
{
    checkEmbeddingBag(Pooling::Mean, 32);
}

// ---------------------------------------------------------------------
// QuantizedEmbeddingBag Fp32 dequant path: the compressed-forward of an
// Fp32 passthrough must carry exactly the master table's gradients
// (perturbing the master, re-quantizing, and re-running the compressed
// forward differentiates the quantizeFrom + dequant pipeline).
// ---------------------------------------------------------------------

TEST(GradCheck, QuantizedEmbeddingFp32DequantPath)
{
    constexpr uint64_t kRows = 5;
    constexpr std::size_t kDim = 4;
    util::Rng rng(41);
    EmbeddingBag master(kRows, kDim, rng, Pooling::Sum);
    QuantizedEmbeddingBag quantized(master, EmbeddingPrecision::Fp32);
    const SparseBatch batch = lookupBatch();
    Tensor out(batch.batchSize(), kDim);

    const LossFn loss = [&] {
        quantized.quantizeFrom(master);
        quantized.forward(batch, out);
        return weightedSum(out);
    };

    // Fp32 passthrough must reproduce the master forward bit-exactly.
    Tensor master_out(batch.batchSize(), kDim);
    master.forward(batch, master_out);
    quantized.forward(batch, out);
    for (std::size_t k = 0; k < out.size(); ++k)
        ASSERT_EQ(out.data()[k], master_out.data()[k]);

    const Tensor dy = coefTensor(batch.batchSize(), kDim);
    SparseGrad grad;
    master.backward(batch, dy, grad);
    Tensor full(static_cast<std::size_t>(kRows), kDim);
    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
        for (std::size_t j = 0; j < kDim; ++j)
            full.at(static_cast<std::size_t>(grad.rows[r]), j) =
                grad.values.at(r, j);
    }
    checkGrads(full.data(), master.table.data(), master.table.size(),
               loss, "quantized.fp32.table");
}

// ---------------------------------------------------------------------
// Interactions
// ---------------------------------------------------------------------

TEST(GradCheck, CatInteraction)
{
    constexpr std::size_t kBatch = 3, kDenseW = 4, kDim = 3, kSparse = 2;
    util::Rng rng(51);
    Tensor dense = randomInput(kBatch, kDenseW, rng);
    std::vector<Tensor> embs;
    for (std::size_t s = 0; s < kSparse; ++s)
        embs.push_back(randomInput(kBatch, kDim, rng));
    CatInteraction cat;
    Tensor out(kBatch, CatInteraction::outWidth(kDenseW, kSparse, kDim));

    const LossFn loss = [&] {
        cat.forward(dense, embs, out);
        return weightedSum(out);
    };

    cat.forward(dense, embs, out);
    const Tensor dy = coefTensor(out.rows(), out.cols());
    Tensor d_dense(kBatch, kDenseW);
    std::vector<Tensor> d_embs(kSparse, Tensor(kBatch, kDim));
    cat.backward(dense, embs, dy, d_dense, d_embs);

    checkGrads(d_dense.data(), dense.data(), dense.size(), loss,
               "cat.d_dense");
    for (std::size_t s = 0; s < kSparse; ++s)
        checkGrads(d_embs[s].data(), embs[s].data(), embs[s].size(),
                   loss, "cat.d_emb" + std::to_string(s));
}

TEST(GradCheck, DotInteraction)
{
    constexpr std::size_t kBatch = 3, kDim = 4, kSparse = 3;
    util::Rng rng(52);
    Tensor dense = randomInput(kBatch, kDim, rng);
    std::vector<Tensor> embs;
    for (std::size_t s = 0; s < kSparse; ++s)
        embs.push_back(randomInput(kBatch, kDim, rng));
    DotInteraction dot;
    Tensor out(kBatch, DotInteraction::outWidth(kSparse, kDim));

    const LossFn loss = [&] {
        dot.forward(dense, embs, out);
        return weightedSum(out);
    };

    dot.forward(dense, embs, out);
    const Tensor dy = coefTensor(out.rows(), out.cols());
    Tensor d_dense(kBatch, kDim);
    std::vector<Tensor> d_embs(kSparse, Tensor(kBatch, kDim));
    dot.backward(dense, embs, dy, d_dense, d_embs);

    checkGrads(d_dense.data(), dense.data(), dense.size(), loss,
               "dot.d_dense");
    for (std::size_t s = 0; s < kSparse; ++s)
        checkGrads(d_embs[s].data(), embs[s].data(), embs[s].size(),
                   loss, "dot.d_emb" + std::to_string(s));
}

// ---------------------------------------------------------------------
// BCE with logits
// ---------------------------------------------------------------------

TEST(GradCheck, BceWithLogits)
{
    constexpr std::size_t kBatch = 6;
    util::Rng rng(61);
    Tensor logits = randomInput(kBatch, 1, rng);
    const std::vector<float> labels = {1, 0, 1, 1, 0, 0};

    const LossFn loss = [&] {
        return bceWithLogitsLoss(logits, labels);
    };

    Tensor d_logits(kBatch, 1);
    const double analytic_loss = bceWithLogits(logits, labels, d_logits);
    EXPECT_NEAR(analytic_loss, loss(), 1e-6);

    checkGrads(d_logits.data(), logits.data(), logits.size(), loss,
               "bce.d_logits");
}

// ---------------------------------------------------------------------
// End-to-end: the assembled Dlrm's dense-parameter gradients against
// central differences of forwardBackward's loss.
// ---------------------------------------------------------------------

TEST(GradCheck, DlrmEndToEndDenseParams)
{
    const auto cfg = model::DlrmConfig::tinyReplica(3, 4, 50, 4);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    ds_cfg.seed = 71;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(64);
    const data::MiniBatch batch = ds.epochBatch(0, 4);

    model::Dlrm dlrm(cfg, 7);
    const LossFn loss = [&] { return dlrm.evalLoss(batch); };

    dlrm.zeroGrad();
    dlrm.forwardBackward(batch);

    // The assembled model stacks two ReLU MLPs, so the loss is only
    // piecewise smooth in its parameters: whenever a +-h probe pushes
    // any pre-activation across its kink, the central difference picks
    // up a small bias the analytic subgradient rightly ignores, at
    // every step size. Individual entries therefore cannot be held to
    // the per-layer tolerance; instead the error *distribution* must
    // be tight — a bug in any backward stage shifts the bulk of the
    // samples, while kink bias only perturbs a thin tail. The
    // per-layer suites above remain exhaustive and strict.
    std::vector<double> errors;
    auto check_entry = [&](float& p, double analytic,
                           const std::string& tag) {
        const double numeric = numericGradAt(p, loss, kStep / 2.0);
        errors.push_back(relErr(analytic, numeric));
        EXPECT_LT(errors.back(), 0.2) << tag;
    };

    // Sample a stride of entries from every dense parameter tensor (the
    // full set is cheap here but samples keep the suite fast).
    auto check_layer = [&](Linear& layer, const std::string& tag) {
        for (std::size_t i = 0; i < layer.weight.size(); i += 3)
            check_entry(layer.weight.data()[i],
                        layer.gradWeight.data()[i],
                        tag + ".weight[" + std::to_string(i) + "]");
        for (std::size_t i = 0; i < layer.bias.size(); i += 2)
            check_entry(layer.bias.data()[i], layer.gradBias.data()[i],
                        tag + ".bias[" + std::to_string(i) + "]");
    };
    for (std::size_t l = 0; l < dlrm.bottomMlp().layers().size(); ++l)
        check_layer(dlrm.bottomMlp().layers()[l],
                    "dlrm.bottom" + std::to_string(l));
    for (std::size_t l = 0; l < dlrm.topMlp().layers().size(); ++l)
        check_layer(dlrm.topMlp().layers()[l],
                    "dlrm.top" + std::to_string(l));

    // Embedding tables: scatter the sparse grads and sample entries.
    for (std::size_t t = 0; t < dlrm.tables().size(); ++t) {
        EmbeddingBag& bag = dlrm.tables()[t];
        const SparseGrad& grad = dlrm.sparseGrads()[t];
        Tensor full(static_cast<std::size_t>(bag.hashSize()),
                    bag.dim());
        for (std::size_t r = 0; r < grad.rows.size(); ++r)
            for (std::size_t j = 0; j < bag.dim(); ++j)
                full.at(static_cast<std::size_t>(grad.rows[r]), j) =
                    grad.values.at(r, j);
        for (std::size_t r = 0; r < grad.rows.size(); ++r) {
            const std::size_t row =
                static_cast<std::size_t>(grad.rows[r]);
            const std::size_t i = row * bag.dim() + (r % bag.dim());
            check_entry(bag.table.data()[i], full.data()[i],
                        "dlrm.table" + std::to_string(t) + "[" +
                            std::to_string(i) + "]");
        }
    }

    ASSERT_GT(errors.size(), 200u);
    std::sort(errors.begin(), errors.end());
    const auto quantile = [&](double q) {
        return errors[static_cast<std::size_t>(
            q * static_cast<double>(errors.size() - 1))];
    };
    EXPECT_LT(quantile(0.5), 1e-3);   // bulk matches tightly
    EXPECT_LT(quantile(0.9), 2e-3);   // kink bias is a thin tail
    EXPECT_LT(quantile(0.99), 5e-2);
}

// ---------------------------------------------------------------------
// Pool-enabled runs: the same checks with a multi-thread global pool.
// The kernels' determinism contract makes parallel gradients bit-equal
// to serial ones, so the identical tolerances must hold.
// ---------------------------------------------------------------------

/** Resizes the global pool for the test, restoring it on scope exit. */
struct ScopedPoolThreads
{
    explicit ScopedPoolThreads(std::size_t threads)
    {
        util::globalThreadPool().resize(threads);
    }
    ~ScopedPoolThreads()
    {
        util::globalThreadPool().resize(util::configuredThreads());
    }
};

TEST(GradCheck, LinearWithThreadPool)
{
    ScopedPoolThreads pool(4);
    checkLinear(3, 5, 4, 11);
}

TEST(GradCheck, MlpWithThreadPool)
{
    ScopedPoolThreads pool(4);
    checkMlp(3, 6, {5, 4}, 21);
}

TEST(GradCheck, EmbeddingBagWithThreadPool)
{
    ScopedPoolThreads pool(4);
    checkEmbeddingBag(Pooling::Sum, 31);
    checkEmbeddingBag(Pooling::Mean, 32);
}

// The wavefront executor must produce the exact gradients of the fused
// forwardBackward() — bit for bit, at any pool size. The gradients the
// per-layer suites above validate therefore transfer unchanged to the
// parallel step path.
TEST(GradCheck, ExecutorGradientsMatchFusedForwardBackward)
{
    const auto cfg = model::DlrmConfig::tinyReplica(3, 4, 50, 4);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    ds_cfg.seed = 71;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(64);
    const data::MiniBatch batch = ds.epochBatch(0, 8);

    const auto graph = graph::buildModelStepGraph(cfg);
    const train::GraphExecutor executor(graph);
    for (const std::size_t threads : {1u, 8u}) {
        ScopedPoolThreads pool(threads);
        model::Dlrm fused(cfg, 7);
        model::Dlrm stepped(cfg, 7);
        fused.zeroGrad();
        stepped.zeroGrad();
        const double a = fused.forwardBackward(batch);
        const double b = executor.runStep(stepped, batch);
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
            << threads << " threads: " << a << " vs " << b;

        auto check_layers = [&](Mlp& fa, Mlp& fb,
                                const std::string& tag) {
            ASSERT_EQ(fa.layers().size(), fb.layers().size());
            for (std::size_t l = 0; l < fa.layers().size(); ++l) {
                Linear& x = fa.layers()[l];
                Linear& y = fb.layers()[l];
                EXPECT_EQ(std::memcmp(x.gradWeight.data(),
                                      y.gradWeight.data(),
                                      x.gradWeight.size() *
                                          sizeof(float)),
                          0)
                    << tag << l << " @" << threads << "t";
                EXPECT_EQ(std::memcmp(x.gradBias.data(),
                                      y.gradBias.data(),
                                      x.gradBias.size() * sizeof(float)),
                          0)
                    << tag << l << " @" << threads << "t";
            }
        };
        check_layers(fused.bottomMlp(), stepped.bottomMlp(), "bottom");
        check_layers(fused.topMlp(), stepped.topMlp(), "top");

        ASSERT_EQ(fused.sparseGrads().size(),
                  stepped.sparseGrads().size());
        for (std::size_t t = 0; t < fused.sparseGrads().size(); ++t) {
            const SparseGrad& x = fused.sparseGrads()[t];
            const SparseGrad& y = stepped.sparseGrads()[t];
            ASSERT_EQ(x.rows, y.rows) << "table " << t;
            EXPECT_EQ(std::memcmp(x.values.data(), y.values.data(),
                                  x.values.size() * sizeof(float)),
                      0)
                << "table " << t << " @" << threads << "t";
        }
    }
}

// The fused graph (graph::fusePass — epilogue-fused GEMMs, grouped
// embedding lookups) must leave every gradient bit-identical to
// forwardBackward(), so the analytic-vs-numeric validation above
// covers the fused execution path unchanged.
TEST(GradCheck, FusedGraphGradientsMatchForwardBackward)
{
    const auto cfg = model::DlrmConfig::tinyReplica(3, 4, 50, 4);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    ds_cfg.seed = 71;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(64);
    const data::MiniBatch batch = ds.epochBatch(0, 8);

    auto graph = graph::buildModelStepGraph(cfg);
    graph::fusePass(graph);
    const train::GraphExecutor executor(graph);
    for (const std::size_t threads : {1u, 8u}) {
        ScopedPoolThreads pool(threads);
        model::Dlrm reference(cfg, 7);
        model::Dlrm stepped(cfg, 7);
        reference.zeroGrad();
        stepped.zeroGrad();
        const double a = reference.forwardBackward(batch);
        const double b = executor.runStep(stepped, batch);
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
            << threads << " threads: " << a << " vs " << b;

        auto check_layers = [&](Mlp& fa, Mlp& fb,
                                const std::string& tag) {
            ASSERT_EQ(fa.layers().size(), fb.layers().size());
            for (std::size_t l = 0; l < fa.layers().size(); ++l) {
                Linear& x = fa.layers()[l];
                Linear& y = fb.layers()[l];
                EXPECT_EQ(std::memcmp(x.gradWeight.data(),
                                      y.gradWeight.data(),
                                      x.gradWeight.size() *
                                          sizeof(float)),
                          0)
                    << tag << l << " @" << threads << "t";
                EXPECT_EQ(std::memcmp(x.gradBias.data(),
                                      y.gradBias.data(),
                                      x.gradBias.size() * sizeof(float)),
                          0)
                    << tag << l << " @" << threads << "t";
            }
        };
        check_layers(reference.bottomMlp(), stepped.bottomMlp(),
                     "bottom");
        check_layers(reference.topMlp(), stepped.topMlp(), "top");

        ASSERT_EQ(reference.sparseGrads().size(),
                  stepped.sparseGrads().size());
        for (std::size_t t = 0; t < reference.sparseGrads().size();
             ++t) {
            const SparseGrad& x = reference.sparseGrads()[t];
            const SparseGrad& y = stepped.sparseGrads()[t];
            ASSERT_EQ(x.rows, y.rows) << "table " << t;
            EXPECT_EQ(std::memcmp(x.values.data(), y.values.data(),
                                  x.values.size() * sizeof(float)),
                      0)
                << "table " << t << " @" << threads << "t";
        }
    }
}

// Central differences straight through the fully fused graph: the
// analytic gradients below come from the fused executor (backward-fused
// GEMMs, flatten-fused interaction, grouped lookups), probed against
// numeric differences of the loss. Complements the bitwise suites —
// this one would catch a fused backward that is merely self-consistent
// with an equally wrong unfused reference.
TEST(GradCheck, FusedGraphEndToEndCentralDifference)
{
    const auto cfg = model::DlrmConfig::tinyReplica(3, 4, 50, 4);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    ds_cfg.seed = 71;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(64);
    const data::MiniBatch batch = ds.epochBatch(0, 4);

    auto graph = graph::buildModelStepGraph(cfg);
    graph::fusePass(graph);
    const train::GraphExecutor executor(graph);

    model::Dlrm dlrm(cfg, 7);
    const LossFn loss = [&] { return dlrm.evalLoss(batch); };
    dlrm.zeroGrad();
    executor.runStep(dlrm, batch);

    // Same piecewise-smoothness caveat as DlrmEndToEndDenseParams: the
    // stacked ReLU kinks bias a thin tail of the central differences,
    // so the error distribution is held to quantile bounds.
    std::vector<double> errors;
    auto check_entry = [&](float& p, double analytic,
                           const std::string& tag) {
        const double numeric = numericGradAt(p, loss, kStep / 2.0);
        errors.push_back(relErr(analytic, numeric));
        EXPECT_LT(errors.back(), 0.2) << tag;
    };
    auto check_layer = [&](Linear& layer, const std::string& tag) {
        for (std::size_t i = 0; i < layer.weight.size(); i += 3)
            check_entry(layer.weight.data()[i],
                        layer.gradWeight.data()[i],
                        tag + ".weight[" + std::to_string(i) + "]");
        for (std::size_t i = 0; i < layer.bias.size(); i += 2)
            check_entry(layer.bias.data()[i], layer.gradBias.data()[i],
                        tag + ".bias[" + std::to_string(i) + "]");
    };
    for (std::size_t l = 0; l < dlrm.bottomMlp().layers().size(); ++l)
        check_layer(dlrm.bottomMlp().layers()[l],
                    "fused.bottom" + std::to_string(l));
    for (std::size_t l = 0; l < dlrm.topMlp().layers().size(); ++l)
        check_layer(dlrm.topMlp().layers()[l],
                    "fused.top" + std::to_string(l));

    for (std::size_t t = 0; t < dlrm.tables().size(); ++t) {
        EmbeddingBag& bag = dlrm.tables()[t];
        const SparseGrad& grad = dlrm.sparseGrads()[t];
        for (std::size_t r = 0; r < grad.rows.size(); ++r) {
            const std::size_t row =
                static_cast<std::size_t>(grad.rows[r]);
            const std::size_t j = r % bag.dim();
            check_entry(bag.table.data()[row * bag.dim() + j],
                        grad.values.at(r, j),
                        "fused.table" + std::to_string(t) + "[" +
                            std::to_string(row) + "," +
                            std::to_string(j) + "]");
        }
    }

    ASSERT_GT(errors.size(), 200u);
    std::sort(errors.begin(), errors.end());
    const auto quantile = [&](double q) {
        return errors[static_cast<std::size_t>(
            q * static_cast<double>(errors.size() - 1))];
    };
    EXPECT_LT(quantile(0.5), 1e-3);
    EXPECT_LT(quantile(0.9), 2e-3);
    EXPECT_LT(quantile(0.99), 5e-2);
}

// ---------------------------------------------------------------------
// Mutation spot-check: a corrupted analytic gradient must be rejected,
// proving the checker has teeth (a backward bug cannot pass silently).
// ---------------------------------------------------------------------

TEST(GradCheck, CorruptedGradientIsRejected)
{
    util::Rng rng(81);
    Linear lin(4, 3, rng);
    lin.bias.fillUniform(rng, -0.5f, 0.5f);
    Tensor x = randomInput(2, 4, rng);
    Tensor y(2, 3);

    const LossFn loss = [&] {
        lin.forward(x, y);
        return weightedSum(y);
    };

    lin.forward(x, y);
    const Tensor dy = coefTensor(2, 3);
    Tensor dx(2, 4);
    lin.zeroGrad();
    lin.backward(x, dy, dx);

    // Mutate one gradient entry: worst rel err must exceed the
    // tolerance by a wide margin (EXPECT_NONFATAL_FAILURE captures the
    // checker's own EXPECT_LT failure).
    Tensor mutated = lin.gradWeight;
    mutated.data()[5] = mutated.data()[5] * 1.05f + 0.1f;
    double worst = 0.0;
    EXPECT_NONFATAL_FAILURE(
        worst = checkGrads(mutated.data(), lin.weight.data(),
                           mutated.size(), loss, "mutated"),
        "mutated");
    EXPECT_GT(worst, kTol);

    // Sanity: the uncorrupted gradient passes with the same machinery.
    const double clean_worst =
        checkGrads(lin.gradWeight.data(), lin.weight.data(),
                   lin.gradWeight.size(), loss, "clean");
    EXPECT_LT(clean_worst, kTol);
}

} // namespace
} // namespace recsim::nn
