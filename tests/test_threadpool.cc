/**
 * @file
 * Tests for the ThreadPool parallel substrate and the determinism
 * contract the kernels rely on: parallelFor covers every index exactly
 * once with chunk boundaries that depend only on (begin, end, grain),
 * nested submits and concurrent callers complete without deadlock,
 * chunk exceptions propagate to the caller, and the tensor/embedding
 * kernels produce bit-identical results with a 1-thread and an 8-thread
 * pool.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "nn/embedding_bag.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace recsim {
namespace {

using tensor::Tensor;
using util::ThreadPool;

/** Restores the global pool to its configured size on scope exit. */
struct PoolSizeGuard
{
    ~PoolSizeGuard()
    {
        util::globalThreadPool().resize(util::configuredThreads());
    }
};

// ---------------------------------------------------------------------
// Coverage: every index exactly once, for many (begin, end, grain)
// shapes, at several pool sizes.
// ---------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>
        shapes = {
            {0, 1000, 7},   {0, 1000, 1},    {0, 1, 16},
            {5, 1005, 64},  {0, 64, 64},     {0, 64, 1000},
            {3, 3, 8},      {10, 9, 8},  // empty and inverted ranges
            {0, 4096, 256},
        };
    for (const std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        for (const auto& [begin, end, grain] : shapes) {
            const std::size_t n = end > begin ? end - begin : 0;
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(begin, end, grain,
                             [&](std::size_t lo, std::size_t hi) {
                                 for (std::size_t i = lo; i < hi; ++i)
                                     hits[i - begin].fetch_add(1);
                             });
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " begin=" << begin
                    << " end=" << end << " grain=" << grain
                    << " index=" << begin + i;
        }
    }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnRangeAndGrain)
{
    // Record the chunk set at each pool size; all sizes must agree, and
    // every boundary must sit at a multiple of grain from begin.
    const std::size_t begin = 3, end = 103, grain = 8;
    std::set<std::pair<std::size_t, std::size_t>> reference;
    for (const std::size_t threads : {1u, 2u, 5u, 8u}) {
        ThreadPool pool(threads);
        std::mutex mu;
        std::set<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallelFor(begin, end, grain,
                         [&](std::size_t lo, std::size_t hi) {
                             std::lock_guard<std::mutex> lock(mu);
                             chunks.emplace(lo, hi);
                         });
        for (const auto& [lo, hi] : chunks) {
            EXPECT_EQ((lo - begin) % grain, 0u);
            EXPECT_LE(hi - lo, grain);
            EXPECT_TRUE(hi == end || hi - lo == grain);
        }
        if (reference.empty())
            reference = chunks;
        else
            EXPECT_EQ(chunks, reference) << "threads=" << threads;
    }
}

// ---------------------------------------------------------------------
// Nested submits and concurrent callers must complete (no deadlock).
// ---------------------------------------------------------------------

TEST(ThreadPool, NestedSubmitRunsInlineAndCompletes)
{
    ThreadPool pool(4);
    constexpr std::size_t kOuter = 16, kInner = 32;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    pool.parallelFor(0, kOuter, 1, [&](std::size_t o0, std::size_t o1) {
        for (std::size_t o = o0; o < o1; ++o) {
            // A parallelFor issued from inside a pool task must not
            // block on queue capacity or wait on its own worker.
            pool.parallelFor(0, kInner, 4,
                             [&](std::size_t i0, std::size_t i1) {
                                 for (std::size_t i = i0; i < i1; ++i)
                                     hits[o * kInner + i].fetch_add(1);
                             });
        }
    });
    for (const auto& h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentCallersAllComplete)
{
    ThreadPool pool(4);
    constexpr std::size_t kCallers = 8, kRange = 2048;
    std::vector<std::size_t> sums(kCallers, 0);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            std::vector<std::atomic<std::size_t>> acc(1);
            pool.parallelFor(0, kRange, 64,
                             [&](std::size_t lo, std::size_t hi) {
                                 std::size_t s = 0;
                                 for (std::size_t i = lo; i < hi; ++i)
                                     s += i;
                                 acc[0].fetch_add(s);
                             });
            sums[c] = acc[0].load();
        });
    }
    for (auto& t : callers)
        t.join();
    const std::size_t expect = kRange * (kRange - 1) / 2;
    for (std::size_t c = 0; c < kCallers; ++c)
        EXPECT_EQ(sums[c], expect) << "caller " << c;
}

// ---------------------------------------------------------------------
// Exceptions propagate to the caller; the pool stays usable after.
// ---------------------------------------------------------------------

TEST(ThreadPool, ChunkExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 4,
                         [&](std::size_t lo, std::size_t) {
                             if (lo >= 48)
                                 throw std::runtime_error("chunk boom");
                         }),
        std::runtime_error);

    // The failed job must not leave tasks queued or workers wedged.
    std::atomic<int> ran{0};
    pool.parallelFor(0, 64, 8,
                     [&](std::size_t lo, std::size_t hi) {
                         ran.fetch_add(static_cast<int>(hi - lo));
                     });
    EXPECT_EQ(ran.load(), 64);
}

// ---------------------------------------------------------------------
// Stats and resize.
// ---------------------------------------------------------------------

TEST(ThreadPool, StatsCountJobsAndTasks)
{
    ThreadPool pool(2);
    const auto before = pool.stats();
    pool.parallelFor(0, 100, 10, [](std::size_t, std::size_t) {});
    const auto after = pool.stats();
    EXPECT_EQ(after.jobs, before.jobs + 1);
    EXPECT_EQ(after.tasks, before.tasks + 10);  // ceil(100 / 10) chunks
}

TEST(ThreadPool, ResizeChangesConcurrencyAndKeepsWorking)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    pool.resize(6);
    EXPECT_EQ(pool.numThreads(), 6u);
    std::vector<std::atomic<int>> hits(512);
    pool.parallelFor(0, hits.size(), 16,
                     [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i)
                             hits[i].fetch_add(1);
                     });
    for (const auto& h : hits)
        ASSERT_EQ(h.load(), 1);
    pool.resize(1);
    EXPECT_EQ(pool.numThreads(), 1u);
}

TEST(ThreadPool, GlobalPoolMatchesConfiguredThreads)
{
    EXPECT_GE(util::configuredThreads(), 1u);
    // The global pool may have been resized by an earlier test in this
    // binary; resize restores the configured size.
    util::globalThreadPool().resize(util::configuredThreads());
    EXPECT_EQ(util::globalThreadPool().numThreads(),
              util::configuredThreads());
}

// ---------------------------------------------------------------------
// Determinism contract: kernels are bitwise identical with a 1-thread
// and an 8-thread global pool.
// ---------------------------------------------------------------------

/** Runs fn with the global pool at 1 thread, then at 8; returns both
 *  results for bitwise comparison. */
template <typename F>
std::pair<Tensor, Tensor>
runSerialAndParallel(F&& fn)
{
    auto& pool = util::globalThreadPool();
    pool.resize(1);
    Tensor serial = fn();
    pool.resize(8);
    Tensor parallel = fn();
    return {std::move(serial), std::move(parallel)};
}

void
expectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)),
              0)
        << what << ": parallel result differs bitwise from serial";
}

TEST(ThreadPoolDeterminism, MatmulBitwiseEqualAcrossThreadCounts)
{
    PoolSizeGuard guard;
    util::Rng rng(123);
    // Odd shapes so chunk and block edges are exercised.
    Tensor a(67, 129), b(129, 93);
    a.fillNormal(rng, 1.0f);
    b.fillNormal(rng, 1.0f);

    auto [s1, p1] = runSerialAndParallel([&] {
        Tensor out;
        tensor::matmul(a, b, out);
        return out;
    });
    expectBitwiseEqual(s1, p1, "matmul");

    Tensor at(129, 67);
    at.fillNormal(rng, 1.0f);
    auto [s2, p2] = runSerialAndParallel([&] {
        Tensor out;
        tensor::matmulTransA(at, b, out);
        return out;
    });
    expectBitwiseEqual(s2, p2, "matmulTransA");

    Tensor bt(93, 129);
    bt.fillNormal(rng, 1.0f);
    auto [s3, p3] = runSerialAndParallel([&] {
        Tensor out;
        tensor::matmulTransB(a, bt, out);
        return out;
    });
    expectBitwiseEqual(s3, p3, "matmulTransB");
}

TEST(ThreadPoolDeterminism, ElementwiseBitwiseEqualAcrossThreadCounts)
{
    PoolSizeGuard guard;
    util::Rng rng(124);
    Tensor x(333, 77);
    x.fillNormal(rng, 2.0f);

    auto [rs, rp] = runSerialAndParallel([&] {
        Tensor y = x;
        tensor::reluInPlace(y);
        return y;
    });
    expectBitwiseEqual(rs, rp, "relu");

    auto [ss, sp] = runSerialAndParallel([&] {
        Tensor y = x;
        tensor::sigmoidInPlace(y);
        return y;
    });
    expectBitwiseEqual(ss, sp, "sigmoid");

    auto [ms, mp] = runSerialAndParallel([&] {
        Tensor sums;
        tensor::sumRows(x, sums);
        return sums;
    });
    expectBitwiseEqual(ms, mp, "sumRows");
}

TEST(ThreadPoolDeterminism, EmbeddingBitwiseEqualAcrossThreadCounts)
{
    PoolSizeGuard guard;
    constexpr uint64_t kRows = 500;
    constexpr std::size_t kDim = 24;
    util::Rng init_rng(125);
    nn::EmbeddingBag bag(kRows, kDim, init_rng);

    // 64 examples with duplicate ids within and across bags plus one
    // empty bag, so the backward dedup path is exercised.
    nn::SparseBatch batch;
    util::Rng rng(126);
    batch.offsets.push_back(0);
    for (std::size_t ex = 0; ex < 64; ++ex) {
        if (ex != 17) {
            for (int k = 0; k < 8; ++k)
                batch.indices.push_back(rng.uniformInt(kRows * 2));
            batch.indices.push_back(batch.indices.back());  // duplicate
        }
        batch.offsets.push_back(batch.indices.size());
    }

    auto [fs, fp] = runSerialAndParallel([&] {
        Tensor out;
        bag.forward(batch, out);
        return out;
    });
    expectBitwiseEqual(fs, fp, "embedding.forward");

    Tensor dy(batch.batchSize(), kDim);
    dy.fillNormal(rng, 1.0f);
    auto& pool = util::globalThreadPool();
    pool.resize(1);
    nn::SparseGrad serial_grad;
    bag.backward(batch, dy, serial_grad);
    const auto serial_rows = serial_grad.rows;
    const Tensor serial_values = serial_grad.values;
    pool.resize(8);
    nn::SparseGrad parallel_grad;
    bag.backward(batch, dy, parallel_grad);
    EXPECT_EQ(parallel_grad.rows, serial_rows)
        << "embedding.backward row order changed with thread count";
    expectBitwiseEqual(serial_values, parallel_grad.values,
                       "embedding.backward values");
}

} // namespace
} // namespace recsim
