/**
 * @file
 * Cross-module integration tests: the paper's headline results wired
 * end to end through the public API, plus functional-training /
 * performance-model consistency checks.
 */
#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/explorer.h"
#include "fleet/fleet_sim.h"
#include "sim/dist_sim.h"
#include "train/sweep.h"
#include "train/trainer.h"

namespace recsim {
namespace {

using placement::EmbeddingPlacement;

/** Fig 1 (M1/M2): throughput rises CPU -> Big Basin -> Zion. */
TEST(Integration, Fig1PlatformOrderingForGpuFriendlyModels)
{
    core::Estimator est;
    for (const auto& m : {model::DlrmConfig::m1Prod(),
                          model::DlrmConfig::m2Prod()}) {
        const bool is_m2 = m.name == "M2_prod";
        const double cpu = est.estimate(
            m, cost::SystemConfig::cpuSetup(is_m2 ? 20 : 6,
                                            is_m2 ? 16 : 8, 2, 200, 1))
            .throughput;
        const auto bb = est.rankPlacements(
            m, cost::SystemConfig::bigBasinSetup(
                   EmbeddingPlacement::GpuMemory, is_m2 ? 3200 : 1600));
        const auto zion = est.rankPlacements(
            m, cost::SystemConfig::zionSetup(
                   EmbeddingPlacement::GpuMemory, is_m2 ? 3200 : 1600));
        ASSERT_FALSE(bb.empty());
        ASSERT_FALSE(zion.empty());
        EXPECT_GT(bb.front().estimate.throughput, cpu) << m.name;
        EXPECT_GT(zion.front().estimate.throughput,
                  bb.front().estimate.throughput) << m.name;
    }
}

/** Fig 1 (M3): Big Basin underperforms CPU; Zion recovers. */
TEST(Integration, Fig1EmbeddingDominantModelStory)
{
    core::Estimator est;
    const auto m3 = model::DlrmConfig::m3Prod();
    const double cpu = est.estimate(
        m3, cost::SystemConfig::cpuSetup(8, 8, 2, 200, 4)).throughput;

    // On Big Basin, M3's only paper-tested option is remote PS.
    auto bb_sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    bb_sys.hogwild_threads = 4;
    const double bb = est.estimate(m3, bb_sys).throughput;

    // Zion hosts the whole model in its 2 TB system memory.
    const double zion = est.estimate(
        m3, cost::SystemConfig::zionSetup(
                EmbeddingPlacement::HostMemory, 800)).throughput;

    EXPECT_LT(bb, cpu);
    EXPECT_GT(zion, cpu);
    EXPECT_GT(zion, bb);
}

/** The DES and the analytical model agree on the Fig 14 ordering. */
TEST(Integration, DesReproducesPlacementOrdering)
{
    const auto m2 = model::DlrmConfig::testSuite(256, 16, 1000000);
    auto run = [&](EmbeddingPlacement placement) {
        sim::DistSimConfig cfg;
        cfg.model = m2;
        cfg.system = cost::SystemConfig::bigBasinSetup(
            placement, 1600,
            placement == EmbeddingPlacement::RemotePs ? 4 : 0);
        cfg.measure_seconds = 0.5;
        return sim::runDistSim(cfg).throughput;
    };
    const double gpu_mem = run(EmbeddingPlacement::GpuMemory);
    const double host = run(EmbeddingPlacement::HostMemory);
    const double remote = run(EmbeddingPlacement::RemotePs);
    EXPECT_GT(gpu_mem, host);
    EXPECT_GT(gpu_mem, remote);
}

/**
 * Fig 15 mechanism end to end: with per-batch-size LR retuning on
 * identical data, large batches still lose NE versus the small-batch
 * baseline within a fixed data budget.
 */
TEST(Integration, Fig15AccuracyGapGrowsWithBatchSize)
{
    const auto m = model::DlrmConfig::tinyReplica(4, 8, 500, 8);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = m.num_dense;
    ds_cfg.sparse = m.sparse;
    ds_cfg.seed = 123;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(18000);

    auto best_ne = [&](std::size_t batch) {
        train::TrainConfig cfg;
        cfg.batch_size = batch;
        cfg.epochs = 1;
        const auto sweep = train::sweepLearningRate(
            m, ds, cfg, {0.02f, 0.05f, 0.1f, 0.2f}, 2000);
        return sweep.best().result.eval_ne;
    };

    const double small = best_ne(64);
    const double large = best_ne(4096);
    EXPECT_LT(small, 1.0);
    EXPECT_GT(large, small);
}

/** Every named model fits where the paper says it fits. */
TEST(Integration, CapacityStoriesConsistent)
{
    const auto bb = hw::Platform::bigBasin();
    const auto zion = hw::Platform::zionPrototype();
    const auto m1 = model::DlrmConfig::m1Prod();
    const auto m3 = model::DlrmConfig::m3Prod();

    EXPECT_TRUE(placement::planPlacement(
        EmbeddingPlacement::GpuMemory, m1, bb).feasible);
    EXPECT_FALSE(placement::planPlacement(
        EmbeddingPlacement::GpuMemory, m3, bb).feasible);
    EXPECT_TRUE(placement::planPlacement(
        EmbeddingPlacement::HostMemory, m3, zion).feasible);
}

/** Optimal batch ordering matches Table III: M2 > M1 > M3. */
TEST(Integration, OptimalBatchOrderingAcrossModels)
{
    core::Estimator est;
    const std::vector<std::size_t> candidates =
        {200, 400, 800, 1600, 3200, 6400};
    const auto m1 = est.optimalBatch(
        model::DlrmConfig::m1Prod(),
        cost::SystemConfig::bigBasinSetup(EmbeddingPlacement::GpuMemory,
                                          200),
        candidates);
    auto m3_sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 200, 8);
    m3_sys.hogwild_threads = 4;
    const auto m3 = est.optimalBatch(model::DlrmConfig::m3Prod(),
                                     m3_sys, candidates);
    // Paper: optimal per-GPU batch 1600 (M1) / 3200 (M2) / 800 (M3).
    // The remote-PS model saturates at a smaller batch than GPU-memory
    // placement.
    EXPECT_LE(m3.system.batch_size, m1.system.batch_size);
}

/** Utilization study output feeds the Fig 5 reproduction sanely. */
TEST(Integration, UtilizationStudyMatchesCostModelScale)
{
    fleet::UtilizationStudyConfig cfg;
    cfg.num_runs = 60;
    cfg.system_noise_sigma = 0.0;
    cfg.config_jitter = 0.0;
    const auto dists = fleet::utilizationStudy(cfg);

    core::Estimator est;
    const auto direct = est.estimate(
        cfg.base_model, cfg.system);
    EXPECT_NEAR(dists.at("trainer_cpu").mean(),
                direct.util.trainer_cpu, 0.05);
}

} // namespace
} // namespace recsim
