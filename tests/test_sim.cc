/**
 * @file
 * Tests for the distributed-training DES: agreement with the analytical
 * model, utilization reporting, noise behaviour, feasibility mirroring.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cost/iteration_model.h"
#include "model/config.h"
#include "sim/dist_sim.h"

namespace recsim::sim {
namespace {

using placement::EmbeddingPlacement;

DistSimConfig
cpuConfig()
{
    DistSimConfig cfg;
    cfg.model = model::DlrmConfig::testSuite(256, 16, 100000);
    cfg.system = cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1);
    cfg.measure_seconds = 0.5;
    return cfg;
}

DistSimConfig
gpuConfig(EmbeddingPlacement placement = EmbeddingPlacement::GpuMemory)
{
    DistSimConfig cfg;
    cfg.model = model::DlrmConfig::testSuite(256, 16, 100000);
    cfg.system = cost::SystemConfig::bigBasinSetup(placement, 1600,
        placement == EmbeddingPlacement::RemotePs ? 4 : 0);
    cfg.measure_seconds = 0.5;
    return cfg;
}

TEST(DistSim, CpuRunProducesThroughput)
{
    const auto result = runDistSim(cpuConfig());
    EXPECT_TRUE(result.feasible);
    EXPECT_GT(result.throughput, 0.0);
    EXPECT_GT(result.iterations, 10u);
    EXPECT_GT(result.mean_iteration_seconds, 0.0);
}

TEST(DistSim, ShardedCpuIterationBeatsNoOverlapSum)
{
    // With noise off, a PS-sharded CPU iteration must finish strictly
    // faster than executing every graph node back to back: the DES
    // schedules the comm legs from the dep edges, so the bottom-MLP
    // half of compute and the per-shard RPC legs overlap.
    DistSimConfig cfg = cpuConfig();
    cfg.system = cost::SystemConfig::cpuSetup(2, 4, 1, 200, 1);
    const auto result = runDistSim(cfg);
    ASSERT_TRUE(result.feasible);

    double node_sum = 0.0;
    for (const auto& [id, seconds] : result.node_seconds)
        node_sum += seconds;
    ASSERT_GT(node_sum, 0.0);
    EXPECT_LT(result.mean_iteration_seconds, node_sum);

    // The analytical model agrees about the direction: its critical
    // path (and the iteration built on it) undercuts the serial sum.
    const auto est =
        cost::IterationModel(cfg.model, cfg.system).estimate();
    ASSERT_TRUE(est.feasible);
    EXPECT_LT(est.critical_path_seconds, est.serial_sum_seconds);
    EXPECT_LT(est.overlap_efficiency, 1.0);
}

TEST(DistSim, CpuAgreesWithAnalyticalWithinFactorTwo)
{
    const auto cfg = cpuConfig();
    const auto sim_result = runDistSim(cfg);
    const auto analytical =
        cost::IterationModel(cfg.model, cfg.system).estimate();
    const double ratio = sim_result.throughput / analytical.throughput;
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.5);
}

TEST(DistSim, GpuAgreesWithAnalyticalWithinFactorTwo)
{
    const auto cfg = gpuConfig();
    const auto sim_result = runDistSim(cfg);
    const auto analytical =
        cost::IterationModel(cfg.model, cfg.system).estimate();
    ASSERT_GT(analytical.throughput, 0.0);
    const double ratio = sim_result.throughput / analytical.throughput;
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.5);
}

TEST(DistSim, DeterministicForSeed)
{
    const auto a = runDistSim(cpuConfig());
    const auto b = runDistSim(cpuConfig());
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(DistSim, ReportsUtilizationsForAllNodes)
{
    const auto result = runDistSim(cpuConfig());
    EXPECT_TRUE(result.utilization.count("trainer0.cpu"));
    EXPECT_TRUE(result.utilization.count("trainer1.nic"));
    EXPECT_TRUE(result.utilization.count("sparse_ps0.mem"));
    EXPECT_TRUE(result.utilization.count("sparse_ps1.nic"));
    EXPECT_TRUE(result.utilization.count("dense_ps.nic"));
    for (const auto& [name, util] : result.utilization) {
        EXPECT_GE(util, 0.0) << name;
        EXPECT_LE(util, 1.0) << name;
    }
}

TEST(DistSim, GpuReportsDeviceUtilizations)
{
    const auto result = runDistSim(gpuConfig());
    EXPECT_TRUE(result.utilization.count("gpu.compute"));
    EXPECT_TRUE(result.utilization.count("gpu.mem"));
    EXPECT_TRUE(result.utilization.count("host.cpu"));
    EXPECT_GT(result.utilization.at("gpu.compute"), 0.0);
}

TEST(DistSim, MeanUtilizationFiltersByKey)
{
    const auto result = runDistSim(cpuConfig());
    const double trainers = result.meanUtilization("trainer");
    const double ps = result.meanUtilization("sparse_ps");
    EXPECT_GT(trainers, 0.0);
    EXPECT_GT(ps, 0.0);
    EXPECT_EQ(result.meanUtilization("nonexistent"), 0.0);
}

TEST(DistSim, InfeasiblePlacementMirrorsAnalyticalModel)
{
    DistSimConfig cfg;
    cfg.model = model::DlrmConfig::m3Prod();
    cfg.system = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 800);
    const auto result = runDistSim(cfg);
    EXPECT_FALSE(result.feasible);
    EXPECT_FALSE(result.infeasible_reason.empty());
}

TEST(DistSim, MoreTrainersMoreThroughput)
{
    auto cfg = cpuConfig();
    const double two = runDistSim(cfg).throughput;
    cfg.system = cost::SystemConfig::cpuSetup(4, 2, 1, 200, 1);
    const double four = runDistSim(cfg).throughput;
    EXPECT_GT(four, two * 1.3);
}

TEST(DistSim, HogwildWorkersRaiseTrainerUtilization)
{
    auto cfg = cpuConfig();
    cfg.system.hogwild_threads = 1;
    const auto one = runDistSim(cfg);
    cfg.system.hogwild_threads = 4;
    const auto four = runDistSim(cfg);
    EXPECT_GT(four.throughput, one.throughput);
    EXPECT_GE(four.meanUtilization("trainer"),
              one.meanUtilization("trainer"));
}

TEST(DistSim, NoiseChangesResultsButKeepsScale)
{
    auto cfg = cpuConfig();
    const double clean = runDistSim(cfg).throughput;
    cfg.service_noise_sigma = 0.2;
    cfg.seed = 99;
    const double noisy = runDistSim(cfg).throughput;
    EXPECT_NE(clean, noisy);
    EXPECT_GT(noisy, clean * 0.5);
    EXPECT_LT(noisy, clean * 1.5);
}

TEST(DistSim, NoiseSeedsProduceDifferentRuns)
{
    auto cfg = cpuConfig();
    cfg.service_noise_sigma = 0.2;
    cfg.seed = 1;
    const double a = runDistSim(cfg).throughput;
    cfg.seed = 2;
    const double b = runDistSim(cfg).throughput;
    EXPECT_NE(a, b);
}

TEST(DistSim, RemotePlacementSlowerThanGpuMemory)
{
    const double local = runDistSim(gpuConfig()).throughput;
    const double remote = runDistSim(
        gpuConfig(EmbeddingPlacement::RemotePs)).throughput;
    EXPECT_GT(local, remote);
}

} // namespace
} // namespace recsim::sim
