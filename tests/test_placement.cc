/**
 * @file
 * Unit tests for recsim::placement: partitioners (balance, capacity,
 * imbalance metrics) and the Fig 8 placement strategies.
 */
#include <gtest/gtest.h>

#include "hw/platform.h"
#include "model/config.h"
#include "placement/partitioner.h"
#include "placement/placement.h"
#include "util/units.h"

namespace recsim::placement {
namespace {

std::vector<data::SparseFeatureSpec>
uniformSpecs(std::size_t n, uint64_t hash, double length)
{
    std::vector<data::SparseFeatureSpec> specs(n);
    for (auto& s : specs) {
        s.hash_size = hash;
        s.mean_length = length;
    }
    return specs;
}

TEST(TableCosts, BytesAndAccess)
{
    const auto specs = uniformSpecs(2, 1000, 4.0);
    TableCosts costs(specs, 16, 1.5);
    ASSERT_EQ(costs.bytes.size(), 2u);
    EXPECT_DOUBLE_EQ(costs.bytes[0], 1000.0 * 16 * 4 * 1.5);
    EXPECT_DOUBLE_EQ(costs.access_bytes[0], 4.0 * 16 * 4);
}

TEST(GreedyPartition, BalancesUniformTables)
{
    const auto specs = uniformSpecs(8, 1000, 4.0);
    TableCosts costs(specs, 16);
    const Partition part = greedyPartition(costs, 4, 0.0,
                                           BalanceObjective::Bytes);
    EXPECT_TRUE(part.feasible);
    EXPECT_EQ(part.shardsUsed(), 4u);
    EXPECT_NEAR(part.bytesImbalance(), 1.0, 1e-9);
    for (int shard : part.shard_of)
        EXPECT_GE(shard, 0);
}

TEST(GreedyPartition, AccessAwareBeatsSequentialOnSkewedTraffic)
{
    // Equal-sized tables, alternating hot/cold access: the sequential
    // packer co-locates the two hot tables, the access-aware greedy
    // packer separates them.
    std::vector<data::SparseFeatureSpec> specs;
    for (double len : {100.0, 100.0, 1.0, 1.0})
        specs.push_back({"", 1000, len, 1.0, 0, 0});
    TableCosts costs(specs, 16);
    const double two_tables = 2.0 * 1000.0 * 16 * 4;
    const Partition greedy = greedyPartition(
        costs, 2, two_tables, BalanceObjective::AccessBytes);
    const Partition seq = sequentialPartition(costs, 2, two_tables);
    EXPECT_TRUE(greedy.feasible);
    EXPECT_TRUE(seq.feasible);
    EXPECT_LT(greedy.accessImbalance(), 1.1);
    EXPECT_GT(seq.accessImbalance(), 1.5);
}

TEST(GreedyPartition, RespectsCapacity)
{
    const auto specs = uniformSpecs(4, 1000, 1.0);
    TableCosts costs(specs, 16);  // 64 KB per table
    const double table_bytes = 1000.0 * 16 * 4;
    // Each shard fits exactly one table.
    const Partition part = greedyPartition(costs, 4, table_bytes * 1.5,
                                           BalanceObjective::Bytes);
    EXPECT_TRUE(part.feasible);
    EXPECT_EQ(part.shardsUsed(), 4u);
}

TEST(GreedyPartition, InfeasibleWhenTableExceedsShard)
{
    const auto specs = uniformSpecs(1, 1000, 1.0);
    TableCosts costs(specs, 16);
    const Partition part = greedyPartition(costs, 4, 100.0,
                                           BalanceObjective::Bytes);
    EXPECT_FALSE(part.feasible);
    EXPECT_FALSE(part.infeasible_reason.empty());
    EXPECT_EQ(part.shard_of[0], -1);
}

TEST(GreedyPartition, AccessObjectiveBalancesTraffic)
{
    std::vector<data::SparseFeatureSpec> specs;
    // Same size, very different access rates.
    for (double len : {100.0, 1.0, 1.0, 1.0, 100.0, 1.0, 1.0, 1.0})
        specs.push_back({"", 1000, len, 1.0, 0, 0});
    TableCosts costs(specs, 16);
    const Partition part = greedyPartition(
        costs, 2, 0.0, BalanceObjective::AccessBytes);
    EXPECT_NEAR(part.accessImbalance(), 1.0, 0.05);
}

TEST(SequentialPartition, FillsInOrder)
{
    const auto specs = uniformSpecs(4, 1000, 1.0);
    TableCosts costs(specs, 16);
    const double table_bytes = 1000.0 * 16 * 4;
    const Partition part = sequentialPartition(costs, 4,
                                               2.0 * table_bytes);
    EXPECT_TRUE(part.feasible);
    EXPECT_EQ(part.shard_of[0], 0);
    EXPECT_EQ(part.shard_of[1], 0);
    EXPECT_EQ(part.shard_of[2], 1);
    EXPECT_EQ(part.shardsUsed(), 2u);
}

TEST(RowWisePartition, SplitsEvenly)
{
    const Partition part = rowWisePartition(800.0, 80.0, 4, 0.0);
    EXPECT_TRUE(part.feasible);
    for (double b : part.shard_bytes)
        EXPECT_DOUBLE_EQ(b, 200.0);
    EXPECT_NEAR(part.accessImbalance(), 1.0, 1e-12);
}

TEST(RowWisePartition, InfeasibleWhenSliceTooBig)
{
    const Partition part = rowWisePartition(800.0, 80.0, 2, 100.0);
    EXPECT_FALSE(part.feasible);
}

TEST(Placement, ToStringNames)
{
    EXPECT_EQ(toString(EmbeddingPlacement::GpuMemory), "gpu_memory");
    EXPECT_EQ(toString(EmbeddingPlacement::HostMemory), "host_memory");
    EXPECT_EQ(toString(EmbeddingPlacement::RemotePs), "remote_ps");
    EXPECT_EQ(toString(EmbeddingPlacement::Hybrid), "hybrid");
    EXPECT_EQ(toString(EmbeddingPlacement::CpuLocal), "cpu_local");
}

TEST(Placement, GpuMemoryFitsM1OnBigBasin)
{
    const auto plan = planPlacement(EmbeddingPlacement::GpuMemory,
                                    model::DlrmConfig::m1Prod(),
                                    hw::Platform::bigBasin());
    EXPECT_TRUE(plan.feasible);
    EXPECT_DOUBLE_EQ(plan.gpu_lookup_fraction, 1.0);
    EXPECT_GT(plan.gpus_used, 0u);
    EXPECT_LE(plan.gpus_used, 8u);
}

TEST(Placement, GpuMemoryRejectsM3OnBigBasin)
{
    // The paper: M3's hundreds of GB cannot fit Big Basin GPU memory.
    const auto plan = planPlacement(EmbeddingPlacement::GpuMemory,
                                    model::DlrmConfig::m3Prod(),
                                    hw::Platform::bigBasin());
    EXPECT_FALSE(plan.feasible);
}

TEST(Placement, HostMemoryRejectsM3OnBigBasinButNotZion)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    EXPECT_FALSE(planPlacement(EmbeddingPlacement::HostMemory, m3,
                               hw::Platform::bigBasin()).feasible);
    EXPECT_TRUE(planPlacement(EmbeddingPlacement::HostMemory, m3,
                              hw::Platform::zionPrototype()).feasible);
}

TEST(Placement, GpuMemoryNeedsGpus)
{
    const auto plan = planPlacement(EmbeddingPlacement::GpuMemory,
                                    model::DlrmConfig::m1Prod(),
                                    hw::Platform::dualSocketCpu());
    EXPECT_FALSE(plan.feasible);
}

TEST(Placement, RemotePsScalesWithServerCount)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    PlacementOptions few;
    few.num_sparse_ps = 1;
    EXPECT_FALSE(planPlacement(EmbeddingPlacement::RemotePs, m3,
                               hw::Platform::bigBasin(), few).feasible);
    PlacementOptions many;
    many.num_sparse_ps = 8;
    const auto plan = planPlacement(EmbeddingPlacement::RemotePs, m3,
                                    hw::Platform::bigBasin(), many);
    EXPECT_TRUE(plan.feasible);
    EXPECT_DOUBLE_EQ(plan.remote_lookup_fraction, 1.0);
}

TEST(Placement, HybridServesHotTablesFromGpu)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    const auto plan = planPlacement(EmbeddingPlacement::Hybrid, m3,
                                    hw::Platform::bigBasin());
    EXPECT_TRUE(plan.feasible);
    EXPECT_GT(plan.gpu_lookup_fraction, 0.0);
    EXPECT_LT(plan.gpu_lookup_fraction, 1.0);
    // GPU memory holds the hottest tables, so the lookup fraction
    // served from GPU should exceed the byte fraction resident there.
    double gpu_bytes = 0.0;
    for (std::size_t s = 0; s + 1 < plan.partition.numShards(); ++s)
        gpu_bytes += plan.partition.shard_bytes[s];
    EXPECT_GT(plan.gpu_lookup_fraction,
              gpu_bytes / plan.resident_bytes);
}

TEST(Placement, ResidentBytesIncludeOverhead)
{
    PlacementOptions options;
    options.memory_overhead_factor = 2.0;
    const auto cfg = model::DlrmConfig::testSuite(64, 4, 1000);
    const auto plan = planPlacement(EmbeddingPlacement::HostMemory, cfg,
                                    hw::Platform::bigBasin(), options);
    EXPECT_NEAR(plan.resident_bytes, cfg.embeddingBytes() * 2.0, 1.0);
}

TEST(Placement, AdvisorPicksGpuMemoryForSmallModels)
{
    const auto cfg = model::DlrmConfig::testSuite(64, 8, 100000);
    const auto plan = advisePlacement(cfg, hw::Platform::bigBasin());
    EXPECT_TRUE(plan.feasible);
    EXPECT_EQ(plan.placement, EmbeddingPlacement::GpuMemory);
}

TEST(Placement, AdvisorNeverPicksInfeasible)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    const auto plan = advisePlacement(m3, hw::Platform::bigBasin());
    // M3 does not fit GPU or host memory on Big Basin; hybrid or remote
    // must be chosen, and the returned plan must be feasible.
    EXPECT_TRUE(plan.feasible ||
                plan.placement == EmbeddingPlacement::RemotePs);
    EXPECT_NE(plan.placement, EmbeddingPlacement::GpuMemory);
    EXPECT_NE(plan.placement, EmbeddingPlacement::HostMemory);
}

class AllStrategies
    : public ::testing::TestWithParam<EmbeddingPlacement>
{
};

TEST_P(AllStrategies, PlanIsInternallyConsistent)
{
    const auto cfg = model::DlrmConfig::testSuite(64, 8, 100000);
    PlacementOptions options;
    options.num_sparse_ps = 4;
    const auto plan = planPlacement(GetParam(), cfg,
                                    hw::Platform::bigBasin(), options);
    EXPECT_TRUE(plan.feasible);
    EXPECT_GE(plan.gpu_lookup_fraction, 0.0);
    EXPECT_LE(plan.gpu_lookup_fraction, 1.0);
    EXPECT_GE(plan.remote_lookup_fraction, 0.0);
    EXPECT_LE(plan.gpu_lookup_fraction + plan.remote_lookup_fraction,
              1.0 + 1e-9);
    EXPECT_GE(plan.access_imbalance, 1.0 - 1e-9);
    EXPECT_GT(plan.resident_bytes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AllStrategies,
    ::testing::Values(EmbeddingPlacement::GpuMemory,
                      EmbeddingPlacement::HostMemory,
                      EmbeddingPlacement::RemotePs,
                      EmbeddingPlacement::Hybrid,
                      EmbeddingPlacement::CpuLocal));

} // namespace
} // namespace recsim::placement
