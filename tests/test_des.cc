/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * cancellation, and the Resource / LinkModel primitives.
 */
#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.h"
#include "des/sim_object.h"

namespace recsim::des {
namespace {

TEST(Ticks, SecondConversionsRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSecond);
    EXPECT_EQ(secondsToTicks(1.5e-6), 1500u);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSecond), 1.0);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TieBreaksByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); }, 5);
    eq.schedule(10, [&] { order.push_back(2); }, 0);
    eq.schedule(10, [&] { order.push_back(3); }, 5);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        eq.scheduleAfter(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    int fired = 0;
    const auto id = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    const auto executed = eq.run(50);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PendingCountTracksScheduleAndRun)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.step();
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.eventsExecuted(), 2u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(Resource, ServesFifoAtConfiguredRate)
{
    EventQueue eq;
    Resource res(eq, "mem", 100.0);  // 100 units/s
    const Tick first = res.acquire(50.0);   // 0.5 s
    const Tick second = res.acquire(25.0);  // queues behind first
    EXPECT_EQ(first, secondsToTicks(0.5));
    EXPECT_EQ(second, secondsToTicks(0.75));
    EXPECT_DOUBLE_EQ(res.busySeconds(), 0.75);
}

TEST(Resource, AcquireAtWaitsForEarliest)
{
    EventQueue eq;
    Resource res(eq, "cpu", 1.0);
    const Tick done = res.acquireAt(secondsToTicks(2.0), 1.0);
    EXPECT_EQ(done, secondsToTicks(3.0));
    // Idle gap [0, 2) does not count as busy.
    EXPECT_DOUBLE_EQ(res.busySeconds(), 1.0);
}

TEST(Resource, UtilizationOverWindow)
{
    EventQueue eq;
    Resource res(eq, "cpu", 1.0);
    res.acquire(1.0);
    EXPECT_NEAR(res.utilization(secondsToTicks(2.0)), 0.5, 1e-9);
    EXPECT_NEAR(res.utilization(secondsToTicks(1.0)), 1.0, 1e-9);
}

TEST(ResourceDeath, NonPositiveRatePanics)
{
    EventQueue eq;
    EXPECT_DEATH(Resource(eq, "bad", 0.0), "positive rate");
}

TEST(LinkModel, TransferAddsLatency)
{
    EventQueue eq;
    LinkModel link(eq, "nic", 1000.0, secondsToTicks(0.1));
    const Tick done = link.transfer(500.0);
    EXPECT_EQ(done, secondsToTicks(0.6));
}

TEST(LinkModel, BackToBackTransfersQueueOnBandwidthOnly)
{
    EventQueue eq;
    LinkModel link(eq, "nic", 1000.0, secondsToTicks(0.1));
    const Tick a = link.transfer(1000.0);
    const Tick b = link.transfer(1000.0);
    // Serialization queues; latency overlaps (pipelined wire).
    EXPECT_EQ(a, secondsToTicks(1.1));
    EXPECT_EQ(b, secondsToTicks(2.1));
}

TEST(Determinism, SameScheduleSameExecution)
{
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 50; ++i)
            eq.schedule(static_cast<Tick>((i * 37) % 17),
                        [&order, i] { order.push_back(i); });
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace recsim::des
