/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * cancellation, and the Resource / LinkModel primitives — plus
 * end-to-end determinism of the full distributed-training simulation
 * (same config + seed must be bit-identical, different seeds must
 * diverge once service noise is on).
 */
#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.h"
#include "des/sim_object.h"
#include "sim/dist_sim.h"
#include "util/random.h"

namespace recsim::des {
namespace {

TEST(Ticks, SecondConversionsRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSecond);
    EXPECT_EQ(secondsToTicks(1.5e-6), 1500u);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSecond), 1.0);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TieBreaksByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); }, 5);
    eq.schedule(10, [&] { order.push_back(2); }, 0);
    eq.schedule(10, [&] { order.push_back(3); }, 5);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        eq.scheduleAfter(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    int fired = 0;
    const auto id = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    const auto executed = eq.run(50);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PendingCountTracksScheduleAndRun)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.step();
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.eventsExecuted(), 2u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(Resource, ServesFifoAtConfiguredRate)
{
    EventQueue eq;
    Resource res(eq, "mem", 100.0);  // 100 units/s
    const Tick first = res.acquire(50.0);   // 0.5 s
    const Tick second = res.acquire(25.0);  // queues behind first
    EXPECT_EQ(first, secondsToTicks(0.5));
    EXPECT_EQ(second, secondsToTicks(0.75));
    EXPECT_DOUBLE_EQ(res.busySeconds(), 0.75);
}

TEST(Resource, AcquireAtWaitsForEarliest)
{
    EventQueue eq;
    Resource res(eq, "cpu", 1.0);
    const Tick done = res.acquireAt(secondsToTicks(2.0), 1.0);
    EXPECT_EQ(done, secondsToTicks(3.0));
    // Idle gap [0, 2) does not count as busy.
    EXPECT_DOUBLE_EQ(res.busySeconds(), 1.0);
}

TEST(Resource, UtilizationOverWindow)
{
    EventQueue eq;
    Resource res(eq, "cpu", 1.0);
    res.acquire(1.0);
    EXPECT_NEAR(res.utilization(secondsToTicks(2.0)), 0.5, 1e-9);
    EXPECT_NEAR(res.utilization(secondsToTicks(1.0)), 1.0, 1e-9);
}

TEST(ResourceDeath, NonPositiveRatePanics)
{
    EventQueue eq;
    EXPECT_DEATH(Resource(eq, "bad", 0.0), "positive rate");
}

TEST(LinkModel, TransferAddsLatency)
{
    EventQueue eq;
    LinkModel link(eq, "nic", 1000.0, secondsToTicks(0.1));
    const Tick done = link.transfer(500.0);
    EXPECT_EQ(done, secondsToTicks(0.6));
}

TEST(LinkModel, BackToBackTransfersQueueOnBandwidthOnly)
{
    EventQueue eq;
    LinkModel link(eq, "nic", 1000.0, secondsToTicks(0.1));
    const Tick a = link.transfer(1000.0);
    const Tick b = link.transfer(1000.0);
    // Serialization queues; latency overlaps (pipelined wire).
    EXPECT_EQ(a, secondsToTicks(1.1));
    EXPECT_EQ(b, secondsToTicks(2.1));
}

TEST(Determinism, SameScheduleSameExecution)
{
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 50; ++i)
            eq.schedule(static_cast<Tick>((i * 37) % 17),
                        [&order, i] { order.push_back(i); });
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, SeededRandomScheduleIsReproducible)
{
    // A schedule drawn from a seeded stream — including time ties —
    // must execute identically on every run.
    auto run_once = [](uint64_t seed) {
        util::Rng rng(seed);
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 200; ++i) {
            const Tick when = rng.uniformInt(20);
            const int priority = static_cast<int>(rng.uniformInt(4));
            eq.schedule(when, [&order, i] { order.push_back(i); },
                        priority);
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

// ---------------------------------------------------------------------
// Full-simulation determinism (sim::DistSim on the DES kernel)
// ---------------------------------------------------------------------

sim::DistSimConfig
smallCpuSim(uint64_t seed)
{
    sim::DistSimConfig cfg;
    cfg.model =
        model::DlrmConfig::testSuite(64, 8, 100000, 128, 2, 4.0, 16);
    cfg.system = cost::SystemConfig::cpuSetup(2, 1, 1, 512, 2);
    cfg.measure_seconds = 0.05;
    cfg.warmup_iterations = 2;
    cfg.service_noise_sigma = 0.25;  // noise on: determinism is earned
    cfg.seed = seed;
    return cfg;
}

TEST(DistSimDeterminism, SameConfigSameSeedIsBitIdentical)
{
    const auto a = sim::runDistSim(smallCpuSim(5));
    const auto b = sim::runDistSim(smallCpuSim(5));
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_GT(a.iterations, 0u);

    // Bit-identical, not approximately equal: the DES executes the
    // same event sequence, so every derived number matches exactly.
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.mean_iteration_seconds, b.mean_iteration_seconds);
    ASSERT_EQ(a.utilization.size(), b.utilization.size());
    for (const auto& [name, value] : a.utilization) {
        const auto it = b.utilization.find(name);
        ASSERT_NE(it, b.utilization.end()) << name;
        EXPECT_EQ(value, it->second) << name;
    }
}

TEST(DistSimDeterminism, DifferentSeedDiverges)
{
    const auto a = sim::runDistSim(smallCpuSim(5));
    const auto b = sim::runDistSim(smallCpuSim(6));
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    // With lognormal service noise the sampled demands differ, so the
    // measured outcome cannot coincide across seeds.
    EXPECT_FALSE(a.throughput == b.throughput &&
                 a.mean_iteration_seconds == b.mean_iteration_seconds);
}

TEST(DistSimDeterminism, NoiselessRunIgnoresSeed)
{
    auto cfg_a = smallCpuSim(5);
    auto cfg_b = smallCpuSim(9);
    cfg_a.service_noise_sigma = 0.0;
    cfg_b.service_noise_sigma = 0.0;
    const auto a = sim::runDistSim(cfg_a);
    const auto b = sim::runDistSim(cfg_b);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.iterations, b.iterations);
}

} // namespace
} // namespace recsim::des
