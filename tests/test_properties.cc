/**
 * @file
 * Cross-cutting property tests: invariants that must hold across the
 * whole configuration grid rather than at hand-picked points —
 * feasibility monotonicity, throughput scaling directions, utilization
 * sanity, placement-plan conservation laws, and estimator determinism.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cost/iteration_model.h"
#include "model/config.h"
#include "placement/placement.h"
#include "util/random.h"

namespace recsim {
namespace {

using placement::EmbeddingPlacement;

/** A small randomized-but-seeded family of model configs. */
std::vector<model::DlrmConfig>
configFamily()
{
    std::vector<model::DlrmConfig> configs;
    util::Rng rng(2026);
    for (int i = 0; i < 12; ++i) {
        const std::size_t dense = 64 << rng.uniformInt(5);    // 64..1024
        const std::size_t sparse = 4 << rng.uniformInt(5);    // 4..64
        const uint64_t hash = 10000ULL << rng.uniformInt(7);  // 10k..640k
        configs.push_back(model::DlrmConfig::testSuite(
            dense, sparse, hash, 256 << rng.uniformInt(2),
            2 + rng.uniformInt(2)));
    }
    configs.push_back(model::DlrmConfig::m1Prod());
    configs.push_back(model::DlrmConfig::m2Prod());
    return configs;
}

TEST(Properties, EstimatesAreDeterministic)
{
    for (const auto& m : configFamily()) {
        const auto sys = cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1);
        const auto a = cost::IterationModel(m, sys).estimate();
        const auto b = cost::IterationModel(m, sys).estimate();
        EXPECT_DOUBLE_EQ(a.throughput, b.throughput) << m.name;
        EXPECT_EQ(a.bottleneck, b.bottleneck) << m.name;
    }
}

TEST(Properties, ThroughputFiniteAndPositiveWhenFeasible)
{
    for (const auto& m : configFamily()) {
        for (const auto& sys :
             {cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::GpuMemory, 1600),
              cost::SystemConfig::zionSetup(
                  EmbeddingPlacement::HostMemory, 1600)}) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            EXPECT_TRUE(std::isfinite(est.throughput)) << m.name;
            EXPECT_GT(est.throughput, 0.0) << m.name;
            EXPECT_TRUE(std::isfinite(est.iteration_seconds));
            EXPECT_GT(est.iteration_seconds, 0.0);
            EXPECT_GT(est.power_watts, 0.0);
        }
    }
}

TEST(Properties, UtilizationsAlwaysInUnitInterval)
{
    for (const auto& m : configFamily()) {
        for (const auto& sys :
             {cost::SystemConfig::cpuSetup(4, 4, 2, 400, 2),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::HostMemory, 800),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::RemotePs, 800, 4)}) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            for (const auto& [name, util] : est.util.asList()) {
                EXPECT_GE(util, 0.0) << m.name << " " << name;
                EXPECT_LE(util, 1.0) << m.name << " " << name;
            }
        }
    }
}

TEST(Properties, BiggerBatchNeverReducesGpuThroughputBelowHalf)
{
    // GPU throughput is monotone-ish in batch: allow small dips but
    // never a collapse (the curve saturates, it does not fall).
    for (const auto& m : configFamily()) {
        double prev = 0.0;
        for (std::size_t batch : {200, 800, 3200}) {
            const auto est = cost::IterationModel(
                m, cost::SystemConfig::bigBasinSetup(
                       EmbeddingPlacement::GpuMemory, batch)).estimate();
            if (!est.feasible)
                break;
            if (prev > 0.0) {
                EXPECT_GT(est.throughput, prev * 0.5) << m.name;
            }
            prev = est.throughput;
        }
    }
}

TEST(Properties, MoreSparsePsNeverHurts)
{
    for (const auto& m : configFamily()) {
        const double few = cost::IterationModel(
            m, cost::SystemConfig::cpuSetup(8, 2, 1, 200, 1))
            .estimate().throughput;
        const double many = cost::IterationModel(
            m, cost::SystemConfig::cpuSetup(8, 8, 1, 200, 1))
            .estimate().throughput;
        EXPECT_GE(many, few * 0.999) << m.name;
    }
}

TEST(Properties, FeasibilityMonotoneInCapacity)
{
    // If a model fits on the 16 GB SKU it must fit on the 32 GB SKU.
    for (const auto& m : configFamily()) {
        const bool small = placement::planPlacement(
            EmbeddingPlacement::GpuMemory, m,
            hw::Platform::bigBasin(16.0)).feasible;
        const bool large = placement::planPlacement(
            EmbeddingPlacement::GpuMemory, m,
            hw::Platform::bigBasin(32.0)).feasible;
        if (small) {
            EXPECT_TRUE(large) << m.name;
        }
    }
}

TEST(Properties, PlacementPlansConserveBytes)
{
    // Sharded plans must hold exactly the model's (overheaded) bytes.
    for (const auto& m : configFamily()) {
        placement::PlacementOptions options;
        options.num_sparse_ps = 8;
        for (auto strategy : {EmbeddingPlacement::GpuMemory,
                              EmbeddingPlacement::HostMemory,
                              EmbeddingPlacement::RemotePs}) {
            const auto plan = placement::planPlacement(
                strategy, m, hw::Platform::bigBasin(32.0), options);
            if (!plan.feasible || plan.replicated)
                continue;
            double placed = 0.0;
            for (double b : plan.partition.shard_bytes)
                placed += b;
            EXPECT_NEAR(placed,
                        m.embeddingBytes() *
                            options.memory_overhead_factor,
                        placed * 1e-9 + 1.0)
                << m.name << " "
                << placement::toString(strategy);
        }
    }
}

TEST(Properties, BottleneckNameIsAlwaysKnown)
{
    const std::vector<std::string> known = {
        "trainer_compute", "trainer_network", "sparse_ps", "dense_ps",
        "reader", "mlp_compute", "kernel_dispatch", "emb_gather_gpu",
        "emb_alltoall", "emb_gather_host", "emb_pcie", "emb_remote",
        "dense_allreduce", "input_pipeline",
    };
    for (const auto& m : configFamily()) {
        for (const auto& sys :
             {cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::GpuMemory, 1600)}) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            EXPECT_NE(std::find(known.begin(), known.end(),
                                est.bottleneck),
                      known.end())
                << m.name << ": " << est.bottleneck;
        }
    }
}

TEST(Properties, CompressionMonotoneInBytesPerElement)
{
    for (const auto& m : configFamily()) {
        double prev = 0.0;
        for (double bpe : {4.0, 2.0, 1.0}) {
            auto sys = cost::SystemConfig::bigBasinSetup(
                EmbeddingPlacement::GpuMemory, 1600);
            sys.emb_bytes_per_element = bpe;
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            if (prev > 0.0) {
                EXPECT_GE(est.throughput, prev * 0.999) << m.name;
            }
            prev = est.throughput;
        }
    }
}

TEST(Properties, FootprintAdditivity)
{
    // Doubling the sparse features doubles lookup traffic exactly.
    const auto one = model::DlrmConfig::testSuite(64, 16, 100000);
    const auto two = model::DlrmConfig::testSuite(64, 32, 100000);
    EXPECT_NEAR(two.footprint().embedding_bytes,
                2.0 * one.footprint().embedding_bytes, 1e-6);
    EXPECT_NEAR(two.footprint().pooled_bytes,
                2.0 * one.footprint().pooled_bytes, 1e-6);
    EXPECT_NEAR(two.footprint().embedding_lookups,
                2.0 * one.footprint().embedding_lookups, 1e-9);
}

TEST(Properties, PowerAdditivity)
{
    const auto a = cost::SystemConfig::cpuSetup(3, 2, 1);
    const auto b = cost::SystemConfig::cpuSetup(6, 4, 2);
    EXPECT_NEAR(2.0 * a.totalPowerWatts(), b.totalPowerWatts(), 1e-9);
}

} // namespace
} // namespace recsim
