/**
 * @file
 * Cross-cutting property tests: invariants that must hold across the
 * whole configuration grid rather than at hand-picked points —
 * feasibility monotonicity, throughput scaling directions, utilization
 * sanity, placement-plan conservation laws, and estimator determinism.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cost/iteration_model.h"
#include "model/config.h"
#include "placement/placement.h"
#include "util/random.h"

namespace recsim {
namespace {

using placement::EmbeddingPlacement;

/** A small randomized-but-seeded family of model configs. */
std::vector<model::DlrmConfig>
configFamily()
{
    std::vector<model::DlrmConfig> configs;
    util::Rng rng(2026);
    for (int i = 0; i < 12; ++i) {
        const std::size_t dense = 64 << rng.uniformInt(5);    // 64..1024
        const std::size_t sparse = 4 << rng.uniformInt(5);    // 4..64
        const uint64_t hash = 10000ULL << rng.uniformInt(7);  // 10k..640k
        configs.push_back(model::DlrmConfig::testSuite(
            dense, sparse, hash, 256 << rng.uniformInt(2),
            2 + rng.uniformInt(2)));
    }
    configs.push_back(model::DlrmConfig::m1Prod());
    configs.push_back(model::DlrmConfig::m2Prod());
    return configs;
}

TEST(Properties, EstimatesAreDeterministic)
{
    for (const auto& m : configFamily()) {
        const auto sys = cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1);
        const auto a = cost::IterationModel(m, sys).estimate();
        const auto b = cost::IterationModel(m, sys).estimate();
        EXPECT_DOUBLE_EQ(a.throughput, b.throughput) << m.name;
        EXPECT_EQ(a.bottleneck, b.bottleneck) << m.name;
    }
}

TEST(Properties, ThroughputFiniteAndPositiveWhenFeasible)
{
    for (const auto& m : configFamily()) {
        for (const auto& sys :
             {cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::GpuMemory, 1600),
              cost::SystemConfig::zionSetup(
                  EmbeddingPlacement::HostMemory, 1600)}) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            EXPECT_TRUE(std::isfinite(est.throughput)) << m.name;
            EXPECT_GT(est.throughput, 0.0) << m.name;
            EXPECT_TRUE(std::isfinite(est.iteration_seconds));
            EXPECT_GT(est.iteration_seconds, 0.0);
            EXPECT_GT(est.power_watts, 0.0);
        }
    }
}

TEST(Properties, UtilizationsAlwaysInUnitInterval)
{
    for (const auto& m : configFamily()) {
        for (const auto& sys :
             {cost::SystemConfig::cpuSetup(4, 4, 2, 400, 2),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::HostMemory, 800),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::RemotePs, 800, 4)}) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            for (const auto& [name, util] : est.util.asList()) {
                EXPECT_GE(util, 0.0) << m.name << " " << name;
                EXPECT_LE(util, 1.0) << m.name << " " << name;
            }
        }
    }
}

TEST(Properties, BiggerBatchNeverReducesGpuThroughputBelowHalf)
{
    // GPU throughput is monotone-ish in batch: allow small dips but
    // never a collapse (the curve saturates, it does not fall).
    for (const auto& m : configFamily()) {
        double prev = 0.0;
        for (std::size_t batch : {200, 800, 3200}) {
            const auto est = cost::IterationModel(
                m, cost::SystemConfig::bigBasinSetup(
                       EmbeddingPlacement::GpuMemory, batch)).estimate();
            if (!est.feasible)
                break;
            if (prev > 0.0) {
                EXPECT_GT(est.throughput, prev * 0.5) << m.name;
            }
            prev = est.throughput;
        }
    }
}

TEST(Properties, MoreSparsePsNeverHurts)
{
    for (const auto& m : configFamily()) {
        const double few = cost::IterationModel(
            m, cost::SystemConfig::cpuSetup(8, 2, 1, 200, 1))
            .estimate().throughput;
        const double many = cost::IterationModel(
            m, cost::SystemConfig::cpuSetup(8, 8, 1, 200, 1))
            .estimate().throughput;
        EXPECT_GE(many, few * 0.999) << m.name;
    }
}

TEST(Properties, FeasibilityMonotoneInCapacity)
{
    // If a model fits on the 16 GB SKU it must fit on the 32 GB SKU.
    for (const auto& m : configFamily()) {
        const bool small = placement::planPlacement(
            EmbeddingPlacement::GpuMemory, m,
            hw::Platform::bigBasin(16.0)).feasible;
        const bool large = placement::planPlacement(
            EmbeddingPlacement::GpuMemory, m,
            hw::Platform::bigBasin(32.0)).feasible;
        if (small) {
            EXPECT_TRUE(large) << m.name;
        }
    }
}

TEST(Properties, PlacementPlansConserveBytes)
{
    // Sharded plans must hold exactly the model's (overheaded) bytes.
    for (const auto& m : configFamily()) {
        placement::PlacementOptions options;
        options.num_sparse_ps = 8;
        for (auto strategy : {EmbeddingPlacement::GpuMemory,
                              EmbeddingPlacement::HostMemory,
                              EmbeddingPlacement::RemotePs}) {
            const auto plan = placement::planPlacement(
                strategy, m, hw::Platform::bigBasin(32.0), options);
            if (!plan.feasible || plan.replicated)
                continue;
            double placed = 0.0;
            for (double b : plan.partition.shard_bytes)
                placed += b;
            EXPECT_NEAR(placed,
                        m.embeddingBytes() *
                            options.memory_overhead_factor,
                        placed * 1e-9 + 1.0)
                << m.name << " "
                << placement::toString(strategy);
        }
    }
}

TEST(Properties, BottleneckNameIsAlwaysKnown)
{
    const std::vector<std::string> known = {
        "trainer_compute", "trainer_network", "sparse_ps", "dense_ps",
        "reader", "mlp_compute", "kernel_dispatch", "emb_gather_gpu",
        "emb_alltoall", "emb_gather_host", "emb_pcie", "emb_remote",
        "dense_allreduce", "input_pipeline",
    };
    for (const auto& m : configFamily()) {
        for (const auto& sys :
             {cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::GpuMemory, 1600)}) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            EXPECT_NE(std::find(known.begin(), known.end(),
                                est.bottleneck),
                      known.end())
                << m.name << ": " << est.bottleneck;
        }
    }
}

TEST(Properties, CompressionMonotoneInBytesPerElement)
{
    for (const auto& m : configFamily()) {
        double prev = 0.0;
        for (double bpe : {4.0, 2.0, 1.0}) {
            auto sys = cost::SystemConfig::bigBasinSetup(
                EmbeddingPlacement::GpuMemory, 1600);
            sys.emb_bytes_per_element = bpe;
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            if (prev > 0.0) {
                EXPECT_GE(est.throughput, prev * 0.999) << m.name;
            }
            prev = est.throughput;
        }
    }
}

TEST(Properties, FootprintAdditivity)
{
    // Doubling the sparse features doubles lookup traffic exactly.
    const auto one = model::DlrmConfig::testSuite(64, 16, 100000);
    const auto two = model::DlrmConfig::testSuite(64, 32, 100000);
    EXPECT_NEAR(two.footprint().embedding_bytes,
                2.0 * one.footprint().embedding_bytes, 1e-6);
    EXPECT_NEAR(two.footprint().pooled_bytes,
                2.0 * one.footprint().pooled_bytes, 1e-6);
    EXPECT_NEAR(two.footprint().embedding_lookups,
                2.0 * one.footprint().embedding_lookups, 1e-9);
}

TEST(Properties, PowerAdditivity)
{
    const auto a = cost::SystemConfig::cpuSetup(3, 2, 1);
    const auto b = cost::SystemConfig::cpuSetup(6, 4, 2);
    EXPECT_NEAR(2.0 * a.totalPowerWatts(), b.totalPowerWatts(), 1e-9);
}

namespace {

double
phase(const cost::IterationEstimate& est, const std::string& name)
{
    for (const auto& p : est.breakdown) {
        if (p.name == name)
            return p.seconds;
    }
    ADD_FAILURE() << "missing phase " << name;
    return 0.0;
}

} // namespace

// The phases of `breakdown` account for iteration_seconds under the
// bottleneck rule documented on IterationEstimate; 1e-12 relative
// covers floating-point re-association only.
TEST(Properties, PhaseTimesComposeToIterationTime)
{
    const double rel = 1e-12;
    for (const auto& m : configFamily()) {
        // CPU trainers: compute pipelines against communication.
        const auto cpu_sys = cost::SystemConfig::cpuSetup(2, 2, 1, 200, 2);
        const auto cpu = cost::IterationModel(m, cpu_sys).estimate();
        if (cpu.feasible) {
            const double local = phase(cpu, "mlp_compute") +
                phase(cpu, "lookup_overhead") +
                phase(cpu, "framework_overhead");
            const double expected =
                std::max(local, phase(cpu, "trainer_network"));
            EXPECT_NEAR(cpu.iteration_seconds, expected,
                        rel * expected) << m.name;
        }

        // GPU servers: local phases serialize; the remote phase
        // overlaps them only when Hogwild workers pipeline batches.
        for (const auto placement :
             {EmbeddingPlacement::GpuMemory,
              EmbeddingPlacement::HostMemory,
              EmbeddingPlacement::RemotePs}) {
            for (const std::size_t hogwild : {1u, 3u}) {
                auto sys = cost::SystemConfig::bigBasinSetup(
                    placement, 800,
                    placement == EmbeddingPlacement::RemotePs ? 4 : 0);
                sys.hogwild_threads = hogwild;
                const auto est = cost::IterationModel(m, sys).estimate();
                if (!est.feasible)
                    continue;
                const double remote = phase(est, "emb_remote");
                double local = 0.0;
                for (const auto& p : est.breakdown) {
                    if (p.name != "emb_remote")
                        local += p.seconds;
                }
                const double expected = hogwild >= 2 && remote > 0.0
                    ? std::max(local, remote)
                    : local + remote;
                EXPECT_NEAR(est.iteration_seconds, expected,
                            rel * expected)
                    << m.name << " " << placement::toString(placement)
                    << " hogwild" << hogwild;
            }
        }
    }
}

// The per-node attribution refines the phase breakdown: on the CPU
// path the compute phases are exactly the sums of their nodes; on the
// GPU path every phase is distributed across its nodes.
TEST(Properties, NodeBreakdownSumsMatchPhases)
{
    for (const auto& m : configFamily()) {
        const auto cpu_sys = cost::SystemConfig::cpuSetup(2, 2, 1, 200, 1);
        const cost::IterationModel cpu_model(m, cpu_sys);
        const auto est = cpu_model.estimate();
        if (!est.feasible)
            continue;
        const auto nodes = cpu_model.nodeBreakdown();
        ASSERT_FALSE(nodes.empty()) << m.name;
        const auto& g = cpu_model.stepGraph();
        double gemm_seconds = 0.0;
        double lookup_seconds = 0.0;
        for (const auto& nt : nodes) {
            const auto* node = g.find(nt.node_id);
            ASSERT_NE(node, nullptr) << nt.node_id;
            EXPECT_GE(nt.seconds, 0.0) << nt.node_id;
            if (node->kind == graph::NodeKind::Gemm ||
                node->kind == graph::NodeKind::Interaction)
                gemm_seconds += nt.seconds;
            if (node->kind == graph::NodeKind::EmbeddingLookup)
                lookup_seconds += nt.seconds;
        }
        const double mlp_phase = phase(est, "mlp_compute");
        const double lookup_phase = phase(est, "lookup_overhead");
        EXPECT_NEAR(gemm_seconds, mlp_phase, 1e-9 * mlp_phase) << m.name;
        EXPECT_NEAR(lookup_seconds, lookup_phase,
                    1e-9 * std::max(lookup_phase, 1e-300)) << m.name;
    }
}

// The critical path through the dep edges can never exceed the serial
// node sum, and their ratio — overlap_efficiency — is a proper
// fraction: (0, 1] everywhere, and strictly below 1 wherever the
// placement gives the graph concurrent branches (sharded PS legs
// overlapping the bottom MLP).
TEST(Properties, CriticalPathBoundedBySerialSum)
{
    for (const auto& m : configFamily()) {
        for (const auto& sys :
             {cost::SystemConfig::cpuSetup(2, 4, 1, 200, 1),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::GpuMemory, 1600),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::RemotePs, 1600, 4)}) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                continue;
            EXPECT_GT(est.serial_sum_seconds, 0.0) << m.name;
            EXPECT_GT(est.critical_path_seconds, 0.0) << m.name;
            EXPECT_LE(est.critical_path_seconds,
                      est.serial_sum_seconds * (1.0 + 1e-12))
                << m.name;
            EXPECT_GT(est.overlap_efficiency, 0.0) << m.name;
            EXPECT_LE(est.overlap_efficiency, 1.0 + 1e-12) << m.name;
        }
    }
}

TEST(Properties, ShardedCpuPlacementOverlapsStrictly)
{
    // Multi-shard PS legs run concurrently with each other and with
    // the bottom MLP, so the critical path must be strictly shorter
    // than executing the nodes back to back.
    for (const auto& m : configFamily()) {
        const auto est = cost::IterationModel(
            m, cost::SystemConfig::cpuSetup(2, 4, 1, 200, 1))
            .estimate();
        if (!est.feasible)
            continue;
        EXPECT_LT(est.overlap_efficiency, 1.0) << m.name;
    }
}

} // namespace
} // namespace recsim
