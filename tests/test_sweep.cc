/**
 * @file
 * Direct unit tests for train/sweep.cc: the learning-rate retuning
 * protocol behind Fig 15 (train once per candidate, pick the lowest
 * held-out normalized entropy).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/dataset.h"
#include "model/config.h"
#include "train/sweep.h"

namespace recsim {
namespace {

model::DlrmConfig
tinyModel()
{
    return model::DlrmConfig::tinyReplica(4, 8, 500, 8);
}

data::DatasetConfig
tinyDataConfig()
{
    const auto m = tinyModel();
    data::DatasetConfig cfg;
    cfg.num_dense = m.num_dense;
    cfg.sparse = m.sparse;
    cfg.seed = 31;
    return cfg;
}

train::TrainConfig
tinyTrainConfig()
{
    train::TrainConfig cfg;
    cfg.batch_size = 64;
    cfg.epochs = 1;
    return cfg;
}

TEST(Sweep, DefaultLrGridIsPositiveAndAscending)
{
    const auto grid = train::defaultLrGrid();
    ASSERT_FALSE(grid.empty());
    EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
    for (float lr : grid)
        EXPECT_GT(lr, 0.0f);
    // The documented log-spaced grid covering SGD and Adagrad.
    const std::vector<float> expected = {0.01f, 0.02f, 0.05f,
                                         0.1f,  0.2f,  0.5f};
    EXPECT_EQ(grid, expected);
}

TEST(Sweep, TrainsOncePerCandidateAndPreservesOrder)
{
    data::SyntheticCtrDataset ds(tinyDataConfig());
    ds.materialize(512 + 256);
    const std::vector<float> candidates = {0.02f, 0.1f, 0.3f};
    const auto sweep = train::sweepLearningRate(
        tinyModel(), ds, tinyTrainConfig(), candidates, 256);

    ASSERT_EQ(sweep.points.size(), candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        EXPECT_FLOAT_EQ(sweep.points[i].learning_rate, candidates[i]);
        // Every point ran the full schedule of the base config.
        EXPECT_EQ(sweep.points[i].result.steps, 512u / 64u);
        EXPECT_TRUE(std::isfinite(sweep.points[i].result.eval_ne));
    }
}

TEST(Sweep, BestIndexIsArgminOfEvalNe)
{
    data::SyntheticCtrDataset ds(tinyDataConfig());
    ds.materialize(512 + 256);
    const auto sweep = train::sweepLearningRate(
        tinyModel(), ds, tinyTrainConfig(), {0.001f, 0.05f, 0.2f}, 256);

    ASSERT_LT(sweep.best_index, sweep.points.size());
    for (const auto& point : sweep.points) {
        EXPECT_LE(sweep.best().result.eval_ne, point.result.eval_ne);
    }
    // best() is the indexed point, not a copy with drifted fields.
    EXPECT_FLOAT_EQ(sweep.best().learning_rate,
                    sweep.points[sweep.best_index].learning_rate);
}

TEST(Sweep, SingleCandidateIsAlwaysBest)
{
    data::SyntheticCtrDataset ds(tinyDataConfig());
    ds.materialize(256 + 128);
    train::TrainConfig cfg = tinyTrainConfig();
    cfg.batch_size = 32;
    const auto sweep = train::sweepLearningRate(tinyModel(), ds, cfg,
                                                {0.1f}, 128);
    ASSERT_EQ(sweep.points.size(), 1u);
    EXPECT_EQ(sweep.best_index, 0u);
    EXPECT_FLOAT_EQ(sweep.best().learning_rate, 0.1f);
}

TEST(Sweep, IsDeterministicForIdenticalInputs)
{
    data::SyntheticCtrDataset ds(tinyDataConfig());
    ds.materialize(256 + 128);
    train::TrainConfig cfg = tinyTrainConfig();
    cfg.batch_size = 32;
    const auto a = train::sweepLearningRate(tinyModel(), ds, cfg,
                                            {0.05f, 0.2f}, 128);
    const auto b = train::sweepLearningRate(tinyModel(), ds, cfg,
                                            {0.05f, 0.2f}, 128);
    ASSERT_EQ(a.points.size(), b.points.size());
    EXPECT_EQ(a.best_index, b.best_index);
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.points[i].result.eval_ne,
                         b.points[i].result.eval_ne);
        EXPECT_DOUBLE_EQ(a.points[i].result.final_train_loss,
                         b.points[i].result.final_train_loss);
    }
}

} // namespace
} // namespace recsim
