/**
 * @file
 * Unit tests for recsim::data: table-population generation (Fig 6
 * targets), synthetic CTR dataset determinism and structure, teacher
 * labeling.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/spec.h"
#include "data/teacher.h"
#include "stats/sample_set.h"
#include "util/random.h"

namespace recsim::data {
namespace {

TablePopulationParams
m1LikeParams()
{
    TablePopulationParams params;
    params.num_tables = 30;
    params.mean_hash_size = 5.7e6;
    params.mean_length = 28.0;
    return params;
}

TEST(SparseFeatureSpec, EffectiveMeanLengthTruncates)
{
    SparseFeatureSpec spec;
    spec.mean_length = 50.0;
    spec.truncation = 32;
    EXPECT_DOUBLE_EQ(spec.effectiveMeanLength(), 32.0);
    spec.truncation = 0;
    EXPECT_DOUBLE_EQ(spec.effectiveMeanLength(), 50.0);
}

TEST(SparseFeatureSpec, RawSpaceDefaultsToFourTimesHash)
{
    SparseFeatureSpec spec;
    spec.hash_size = 100;
    EXPECT_EQ(spec.rawSpace(), 400u);
    spec.raw_id_space = 1000;
    EXPECT_EQ(spec.rawSpace(), 1000u);
}

TEST(TablePopulation, HitsTargetMeans)
{
    util::Rng rng(1);
    const auto specs = generateTablePopulation(m1LikeParams(), rng);
    ASSERT_EQ(specs.size(), 30u);
    EXPECT_NEAR(meanHashSize(specs), 5.7e6, 5.7e6 * 0.05);
    EXPECT_NEAR(meanFeatureLength(specs), 28.0, 28.0 * 0.05);
}

TEST(TablePopulation, RespectsClipBounds)
{
    util::Rng rng(2);
    auto params = m1LikeParams();
    params.num_tables = 200;
    const auto specs = generateTablePopulation(params, rng);
    for (const auto& s : specs) {
        EXPECT_GE(s.hash_size, params.min_hash);
        EXPECT_LE(s.hash_size, params.max_hash);
        EXPECT_GE(s.mean_length, params.min_length);
        EXPECT_LE(s.mean_length, params.max_length);
    }
}

TEST(TablePopulation, HashSizesAreDiverse)
{
    util::Rng rng(3);
    auto params = m1LikeParams();
    params.num_tables = 100;
    const auto specs = generateTablePopulation(params, rng);
    std::set<uint64_t> distinct;
    uint64_t lo = params.max_hash, hi = 0;
    for (const auto& s : specs) {
        distinct.insert(s.hash_size);
        lo = std::min(lo, s.hash_size);
        hi = std::max(hi, s.hash_size);
    }
    EXPECT_GT(distinct.size(), 50u);
    // Fig 6: hash sizes span orders of magnitude.
    EXPECT_GT(static_cast<double>(hi) / static_cast<double>(lo), 100.0);
}

TEST(TablePopulation, CorrelationSignRespected)
{
    util::Rng rng(4);
    auto params = m1LikeParams();
    params.num_tables = 400;
    params.hash_length_correlation = -0.6;
    const auto specs = generateTablePopulation(params, rng);
    std::vector<double> hashes, lengths;
    for (const auto& s : specs) {
        hashes.push_back(std::log(static_cast<double>(s.hash_size)));
        lengths.push_back(std::log(s.mean_length));
    }
    EXPECT_LT(stats::spearman(hashes, lengths), -0.2);
}

TEST(TablePopulation, DeterministicForSeed)
{
    util::Rng a(5), b(5);
    const auto s1 = generateTablePopulation(m1LikeParams(), a);
    const auto s2 = generateTablePopulation(m1LikeParams(), b);
    ASSERT_EQ(s1.size(), s2.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1[i].hash_size, s2[i].hash_size);
        EXPECT_DOUBLE_EQ(s1[i].mean_length, s2[i].mean_length);
    }
}

TEST(TablePopulation, TotalBytesFormula)
{
    std::vector<SparseFeatureSpec> specs(2);
    specs[0].hash_size = 100;
    specs[1].hash_size = 300;
    EXPECT_DOUBLE_EQ(totalEmbeddingBytes(specs, 64), 400.0 * 64 * 4);
}

DatasetConfig
smallConfig(uint64_t seed = 42)
{
    DatasetConfig cfg;
    cfg.num_dense = 8;
    cfg.seed = seed;
    for (int i = 0; i < 3; ++i) {
        SparseFeatureSpec spec;
        spec.name = "f" + std::to_string(i);
        spec.hash_size = 50;
        spec.mean_length = 4.0;
        spec.truncation = 8;
        cfg.sparse.push_back(spec);
    }
    return cfg;
}

TEST(Dataset, BatchShapesConsistent)
{
    SyntheticCtrDataset ds(smallConfig());
    const MiniBatch batch = ds.nextBatch(16);
    EXPECT_EQ(batch.batchSize(), 16u);
    EXPECT_EQ(batch.dense.rows(), 16u);
    EXPECT_EQ(batch.dense.cols(), 8u);
    ASSERT_EQ(batch.sparse.size(), 3u);
    for (const auto& sb : batch.sparse) {
        ASSERT_EQ(sb.offsets.size(), 17u);
        EXPECT_EQ(sb.offsets.front(), 0u);
        EXPECT_EQ(sb.offsets.back(), sb.indices.size());
        for (std::size_t i = 1; i < sb.offsets.size(); ++i)
            EXPECT_LE(sb.offsets[i - 1], sb.offsets[i]);
    }
    EXPECT_GT(batch.totalLookups(), 0u);
}

TEST(Dataset, LabelsAreBinary)
{
    SyntheticCtrDataset ds(smallConfig());
    const MiniBatch batch = ds.nextBatch(64);
    for (float label : batch.labels)
        EXPECT_TRUE(label == 0.0f || label == 1.0f);
}

TEST(Dataset, TruncationRespected)
{
    auto cfg = smallConfig();
    cfg.sparse[0].mean_length = 30.0;
    cfg.sparse[0].truncation = 5;
    SyntheticCtrDataset ds(cfg);
    const MiniBatch batch = ds.nextBatch(64);
    const auto& sb = batch.sparse[0];
    for (std::size_t i = 1; i < sb.offsets.size(); ++i)
        EXPECT_LE(sb.offsets[i] - sb.offsets[i - 1], 5u);
}

TEST(Dataset, MeanLengthApproximatelyHonored)
{
    auto cfg = smallConfig();
    cfg.sparse[1].mean_length = 6.0;
    cfg.sparse[1].truncation = 0;
    SyntheticCtrDataset ds(cfg);
    const MiniBatch batch = ds.nextBatch(2000);
    const auto& sb = batch.sparse[1];
    const double mean = static_cast<double>(sb.indices.size()) / 2000.0;
    EXPECT_NEAR(mean, 6.0, 0.5);
}

TEST(Dataset, DeterministicForSeed)
{
    SyntheticCtrDataset a(smallConfig(7));
    SyntheticCtrDataset b(smallConfig(7));
    const MiniBatch ba = a.nextBatch(8);
    const MiniBatch bb = b.nextBatch(8);
    EXPECT_EQ(ba.labels, bb.labels);
    EXPECT_EQ(ba.sparse[0].indices, bb.sparse[0].indices);
    for (std::size_t i = 0; i < ba.dense.size(); ++i)
        EXPECT_EQ(ba.dense.data()[i], bb.dense.data()[i]);
}

TEST(Dataset, DifferentSeedsDiffer)
{
    SyntheticCtrDataset a(smallConfig(7));
    SyntheticCtrDataset b(smallConfig(8));
    const MiniBatch ba = a.nextBatch(32);
    const MiniBatch bb = b.nextBatch(32);
    EXPECT_NE(ba.sparse[0].indices, bb.sparse[0].indices);
}

TEST(Dataset, MaterializedEpochBatchesAreStable)
{
    SyntheticCtrDataset ds(smallConfig());
    ds.materialize(100);
    EXPECT_EQ(ds.materializedSize(), 100u);
    const MiniBatch first = ds.epochBatch(0, 10);
    const MiniBatch again = ds.epochBatch(0, 10);
    EXPECT_EQ(first.labels, again.labels);
    EXPECT_EQ(first.sparse[2].indices, again.sparse[2].indices);
}

TEST(Dataset, EpochBatchWrapsAround)
{
    SyntheticCtrDataset ds(smallConfig());
    ds.materialize(10);
    const MiniBatch wrapped = ds.epochBatch(8, 4);
    const MiniBatch direct0 = ds.epochBatch(0, 2);
    EXPECT_EQ(wrapped.batchSize(), 4u);
    // Examples 2 and 3 of the wrapped batch are examples 0 and 1.
    EXPECT_EQ(wrapped.labels[2], direct0.labels[0]);
    EXPECT_EQ(wrapped.labels[3], direct0.labels[1]);
}

TEST(Dataset, BaseCtrInOpenInterval)
{
    SyntheticCtrDataset ds(smallConfig());
    ds.materialize(2000);
    const double ctr = ds.baseCtr();
    EXPECT_GT(ctr, 0.02);
    EXPECT_LT(ctr, 0.98);
}

TEST(Dataset, ZipfPopularitySkewsIndices)
{
    auto cfg = smallConfig();
    cfg.sparse[0].hash_size = 10000;
    cfg.sparse[0].zipf_exponent = 1.05;
    SyntheticCtrDataset ds(cfg);
    const MiniBatch batch = ds.nextBatch(3000);
    const auto& sb = batch.sparse[0];
    std::size_t head = 0;
    for (uint64_t idx : sb.indices)
        head += idx < cfg.sparse[0].rawSpace() / 100;
    // Top 1% of raw ids should receive far more than 1% of lookups.
    EXPECT_GT(static_cast<double>(head) /
                  static_cast<double>(sb.indices.size()),
              0.2);
}

TEST(Teacher, DeterministicProbabilities)
{
    auto cfg = smallConfig();
    util::Rng r1(3), r2(3);
    TeacherModel t1(cfg.num_dense, cfg.sparse, r1, 0.0);
    TeacherModel t2(cfg.num_dense, cfg.sparse, r2, 0.0);
    std::vector<float> dense(cfg.num_dense, 0.5f);
    std::vector<std::vector<uint64_t>> sparse = {{1, 2}, {3}, {}};
    util::Rng noise(1);
    EXPECT_DOUBLE_EQ(t1.clickProbability(dense, sparse, noise),
                     t2.clickProbability(dense, sparse, noise));
}

TEST(Teacher, ProbabilityInUnitInterval)
{
    auto cfg = smallConfig();
    util::Rng rng(4);
    TeacherModel teacher(cfg.num_dense, cfg.sparse, rng);
    util::Rng noise(2);
    util::Rng gen(5);
    for (int i = 0; i < 200; ++i) {
        std::vector<float> dense(cfg.num_dense);
        for (auto& v : dense)
            v = static_cast<float>(gen.normal(0.0, 3.0));
        std::vector<std::vector<uint64_t>> sparse = {
            {gen.uniformInt(200)}, {gen.uniformInt(200)}, {}};
        const double p = teacher.clickProbability(dense, sparse, noise);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(Teacher, SparseFeaturesInfluenceScore)
{
    auto cfg = smallConfig();
    cfg.sparse[0].hash_size = 1000;
    util::Rng rng(6);
    TeacherModel teacher(cfg.num_dense, cfg.sparse, rng, 0.0);
    std::vector<float> dense(cfg.num_dense, 0.0f);
    util::Rng noise(1);
    // Different activated IDs should (generically) move the logit.
    const double p1 = teacher.clickProbability(
        dense, {{1}, {}, {}}, noise);
    const double p2 = teacher.clickProbability(
        dense, {{999}, {}, {}}, noise);
    EXPECT_NE(p1, p2);
}

} // namespace
} // namespace recsim::data
