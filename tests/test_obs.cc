/**
 * @file
 * Tests for the observability layer (recsim::obs): metrics registry
 * semantics, tracer span bookkeeping, Chrome-trace JSON export, and —
 * the point of the subsystem — trace-validated training loops: a traced
 * run must produce balanced spans, one iteration span per optimizer
 * step, forward strictly before backward, and one wall-clock track per
 * Hogwild worker.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/hogwild.h"
#include "train/trainer.h"

namespace recsim::obs {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON well-formedness parser (objects, arrays, strings,
// numbers, literals) so the trace export is validated without external
// dependencies. Returns true iff the whole document parses.
// ---------------------------------------------------------------------

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool parseValue()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't': return parseLiteral("true");
        case 'f': return parseLiteral("false");
        case 'n': return parseLiteral("null");
        default: return parseNumber();
        }
    }

    bool parseObject()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool parseArray()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool parseString()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            if (c == '"') { ++pos_; return true; }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;  // raw control char: escaping bug
            ++pos_;
        }
        return false;
    }

    bool parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool parseLiteral(const char* lit)
    {
        const std::string s(lit);
        if (text_.compare(pos_, s.size(), s) != 0)
            return false;
        pos_ += s.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : 0; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

/** Spans with @p name across all wall-clock tracks, sorted by start. */
std::vector<SpanRecord>
spansNamed(const std::vector<TrackRecord>& tracks,
           const std::string& name)
{
    std::vector<SpanRecord> result;
    for (const TrackRecord& track : tracks) {
        if (track.simulated)
            continue;
        for (const SpanRecord& span : track.spans) {
            if (span.name == name)
                result.push_back(span);
        }
    }
    std::sort(result.begin(), result.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.start_ns < b.start_ns;
              });
    return result;
}

class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Tracer::global().reset();
        MetricsRegistry::global().reset();
        Tracer::global().setEnabled(true);
    }

    void TearDown() override
    {
        Tracer::global().setEnabled(false);
        Tracer::global().reset();
        MetricsRegistry::global().reset();
    }
};

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST_F(ObsTest, MetricsCountersGaugesTimings)
{
    auto& metrics = MetricsRegistry::global();
    metrics.incr("requests");
    metrics.incr("requests", 4);
    EXPECT_EQ(metrics.counter("requests"), 5u);
    EXPECT_EQ(metrics.counter("missing"), 0u);

    metrics.set("queue_depth", 7.5);
    metrics.set("queue_depth", 3.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("queue_depth"), 3.0);

    metrics.observe("latency", 1.0);
    metrics.observe("latency", 3.0);
    const auto stat = metrics.timing("latency");
    EXPECT_EQ(stat.count(), 2u);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.0);

    const std::string report = metrics.report();
    EXPECT_NE(report.find("requests"), std::string::npos);
    EXPECT_NE(report.find("latency"), std::string::npos);

    metrics.reset();
    EXPECT_EQ(metrics.counter("requests"), 0u);
    EXPECT_EQ(metrics.size(), 0u);
}

// ---------------------------------------------------------------------
// Tracer core semantics
// ---------------------------------------------------------------------

TEST_F(ObsTest, SpansBalanceAndNest)
{
    {
        TraceSpan outer("outer");
        { TraceSpan inner("inner"); }
        EXPECT_EQ(Tracer::global().numOpenSpans(), 1u);
    }
    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    EXPECT_EQ(Tracer::global().numSpans(), 2u);

    const auto tracks = Tracer::global().snapshot();
    ASSERT_EQ(tracks.size(), 1u);
    const auto& spans = tracks[0].spans;
    ASSERT_EQ(spans.size(), 2u);
    // Inner closes first; depth recorded relative to the stack.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1);
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].depth, 0);
    EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
    EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
}

TEST_F(ObsTest, DisabledPathEmitsNothing)
{
    Tracer::global().setEnabled(false);
    {
        TraceSpan span("ignored");
        RECSIM_TRACE_SPAN("also_ignored");
    }
    Tracer::global().addSimSpan("node", "busy", 10, 20);
    EXPECT_EQ(Tracer::global().numSpans(), 0u);
    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
}

TEST_F(ObsTest, ResetClearsEverything)
{
    { TraceSpan span("work"); }
    Tracer::global().addSimSpan("node", "busy", 0, 5);
    EXPECT_GT(Tracer::global().numSpans(), 0u);

    Tracer::global().reset();
    EXPECT_EQ(Tracer::global().numSpans(), 0u);
    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    for (const auto& track : Tracer::global().snapshot())
        EXPECT_TRUE(track.spans.empty());

    // The tracer stays usable after reset (thread tracks survive).
    { TraceSpan span("again"); }
    EXPECT_EQ(Tracer::global().numSpans(), 1u);
}

TEST_F(ObsTest, SimSpansLandOnSimulatedTracks)
{
    Tracer::global().addSimSpan("trainer0.cpu", "busy", 1000, 3000);
    Tracer::global().addSimSpan("trainer0.cpu", "busy", 3000, 4000);
    Tracer::global().addSimSpan("ps0.nic", "busy", 500, 1500);

    std::size_t sim_tracks = 0;
    for (const auto& track : Tracer::global().snapshot()) {
        if (!track.simulated)
            continue;
        ++sim_tracks;
        for (const auto& span : track.spans) {
            EXPECT_EQ(span.name, "busy");
            EXPECT_LT(span.start_ns, span.end_ns);
        }
    }
    EXPECT_EQ(sim_tracks, 2u);
}

TEST_F(ObsTest, ScopedTimerRecordsMetricAndSpan)
{
    {
        ScopedTimer timer("phase.setup");
    }
    EXPECT_EQ(MetricsRegistry::global().timing("phase.setup").count(),
              1u);
    EXPECT_EQ(Tracer::global().numSpans(), 1u);

    // With tracing disabled the metric still records; the span does not.
    Tracer::global().setEnabled(false);
    {
        ScopedTimer timer("phase.setup");
    }
    EXPECT_EQ(MetricsRegistry::global().timing("phase.setup").count(),
              2u);
    EXPECT_EQ(Tracer::global().numSpans(), 1u);
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonParsesAndCarriesBothTimelines)
{
    {
        TraceSpan span("wall \"work\"\n");  // exercises escaping
    }
    Tracer::global().addSimSpan("trainer0.cpu", "busy", 1000, 2000);

    const std::string json = Tracer::global().chromeTraceJson();
    EXPECT_TRUE(JsonParser(json).parse()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("recsim wall clock"), std::string::npos);
    EXPECT_NE(json.find("recsim simulated time"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // The raw newline and quote must have been escaped.
    EXPECT_NE(json.find("wall \\\"work\\\"\\n"), std::string::npos);
}

TEST_F(ObsTest, SummaryAttributesTime)
{
    {
        TraceSpan span("top");
        TraceSpan inner("inner");
    }
    Tracer::global().addSimSpan("node0", "busy", 0, 1000000);
    const std::string summary = Tracer::global().summary();
    EXPECT_NE(summary.find("top"), std::string::npos);
    EXPECT_NE(summary.find("busy"), std::string::npos);
    EXPECT_NE(summary.find("attributed"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace-validated training loops
// ---------------------------------------------------------------------

model::DlrmConfig
tinyModel()
{
    return model::DlrmConfig::tinyReplica(4, 8, 500, 8);
}

data::DatasetConfig
tinyData()
{
    const auto m = tinyModel();
    data::DatasetConfig cfg;
    cfg.num_dense = m.num_dense;
    cfg.sparse = m.sparse;
    cfg.seed = 99;
    return cfg;
}

TEST_F(ObsTest, SingleThreadTrainingLoopIsFullyTraced)
{
    constexpr std::size_t kBatch = 64;
    constexpr std::size_t kEval = 256;
    constexpr std::size_t kSteps = 12;
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(kSteps * kBatch + kEval);
    train::TrainConfig cfg;
    cfg.batch_size = kBatch;
    cfg.epochs = 1;
    train::trainSingleThread(tinyModel(), ds, cfg, kEval);

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    const auto tracks = Tracer::global().snapshot();

    // Exactly one iteration span per optimizer step.
    const auto iterations = spansNamed(tracks, "train.iteration");
    ASSERT_EQ(iterations.size(), kSteps);
    EXPECT_EQ(MetricsRegistry::global().counter("train.iterations"),
              static_cast<uint64_t>(kSteps));
    EXPECT_EQ(
        MetricsRegistry::global().timing("train.iteration_seconds")
            .count(),
        kSteps);

    // Every iteration carries data / fwd_bwd / optimizer phases, and
    // within the model, forward strictly precedes backward.
    const auto data_spans = spansNamed(tracks, "train.data");
    const auto fwd_bwd = spansNamed(tracks, "train.fwd_bwd");
    const auto opt = spansNamed(tracks, "train.optimizer");
    EXPECT_EQ(data_spans.size(), kSteps);
    EXPECT_EQ(fwd_bwd.size(), kSteps);
    EXPECT_EQ(opt.size(), kSteps);

    const auto fwd = spansNamed(tracks, "model.fwd");
    const auto bwd = spansNamed(tracks, "model.bwd");
    // Forward also runs during evaluation, so fwd >= bwd == steps.
    ASSERT_EQ(bwd.size(), kSteps);
    ASSERT_GE(fwd.size(), kSteps);
    for (std::size_t i = 0; i < kSteps; ++i) {
        // The i-th training forward ends before the i-th backward
        // begins, and both nest inside the i-th iteration span.
        EXPECT_LE(fwd[i].end_ns, bwd[i].start_ns);
        EXPECT_GE(fwd[i].start_ns, iterations[i].start_ns);
        EXPECT_LE(bwd[i].end_ns, iterations[i].end_ns);
    }

    // Phases tile the iteration: data before fwd_bwd before optimizer.
    for (std::size_t i = 0; i < kSteps; ++i) {
        EXPECT_LE(data_spans[i].end_ns, fwd_bwd[i].start_ns);
        EXPECT_LE(fwd_bwd[i].end_ns, opt[i].start_ns);
    }
}

TEST_F(ObsTest, HogwildWorkersGetTheirOwnTracks)
{
    constexpr std::size_t kThreads = 3;
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(4096);
    train::HogwildConfig cfg;
    cfg.num_threads = kThreads;
    cfg.base.batch_size = 64;
    cfg.base.epochs = 1;
    train::trainHogwild(tinyModel(), ds, cfg, 1024);

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);

    // Each worker thread records its iterations on a distinct track.
    std::size_t worker_tracks = 0;
    std::size_t total_iterations = 0;
    for (const auto& track : Tracer::global().snapshot()) {
        if (track.simulated)
            continue;
        std::size_t iters = 0;
        for (const auto& span : track.spans) {
            if (span.name == "hogwild.iteration")
                ++iters;
        }
        if (iters > 0) {
            ++worker_tracks;
            total_iterations += iters;
        }
    }
    EXPECT_EQ(worker_tracks, kThreads);
    EXPECT_EQ(
        MetricsRegistry::global().counter("hogwild.iterations"),
        static_cast<uint64_t>(total_iterations));

    // The export of a genuinely multi-threaded trace still parses.
    const std::string json = Tracer::global().chromeTraceJson();
    EXPECT_TRUE(JsonParser(json).parse());
}

TEST_F(ObsTest, ConcurrentSpansFromManyThreadsStayBalanced)
{
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                TraceSpan outer("outer");
                TraceSpan inner("inner");
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    EXPECT_EQ(Tracer::global().numSpans(),
              static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
    EXPECT_TRUE(JsonParser(Tracer::global().chromeTraceJson()).parse());
}

TEST_F(ObsTest, ReadersRacingWritersSeeConsistentState)
{
    // The executor's worker threads emit spans while other code (the
    // trainer's metrics, a trace dump) reads the tracer concurrently.
    // Run writers and readers together — under TSan this is the data-
    // race proof for the span path; everywhere else it checks the
    // reader always sees complete (begin+end) spans.
    constexpr int kWriters = 4;
    constexpr int kSpansPerWriter = 300;
    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerWriter; ++i) {
                TraceSpan outer("outer");
                TraceSpan inner("inner");
            }
        });
    }
    threads.emplace_back([] {
        for (int i = 0; i < 50; ++i) {
            const auto tracks = Tracer::global().snapshot();
            for (const auto& track : tracks) {
                for (const auto& span : track.spans) {
                    // A recorded span is always finished.
                    EXPECT_LE(span.start_ns, span.end_ns);
                }
            }
            (void)Tracer::global().numSpans();
            (void)Tracer::global().numOpenSpans();
        }
    });
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    EXPECT_EQ(Tracer::global().numSpans(),
              static_cast<std::size_t>(kWriters) * kSpansPerWriter * 2);
}

} // namespace
} // namespace recsim::obs
